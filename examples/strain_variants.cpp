// Strain-level variant detection (the paper's §VI-D future-work extension,
// end to end): simulate a community of TWO strains of one species that share
// a backbone (0.3 % SNPs — merged by the assembler, as 100 bp overlaps still
// clear the 90 % identity gate) but carry a few strongly divergent variable
// regions (~15 % divergence — there, cross-strain overlaps fail and the
// assembly graph forks into strain-specific branches). After cleaning the
// graph with bubble popping DISABLED, the variant caller reports those
// branch pairs as allele pairs.
//
//   $ ./strain_variants [genome_length] [coverage]
#include <cstdio>
#include <cstdlib>

#include "align/overlapper.hpp"
#include "common/rng.hpp"
#include "core/asm_build.hpp"
#include "dist/simplify.hpp"
#include "dist/variants.hpp"
#include "graph/coarsen.hpp"
#include "graph/hybrid.hpp"
#include "io/preprocess.hpp"
#include "sim/genome.hpp"
#include "sim/sequencer.hpp"

int main(int argc, char** argv) {
  using namespace focus;

  const std::size_t genome_len =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 6000;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 14.0;

  // Strain B = strain A with a low backbone SNP rate plus a handful of
  // strongly divergent variable regions (think strain-specific gene
  // variants).
  Rng rng(31337);
  const std::string strain_a = sim::random_genome(genome_len, rng);
  std::string strain_b;
  const std::size_t region_len = 400;
  const std::size_t regions = genome_len / 1500;  // one per ~1.5 kbp
  std::size_t cursor = 0;
  std::size_t variable_bp = 0;
  for (std::size_t r = 0; r < regions; ++r) {
    const std::size_t region_start = (r + 1) * genome_len / (regions + 1);
    // Backbone stretch up to the region: 0.3% SNPs.
    sim::MutationConfig backbone;
    backbone.substitution_rate = 0.003;
    strain_b += sim::mutate_genome(
        strain_a.substr(cursor, region_start - cursor), backbone, rng);
    // Variable region: 15% divergence.
    sim::MutationConfig variable;
    variable.substitution_rate = 0.15;
    strain_b += sim::mutate_genome(strain_a.substr(region_start, region_len),
                                   variable, rng);
    variable_bp += region_len;
    cursor = region_start + region_len;
  }
  {
    sim::MutationConfig backbone;
    backbone.substitution_rate = 0.003;
    strain_b += sim::mutate_genome(strain_a.substr(cursor), backbone, rng);
  }
  std::size_t true_snps = 0;
  for (std::size_t i = 0; i < std::min(strain_a.size(), strain_b.size()); ++i) {
    if (strain_a[i] != strain_b[i]) ++true_snps;
  }
  std::printf(
      "Two strains of one species: %zu bp, %zu divergent regions "
      "(%zu bp total), %zu differing sites overall\n",
      genome_len, regions, variable_bp, true_snps);

  // Sequence the strain mixture (strain A at 2x the abundance of strain B).
  sim::Community mix;
  mix.genera.push_back(sim::Genus{"strainA", "Species", strain_a, 2.0});
  mix.genera.push_back(sim::Genus{"strainB", "Species", strain_b, 1.0});
  sim::SequencerConfig sc;
  sc.coverage = coverage;
  sc.error_rate_5p = 0.0;
  sc.error_rate_3p = 0.0;
  sc.bad_tail_fraction = 0.0;
  const auto sim_reads = sim::shotgun_sequence(mix, sc, rng);
  std::printf("Sequenced %zu reads at %.1fx combined coverage\n",
              sim_reads.reads.size(), coverage);

  // Front half of the Focus pipeline.
  io::PreprocessConfig prep;
  const auto reads = io::preprocess(sim_reads.reads, prep);
  align::OverlapperConfig ocfg;
  ocfg.min_overlap = 50;
  ocfg.subsets = 3;
  const auto overlaps = align::find_overlaps_serial(reads, ocfg);
  const auto g0 = graph::build_overlap_graph(reads.size(), overlaps);
  const auto read_graph = graph::build_read_digraph(reads.size(), overlaps);
  graph::CoarsenConfig ccfg;
  const auto ml = graph::build_multilevel(g0, ccfg);
  std::vector<std::uint32_t> lengths;
  for (const auto& r : reads) {
    lengths.push_back(static_cast<std::uint32_t>(r.seq.size()));
  }
  const auto hybrid = graph::build_hybrid(ml, read_graph, lengths);
  auto built = core::build_assembly_graph(hybrid, read_graph, reads);
  std::printf("Assembly graph: %zu contigs, %zu edges\n",
              built.graph.live_node_count(), built.graph.live_edge_count());

  // Clean the graph but do NOT pop bubbles — they are the variant signal.
  dist::SimplifyConfig scfg;
  std::vector<NodeId> all(built.graph.node_count());
  std::iota(all.begin(), all.end(), 0u);
  dist::apply_edge_removals(built.graph,
                            dist::find_transitive_edges(built.graph, all));
  auto contain = dist::find_containments(built.graph, all, scfg);
  dist::apply_verifications(built.graph, contain.verified);
  dist::apply_edge_removals(built.graph, std::move(contain.false_edges));
  dist::apply_node_removals(built.graph, std::move(contain.contained_nodes));
  dist::apply_node_removals(built.graph,
                            dist::find_tips(built.graph, all, scfg));

  // Call variants from the surviving bubbles.
  dist::VariantConfig vcfg;
  const auto variants = dist::find_variants_serial(built.graph, vcfg);
  std::printf("\nVariant sites called from bubbles: %zu\n", variants.size());
  std::size_t snp_columns = 0;
  for (const auto& v : variants) {
    snp_columns += v.mismatch_sites;
    const std::string merge =
        v.merge_point == kInvalidNode ? "open"
                                      : "c" + std::to_string(v.merge_point);
    std::printf(
        "  bubble c%u..%s: alleles c%u (cov %lld, %u contigs) vs c%u "
        "(cov %lld, %u contigs), %u SNPs, %u indel columns, identity %.4f\n",
        v.branch_point, merge.c_str(), v.major_allele,
        static_cast<long long>(v.major_coverage), v.major_nodes,
        v.minor_allele, static_cast<long long>(v.minor_coverage),
        v.minor_nodes, v.mismatch_sites, v.indel_sites,
        static_cast<double>(v.identity));
  }
  std::printf(
      "\nTotal SNP columns inside called variants: %zu (of %zu true strain "
      "SNPs;\nsites outside bubbles — e.g. collapsed into one allele or at "
      "contig ends —\nare not callable from graph structure alone).\n",
      snp_columns, true_snps);
  return 0;
}
