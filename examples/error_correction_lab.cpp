// Error-correction lab: a guided tour of the graph-cleaning machinery
// (paper §V-A/B/C) on deliberately corrupted assembly graphs.
//
// Builds a clean contig chain from a known genome, then injects each error
// class the cleaners target — transitive shortcuts, false-positive edges,
// contained contigs, dead-end tips, bubbles — and shows the simplification
// pipeline removing exactly the injected damage.
//
//   $ ./error_correction_lab [seed]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "sim/genome.hpp"

int main(int argc, char** argv) {
  using namespace focus;

  Rng rng(argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 7);
  const std::string genome = sim::random_genome(4000, rng);

  dist::AsmGraph g;
  // A clean chain of 12 contigs, 300 bp each, overlapping by 100 bp.
  std::vector<NodeId> chain;
  for (int i = 0; i < 12; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 200, 300), 8));
  }
  for (int i = 0; i + 1 < 12; ++i) g.add_edge(chain[i], chain[i + 1], 100);
  std::printf("Base graph: %zu contigs in a clean chain, %zu edges\n",
              g.live_node_count(), g.live_edge_count());

  // Damage 1: transitive shortcuts (redundant skip edges).
  std::size_t injected_transitive = 0;
  for (int i = 0; i + 2 < 12; i += 2) {
    g.add_edge(chain[i], chain[i + 2], 30);
    ++injected_transitive;
  }
  // Damage 2: false-positive edges to unrelated junk contigs.
  const NodeId junk_a = g.add_node(sim::random_genome(250, rng), 1);
  const NodeId junk_b = g.add_node(sim::random_genome(250, rng), 1);
  g.add_edge(junk_a, chain[4], 70);
  g.add_edge(chain[7], junk_b, 70);
  // Damage 3: a contained contig (sits inside chain[3]).
  const NodeId contained =
      g.add_node(genome.substr(3 * 200 + 40, 150), 1);
  g.add_edge(chain[3], contained, 150, /*offset_estimate=*/40);
  // Damage 4: a short dead-end tip hanging off chain[5] — it genuinely
  // overlaps chain[5]'s prefix (tips come from real but poorly covered
  // sequence), but nothing precedes it.
  const NodeId tip = g.add_node(genome.substr(940, 120), 1);
  g.add_edge(tip, chain[5], 60);
  // Damage 5: a bubble — a low-coverage alternative to chain[9] between
  // chain[8] and chain[10] (chain[9] covers genome [1800, 2100)).
  const NodeId alt = g.add_node(genome.substr(9 * 200 + 3, 300), 2);
  g.add_edge(chain[8], alt, 97, /*offset_estimate=*/203);
  g.add_edge(alt, chain[10], 100, /*offset_estimate=*/197);

  std::printf(
      "Injected damage: %zu transitive shortcuts, 2 false edges, 1 contained "
      "contig,\n  1 dead-end tip, 1 bubble branch\n",
      injected_transitive);
  std::printf("Damaged graph: %zu live nodes, %zu live edges\n\n",
              g.live_node_count(), g.live_edge_count());

  // Clean it, narrating each phase like the §V master would.
  dist::SimplifyConfig cfg;
  cfg.tip_max_nodes = 2;
  cfg.tip_max_bp = 200;
  double work = 0.0;
  const auto stats = dist::simplify_serial(g, cfg, &work);

  std::printf("Simplification results:\n");
  std::printf("  transitive edges removed : %zu (injected %zu)\n",
              stats.transitive_edges, injected_transitive);
  std::printf("  false-positive edges     : %zu (injected 2)\n",
              stats.false_edges);
  std::printf("  contained contigs        : %zu (injected 1)\n",
              stats.contained_nodes);
  std::printf("  dead-end tips            : %zu (injected 1)\n",
              stats.tip_nodes);
  std::printf("  bubble branch nodes      : %zu (injected 1)\n",
              stats.bubble_nodes);
  std::printf("  verified edges           : %zu\n", stats.verified_edges);
  std::printf("  work units               : %.0f\n\n", work);

  // Traverse: the cleaned graph should yield exactly the original chain.
  const auto paths = dist::traverse_serial(g);
  std::printf("Traversal found %zu maximal path(s); longest has %zu nodes\n",
              paths.size(), paths.empty() ? 0 : paths[0].size());
  if (!paths.empty() && paths[0].size() == chain.size()) {
    const std::string contig = g.merge_path_contigs(paths[0]);
    const bool matches = genome.find(contig) != std::string::npos;
    std::printf("Reconstructed contig: %zu bp, %s the source genome\n",
                contig.size(),
                matches ? "exactly matches" : "DOES NOT match");
  }
  return 0;
}
