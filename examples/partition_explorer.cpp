// Partition explorer: compares the paper's two partitioning routes on one
// dataset — the naïve multilevel route (full uncoarsening to the overlap
// graph G0) vs the biology-aware hybrid route (stop at the hybrid graph G'0
// and project) — across a sweep of partition counts.
//
//   $ ./partition_explorer [dataset 1..3] [ranks]
#include <cstdio>
#include <cstdlib>

#include "align/overlapper.hpp"
#include "core/assembler.hpp"
#include "graph/hybrid.hpp"
#include "io/preprocess.hpp"
#include "partition/mlpart.hpp"
#include "partition/partition.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace focus;

  const int which = argc > 1 ? std::atoi(argv[1]) : 1;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;

  std::printf("Preparing dataset D%d...\n", which);
  const auto ds = sim::make_dataset(which, /*scale=*/0.4, /*coverage=*/10.0);
  core::FocusConfig cfg;
  const auto reads = io::preprocess(ds.data.reads, cfg.preprocess);
  const auto overlaps = align::find_overlaps_serial(reads, cfg.overlap);
  const auto g0 = graph::build_overlap_graph(reads.size(), overlaps);
  const auto ml = graph::build_multilevel(g0, cfg.coarsen);
  const auto read_graph = graph::build_read_digraph(reads.size(), overlaps);
  std::vector<std::uint32_t> lengths;
  for (const auto& r : reads) {
    lengths.push_back(static_cast<std::uint32_t>(r.seq.size()));
  }
  const auto hybrid = graph::build_hybrid(ml, read_graph, lengths);

  std::printf(
      "\nGraphs: G0 has %zu nodes / %zu edges; hybrid graph G'0 has %zu "
      "nodes / %zu edges\n",
      g0.node_count(), g0.edge_count(),
      hybrid.hybrid_graph().node_count(), hybrid.hybrid_graph().edge_count());
  std::printf("Representatives per multilevel level:");
  for (std::size_t l = 0; l < hybrid.reps_per_level.size(); ++l) {
    std::printf(" L%zu:%zu", l, hybrid.reps_per_level[l]);
  }
  std::printf("\n\n%-6s %-22s %-22s %-12s %-12s\n", "k",
              "hybrid vtime (cut on G0)", "multi vtime (cut on G0)",
              "speed ratio", "cut ratio");

  for (const PartId k : {2, 4, 8, 16, 32}) {
    partition::PartitionerConfig pcfg;
    pcfg.seed = 5;
    const auto hybrid_run = partition::partition_hierarchy_parallel(
        hybrid.hierarchy, k, pcfg, ranks);
    const auto read_parts = hybrid.project_to_reads(
        hybrid_run.partitioning.finest(), reads.size());
    const Weight hybrid_cut = partition::edge_cut(g0, read_parts);

    const auto multi_run =
        partition::partition_hierarchy_parallel(ml, k, pcfg, ranks);
    const Weight multi_cut = multi_run.partitioning.finest_cut;

    std::printf("%-6d %10.5fs (%8lld) %10.5fs (%8lld) %10.2fx %10.2f\n", k,
                hybrid_run.stats.makespan,
                static_cast<long long>(hybrid_cut), multi_run.stats.makespan,
                static_cast<long long>(multi_cut),
                multi_run.stats.makespan / hybrid_run.stats.makespan,
                static_cast<double>(hybrid_cut) /
                    static_cast<double>(std::max<Weight>(multi_cut, 1)));
  }

  std::printf(
      "\nReading the table: 'speed ratio' > 1 means the hybrid route is "
      "faster;\n'cut ratio' < 1 means it also found a better edge cut on the "
      "full overlap\ngraph. The paper reports ~2x speed with the better cut "
      "in most cases.\n");
  return 0;
}
