// Metagenome community analysis (the paper's §VI-E use case).
//
// Assembles a simulated gut-microbiome dataset, partitions its hybrid graph,
// classifies reads by genus, and shows how the partitioning itself exposes
// community structure: genera concentrate in few partitions and related
// genera co-locate — "HPC as an analysis tool, not just a speedup".
//
//   $ ./metagenome_community [dataset 1..3] [partitions]
#include <cstdio>
#include <cstdlib>

#include "core/assembler.hpp"
#include "core/classify.hpp"
#include "core/community.hpp"
#include "sim/datasets.hpp"

int main(int argc, char** argv) {
  using namespace focus;

  const int which = argc > 1 ? std::atoi(argv[1]) : 1;
  const PartId parts = argc > 2 ? std::atoi(argv[2]) : 16;

  std::printf("Building dataset D%d (synthetic gut metagenome)...\n", which);
  const auto ds = sim::make_dataset(which, /*scale=*/0.5, /*coverage=*/12.0);
  std::printf("Community: %zu genera across %zu phyla, %zu reads\n",
              ds.community.size(), ds.community.phyla().size(),
              ds.data.reads.size());

  core::FocusConfig config;
  config.partitions = parts;
  config.ranks = 8;
  std::printf("Assembling with k = %d partitions...\n", parts);
  const auto result = core::assemble_reads(ds.data.reads, config);
  std::printf("Assembly: %zu contigs, N50 = %llu bp\n",
              result.stats.contig_count,
              static_cast<unsigned long long>(result.stats.n50));

  // Classify the preprocessed reads with the k-mer voter (the paper used BWA
  // against a reference database here).
  const core::KmerClassifier classifier(ds.community, 21);
  const auto genus_of = classifier.classify_reads(result.reads);

  std::vector<std::string> names, phyla;
  for (const auto& g : ds.community.genera) {
    names.push_back(g.name);
    phyla.push_back(g.phylum);
  }
  const auto matrix = core::genus_partition_distribution(
      genus_of, result.read_partition, names, parts);

  std::printf("\nGenus x partition heat map (fraction of each genus's reads):\n");
  std::printf("%s", core::render_heatmap(matrix).c_str());

  const auto conc = core::concentration(matrix);
  std::printf("\nGenus concentration (max partition fraction; uniform = %.3f):\n",
              1.0 / parts);
  for (std::size_t g = 0; g < names.size(); ++g) {
    std::printf("  %-18s %.3f  (%zu classified reads)\n", names[g].c_str(),
                conc[g], matrix.classified_reads[g]);
  }

  const auto cc = core::phylum_coclustering(matrix, phyla);
  std::printf("\nPhylum co-clustering: mean Pearson r within a phylum = %.3f, "
              "between phyla = %.3f\n",
              cc.within_phylum, cc.between_phyla);
  if (cc.within_phylum > cc.between_phyla) {
    std::printf("=> Related genera co-locate in partitions, as in the paper's Fig. 7.\n");
  } else {
    std::printf("=> Co-clustering signal not detected at this scale.\n");
  }
  return 0;
}
