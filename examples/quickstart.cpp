// Quickstart: assemble a small simulated genome end to end with the Focus
// public API, and check the contigs against the known truth.
//
//   $ ./quickstart [genome_length] [coverage]
//
// Walks the full §II pipeline: simulate reads -> FocusAssembler::assemble()
// -> contigs + statistics, printing what each stage did.
#include <cstdio>
#include <cstdlib>

#include "common/dna.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/assembler.hpp"
#include "sim/community.hpp"
#include "sim/sequencer.hpp"

int main(int argc, char** argv) {
  using namespace focus;

  const std::size_t genome_len =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 5000;
  const double coverage = argc > 2 ? std::atof(argv[2]) : 15.0;

  // 1. Make a genome and sequence it (in real use: io::load_fastx_file).
  Rng rng(2024);
  sim::PhylogenyConfig pc;
  pc.genome_length = genome_len;
  pc.repeat_copies = 1;
  pc.conserved_segments = 0;
  const sim::Community community =
      sim::build_community({{"Example", "Phylum", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 100;
  sc.coverage = coverage;
  // Error-free run so the final exact-substring check is meaningful; see
  // examples/metagenome_community.cpp for a noisy-data run.
  sc.error_rate_5p = 0.0;
  sc.error_rate_3p = 0.0;
  sc.bad_tail_fraction = 0.0;
  const auto sim_reads = sim::shotgun_sequence(community, sc, rng);
  std::printf("Simulated %zu reads of %zu bp at %.1fx coverage from a %zu bp genome\n",
              sim_reads.reads.size(), sc.read_length, coverage, genome_len);

  // 2. Configure and run the assembler. The virtual mpr ranks model the
  // paper's cluster; the work-stealing pool (threads = 0 -> FOCUS_THREADS or
  // hardware width) provides real wall-clock parallelism, with byte-identical
  // output at any width.
  core::FocusConfig config;
  config.partitions = 8;   // hybrid graph partitions (k)
  config.ranks = 4;        // worker ranks for every parallel stage
  config.overlap.min_overlap = 50;
  config.overlap.min_identity = 0.90;
  config.coarsen.threads = 0;  // auto: pool the HEM scoring passes
  std::printf("Host thread pool width: %u threads\n",
              resolve_thread_count(0));
  const auto result = core::assemble_reads(sim_reads.reads, config);

  // 3. Inspect the pipeline products.
  std::printf("\nPipeline products:\n");
  std::printf("  preprocessed reads : %zu (reverse complements added)\n",
              result.reads.size());
  std::printf("  verified overlaps  : %zu\n", result.overlaps.size());
  std::printf("  overlap graph G0   : %zu nodes, %zu edges\n",
              result.overlap_graph.node_count(),
              result.overlap_graph.edge_count());
  std::printf("  multilevel set     : %zu levels (G0..Gn)\n",
              result.multilevel.depth());
  std::printf("  hybrid graph G'0   : %zu nodes (read clusters known to be contiguous)\n",
              result.hybrid.hybrid_graph().node_count());
  std::printf("  simplification     : %zu transitive, %zu false edges, "
              "%zu contained, %zu tips, %zu bubble nodes removed\n",
              result.simplify_stats.transitive_edges,
              result.simplify_stats.false_edges,
              result.simplify_stats.contained_nodes,
              result.simplify_stats.tip_nodes,
              result.simplify_stats.bubble_nodes);

  std::printf("\nStage timings (virtual cluster time / host wall time):\n");
  for (const auto& [stage, t] : result.timings) {
    std::printf("  %-14s %10.6f s  /  %8.3f s\n", stage.c_str(), t.vtime,
                t.wall);
  }

  // 4. Contigs and quality check against the known genome.
  std::printf("\nAssembly: %zu contigs, N50 = %llu bp, max = %llu bp\n",
              result.stats.contig_count,
              static_cast<unsigned long long>(result.stats.n50),
              static_cast<unsigned long long>(result.stats.max_contig));
  std::size_t matching = 0;
  for (const auto& contig : result.contigs) {
    const std::string rc = dna::reverse_complement(contig);
    if (community.genera[0].genome.find(contig) != std::string::npos ||
        community.genera[0].genome.find(rc) != std::string::npos) {
      ++matching;
    }
  }
  std::printf("Contigs exactly matching the true genome: %zu / %zu\n",
              matching, result.contigs.size());
  return 0;
}
