// Fault sweep over the spill manager (DESIGN.md §8, ctest label: fault):
// a crash at every slice-write position must retry cleanly and reproduce the
// fault-free assembly; corrupt or truncated slice files must raise typed
// focus errors naming the file; and a rank-crash replay on the spill backend
// must reproduce the fault-free in-memory assembly exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/assembler.hpp"
#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "dist/simplify.hpp"
#include "dist/stored_graph.hpp"
#include "dist/traverse.hpp"
#include "graph/graph_store.hpp"
#include "sim/datasets.hpp"

namespace focus {
namespace {

using dist::AsmGraph;
using dist::EdgeId;
using dist::StoredAsmGraph;
using graph::GraphStoreBackend;
using graph::GraphStoreConfig;

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

AsmGraph make_complex_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = random_seq(rng, 3000);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 20; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 140, 220), 6));
  }
  for (int i = 0; i + 1 < 20; ++i) g.add_edge(chain[i], chain[i + 1], 80);
  for (int i = 0; i < 18; i += 3) g.add_edge(chain[i], chain[i + 2], 20);
  const NodeId junk1 = g.add_node(random_seq(rng, 150), 1);
  const NodeId junk2 = g.add_node(random_seq(rng, 150), 1);
  g.add_edge(junk1, chain[5], 60);
  g.add_edge(chain[10], junk2, 60);
  const NodeId small = g.add_node(genome.substr(300, 90), 1);
  g.add_edge(chain[2], small, 90, /*offset_estimate=*/20);
  return g;
}

std::vector<PartId> striped_partition(std::size_t nodes, PartId parts) {
  std::vector<PartId> part(nodes);
  const std::size_t per =
      (nodes + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  for (NodeId v = 0; v < nodes; ++v) part[v] = static_cast<PartId>(v / per);
  return part;
}

struct StoreOutcome {
  dist::SimplifyStats stats;
  std::vector<std::vector<NodeId>> paths;
  std::vector<std::string> contigs;  // every live node, post-simplify
};

/// The deterministic store workload all write-fault sweep points replay:
/// build → force every slice to disk → serial simplify + traverse → decode
/// every live contig (reloading slices from their files).
StoreOutcome run_store_workload(std::uint64_t nth_write_fault) {
  const AsmGraph g = make_complex_graph(77);
  const PartId parts = 6;
  const auto part = striped_partition(g.node_count(), parts);
  GraphStoreConfig config;  // unlimited budget: writes happen at evict_all
  config.backend = GraphStoreBackend::kCsrSpill;
  auto store = StoredAsmGraph::from_asm_graph(g, part, parts, config);
  if (nth_write_fault != 0) {
    store.spill_manager().set_write_fault(nth_write_fault);
  }
  store.spill_manager().evict_all();

  StoreOutcome out;
  dist::SimplifyConfig cfg;
  out.stats = dist::simplify_serial(store, cfg);
  out.paths = dist::traverse_serial(store);
  for (NodeId v = 0; v < store.node_count(); ++v) {
    if (store.node_live(v)) out.contigs.push_back(store.contig(v));
  }
  EXPECT_EQ(store.spill_stats().write_retries, nth_write_fault == 0 ? 0u : 1u);
  return out;
}

TEST(GraphStoreFault, CrashAtEverySliceWriteRecoversExactOutputs) {
  const StoreOutcome want = run_store_workload(0);
  // Fault-free workload writes exactly one file per partition; sweep a crash
  // through every write position (the retry itself shifts later indices, but
  // each sweep point injects exactly one fault).
  for (std::uint64_t k = 1; k <= 6; ++k) {
    const StoreOutcome got = run_store_workload(k);
    const std::string context = "write fault at " + std::to_string(k);
    EXPECT_EQ(got.stats.transitive_edges, want.stats.transitive_edges)
        << context;
    EXPECT_EQ(got.stats.tip_nodes, want.stats.tip_nodes) << context;
    EXPECT_EQ(got.stats.bubble_nodes, want.stats.bubble_nodes) << context;
    ASSERT_EQ(got.paths, want.paths) << context;
    ASSERT_EQ(got.contigs, want.contigs) << context;
  }
}

TEST(GraphStoreFault, PartialWriteNeverLeavesAPlausibleSliceFile) {
  // The injected fault abandons a half-written temp file; the final path must
  // only ever appear complete. After the faulted write retries, the file must
  // parse and CRC-verify.
  const AsmGraph g = make_complex_graph(78);
  const auto part = striped_partition(g.node_count(), 4);
  GraphStoreConfig config;
  config.backend = GraphStoreBackend::kCsrSpill;
  auto store = StoredAsmGraph::from_asm_graph(g, part, 4, config);
  store.spill_manager().set_write_fault(2);
  store.spill_manager().evict_all();
  for (PartId p = 0; p < 4; ++p) {
    const auto path = store.spill_manager().slice_path(p);
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp")) << path;
  }
  // Every contig still decodes from the retried files.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(store.contig(v), g.node(v).contig) << "node " << v;
  }
}

TEST(GraphStoreFault, CorruptSliceRaisesTypedChecksumError) {
  const AsmGraph g = make_complex_graph(79);
  const auto part = striped_partition(g.node_count(), 4);
  GraphStoreConfig config;
  config.backend = GraphStoreBackend::kCsrSpill;
  auto store = StoredAsmGraph::from_asm_graph(g, part, 4, config);
  store.spill_manager().evict_all();

  // Flip one payload byte (past the 20-byte header) of partition 2's file.
  const auto path = store.spill_manager().slice_path(2);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_GT(size, 21u);
    f.seekp(static_cast<std::streamoff>(size - 1));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size - 1));
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(size - 1));
    byte = static_cast<char>(byte ^ 0x5a);
    f.write(&byte, 1);
  }
  // Any node of partition 2 faults the slice back in and must fail loudly.
  NodeId victim = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (part[v] == 2) {
      victim = v;
      break;
    }
  }
  try {
    store.contig(victim);
    FAIL() << "corrupt slice decoded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << e.what();
  }
}

TEST(GraphStoreFault, TruncatedSliceRaisesTypedError) {
  const AsmGraph g = make_complex_graph(80);
  const auto part = striped_partition(g.node_count(), 4);
  GraphStoreConfig config;
  config.backend = GraphStoreBackend::kCsrSpill;
  auto store = StoredAsmGraph::from_asm_graph(g, part, 4, config);
  store.spill_manager().evict_all();
  const auto path = store.spill_manager().slice_path(1);
  std::filesystem::resize_file(path, 32);  // header survives, payload gone
  NodeId victim = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (part[v] == 1) {
      victim = v;
      break;
    }
  }
  try {
    store.contig(victim);
    FAIL() << "truncated slice decoded without error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
  // A header shorter than 20 bytes is reported as truncated too.
  std::filesystem::resize_file(path, 8);
  EXPECT_THROW(store.contig(victim), Error);
}

// ---------------------------------------------------------------------------
// Rank-crash replay on the spill backend
// ---------------------------------------------------------------------------

struct DriverOutcome {
  dist::SimplifyStats stats;
  std::vector<std::vector<NodeId>> paths;
  AsmGraph graph;
};

DriverOutcome run_store_drivers(int nranks, const mpr::FaultPlan& plan,
                                dist::DistProtocol protocol) {
  const AsmGraph g = make_complex_graph(81);
  const PartId parts = 6;
  const auto part = striped_partition(g.node_count(), parts);
  GraphStoreConfig config;
  config.backend = GraphStoreBackend::kCsrSpill;
  config.mem_budget_bytes = 2048;  // spill during the drivers, not only after
  auto store = StoredAsmGraph::from_asm_graph(g, part, parts, config);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  const dist::DistConfig dist_cfg{protocol};
  dist::SimplifyConfig cfg;
  DriverOutcome out;
  out.stats = dist::simplify_parallel(store, part, parts, cfg, nranks, {}, 1,
                                      plan, fault, dist_cfg)
                  .stats;
  out.paths = dist::traverse_parallel(store, part, parts, nranks, {}, 1, plan,
                                      fault, dist_cfg)
                  .paths;
  out.graph = store.to_asm_graph();
  return out;
}

DriverOutcome run_memory_drivers(int nranks, dist::DistProtocol protocol) {
  AsmGraph g = make_complex_graph(81);
  const PartId parts = 6;
  const auto part = striped_partition(g.node_count(), parts);
  const dist::DistConfig dist_cfg{protocol};
  dist::SimplifyConfig cfg;
  DriverOutcome out;
  out.stats = dist::simplify_parallel(g, part, parts, cfg, nranks, {}, 1, {},
                                      {}, dist_cfg)
                  .stats;
  out.paths =
      dist::traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, dist_cfg)
          .paths;
  out.graph = std::move(g);
  return out;
}

void expect_same_outcome(const DriverOutcome& got, const DriverOutcome& want,
                         const std::string& context) {
  EXPECT_EQ(got.stats.transitive_edges, want.stats.transitive_edges)
      << context;
  EXPECT_EQ(got.stats.contained_nodes, want.stats.contained_nodes) << context;
  EXPECT_EQ(got.stats.verified_edges, want.stats.verified_edges) << context;
  EXPECT_EQ(got.stats.tip_nodes, want.stats.tip_nodes) << context;
  EXPECT_EQ(got.stats.bubble_nodes, want.stats.bubble_nodes) << context;
  ASSERT_EQ(got.paths, want.paths) << context;
  ASSERT_EQ(got.graph.node_count(), want.graph.node_count()) << context;
  for (NodeId v = 0; v < want.graph.node_count(); ++v) {
    EXPECT_EQ(got.graph.node(v).removed, want.graph.node(v).removed)
        << context << " node " << v;
    EXPECT_EQ(got.graph.node(v).contig, want.graph.node(v).contig)
        << context << " node " << v;
  }
  for (EdgeId e = 0; e < want.graph.edge_count(); ++e) {
    EXPECT_EQ(got.graph.edge(e).removed, want.graph.edge(e).removed)
        << context << " edge " << e;
    EXPECT_EQ(got.graph.edge(e).verified, want.graph.edge(e).verified)
        << context << " edge " << e;
  }
}

TEST(GraphStoreFault, CrashReplayOnSpillBackendMatchesInMemoryFaultFree) {
  const int nranks = 3;
  for (const auto protocol :
       {dist::DistProtocol::kMaster, dist::DistProtocol::kSymmetric}) {
    const DriverOutcome want = run_memory_drivers(nranks, protocol);
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({/*rank=*/1, op});
      const DriverOutcome got = run_store_drivers(nranks, plan, protocol);
      expect_same_outcome(
          got, want,
          std::string(protocol == dist::DistProtocol::kMaster ? "master"
                                                              : "symmetric") +
              " crash at op " + std::to_string(op));
    }
  }
}

TEST(GraphStoreFault, AssemblerCrashReplayOnSpillBackendMatchesFaultFree) {
  // End to end through the façade: an in-memory fault-free run is the
  // oracle; the spill backend plus a mid-pipeline rank crash must reproduce
  // it contig for contig.
  const sim::Dataset d = sim::make_dataset(1, /*scale=*/0.15, /*coverage=*/6.0);
  core::FocusConfig cfg;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 50;
  cfg.overlap.min_identity = 0.90;
  cfg.partitions = 4;
  cfg.ranks = 3;
  cfg.fault_plan = {};
  cfg.graph_store = GraphStoreConfig{};
  const auto want = core::assemble_reads(d.data.reads, cfg);
  cfg.graph_store.backend = GraphStoreBackend::kCsrSpill;
  cfg.graph_store.mem_budget_bytes = 8192;
  cfg.fault_plan.crashes.push_back({/*rank=*/1, /*op=*/3});
  cfg.fault.max_retries = 32;
  const auto got = core::assemble_reads(d.data.reads, cfg);
  EXPECT_EQ(got.contigs, want.contigs);
  ASSERT_EQ(got.paths, want.paths);
  EXPECT_EQ(got.simplify_stats.tip_nodes, want.simplify_stats.tip_nodes);
  EXPECT_GE(got.simplify_run.ranks_failed + got.traverse_run.ranks_failed, 1);
}

}  // namespace
}  // namespace focus
