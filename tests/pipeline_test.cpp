// Integration tests: the full Focus pipeline on simulated data.
//
// These are the end-to-end checks behind the paper's claims: a single genome
// reassembles into contigs that match it; assembly statistics are consistent
// across partition counts (Table III); hybrid partitioning is cheaper than
// multilevel partitioning at comparable edge cut (Fig. 5 / Table II).
#include <gtest/gtest.h>

#include <algorithm>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "core/assembler.hpp"
#include "sim/datasets.hpp"
#include "sim/sequencer.hpp"

namespace focus::core {
namespace {

// Small-but-real configuration for integration runs.
FocusConfig test_config() {
  FocusConfig cfg;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.coarsen.max_levels = 8;
  cfg.partitions = 4;
  cfg.ranks = 2;
  cfg.min_contig_length = 150;
  return cfg;
}

// A single small genome sequenced cleanly.
sim::SimulatedReads single_genome_reads(std::uint64_t seed,
                                        std::size_t genome_len,
                                        double coverage) {
  Rng rng(seed);
  sim::PhylogenyConfig pc;
  pc.genome_length = genome_len;
  pc.repeat_copies = 0;
  pc.conserved_segments = 0;
  sim::Community c =
      sim::build_community({{"Solo", "Phylum", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 100;
  sc.coverage = coverage;
  sc.error_rate_5p = 0.001;
  sc.error_rate_3p = 0.005;
  sc.bad_tail_fraction = 0.02;
  auto out = sim::shotgun_sequence(c, sc, rng);
  // Stash the genome in the first read's name? No — return via global.
  return out;
}

// Fraction of contig bases that exactly match somewhere in genome (checked
// by direct substring search per contig; contigs are short in these tests).
bool contig_matches_genome(const std::string& contig,
                           const std::string& genome) {
  if (genome.find(contig) != std::string::npos) return true;
  const std::string rc = dna::reverse_complement(contig);
  return genome.find(rc) != std::string::npos;
}

TEST(Pipeline, SingleGenomeAssemblesIntoMatchingContigs) {
  Rng rng(42);
  sim::PhylogenyConfig pc;
  pc.genome_length = 4000;
  pc.repeat_copies = 0;
  pc.conserved_segments = 0;
  const auto community =
      sim::build_community({{"Solo", "P", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 100;
  sc.coverage = 12.0;
  sc.error_rate_5p = 0.0;
  sc.error_rate_3p = 0.0;
  sc.bad_tail_fraction = 0.0;
  const auto sim_reads = sim::shotgun_sequence(community, sc, rng);

  const auto result = assemble_reads(sim_reads.reads, test_config());

  ASSERT_FALSE(result.contigs.empty());
  EXPECT_GT(result.stats.n50, 300u);
  // Every contig must be a bona fide substring of the genome (error-free
  // reads; merging is coordinate-exact).
  for (const auto& contig : result.contigs) {
    EXPECT_TRUE(contig_matches_genome(contig, community.genera[0].genome))
        << "contig of length " << contig.size() << " not found in genome";
  }
  // Combined contigs cover a decent share of the genome.
  std::uint64_t covered = 0;
  for (const auto& contig : result.contigs) covered += contig.size();
  EXPECT_GT(covered, community.genera[0].genome.size() / 2);
}

TEST(Pipeline, NoisyReadsStillAssemble) {
  Rng rng(43);
  sim::PhylogenyConfig pc;
  pc.genome_length = 3000;
  pc.repeat_copies = 0;
  pc.conserved_segments = 0;
  const auto community = sim::build_community({{"Solo", "P", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 100;
  sc.coverage = 15.0;
  const auto sim_reads = sim::shotgun_sequence(community, sc, rng);
  const auto result = assemble_reads(sim_reads.reads, test_config());
  ASSERT_FALSE(result.contigs.empty());
  EXPECT_GT(result.stats.max_contig, 250u);
}

TEST(Pipeline, StatsConsistentAcrossPartitionCounts) {
  // Table III's invariant: N50 / max contig / contig count barely move as
  // the hybrid graph is partitioned into different k.
  Rng rng(44);
  sim::PhylogenyConfig pc;
  pc.genome_length = 3000;
  pc.repeat_copies = 0;
  pc.conserved_segments = 0;
  const auto community = sim::build_community({{"Solo", "P", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.coverage = 12.0;
  sc.error_rate_5p = 0.0;
  sc.error_rate_3p = 0.0;
  sc.bad_tail_fraction = 0.0;
  const auto sim_reads = sim::shotgun_sequence(community, sc, rng);

  std::vector<AssemblyStats> stats;
  for (const PartId k : {2, 4, 8}) {
    FocusConfig cfg = test_config();
    cfg.partitions = k;
    cfg.ranks = 2;
    stats.push_back(assemble_reads(sim_reads.reads, cfg).stats);
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].max_contig, stats[0].max_contig);
    // N50 and counts may wiggle slightly when partition boundaries break
    // different paths; bound the wiggle.
    EXPECT_NEAR(static_cast<double>(stats[i].n50),
                static_cast<double>(stats[0].n50),
                0.2 * static_cast<double>(stats[0].n50));
    EXPECT_NEAR(static_cast<double>(stats[i].contig_count),
                static_cast<double>(stats[0].contig_count),
                0.2 * static_cast<double>(std::max<std::size_t>(
                          stats[0].contig_count, 10)));
  }
}

TEST(Pipeline, HybridPartitioningCheaperThanMultilevel) {
  // Fig. 5's shape: partitioning the hybrid set costs less virtual time
  // than partitioning the multilevel set, at comparable edge cut on G0.
  const auto ds = sim::make_dataset(1, /*scale=*/0.35, /*coverage=*/10.0);
  FocusConfig hybrid_cfg = test_config();
  hybrid_cfg.partitions = 4;
  hybrid_cfg.use_hybrid_partitioning = true;
  FocusConfig ml_cfg = hybrid_cfg;
  ml_cfg.use_hybrid_partitioning = false;

  const auto hybrid_run = assemble_reads(ds.data.reads, hybrid_cfg);
  const auto ml_run = assemble_reads(ds.data.reads, ml_cfg);

  const double t_hybrid = hybrid_run.timings.at("5-partition").vtime;
  const double t_ml = ml_run.timings.at("5-partition").vtime;
  EXPECT_LT(t_hybrid, t_ml);

  // The hybrid graph is genuinely smaller than the overlap graph.
  EXPECT_LT(hybrid_run.hybrid.hybrid_graph().node_count(),
            hybrid_run.overlap_graph.node_count());
}

TEST(Pipeline, ReadPartitionCoversAllReads) {
  const auto ds = sim::make_dataset(2, 0.3, 8.0);
  FocusConfig cfg = test_config();
  const auto result = assemble_reads(ds.data.reads, cfg);
  ASSERT_EQ(result.read_partition.size(), result.reads.size());
  for (const PartId p : result.read_partition) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, cfg.partitions);
  }
}

TEST(Pipeline, TimingsRecordedForEveryStage) {
  const auto reads = single_genome_reads(45, 2000, 10.0);
  const auto result = assemble_reads(reads.reads, test_config());
  for (const char* stage :
       {"1-preprocess", "2-align", "3-coarsen", "4-hybrid", "5-partition",
        "6-simplify", "7-traverse"}) {
    ASSERT_TRUE(result.timings.contains(stage)) << stage;
    EXPECT_GE(result.timings.at(stage).vtime, 0.0);
  }
  EXPECT_GT(result.total_vtime(), 0.0);
}

TEST(Pipeline, DeterministicEndToEnd) {
  const auto reads = single_genome_reads(46, 2000, 10.0);
  const auto a = assemble_reads(reads.reads, test_config());
  const auto b = assemble_reads(reads.reads, test_config());
  ASSERT_EQ(a.contigs.size(), b.contigs.size());
  for (std::size_t i = 0; i < a.contigs.size(); ++i) {
    EXPECT_EQ(a.contigs[i], b.contigs[i]);
  }
  EXPECT_EQ(a.stats.n50, b.stats.n50);
}

TEST(Pipeline, RankCountDoesNotChangeContigs) {
  const auto reads = single_genome_reads(47, 2000, 10.0);
  FocusConfig cfg1 = test_config();
  cfg1.ranks = 1;
  FocusConfig cfg4 = test_config();
  cfg4.ranks = 4;
  const auto a = assemble_reads(reads.reads, cfg1);
  const auto b = assemble_reads(reads.reads, cfg4);
  ASSERT_EQ(a.contigs.size(), b.contigs.size());
  for (std::size_t i = 0; i < a.contigs.size(); ++i) {
    EXPECT_EQ(a.contigs[i], b.contigs[i]);
  }
}

// ---------------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------------

TEST(PipelineFailure, EmptyInputRejected) {
  io::ReadSet empty;
  EXPECT_THROW(assemble_reads(empty, test_config()), Error);
}

TEST(PipelineFailure, AllReadsTrimmedAwayRejected) {
  io::ReadSet reads;
  reads.add(io::Read{"r", "ACGTACGT", std::string(8, '!'), kInvalidRead, false});
  FocusConfig cfg = test_config();
  cfg.preprocess.min_quality = 30.0;  // nothing survives
  cfg.preprocess.window_len = 4;
  EXPECT_THROW(assemble_reads(reads, cfg), Error);
}

TEST(PipelineFailure, InvalidPartitionCountRejected) {
  FocusConfig cfg = test_config();
  cfg.partitions = 3;
  EXPECT_THROW(FocusAssembler{cfg}, Error);
  cfg.partitions = 0;
  EXPECT_THROW(FocusAssembler{cfg}, Error);
  cfg.partitions = 4;
  cfg.ranks = 0;
  EXPECT_THROW(FocusAssembler{cfg}, Error);
}

TEST(PipelineFailure, NoOverlapsStillProducesPerReadContigs) {
  // Mutually unrelated reads: the overlap graph has no edges; every read is
  // its own contig (minus the length filter).
  Rng rng(48);
  io::ReadSet reads;
  for (int i = 0; i < 12; ++i) {
    std::string seq;
    for (int j = 0; j < 200; ++j) seq.push_back("ACGT"[rng.next_below(4)]);
    reads.add(io::Read{"u" + std::to_string(i), seq, "", kInvalidRead, false});
  }
  FocusConfig cfg = test_config();
  cfg.min_contig_length = 100;
  const auto result = assemble_reads(reads, cfg);
  EXPECT_TRUE(result.overlaps.empty());
  // 12 forward + 12 rc reads, deduped back to ~12 canonical contigs.
  EXPECT_GE(result.contigs.size(), 10u);
  EXPECT_LE(result.contigs.size(), 14u);
}

}  // namespace
}  // namespace focus::core
