// Tests for FASTA/FASTQ parsing, writing, and read preprocessing (§II-A).
#include <gtest/gtest.h>

#include <sstream>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "io/fastx.hpp"
#include "io/preprocess.hpp"

namespace focus::io {
namespace {

// ---------------------------------------------------------------------------
// FASTA parsing
// ---------------------------------------------------------------------------

TEST(Fasta, ParsesSingleRecord) {
  const auto reads = parse_fastx_string(">read1 description\nACGTACGT\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].name, "read1 description");
  EXPECT_EQ(reads[0].seq, "ACGTACGT");
  EXPECT_TRUE(reads[0].qual.empty());
}

TEST(Fasta, ConcatenatesMultilineSequences) {
  const auto reads = parse_fastx_string(">r\nACGT\nACGT\nTT\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].seq, "ACGTACGTTT");
}

TEST(Fasta, ParsesMultipleRecords) {
  const auto reads = parse_fastx_string(">a\nAAAA\n>b\nCCCC\n>c\nGGGG\n");
  ASSERT_EQ(reads.size(), 3u);
  EXPECT_EQ(reads[1].name, "b");
  EXPECT_EQ(reads[2].seq, "GGGG");
}

TEST(Fasta, ToleratesBlankLinesAndCrlf) {
  const auto reads = parse_fastx_string(">a\r\nACGT\r\n\r\n>b\r\nTTTT\r\n");
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].seq, "ACGT");
  EXPECT_EQ(reads[1].seq, "TTTT");
}

TEST(Fasta, RejectsSequenceBeforeHeader) {
  EXPECT_THROW(parse_fastx_string("ACGT\n>r\nAAAA\n"), Error);
}

TEST(Fasta, RejectsEmptyName) {
  EXPECT_THROW(parse_fastx_string(">\nACGT\n"), Error);
}

TEST(Fasta, RejectsEmptySequence) {
  EXPECT_THROW(parse_fastx_string(">a\n>b\nACGT\n"), Error);
}

// ---------------------------------------------------------------------------
// FASTQ parsing
// ---------------------------------------------------------------------------

TEST(Fastq, ParsesRecord) {
  const auto reads = parse_fastx_string("@r1\nACGT\n+\nIIII\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[0].seq, "ACGT");
  EXPECT_EQ(reads[0].qual, "IIII");
}

TEST(Fastq, AcceptsRepeatedNameOnPlusLine) {
  const auto reads = parse_fastx_string("@r1\nACGT\n+r1\nIIII\n");
  ASSERT_EQ(reads.size(), 1u);
}

TEST(Fastq, RejectsTruncatedRecord) {
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\n+\n"), Error);
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\n"), Error);
  EXPECT_THROW(parse_fastx_string("@r1\n"), Error);
}

TEST(Fastq, RejectsQualityLengthMismatch) {
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\n+\nIII\n"), Error);
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\n+\nIIIII\n"), Error);
}

TEST(Fastq, RejectsNonPhredQuality) {
  EXPECT_THROW(parse_fastx_string(std::string("@r1\nACGT\n+\nII") + '\x07' + "I\n"),
               Error);
}

TEST(Fastq, RejectsMissingPlusLine) {
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\nIIII\n@r2\nAC\n+\nII\n"), Error);
}

TEST(Fastx, AutodetectsFormat) {
  EXPECT_EQ(parse_fastx_string(">a\nACGT\n")[0].qual, "");
  EXPECT_EQ(parse_fastx_string("@a\nACGT\n+\n!!!!\n")[0].qual, "!!!!");
  EXPECT_TRUE(parse_fastx_string("").empty());
  EXPECT_THROW(parse_fastx_string("#comment\n"), Error);
}

TEST(Fastx, MissingFileThrows) {
  EXPECT_THROW(load_fastx_file("/nonexistent/path/reads.fq"), Error);
}

// ---------------------------------------------------------------------------
// Edge cases: CRLF, empty records, truncation, soft-masked bases
// ---------------------------------------------------------------------------

TEST(FastxEdge, FastqCrlfLineEndings) {
  // The '\r' must be stripped before the quality/sequence length check.
  const auto reads =
      parse_fastx_string("@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTT\r\n+\r\nII\r\n");
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].name, "r1");
  EXPECT_EQ(reads[0].seq, "ACGT");
  EXPECT_EQ(reads[0].qual, "IIII");
  EXPECT_EQ(reads[1].seq, "TT");
}

TEST(FastxEdge, AutodetectSkipsCrlfBlankLines) {
  const auto reads = parse_fastx_string("\r\n\r\n@r\nAC\n+\nII\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].seq, "AC");
}

TEST(FastxEdge, FastaHeaderAtEofIsEmptyRecord) {
  EXPECT_THROW(parse_fastx_string(">only-a-header\n"), Error);
  EXPECT_THROW(parse_fastx_string(">a\nACGT\n>trailing\n"), Error);
}

TEST(FastxEdge, FastqTruncatedQualityLine) {
  // Record ends right after the '+' separator (no quality line at all).
  EXPECT_THROW(parse_fastx_string("@r1\nACGT\n+\n"), Error);
  EXPECT_THROW(parse_fastx_string("@r1\r\nACGT\r\n+\r\n"), Error);
  // Quality line present but truncated mid-record.
  EXPECT_THROW(parse_fastx_string("@r1\nACGTACGT\n+\nIIII\n"), Error);
}

TEST(FastxEdge, LowercaseBasesAreUppercased) {
  // Soft-masked (lowercase) bases must not silently disable k-mer seeding.
  const auto fa = parse_fastx_string(">r\nacgtACGTnN\n");
  ASSERT_EQ(fa.size(), 1u);
  EXPECT_EQ(fa[0].seq, "ACGTACGTNN");

  const auto fq = parse_fastx_string("@r\nacgt\n+\nIIII\n");
  ASSERT_EQ(fq.size(), 1u);
  EXPECT_EQ(fq[0].seq, "ACGT");
  EXPECT_TRUE(dna::is_clean(fq[0].seq));
}

TEST(FastxEdge, MixedCaseMultilineFasta) {
  const auto reads = parse_fastx_string(">r\nacGT\ngtCA\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].seq, "ACGTGTCA");
}

TEST(FastxEdge, NonBaseCharactersSurviveUppercasing) {
  // Alphabet permissiveness is unchanged: IUPAC codes and gaps pass through
  // (uppercased where applicable), only a-z is remapped.
  const auto reads = parse_fastx_string(">r\nAC-GTryk\n");
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].seq, "AC-GTRYK");
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

TEST(Writers, FastaRoundTrip) {
  ReadSet reads;
  reads.add(Read{"alpha", "ACGTACGTACGT", "", kInvalidRead, false});
  reads.add(Read{"beta", "TTTT", "", kInvalidRead, false});
  std::ostringstream out;
  write_fasta(out, reads, /*line_width=*/5);
  const auto parsed = parse_fastx_string(out.str());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, "ACGTACGTACGT");
  EXPECT_EQ(parsed[1].name, "beta");
}

TEST(Writers, FastqRoundTrip) {
  ReadSet reads;
  reads.add(Read{"q1", "ACGT", "IJKL", kInvalidRead, false});
  std::ostringstream out;
  write_fastq(out, reads);
  const auto parsed = parse_fastx_string(out.str());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].qual, "IJKL");
}

TEST(Writers, FastqFillsMissingQuality) {
  ReadSet reads;
  reads.add(Read{"f1", "ACGT", "", kInvalidRead, false});
  std::ostringstream out;
  write_fastq(out, reads);
  const auto parsed = parse_fastx_string(out.str());
  EXPECT_EQ(parsed[0].qual, "IIII");
}

// ---------------------------------------------------------------------------
// Preprocessing: trimming
// ---------------------------------------------------------------------------

// Quality string helper: offset from '!' (Phred+33).
std::string qual_of(std::initializer_list<int> phreds) {
  std::string q;
  for (const int p : phreds) q.push_back(static_cast<char>('!' + p));
  return q;
}

TEST(Preprocess, WindowAverageQuality) {
  const std::string q = qual_of({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(window_average_quality(q, 0, 4), 25.0);
  EXPECT_DOUBLE_EQ(window_average_quality(q, 2, 2), 35.0);
}

TEST(Preprocess, FixedTrimsRemoveEnds) {
  Read r{"r", "AACGTACGTT", "IIIIIIIIII", kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.trim5 = 2;
  cfg.trim3 = 3;
  cfg.window_len = 0;  // disable quality trimming
  cfg.min_length = 1;
  ASSERT_TRUE(trim_read(r, cfg));
  EXPECT_EQ(r.seq, "CGTAC");
  EXPECT_EQ(r.qual, "IIIII");
}

TEST(Preprocess, FixedTrimsConsumeWholeReadDropsIt) {
  Read r{"r", "ACGT", "IIII", kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.trim5 = 2;
  cfg.trim3 = 2;
  EXPECT_FALSE(trim_read(r, cfg));
}

TEST(Preprocess, QualityTrimCutsLowQualityTail) {
  // 10 high-quality bases followed by 6 junk bases.
  std::string qual = qual_of({35, 35, 35, 35, 35, 35, 35, 35, 35, 35,
                              2, 2, 2, 2, 2, 2});
  Read r{"r", "ACGTACGTACGTACGT", qual, kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.window_len = 4;
  cfg.window_step = 1;
  cfg.min_quality = 20.0;
  cfg.min_length = 4;
  ASSERT_TRUE(trim_read(r, cfg));
  // The first window (from the 3' end) whose average exceeds 20 ends within
  // the high-quality prefix; everything after is cut.
  EXPECT_LE(r.seq.size(), 11u);
  EXPECT_GE(r.seq.size(), 10u);
  EXPECT_EQ(r.seq.size(), r.qual.size());
}

TEST(Preprocess, HighQualityReadKeptWhole) {
  Read r{"r", "ACGTACGTAC", qual_of({30, 30, 30, 30, 30, 30, 30, 30, 30, 30}),
         kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.window_len = 5;
  cfg.min_quality = 20.0;
  cfg.min_length = 5;
  ASSERT_TRUE(trim_read(r, cfg));
  EXPECT_EQ(r.seq.size(), 10u);
}

TEST(Preprocess, AllLowQualityReadDropped) {
  Read r{"r", "ACGTACGTAC", qual_of({2, 2, 2, 2, 2, 2, 2, 2, 2, 2}),
         kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.window_len = 5;
  cfg.min_quality = 20.0;
  EXPECT_FALSE(trim_read(r, cfg));
}

TEST(Preprocess, FastaReadsSkipQualityTrimming) {
  Read r{"r", "ACGTACGTAC", "", kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.window_len = 5;
  cfg.min_quality = 20.0;
  cfg.min_length = 5;
  ASSERT_TRUE(trim_read(r, cfg));
  EXPECT_EQ(r.seq.size(), 10u);
}

// ---------------------------------------------------------------------------
// Preprocessing: full pass
// ---------------------------------------------------------------------------

TEST(Preprocess, AddsReverseComplements) {
  ReadSet input;
  input.add(Read{"a", "AAACCC", "IIIIII", kInvalidRead, false});
  input.add(Read{"b", "GGGTTT", "IIIIII", kInvalidRead, false});
  PreprocessConfig cfg;
  cfg.window_len = 0;
  cfg.min_length = 3;
  PreprocessStats stats;
  const auto out = preprocess(input, cfg, &stats);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].seq, "AAACCC");
  EXPECT_EQ(out[1].seq, dna::reverse_complement("AAACCC"));
  EXPECT_EQ(out[1].name, "a/rc");
  EXPECT_TRUE(out[1].reverse);
  EXPECT_EQ(out[1].origin, 0u);
  EXPECT_EQ(out[3].origin, 1u);
  EXPECT_EQ(stats.input_reads, 2u);
  EXPECT_EQ(stats.output_reads, 4u);
  EXPECT_EQ(stats.dropped_short, 0u);
}

TEST(Preprocess, DropsShortReadsAndCounts) {
  ReadSet input;
  input.add(Read{"long", "ACGTACGTACGT", "", kInvalidRead, false});
  input.add(Read{"short", "ACG", "", kInvalidRead, false});
  PreprocessConfig cfg;
  cfg.window_len = 0;
  cfg.min_length = 5;
  PreprocessStats stats;
  const auto out = preprocess(input, cfg, &stats);
  EXPECT_EQ(out.size(), 2u);  // long + its rc
  EXPECT_EQ(stats.dropped_short, 1u);
}

TEST(Preprocess, ReverseComplementsCanBeDisabled) {
  ReadSet input;
  input.add(Read{"a", "ACGTACGT", "", kInvalidRead, false});
  PreprocessConfig cfg;
  cfg.window_len = 0;
  cfg.min_length = 4;
  cfg.add_reverse_complements = false;
  const auto out = preprocess(input, cfg);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Preprocess, MalformedQualityLengthRejectedWithTypedError) {
  // A quality string shorter than the sequence is malformed FASTQ input;
  // before validation the substr below the check escaped as a raw
  // std::out_of_range instead of a focus parse error.
  Read r{"bad", "ACGTACGTAC", "III", kInvalidRead, false};
  PreprocessConfig cfg;
  cfg.trim5 = 4;
  cfg.window_len = 0;
  cfg.min_length = 4;
  EXPECT_THROW(trim_read(r, cfg), Error);
  // The same record inside a full preprocessing pass.
  ReadSet input;
  input.add(Read{"bad", "ACGTACGTAC", "III", kInvalidRead, false});
  EXPECT_THROW(preprocess(input, cfg), Error);
}

TEST(Preprocess, ReverseComplementCarriesReversedQuality) {
  ReadSet input;
  input.add(Read{"a", "AAACCC", "ABCDEF", kInvalidRead, false});
  PreprocessConfig cfg;
  cfg.window_len = 0;
  cfg.min_length = 4;
  const auto out = preprocess(input, cfg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].seq, "GGGTTT");
  // Base i of the RC read is base n-1-i of the forward read, so the RC
  // quality is the forward quality reversed (it used to be dropped).
  EXPECT_EQ(out[1].qual, "FEDCBA");
  // FASTA input (no qualities) keeps an empty RC quality.
  ReadSet fasta;
  fasta.add(Read{"f", "AAACCC", "", kInvalidRead, false});
  const auto out2 = preprocess(fasta, cfg);
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_TRUE(out2[1].qual.empty());
}

// ---------------------------------------------------------------------------
// Subset splitting
// ---------------------------------------------------------------------------

TEST(SubsetSplit, CoversAllReadsDisjointly) {
  const auto subsets = split_into_subsets(10, 3);
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_EQ(subsets[0].size(), 4u);
  EXPECT_EQ(subsets[1].size(), 3u);
  EXPECT_EQ(subsets[2].size(), 3u);
  std::vector<bool> seen(10, false);
  for (const auto& s : subsets) {
    for (const ReadId id : s) {
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(SubsetSplit, MoreSubsetsThanReads) {
  const auto subsets = split_into_subsets(2, 5);
  ASSERT_EQ(subsets.size(), 5u);
  EXPECT_EQ(subsets[0].size(), 1u);
  EXPECT_EQ(subsets[1].size(), 1u);
  EXPECT_TRUE(subsets[2].empty());
}

TEST(SubsetSplit, ZeroSubsetsRejected) {
  EXPECT_THROW(split_into_subsets(10, 0), Error);
}

TEST(ReadSet, TotalBases) {
  ReadSet reads;
  reads.add(Read{"a", "ACGT", "", kInvalidRead, false});
  reads.add(Read{"b", "AC", "", kInvalidRead, false});
  EXPECT_EQ(reads.total_bases(), 6u);
}


// ---------------------------------------------------------------------------
// Parallel preprocessing
// ---------------------------------------------------------------------------

class ParallelPreprocess : public ::testing::TestWithParam<int> {};

TEST_P(ParallelPreprocess, MatchesSerialExactly) {
  ReadSet input;
  // Mixed bag: good reads, low-quality tails, too-short reads.
  input.add(Read{"good1", "ACGTACGTACGTACGTACGTACGTACGTACGT",
                 std::string(32, 'I'), kInvalidRead, false});
  input.add(Read{"short", "ACGTA", "IIIII", kInvalidRead, false});
  for (int i = 0; i < 20; ++i) {
    std::string seq, qual;
    for (int j = 0; j < 60; ++j) {
      seq.push_back("ACGT"[(i * 7 + j) % 4]);
      qual.push_back(j < 45 ? 'I' : '#');  // degraded tail
    }
    input.add(Read{"r" + std::to_string(i), seq, qual, kInvalidRead, false});
  }
  PreprocessConfig cfg;
  cfg.window_len = 5;
  cfg.min_quality = 20.0;
  cfg.min_length = 20;

  PreprocessStats serial_stats;
  const ReadSet serial = preprocess(input, cfg, &serial_stats);
  const auto parallel = preprocess_parallel(input, cfg, GetParam());

  ASSERT_EQ(parallel.reads.size(), serial.size());
  for (ReadId i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel.reads[i].name, serial[i].name);
    EXPECT_EQ(parallel.reads[i].seq, serial[i].seq);
    EXPECT_EQ(parallel.reads[i].qual, serial[i].qual);
    EXPECT_EQ(parallel.reads[i].origin, serial[i].origin);
    EXPECT_EQ(parallel.reads[i].reverse, serial[i].reverse);
  }
  EXPECT_EQ(parallel.stats.input_reads, serial_stats.input_reads);
  EXPECT_EQ(parallel.stats.dropped_short, serial_stats.dropped_short);
  EXPECT_EQ(parallel.stats.output_reads, serial_stats.output_reads);
  EXPECT_EQ(parallel.stats.bases_trimmed, serial_stats.bases_trimmed);
  EXPECT_GT(parallel.run.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelPreprocess,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(ParallelPreprocess2, ReverseComplementQualityCarriedAcrossRanks) {
  ReadSet input;
  input.add(Read{"a", "AAACCC", "ABCDEF", kInvalidRead, false});
  PreprocessConfig cfg;
  cfg.window_len = 0;
  cfg.min_length = 4;
  const auto out = preprocess_parallel(input, cfg, 2);
  ASSERT_EQ(out.reads.size(), 2u);
  EXPECT_EQ(out.reads[1].seq, "GGGTTT");
  EXPECT_EQ(out.reads[1].qual, "FEDCBA");
}

TEST(ParallelPreprocess2, MoreRanksReduceComputeMakespan) {
  ReadSet input;
  for (int i = 0; i < 400; ++i) {
    std::string seq(100, 'A');
    input.add(Read{"r" + std::to_string(i), seq, std::string(100, 'I'),
                   kInvalidRead, false});
  }
  PreprocessConfig cfg;
  const double t1 = preprocess_parallel(input, cfg, 1).run.makespan;
  const double t4 = preprocess_parallel(input, cfg, 4).run.makespan;
  EXPECT_GT(t1 / t4, 1.5);  // gather costs temper ideal 4x
}

}  // namespace
}  // namespace focus::io
