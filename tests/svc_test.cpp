// Multi-tenant job runtime suite (DESIGN.md §10): EnvSnapshot capture and
// strict parsing, the AlignScratch job-boundary soft cap, ArtifactCache
// policy (hit/miss, LRU eviction, oversized decline), JobScheduler admission
// control and virtual-time fair share, and the end-to-end stage-cache path
// through the assembler (repeat submissions must hit and stay
// byte-identical).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "align/align_scratch.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "core/assembler.hpp"
#include "sim/datasets.hpp"
#include "svc/artifact_cache.hpp"
#include "svc/scheduler.hpp"

namespace focus {
namespace {

// ---------------------------------------------------------------------------
// EnvSnapshot
// ---------------------------------------------------------------------------

TEST(EnvSnapshot, CaptureReflectsProcessEnvironment) {
  ASSERT_EQ(setenv("FOCUS_SEED_STRATEGY", "distributed", 1), 0);
  ASSERT_EQ(setenv("FOCUS_THREADS", "7", 1), 0);
  const EnvSnapshot snap = EnvSnapshot::capture();
  ASSERT_TRUE(snap.seed_strategy.has_value());
  EXPECT_EQ(*snap.seed_strategy, "distributed");
  ASSERT_TRUE(snap.thread_count().has_value());
  EXPECT_EQ(*snap.thread_count(), 7u);

  ASSERT_EQ(unsetenv("FOCUS_SEED_STRATEGY"), 0);
  ASSERT_EQ(unsetenv("FOCUS_THREADS"), 0);
  const EnvSnapshot fresh = EnvSnapshot::capture();
  EXPECT_FALSE(fresh.seed_strategy.has_value());
  EXPECT_FALSE(fresh.thread_count().has_value());
  // A snapshot is immutable: the earlier capture still holds the old values.
  EXPECT_EQ(*snap.seed_strategy, "distributed");
}

TEST(EnvSnapshot, StrictParsersRejectMalformedValues) {
  EXPECT_EQ(env::parse_u64("X", "0"), 0u);
  EXPECT_EQ(env::parse_u64("X", "123"), 123u);
  for (const char* bad : {"", "x", "1x", "-1", "+1", " 1",
                          "99999999999999999999999"}) {
    SCOPED_TRACE(std::string("value='") + bad + "'");
    EXPECT_THROW(env::parse_u64("X", bad), Error);
  }
  EXPECT_DOUBLE_EQ(env::parse_double("X", "0.25"), 0.25);
  EXPECT_THROW(env::parse_double("X", "0.25abc"), Error);
  EXPECT_THROW(env::parse_double("X", ""), Error);
  EXPECT_DOUBLE_EQ(env::parse_rate("X", "1.0"), 1.0);
  EXPECT_THROW(env::parse_rate("X", "1.5"), Error);
  EXPECT_THROW(env::parse_rate("X", "-0.1"), Error);
}

TEST(FocusConfig, DefaultCtorFollowsEnvPinnedCtorDoesNot) {
  ASSERT_EQ(setenv("FOCUS_SEED_STRATEGY", "distributed", 1), 0);
  ASSERT_EQ(setenv("FOCUS_DIST_PROTOCOL", "master", 1), 0);
  ASSERT_EQ(setenv("FOCUS_GRAPH_BACKEND", "csr-spill", 1), 0);

  const core::FocusConfig live;  // captures the live environment once
  EXPECT_EQ(live.overlap.strategy, align::SeedStrategy::kDistributedIndex);
  EXPECT_EQ(live.dist.protocol, dist::DistProtocol::kMaster);
  EXPECT_EQ(live.graph_store.backend, graph::GraphStoreBackend::kCsrSpill);

  // An empty snapshot pins every env-defaulted knob to its documented
  // default, regardless of the live environment.
  const core::FocusConfig pinned{EnvSnapshot{}};
  EXPECT_EQ(pinned.overlap.strategy, align::SeedStrategy::kAllPairs);
  EXPECT_EQ(pinned.dist.protocol, dist::DistProtocol::kSymmetric);
  EXPECT_EQ(pinned.graph_store.backend, graph::GraphStoreBackend::kInMemory);

  ASSERT_EQ(unsetenv("FOCUS_SEED_STRATEGY"), 0);
  ASSERT_EQ(unsetenv("FOCUS_DIST_PROTOCOL"), 0);
  ASSERT_EQ(unsetenv("FOCUS_GRAPH_BACKEND"), 0);
}

// ---------------------------------------------------------------------------
// AlignScratch job-boundary reset
// ---------------------------------------------------------------------------

TEST(AlignScratch, ResetHonorsSoftCap) {
  align::AlignScratch s;
  EXPECT_EQ(s.footprint_bytes(), 0u);
  s.nw_prev.resize(1024);
  s.nw_moves.resize(4096);
  s.member_diags.resize(8);
  s.member_diags[0].resize(100);
  s.touched.reserve(50);
  const std::size_t warm = s.footprint_bytes();
  ASSERT_GT(warm, 0u);

  s.reset(warm + 1);  // under the cap: stays warm
  EXPECT_EQ(s.footprint_bytes(), warm);
  s.reset(warm - 1);  // over the cap: fully released
  EXPECT_EQ(s.footprint_bytes(), 0u);

  s.nw_cur.resize(64);
  s.reset(0);  // 0 = always release
  EXPECT_EQ(s.footprint_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// ArtifactCache policy
// ---------------------------------------------------------------------------

std::shared_ptr<core::OverlapArtifact> overlap_artifact(std::size_t n) {
  auto artifact = std::make_shared<core::OverlapArtifact>();
  artifact->overlaps.resize(n);
  artifact->overlaps.shrink_to_fit();
  return artifact;
}

TEST(ArtifactCache, HitMissAndLruEviction) {
  const std::size_t unit = svc::artifact_bytes(*overlap_artifact(100));
  svc::ArtifactCache cache(2 * unit + unit / 2);  // room for two entries

  const common::Digest k1{1, 1}, k2{2, 2}, k3{3, 3};
  EXPECT_EQ(cache.get_overlaps(k1), nullptr);  // miss
  cache.put_overlaps(k1, overlap_artifact(100));
  cache.put_overlaps(k2, overlap_artifact(100));
  EXPECT_NE(cache.get_overlaps(k1), nullptr);  // touch k1: k2 is now LRU
  cache.put_overlaps(k3, overlap_artifact(100));

  EXPECT_EQ(cache.get_overlaps(k2), nullptr);  // evicted
  EXPECT_NE(cache.get_overlaps(k1), nullptr);
  EXPECT_NE(cache.get_overlaps(k3), nullptr);

  const svc::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_LE(stats.resident_bytes, cache.budget_bytes());
}

TEST(ArtifactCache, OversizedArtifactIsDeclined) {
  const std::size_t unit = svc::artifact_bytes(*overlap_artifact(10));
  svc::ArtifactCache cache(unit);
  cache.put_overlaps(common::Digest{9, 9}, overlap_artifact(100000));
  EXPECT_EQ(cache.get_overlaps(common::Digest{9, 9}), nullptr);
  EXPECT_EQ(cache.stats().declined, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ArtifactCache, ZeroBudgetMeansUnlimited) {
  svc::ArtifactCache cache(0);
  for (std::uint64_t i = 0; i < 16; ++i) {
    cache.put_overlaps(common::Digest{i, i}, overlap_artifact(1000));
  }
  EXPECT_EQ(cache.stats().entries, 16u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// ---------------------------------------------------------------------------
// JobScheduler: admission, fair share, cached repeats
// ---------------------------------------------------------------------------

const sim::Dataset& tiny_dataset() {
  static const sim::Dataset d =
      sim::make_dataset(1, /*scale=*/0.13, /*coverage=*/5.0);
  return d;
}

/// Env-independent small pipeline config (all-pairs overlap for speed).
core::FocusConfig tiny_config() {
  core::FocusConfig cfg{EnvSnapshot{}};
  cfg.overlap.k = 14;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.partitions = 4;
  cfg.ranks = 2;
  cfg.min_contig_length = 150;
  return cfg;
}

TEST(JobScheduler, AdmissionControlBoundsQueueAndShutdownRejects) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> dispatched{0};

  svc::SchedulerConfig sc;
  sc.max_in_flight = 1;
  sc.max_queued = 1;
  sc.before_execute = [&](const std::string&, std::uint64_t) {
    if (dispatched.fetch_add(1) == 0) opened.wait();
  };
  svc::JobScheduler sched(sc);

  auto f1 = sched.submit("a", tiny_dataset().data.reads, tiny_config());
  while (dispatched.load() == 0) std::this_thread::yield();
  auto f2 = sched.submit("a", tiny_dataset().data.reads, tiny_config());
  try {
    sched.submit("a", tiny_dataset().data.reads, tiny_config());
    FAIL() << "third submission must be rejected";
  } catch (const svc::Rejected& r) {
    EXPECT_EQ(r.reason(), svc::Rejected::Reason::kQueueFull);
    EXPECT_NE(std::string(r.what()).find("queue"), std::string::npos);
  }

  gate.set_value();
  EXPECT_GT(f1.get().assembly.contigs.size(), 0u);
  EXPECT_GT(f2.get().assembly.contigs.size(), 0u);

  sched.shutdown();
  try {
    sched.submit("a", tiny_dataset().data.reads, tiny_config());
    FAIL() << "post-shutdown submission must be rejected";
  } catch (const svc::Rejected& r) {
    EXPECT_EQ(r.reason(), svc::Rejected::Reason::kShuttingDown);
  }
}

TEST(JobScheduler, FairShareDispatchesLightTenantFirst) {
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::mutex order_mu;
  std::vector<std::pair<std::string, std::uint64_t>> order;

  svc::SchedulerConfig sc;
  sc.max_in_flight = 1;
  sc.max_queued = 8;
  sc.before_execute = [&](const std::string& tenant, std::uint64_t id) {
    bool first = false;
    {
      std::lock_guard<std::mutex> lk(order_mu);
      order.emplace_back(tenant, id);
      first = order.size() == 1;
    }
    if (first) opened.wait();
  };
  svc::JobScheduler sched(sc);

  // Tenant a submits three jobs, then tenant b submits one. Once a's first
  // job completes, a carries a positive virtual-time charge while b is at
  // zero, so b's job overtakes a's backlog.
  auto a1 = sched.submit("a", tiny_dataset().data.reads, tiny_config());
  {
    // Ensure a1 is dispatched (and gated) before the backlog is queued.
    for (;;) {
      {
        std::lock_guard<std::mutex> lk(order_mu);
        if (!order.empty()) break;
      }
      std::this_thread::yield();
    }
  }
  auto a2 = sched.submit("a", tiny_dataset().data.reads, tiny_config());
  auto a3 = sched.submit("a", tiny_dataset().data.reads, tiny_config());
  auto b1 = sched.submit("b", tiny_dataset().data.reads, tiny_config());
  gate.set_value();
  a1.get();
  a2.get();
  a3.get();
  b1.get();
  sched.shutdown();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], (std::pair<std::string, std::uint64_t>{"a", 1}));
  EXPECT_EQ(order[1], (std::pair<std::string, std::uint64_t>{"b", 4}));
  EXPECT_EQ(order[2], (std::pair<std::string, std::uint64_t>{"a", 2}));
  EXPECT_EQ(order[3], (std::pair<std::string, std::uint64_t>{"a", 3}));
  EXPECT_GT(sched.tenant_vtime("a"), sched.tenant_vtime("b"));
}

void expect_identical_assembly(const core::AssemblyResult& got,
                               const core::AssemblyResult& want) {
  ASSERT_EQ(got.contigs, want.contigs);
  ASSERT_EQ(got.paths, want.paths);
  EXPECT_EQ(got.reads.size(), want.reads.size());
  EXPECT_EQ(got.overlaps.size(), want.overlaps.size());
  EXPECT_EQ(got.stats.n50, want.stats.n50);
  EXPECT_EQ(got.stats.total_bases, want.stats.total_bases);
  EXPECT_EQ(got.partitioning.finest_cut, want.partitioning.finest_cut);
  // Cached stages must reproduce the stats a fresh run records, bitwise.
  EXPECT_EQ(got.preprocess_run.makespan, want.preprocess_run.makespan);
  EXPECT_EQ(got.total_vtime(), want.total_vtime());
}

TEST(StageCache, AssemblerRepeatRunHitsAllThreeStages) {
  svc::ArtifactCache cache(0);
  const core::FocusAssembler assembler(tiny_config());

  const core::AssemblyResult cold =
      assembler.assemble(tiny_dataset().data.reads, &cache);
  EXPECT_FALSE(cold.cache_hits.preprocess);
  EXPECT_FALSE(cold.cache_hits.overlaps);
  EXPECT_FALSE(cold.cache_hits.coarsen);
  EXPECT_EQ(cache.stats().entries, 3u);

  const core::AssemblyResult warm =
      assembler.assemble(tiny_dataset().data.reads, &cache);
  EXPECT_TRUE(warm.cache_hits.preprocess);
  EXPECT_TRUE(warm.cache_hits.overlaps);
  EXPECT_TRUE(warm.cache_hits.coarsen);
  expect_identical_assembly(warm, cold);

  // A cache-free run is the oracle for both.
  const core::AssemblyResult fresh =
      assembler.assemble(tiny_dataset().data.reads);
  expect_identical_assembly(cold, fresh);
}

TEST(StageCache, KeysChainThroughTheStages) {
  svc::ArtifactCache cache(0);
  core::FocusConfig cfg = tiny_config();
  core::FocusAssembler(cfg).assemble(tiny_dataset().data.reads, &cache);

  // A downstream-only knob keeps all three artifacts valid.
  core::FocusConfig downstream = cfg;
  downstream.min_contig_length = 200;
  const auto reuse = core::FocusAssembler(downstream)
                         .assemble(tiny_dataset().data.reads, &cache);
  EXPECT_TRUE(reuse.cache_hits.preprocess);
  EXPECT_TRUE(reuse.cache_hits.overlaps);
  EXPECT_TRUE(reuse.cache_hits.coarsen);

  // An overlap knob invalidates overlap + coarsen but not preprocessing.
  core::FocusConfig rekmer = cfg;
  rekmer.overlap.k = 16;
  const auto partial = core::FocusAssembler(rekmer)
                           .assemble(tiny_dataset().data.reads, &cache);
  EXPECT_TRUE(partial.cache_hits.preprocess);
  EXPECT_FALSE(partial.cache_hits.overlaps);
  EXPECT_FALSE(partial.cache_hits.coarsen);

  // The execution envelope is part of every key: changing the rank count
  // must miss (RunStats depend on it).
  core::FocusConfig reranked = cfg;
  reranked.ranks = 4;
  const auto envelope = core::FocusAssembler(reranked)
                            .assemble(tiny_dataset().data.reads, &cache);
  EXPECT_FALSE(envelope.cache_hits.preprocess);
  EXPECT_FALSE(envelope.cache_hits.overlaps);
  EXPECT_FALSE(envelope.cache_hits.coarsen);
}

TEST(JobScheduler, RepeatSubmissionServedFromCache) {
  svc::SchedulerConfig sc;
  sc.max_in_flight = 1;
  svc::JobScheduler sched(sc);

  const svc::JobResult first =
      sched.submit("a", tiny_dataset().data.reads, tiny_config()).get();
  const svc::JobResult second =
      sched.submit("a", tiny_dataset().data.reads, tiny_config()).get();

  EXPECT_FALSE(first.stats.cache_hits.preprocess);
  EXPECT_TRUE(second.stats.cache_hits.preprocess);
  EXPECT_TRUE(second.stats.cache_hits.overlaps);
  EXPECT_TRUE(second.stats.cache_hits.coarsen);
  expect_identical_assembly(second.assembly, first.assembly);

  const svc::CacheStats stats = sched.cache_stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);

  const auto completed = sched.completed_stats();
  ASSERT_EQ(completed.size(), 2u);
  EXPECT_EQ(completed[0].job_id, 1u);
  EXPECT_EQ(completed[1].job_id, 2u);
  EXPECT_EQ(completed[0].vtime, completed[1].vtime);  // identical makespans
}

}  // namespace
}  // namespace focus
