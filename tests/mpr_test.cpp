// Tests for the message-passing runtime: correctness of point-to-point,
// collectives, and the deterministic virtual-time cost model.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "mpr/runtime.hpp"

namespace focus::mpr {
namespace {

// ---------------------------------------------------------------------------
// Message pack/unpack
// ---------------------------------------------------------------------------

TEST(Message, ScalarRoundTrip) {
  Message m;
  m.pack<std::int32_t>(-42);
  m.pack<double>(3.5);
  m.pack<std::uint8_t>(7);
  EXPECT_EQ(m.unpack<std::int32_t>(), -42);
  EXPECT_DOUBLE_EQ(m.unpack<double>(), 3.5);
  EXPECT_EQ(m.unpack<std::uint8_t>(), 7);
  EXPECT_TRUE(m.fully_consumed());
}

TEST(Message, StringAndVectorRoundTrip) {
  Message m;
  m.pack_string("hello focus");
  m.pack_vector<std::uint32_t>({1, 2, 3});
  m.pack_vector<double>({});
  EXPECT_EQ(m.unpack_string(), "hello focus");
  EXPECT_EQ(m.unpack_vector<std::uint32_t>(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(m.unpack_vector<double>().empty());
}

TEST(Message, UnpackPastEndThrows) {
  Message m;
  m.pack<std::uint16_t>(1);
  m.unpack<std::uint16_t>();
  EXPECT_THROW(m.unpack<std::uint8_t>(), Error);
}

TEST(Message, SizeBytesTracksPayload) {
  Message m;
  EXPECT_EQ(m.size_bytes(), 0u);
  m.pack<std::uint64_t>(1);
  EXPECT_EQ(m.size_bytes(), 8u);
  m.pack_string("abc");  // 8-byte length + 3 bytes
  EXPECT_EQ(m.size_bytes(), 19u);
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

TEST(Runtime, RingPassesToken) {
  const int p = 5;
  std::vector<int> received(p, -1);
  Runtime::execute(p, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % p;
    const int prev = (comm.rank() + p - 1) % p;
    Message m;
    m.pack<int>(comm.rank());
    comm.send(next, 0, std::move(m));
    Message in = comm.recv(prev, 0);
    received[comm.rank()] = in.unpack<int>();
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(received[r], (r + p - 1) % p);
  }
}

TEST(Runtime, MessagesMatchedBySourceAndTag) {
  std::vector<int> got(2, 0);
  Runtime::execute(3, [&](Comm& comm) {
    if (comm.rank() == 1) {
      Message a, b;
      a.pack<int>(111);
      b.pack<int>(222);
      comm.send(0, 7, std::move(a));
      comm.send(0, 9, std::move(b));
    } else if (comm.rank() == 2) {
      Message c;
      c.pack<int>(333);
      comm.send(0, 7, std::move(c));
    } else {
      // Receive in an order unrelated to send order.
      EXPECT_EQ(comm.recv(2, 7).unpack<int>(), 333);
      EXPECT_EQ(comm.recv(1, 9).unpack<int>(), 222);
      EXPECT_EQ(comm.recv(1, 7).unpack<int>(), 111);
      got[0] = 1;
    }
  });
  EXPECT_EQ(got[0], 1);
}

TEST(Runtime, FifoPerSourceAndTag) {
  Runtime::execute(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        Message m;
        m.pack<int>(i);
        comm.send(1, 0, std::move(m));
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(comm.recv(0, 0).unpack<int>(), i);
      }
    }
  });
}

TEST(Runtime, SelfSendRejected) {
  EXPECT_THROW(Runtime::execute(2,
                                [&](Comm& comm) {
                                  Message m;
                                  if (comm.rank() == 0) {
                                    comm.send(0, 0, std::move(m));
                                  } else {
                                    // Rank 1 must not block forever waiting on
                                    // a barrier with a crashed peer.
                                  }
                                }),
               Error);
}

TEST(Runtime, ExceptionPropagatesFromWorkerRank) {
  EXPECT_THROW(Runtime::execute(4,
                                [&](Comm& comm) {
                                  if (comm.rank() == 2) {
                                    FOCUS_THROW("rank 2 failed");
                                  }
                                }),
               Error);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

class CollectiveTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveTest, BroadcastDeliversToAll) {
  const int p = GetParam();
  for (Rank root = 0; root < p; ++root) {
    std::vector<std::string> got(p);
    Runtime::execute(p, [&](Comm& comm) {
      Message m;
      if (comm.rank() == root) m.pack_string("payload-from-root");
      Message out = comm.broadcast(std::move(m), root);
      got[comm.rank()] =
          comm.rank() == root ? "payload-from-root" : out.unpack_string();
    });
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(got[r], "payload-from-root") << "p=" << p << " root=" << root;
    }
  }
}

TEST_P(CollectiveTest, GatherCollectsInRankOrder) {
  const int p = GetParam();
  std::vector<int> collected;
  Runtime::execute(p, [&](Comm& comm) {
    Message m;
    m.pack<int>(comm.rank() * 10);
    auto all = comm.gather(std::move(m), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
      for (auto& msg : all) collected.push_back(msg.unpack<int>());
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
  ASSERT_EQ(collected.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) EXPECT_EQ(collected[r], r * 10);
}

TEST_P(CollectiveTest, AllreduceSum) {
  const int p = GetParam();
  std::vector<std::int64_t> results(p);
  Runtime::execute(p, [&](Comm& comm) {
    results[comm.rank()] = comm.allreduce_sum(comm.rank() + 1);
  });
  const std::int64_t expected = static_cast<std::int64_t>(p) * (p + 1) / 2;
  for (int r = 0; r < p; ++r) EXPECT_EQ(results[r], expected);
}

TEST_P(CollectiveTest, AllreduceMax) {
  const int p = GetParam();
  std::vector<std::int64_t> results(p);
  std::vector<double> fresults(p);
  Runtime::execute(p, [&](Comm& comm) {
    results[comm.rank()] = comm.allreduce_max(100 - comm.rank());
    fresults[comm.rank()] = comm.allreduce_fmax(0.5 * comm.rank());
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[r], 100);
    EXPECT_DOUBLE_EQ(fresults[r], 0.5 * (p - 1));
  }
}

TEST_P(CollectiveTest, ConsecutiveCollectivesDoNotInterfere) {
  const int p = GetParam();
  Runtime::execute(p, [&](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      EXPECT_EQ(comm.allreduce_sum(1), p);
      EXPECT_EQ(comm.allreduce_max(comm.rank()), p - 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 13));

// ---------------------------------------------------------------------------
// Virtual time
// ---------------------------------------------------------------------------

TEST(VirtualTime, ChargeAdvancesClockByGamma) {
  CostModel cm;
  cm.gamma = 1e-6;
  Runtime rt(1, cm);
  const auto stats = rt.run([&](Comm& comm) {
    comm.charge(1000.0);
    EXPECT_DOUBLE_EQ(comm.vtime(), 1e-3);
  });
  EXPECT_DOUBLE_EQ(stats.makespan, 1e-3);
}

TEST(VirtualTime, MakespanIsMaxOverRanks) {
  const auto stats = Runtime::execute(4, [&](Comm& comm) {
    comm.charge(1000.0 * (comm.rank() + 1));
  });
  EXPECT_DOUBLE_EQ(stats.makespan, stats.rank_vtime[3]);
  EXPECT_GT(stats.rank_vtime[3], stats.rank_vtime[0]);
}

TEST(VirtualTime, MessageCausalityPropagatesClock) {
  CostModel cm;
  cm.alpha = 1.0;  // exaggerated for the test
  cm.beta = 0.0;
  Runtime rt(2, cm);
  rt.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.advance_vtime(10.0);
      Message m;
      m.pack<int>(1);
      comm.send(1, 0, std::move(m));
    } else {
      comm.recv(0, 0);
      // Sender clock (10) + send overhead alpha (1) + transfer alpha (1).
      EXPECT_GE(comm.vtime(), 12.0);
    }
  });
}

TEST(VirtualTime, BarrierSynchronizesToMax) {
  std::vector<double> after(3);
  Runtime::execute(3, [&](Comm& comm) {
    comm.charge(1e6 * comm.rank());
    comm.barrier();
    after[comm.rank()] = comm.vtime();
  });
  EXPECT_DOUBLE_EQ(after[0], after[1]);
  EXPECT_DOUBLE_EQ(after[1], after[2]);
  EXPECT_GE(after[0], 1e6 * 2 * CostModel{}.gamma);
}

TEST(VirtualTime, DeterministicAcrossRuns) {
  auto run_once = [] {
    return Runtime::execute(6, [](Comm& comm) {
      // A little SPMD program with mixed communication.
      comm.charge(100.0 * (comm.rank() + 1));
      const auto total = comm.allreduce_sum(comm.rank());
      comm.charge(static_cast<double>(total));
      comm.barrier();
      if (comm.rank() > 0) {
        Message m;
        m.pack<int>(comm.rank());
        comm.send(0, 1, std::move(m));
      } else {
        for (Rank r = 1; r < comm.size(); ++r) comm.recv(r, 1);
      }
    });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  ASSERT_EQ(a.rank_vtime.size(), b.rank_vtime.size());
  for (std::size_t i = 0; i < a.rank_vtime.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rank_vtime[i], b.rank_vtime[i]);
  }
}

TEST(VirtualTime, WorkSplitAcrossRanksReducesMakespan) {
  // The foundational speedup property: the same total work charged across
  // more ranks yields a smaller makespan.
  const double total_work = 1e6;
  auto makespan_with = [&](int ranks) {
    return Runtime::execute(ranks,
                            [&](Comm& comm) {
                              comm.charge(total_work / comm.size());
                              comm.barrier();
                            })
        .makespan;
  };
  const double t1 = makespan_with(1);
  const double t4 = makespan_with(4);
  const double t8 = makespan_with(8);
  EXPECT_GT(t1 / t4, 3.5);
  EXPECT_GT(t1 / t8, 6.5);
}

TEST(RunStats, CountsMessagesAndBytes) {
  const auto stats = Runtime::execute(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Message m;
      m.pack_vector<std::uint8_t>(std::vector<std::uint8_t>(100, 1));
      comm.send(1, 0, std::move(m));
    } else {
      comm.recv(0, 0);
    }
  });
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, 108u);  // 8-byte length prefix + 100 payload
}

TEST(Runtime, SingleRankNeedsNoThreads) {
  int calls = 0;
  const auto stats = Runtime::execute(1, [&](Comm& comm) {
    ++calls;
    comm.barrier();          // no-op with one rank
    comm.charge(10.0);
    EXPECT_EQ(comm.allreduce_sum(5), 5);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_GT(stats.makespan, 0.0);
}

TEST(Runtime, InvalidConstruction) {
  EXPECT_THROW(Runtime(0), Error);
  EXPECT_THROW(Runtime(-3), Error);
}

}  // namespace
}  // namespace focus::mpr
