// Tests for graph partitioning: metrics, greedy graph growing, KL bisection
// refinement, global k-way refinement, and the multilevel driver (§IV).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/coarsen.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "partition/kway.hpp"
#include "partition/mlpart.hpp"
#include "partition/partition.hpp"

namespace focus::partition {
namespace {

using graph::Graph;
using graph::GraphBuilder;

Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
  }
  return b.build();
}

// Two dense blobs joined by one light edge: the canonical bisection target.
Graph two_blobs(std::size_t blob, Weight internal = 20, Weight bridge = 1) {
  GraphBuilder b(2 * blob);
  for (NodeId i = 0; i < blob; ++i) {
    for (NodeId j = i + 1; j < blob; ++j) {
      b.add_edge(i, j, internal);
      b.add_edge(static_cast<NodeId>(blob + i),
                 static_cast<NodeId>(blob + j), internal);
    }
  }
  b.add_edge(0, static_cast<NodeId>(blob), bridge);
  return b.build();
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(Metrics, EdgeCutCountsCrossEdgesOnce) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 3, 30);
  const Graph g = b.build();
  EXPECT_EQ(edge_cut(g, {0, 0, 1, 1}), 20);
  EXPECT_EQ(edge_cut(g, {0, 1, 0, 1}), 60);
  EXPECT_EQ(edge_cut(g, {0, 0, 0, 0}), 0);
}

TEST(Metrics, PartWeights) {
  GraphBuilder b(3);
  b.set_node_weight(0, 5);
  b.set_node_weight(1, 3);
  b.set_node_weight(2, 2);
  b.add_edge(0, 1, 7);
  const Graph g = b.build();
  const auto nw = part_node_weights(g, {0, 1, 1}, 2);
  EXPECT_EQ(nw[0], 5);
  EXPECT_EQ(nw[1], 5);
  const auto ew = part_edge_weights(g, {0, 1, 1}, 2);
  EXPECT_EQ(ew[0], 7);
  EXPECT_EQ(ew[1], 7);
  EXPECT_DOUBLE_EQ(node_balance(g, {0, 1, 1}, 2), 1.0);
}

TEST(Metrics, IsComplete) {
  EXPECT_TRUE(is_complete({0, 1, 1, 0}, 2));
  EXPECT_FALSE(is_complete({0, kNoPart}, 2));
  EXPECT_FALSE(is_complete({0, 2}, 2));
}

// ---------------------------------------------------------------------------
// Greedy graph growing
// ---------------------------------------------------------------------------

TEST(Ggg, ProducesCompleteBisection) {
  const Graph g = random_graph(1, 60, 120);
  Rng rng(2);
  const auto part = greedy_graph_growing(g, rng);
  ASSERT_EQ(part.size(), 60u);
  EXPECT_TRUE(is_complete(part, 2));
  // Both sides non-empty.
  const auto nw = part_node_weights(g, part, 2);
  EXPECT_GT(nw[0], 0);
  EXPECT_GT(nw[1], 0);
}

TEST(Ggg, NodeWeightApproximatelyBalanced) {
  const Graph g = random_graph(3, 100, 200);
  Rng rng(4);
  const auto part = greedy_graph_growing(g, rng);
  EXPECT_LT(node_balance(g, part, 2), 1.25);
}

TEST(Ggg, FindsObviousBisectionOfTwoBlobs) {
  const Graph g = two_blobs(8);
  Rng rng(5);
  const auto part = greedy_graph_growing(g, rng);
  // The natural cut severs only the bridge; GGG should get close. Allow
  // KL to be the final word, but the cut must be far below worst case.
  EXPECT_LT(edge_cut(g, part), g.total_edge_weight() / 4);
}

TEST(Ggg, SingleNodeGraph) {
  GraphBuilder b(1);
  const Graph g = b.build();
  Rng rng(6);
  const auto part = greedy_graph_growing(g, rng);
  ASSERT_EQ(part.size(), 1u);
  EXPECT_GE(part[0], 0);
}

TEST(Ggg, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  Rng rng(7);
  EXPECT_TRUE(greedy_graph_growing(g, rng).empty());
}

TEST(Ggg, DisconnectedGraphStillCovered) {
  GraphBuilder b(10);
  b.add_edge(0, 1, 5);
  b.add_edge(2, 3, 5);  // plus 6 isolated nodes
  const Graph g = b.build();
  Rng rng(8);
  const auto part = greedy_graph_growing(g, rng);
  EXPECT_TRUE(is_complete(part, 2));
}

// ---------------------------------------------------------------------------
// KL bisection refinement
// ---------------------------------------------------------------------------

TEST(Kl, NeverIncreasesCut) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = random_graph(seed, 40, 80);
    Rng rng(seed * 7);
    auto part = greedy_graph_growing(g, rng);
    const Weight before = edge_cut(g, part);
    const Weight after = kl_bisection_refine(g, part);
    EXPECT_LE(after, before) << "seed " << seed;
    EXPECT_EQ(after, edge_cut(g, part));
    EXPECT_TRUE(is_complete(part, 2));
  }
}

TEST(Kl, RepairsDeliberatelyBadBisection) {
  const Graph g = two_blobs(6);
  // Worst-case start: interleave the blobs.
  std::vector<PartId> part(12);
  for (NodeId v = 0; v < 12; ++v) part[v] = static_cast<PartId>(v % 2);
  const Weight before = edge_cut(g, part);
  const Weight after = kl_bisection_refine(g, part);
  EXPECT_LT(after, before / 4);
  // The ideal cut is the single bridge edge.
  EXPECT_EQ(after, 1);
}

TEST(Kl, PreservesSideSizes) {
  const Graph g = random_graph(11, 30, 60);
  Rng rng(12);
  auto part = greedy_graph_growing(g, rng);
  const auto count_side = [&](PartId s) {
    std::size_t n = 0;
    for (const PartId p : part) {
      if (p == s) ++n;
    }
    return n;
  };
  const auto before0 = count_side(0);
  kl_bisection_refine(g, part);
  EXPECT_EQ(count_side(0), before0);  // pure pair swaps
}

TEST(Kl, NaiveAndDiagonalScanningAgreeExactly) {
  for (std::uint64_t seed = 20; seed < 25; ++seed) {
    const Graph g = random_graph(seed, 24, 40);
    Rng rng_a(99), rng_b(99);
    auto part_a = greedy_graph_growing(g, rng_a);
    auto part_b = part_a;
    KlConfig diag;
    diag.diagonal_scanning = true;
    KlConfig naive;
    naive.diagonal_scanning = false;
    const Weight cut_a = kl_bisection_refine(g, part_a, diag);
    const Weight cut_b = kl_bisection_refine(g, part_b, naive);
    // Both strategies select the argmax pair of the same total order
    // (gain, D-sum, enumeration position) every swap, so they are
    // interchangeable swap for swap — not just comparable.
    EXPECT_EQ(cut_a, cut_b) << "seed " << seed;
    EXPECT_EQ(part_a, part_b) << "seed " << seed;
  }
}

// Unit edge weights maximize gain ties: many pairs share the best gain, so
// any strategy that breaks ties differently (e.g. the old stdlib-dependent
// heap pop order, or an update rule with no tie-break at all) diverges
// within a few swaps. The shared (gain, D-sum, enumeration-position) total
// order must make the heap diagonal scan, the chunked bounded scan, and
// the naive all-pairs search pick the same pair every swap, giving
// identical final parts and cuts.
TEST(Kl, PairSearchStrategiesIdenticalOnUniformWeights) {
  const auto uniform_graph = [](std::uint64_t seed, std::size_t n,
                                std::size_t extra) {
    Rng rng(seed);
    GraphBuilder b(n);
    for (NodeId v = 1; v < n; ++v) {
      b.add_edge(v, static_cast<NodeId>(rng.next_below(v)), 1);
    }
    for (std::size_t i = 0; i < extra; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u != v) b.add_edge(u, v, 1);
    }
    return b.build();
  };
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const Graph g = uniform_graph(seed, 48, 96);
    Rng rng(seed * 3 + 1);
    const auto start = greedy_graph_growing(g, rng);

    KlConfig heap;
    heap.pair_chunk_min_nodes = SIZE_MAX;  // pure heap diagonal scan
    KlConfig chunked;
    chunked.pair_chunk_min_nodes = 0;  // chunked bounded scan at any size
    KlConfig naive;
    naive.diagonal_scanning = false;

    auto part_heap = start;
    auto part_chunked = start;
    auto part_naive = start;
    const Weight cut_heap = kl_bisection_refine(g, part_heap, heap);
    const Weight cut_chunked = kl_bisection_refine(g, part_chunked, chunked);
    const Weight cut_naive = kl_bisection_refine(g, part_naive, naive);
    EXPECT_EQ(cut_heap, cut_naive) << "seed " << seed;
    EXPECT_EQ(cut_heap, cut_chunked) << "seed " << seed;
    EXPECT_EQ(part_heap, part_naive) << "seed " << seed;
    EXPECT_EQ(part_heap, part_chunked) << "seed " << seed;
  }
}

TEST(Kl, RejectsNonBisection) {
  const Graph g = random_graph(30, 10, 10);
  std::vector<PartId> part(10, 0);
  part[0] = 2;
  EXPECT_THROW(kl_bisection_refine(g, part), Error);
}

TEST(Kl, HandlesAllOnOneSide) {
  const Graph g = random_graph(31, 10, 10);
  std::vector<PartId> part(10, 0);
  const Weight cut = kl_bisection_refine(g, part);
  EXPECT_EQ(cut, 0);  // no pairs to swap; cut stays zero
}

// ---------------------------------------------------------------------------
// Global k-way KL refinement
// ---------------------------------------------------------------------------

TEST(Kway, NeverIncreasesCut) {
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    const Graph g = random_graph(seed, 50, 100);
    Rng rng(seed);
    std::vector<PartId> part(50);
    for (auto& p : part) p = static_cast<PartId>(rng.next_below(4));
    const Weight before = edge_cut(g, part);
    const Weight after = kway_kl_refine(g, part, 4);
    EXPECT_LE(after, before);
    EXPECT_EQ(after, edge_cut(g, part));
    EXPECT_TRUE(is_complete(part, 4));
  }
}

TEST(Kway, RespectsBalanceBound) {
  const Graph g = random_graph(50, 60, 120);
  Rng rng(51);
  std::vector<PartId> part(60);
  for (NodeId v = 0; v < 60; ++v) part[v] = static_cast<PartId>(v % 4);
  KwayConfig cfg;
  cfg.balance_bound = 1.03;
  kway_kl_refine(g, part, 4, cfg);
  const auto nw = part_node_weights(g, part, 4);
  const auto mx = *std::max_element(nw.begin(), nw.end());
  const auto mn = *std::min_element(nw.begin(), nw.end());
  // Moves only happen into parts lighter than 1.03x the source, so the final
  // spread stays moderate (each move shifts one unit node weight).
  EXPECT_LT(static_cast<double>(mx),
            1.2 * static_cast<double>(std::max<Weight>(mn, 1)));
}

TEST(Kway, SinglePartIsNoop) {
  const Graph g = random_graph(52, 20, 30);
  std::vector<PartId> part(20, 0);
  EXPECT_EQ(kway_kl_refine(g, part, 1), 0);
}

TEST(Kway, FixesObviousMisassignments) {
  // Two blobs, partitioned correctly except one traitor node per side.
  const Graph g = two_blobs(6);
  std::vector<PartId> part(12);
  for (NodeId v = 0; v < 12; ++v) part[v] = v < 6 ? 0 : 1;
  std::swap(part[2], part[8]);  // two traitors keep sizes balanced
  const Weight after = kway_kl_refine(g, part, 2);
  EXPECT_EQ(after, 1);  // only the bridge remains cut
}

TEST(Kway, RequiresCompletePartition) {
  const Graph g = random_graph(53, 10, 10);
  std::vector<PartId> part(10, kNoPart);
  EXPECT_THROW(kway_kl_refine(g, part, 2), Error);
}

// ---------------------------------------------------------------------------
// Multilevel hierarchy partitioning
// ---------------------------------------------------------------------------

graph::GraphHierarchy hierarchy_of(const Graph& g) {
  graph::CoarsenConfig cfg;
  cfg.min_nodes = 8;
  cfg.max_levels = 6;
  return graph::build_multilevel(g, cfg);
}

TEST(MlPart, ProducesKCompleteParts) {
  const Graph g = random_graph(60, 120, 240);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  for (const PartId k : {1, 2, 4, 8}) {
    const auto result = partition_hierarchy(h, k, cfg);
    EXPECT_EQ(result.parts, k);
    ASSERT_EQ(result.levels.size(), h.depth());
    for (std::size_t l = 0; l < h.depth(); ++l) {
      EXPECT_TRUE(is_complete(result.levels[l], k)) << "level " << l;
      ASSERT_EQ(result.levels[l].size(), h.levels[l].node_count());
    }
    EXPECT_EQ(result.finest_cut, edge_cut(g, result.levels[0]));
    if (k > 1) {
      // All k parts are non-empty on the finest level.
      std::set<PartId> used(result.levels[0].begin(), result.levels[0].end());
      EXPECT_EQ(used.size(), static_cast<std::size_t>(k));
    }
  }
}

TEST(MlPart, RejectsNonPowerOfTwo) {
  const Graph g = random_graph(61, 20, 30);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  EXPECT_THROW(partition_hierarchy(h, 3, cfg), Error);
  EXPECT_THROW(partition_hierarchy(h, 0, cfg), Error);
}

TEST(MlPart, BalanceIsReasonable) {
  const Graph g = random_graph(62, 160, 320);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  const auto result = partition_hierarchy(h, 4, cfg);
  EXPECT_LT(node_balance(g, result.levels[0], 4), 1.6);
}

TEST(MlPart, CutBeatsRandomPartition) {
  const Graph g = two_blobs(16, 10, 2);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  const auto result = partition_hierarchy(h, 2, cfg);
  Rng rng(63);
  std::vector<PartId> random_part(g.node_count());
  for (auto& p : random_part) p = static_cast<PartId>(rng.next_below(2));
  EXPECT_LT(result.finest_cut, edge_cut(g, random_part) / 2);
}

TEST(MlPart, LiftPartitionConsistentWeights) {
  const Graph g = random_graph(64, 80, 160);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  const auto result = partition_hierarchy(h, 4, cfg);
  // Lifted partitions at coarse levels stay complete (majority vote).
  for (std::size_t l = 1; l < h.depth(); ++l) {
    EXPECT_TRUE(is_complete(result.levels[l], 4));
  }
}

class MlPartParallel : public ::testing::TestWithParam<int> {};

TEST_P(MlPartParallel, MatchesSerialResult) {
  const Graph g = random_graph(70, 100, 200);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  const auto serial = partition_hierarchy(h, 8, cfg);
  const auto parallel = partition_hierarchy_parallel(h, 8, cfg, GetParam());
  ASSERT_EQ(parallel.partitioning.levels.size(), serial.levels.size());
  for (std::size_t l = 0; l < serial.levels.size(); ++l) {
    EXPECT_EQ(parallel.partitioning.levels[l], serial.levels[l])
        << "level " << l << " ranks " << GetParam();
  }
  EXPECT_EQ(parallel.partitioning.finest_cut, serial.finest_cut);
  EXPECT_GT(parallel.stats.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MlPartParallel,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(MlPartParallel2, MoreRanksReduceMakespan) {
  const Graph g = random_graph(71, 300, 900);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  const double t1 =
      partition_hierarchy_parallel(h, 16, cfg, 1).stats.makespan;
  const double t8 =
      partition_hierarchy_parallel(h, 16, cfg, 8).stats.makespan;
  EXPECT_GT(t1 / t8, 1.5);  // meaningful parallel speedup in virtual time
}

TEST(MlPart, DeterministicForSeed) {
  const Graph g = random_graph(72, 60, 120);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg;
  cfg.seed = 1234;
  const auto a = partition_hierarchy(h, 4, cfg);
  const auto b = partition_hierarchy(h, 4, cfg);
  EXPECT_EQ(a.levels[0], b.levels[0]);
  cfg.seed = 9999;
  const auto c = partition_hierarchy(h, 4, cfg);
  // Different seed usually yields a different (but still valid) partition.
  EXPECT_TRUE(is_complete(c.levels[0], 4));
}

TEST(MlPart, MultiTrialBisectionValidAndSingleTrialUnchanged) {
  const Graph g = random_graph(75, 160, 320);
  const auto h = hierarchy_of(g);

  // trials = 1 (the default) must reproduce the pre-trials partitioner.
  PartitionerConfig base;
  const auto ref = partition_hierarchy(h, 8, base);
  PartitionerConfig one = base;
  one.trials = 1;
  const auto same = partition_hierarchy(h, 8, one);
  EXPECT_EQ(same.levels, ref.levels);
  EXPECT_EQ(same.finest_cut, ref.finest_cut);

  PartitionerConfig four = base;
  four.trials = 4;
  const auto a = partition_hierarchy(h, 8, four);
  const auto b = partition_hierarchy(h, 8, four);
  EXPECT_EQ(a.levels, b.levels);  // deterministic for the seed
  EXPECT_TRUE(is_complete(a.levels[0], 8));
  EXPECT_EQ(a.finest_cut, edge_cut(g, a.levels[0]));

  // Accounting shape: one per-trial work slot per trial for every region
  // large enough to bisect (tiny regions skip the initial bisection).
  ASSERT_EQ(a.step_trial_work.size(), a.step_work.size());
  ASSERT_FALSE(a.step_trial_work.empty());
  EXPECT_EQ(a.step_trial_work[0][0].size(), 4u);
  for (std::size_t s = 0; s < a.step_trial_work.size(); ++s) {
    ASSERT_EQ(a.step_trial_work[s].size(), a.step_work[s].size());
    for (const auto& slots : a.step_trial_work[s]) {
      EXPECT_TRUE(slots.empty() || slots.size() == 4u);
    }
  }
}

TEST(MlPart, SingleNodeGraphAllParts) {
  GraphBuilder b(1);
  const Graph g = b.build();
  graph::GraphHierarchy h;
  h.levels.push_back(g);
  PartitionerConfig cfg;
  const auto result = partition_hierarchy(h, 2, cfg);
  EXPECT_TRUE(is_complete(result.levels[0], 2));
  EXPECT_EQ(result.finest_cut, 0);
}

}  // namespace
}  // namespace focus::partition
