// Tests for the string-graph baseline assembler.
#include <gtest/gtest.h>

#include "align/overlapper.hpp"
#include "baseline/string_graph_assembler.hpp"
#include "common/dna.hpp"
#include "common/rng.hpp"
#include "io/preprocess.hpp"
#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/sequencer.hpp"

namespace focus::baseline {
namespace {

struct SingleGenomeFixture {
  std::string genome;
  io::ReadSet reads;  // preprocessed (with rc)
  std::vector<align::Overlap> overlaps;

  explicit SingleGenomeFixture(std::uint64_t seed, std::size_t genome_len = 3000,
                               double coverage = 12.0) {
    Rng rng(seed);
    sim::PhylogenyConfig pc;
    pc.genome_length = genome_len;
    pc.repeat_copies = 0;
    pc.conserved_segments = 0;
    const auto community = sim::build_community({{"G", "P", 1.0}}, pc, rng);
    genome = community.genera[0].genome;
    sim::SequencerConfig sc;
    sc.coverage = coverage;
    sc.error_rate_5p = 0.0;
    sc.error_rate_3p = 0.0;
    sc.bad_tail_fraction = 0.0;
    const auto sim_reads = sim::shotgun_sequence(community, sc, rng);
    io::PreprocessConfig prep;
    reads = io::preprocess(sim_reads.reads, prep);
    align::OverlapperConfig ocfg;
    ocfg.k = 14;
    ocfg.min_overlap = 40;
    ocfg.subsets = 2;
    overlaps = align::find_overlaps_serial(reads, ocfg);
  }
};

TEST(Baseline, AssemblesSingleGenome) {
  SingleGenomeFixture fx(1);
  const auto result = assemble_string_graph(fx.reads, fx.overlaps);
  ASSERT_FALSE(result.contigs.empty());
  EXPECT_GT(result.transitive_removed, 0u);
  EXPECT_GT(result.contained_reads, 0u);
  // Every contig is a true substring of the genome (error-free reads).
  for (const auto& contig : result.contigs) {
    const std::string rc = dna::reverse_complement(contig);
    EXPECT_TRUE(fx.genome.find(contig) != std::string::npos ||
                fx.genome.find(rc) != std::string::npos)
        << "chimeric contig of length " << contig.size();
  }
  // Long contigs: the baseline should reconstruct substantial stretches.
  EXPECT_GT(result.contigs[0].size(), 500u);
}

TEST(Baseline, EmptyOverlapsGiveSingletonReads) {
  Rng rng(2);
  io::ReadSet reads;
  for (int i = 0; i < 5; ++i) {
    reads.add(io::Read{"r" + std::to_string(i), sim::random_genome(200, rng),
                       "", kInvalidRead, false});
  }
  StringGraphConfig cfg;
  cfg.min_contig_length = 100;
  cfg.dedupe = false;
  const auto result = assemble_string_graph(reads, {}, cfg);
  EXPECT_EQ(result.contigs.size(), 5u);
  EXPECT_EQ(result.transitive_removed, 0u);
}

TEST(Baseline, ReportsGraphSizes) {
  SingleGenomeFixture fx(3);
  const auto result = assemble_string_graph(fx.reads, fx.overlaps);
  EXPECT_GT(result.graph_nodes, 0u);
  EXPECT_GT(result.graph_edges, 0u);
  EXPECT_LE(result.graph_nodes, fx.reads.size());
  EXPECT_GT(result.work, 0.0);
}

TEST(Baseline, DeterministicAcrossRuns) {
  SingleGenomeFixture fx(4);
  const auto a = assemble_string_graph(fx.reads, fx.overlaps);
  const auto b = assemble_string_graph(fx.reads, fx.overlaps);
  ASSERT_EQ(a.contigs.size(), b.contigs.size());
  for (std::size_t i = 0; i < a.contigs.size(); ++i) {
    EXPECT_EQ(a.contigs[i], b.contigs[i]);
  }
}

}  // namespace
}  // namespace focus::baseline
