// Tests for the distributed graph algorithms (paper §V): assembly graph
// mechanics, transitive reduction, containment removal, tip clipping, bubble
// popping, traversal, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include <set>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"

namespace focus::dist {
namespace {

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

std::vector<NodeId> all_nodes(const AsmGraph& g) {
  std::vector<NodeId> v(g.node_count());
  std::iota(v.begin(), v.end(), 0u);
  return v;
}

// ---------------------------------------------------------------------------
// AsmGraph mechanics
// ---------------------------------------------------------------------------

TEST(AsmGraph, AddAndQuery) {
  AsmGraph g;
  const NodeId a = g.add_node("ACGTACGT", 3);
  const NodeId b = g.add_node("GTACGTAC", 2);
  const EdgeId e = g.add_edge(a, b, 6);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.live_out_degree(a), 1u);
  EXPECT_EQ(g.live_in_degree(b), 1u);
  EXPECT_TRUE(g.find_edge(a, b).has_value());
  EXPECT_FALSE(g.find_edge(b, a).has_value());
  EXPECT_EQ(g.edge(e).overlap, 6u);
}

TEST(AsmGraph, RemovalHidesEdges) {
  AsmGraph g;
  const NodeId a = g.add_node("AAAA", 1);
  const NodeId b = g.add_node("CCCC", 1);
  const NodeId c = g.add_node("GGGG", 1);
  g.add_edge(a, b, 2);
  const EdgeId bc = g.add_edge(b, c, 2);
  g.remove_edge(bc);
  EXPECT_EQ(g.live_out_degree(b), 0u);
  EXPECT_EQ(g.live_edge_count(), 1u);
  g.remove_node(b);
  EXPECT_EQ(g.live_node_count(), 2u);
  EXPECT_EQ(g.live_edge_count(), 0u);  // edges to removed nodes are dead
  EXPECT_EQ(g.live_in_degree(b), 0u);
}

TEST(AsmGraph, RejectsInvalidInput) {
  AsmGraph g;
  const NodeId a = g.add_node("ACGT", 1);
  EXPECT_THROW(g.add_node("", 1), Error);
  EXPECT_THROW(g.add_node("ACGT", 0), Error);
  EXPECT_THROW(g.add_edge(a, a, 1), Error);
  EXPECT_THROW(g.add_edge(a, 5, 1), Error);
}

TEST(AsmGraph, MergePathContigs) {
  AsmGraph g;
  const NodeId a = g.add_node("ACGTAC", 1);
  const NodeId b = g.add_node("TACGGG", 1);  // overlaps "TAC"
  const NodeId c = g.add_node("GGGTTT", 1);  // overlaps "GGG"
  g.add_edge(a, b, 3);
  g.add_edge(b, c, 3);
  EXPECT_EQ(g.merge_path_contigs({a, b, c}), "ACGTACGGGTTT");
  EXPECT_EQ(g.merge_path_contigs({a}), "ACGTAC");
  EXPECT_THROW(g.merge_path_contigs({}), Error);
  EXPECT_THROW(g.merge_path_contigs({c, a}), Error);  // no edge c->a
}

// ---------------------------------------------------------------------------
// Transitive reduction
// ---------------------------------------------------------------------------

TEST(Transitive, FindsRedundantEdge) {
  AsmGraph g;
  Rng rng(1);
  const NodeId a = g.add_node(random_seq(rng, 50), 1);
  const NodeId b = g.add_node(random_seq(rng, 50), 1);
  const NodeId c = g.add_node(random_seq(rng, 50), 1);
  g.add_edge(a, b, 30);
  g.add_edge(b, c, 30);
  const EdgeId ac = g.add_edge(a, c, 10);  // transitive
  const auto found = find_transitive_edges(g, all_nodes(g));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0], ac);
  EXPECT_EQ(apply_edge_removals(g, found), 1u);
  EXPECT_FALSE(g.find_edge(a, c).has_value());
}

TEST(Transitive, KeepsEssentialEdges) {
  AsmGraph g;
  Rng rng(2);
  const NodeId a = g.add_node(random_seq(rng, 50), 1);
  const NodeId b = g.add_node(random_seq(rng, 50), 1);
  const NodeId c = g.add_node(random_seq(rng, 50), 1);
  g.add_edge(a, b, 30);
  g.add_edge(b, c, 30);
  EXPECT_TRUE(find_transitive_edges(g, all_nodes(g)).empty());
}

TEST(Transitive, LongChainWithAllShortcuts) {
  AsmGraph g;
  Rng rng(3);
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back(g.add_node(random_seq(rng, 40), 1));
  for (int i = 0; i + 1 < 6; ++i) g.add_edge(nodes[i], nodes[i + 1], 25);
  std::vector<EdgeId> shortcuts;
  for (int i = 0; i + 2 < 6; ++i) {
    shortcuts.push_back(g.add_edge(nodes[i], nodes[i + 2], 10));
  }
  auto found = find_transitive_edges(g, all_nodes(g));
  apply_edge_removals(g, std::move(found));
  // Only the chain remains.
  EXPECT_EQ(g.live_edge_count(), 5u);
  for (int i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(g.find_edge(nodes[i], nodes[i + 1]).has_value());
  }
}

// ---------------------------------------------------------------------------
// Containment removal & edge verification
// ---------------------------------------------------------------------------

TEST(Containment, VerifiesTrueOverlapEdges) {
  Rng rng(4);
  const std::string genome = random_seq(rng, 400);
  AsmGraph g;
  const NodeId a = g.add_node(genome.substr(0, 200), 4);
  const NodeId b = g.add_node(genome.substr(120, 200), 4);  // 80 bp overlap
  const EdgeId e = g.add_edge(a, b, 80);
  SimplifyConfig cfg;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  ASSERT_EQ(findings.verified.size(), 1u);
  EXPECT_EQ(findings.verified[0].edge, e);
  EXPECT_EQ(findings.verified[0].overlap, 80u);
  EXPECT_GT(findings.verified[0].identity, 0.99f);
  EXPECT_TRUE(findings.false_edges.empty());
  EXPECT_TRUE(findings.contained_nodes.empty());
}

TEST(Containment, RemovesFalsePositiveEdges) {
  Rng rng(5);
  AsmGraph g;
  const NodeId a = g.add_node(random_seq(rng, 150), 2);
  const NodeId b = g.add_node(random_seq(rng, 150), 2);  // unrelated
  const EdgeId e = g.add_edge(a, b, 60);
  SimplifyConfig cfg;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  ASSERT_EQ(findings.false_edges.size(), 1u);
  EXPECT_EQ(findings.false_edges[0], e);
  EXPECT_TRUE(findings.verified.empty());
}

TEST(Containment, ShortOverlapIsFalsePositive) {
  Rng rng(6);
  const std::string genome = random_seq(rng, 300);
  AsmGraph g;
  const NodeId a = g.add_node(genome.substr(0, 150), 2);
  const NodeId b = g.add_node(genome.substr(120, 150), 2);  // 30 bp < 50
  g.add_edge(a, b, 30);
  SimplifyConfig cfg;
  cfg.min_edge_overlap = 50;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  EXPECT_EQ(findings.false_edges.size(), 1u);
}

TEST(Containment, DetectsContainedContig) {
  Rng rng(7);
  const std::string genome = random_seq(rng, 400);
  AsmGraph g;
  const NodeId small = g.add_node(genome.substr(100, 80), 1);
  const NodeId big = g.add_node(genome.substr(0, 300), 6);
  // small sits fully inside big, 100 bases in.
  g.add_edge(big, small, 80, /*offset_estimate=*/100);
  SimplifyConfig cfg;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  ASSERT_EQ(findings.contained_nodes.size(), 1u);
  EXPECT_EQ(findings.contained_nodes[0], small);
}

TEST(Containment, DetectsContainedSourceContig) {
  Rng rng(77);
  const std::string genome = random_seq(rng, 400);
  AsmGraph g;
  // `from` is a prefix of `to`: the whole source is covered.
  const NodeId small = g.add_node(genome.substr(0, 80), 1);
  const NodeId big = g.add_node(genome.substr(0, 300), 6);
  g.add_edge(small, big, 80, /*offset_estimate=*/0);
  SimplifyConfig cfg;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  ASSERT_EQ(findings.contained_nodes.size(), 1u);
  EXPECT_EQ(findings.contained_nodes[0], small);
}

TEST(Containment, ToleratesSmallOffsetError) {
  Rng rng(78);
  const std::string genome = random_seq(rng, 500);
  AsmGraph g;
  const NodeId a = g.add_node(genome.substr(0, 200), 4);
  const NodeId b = g.add_node(genome.substr(120, 200), 4);
  // True offset is 120; the estimate is off by 6 — within the band.
  g.add_edge(a, b, 80, /*offset_estimate=*/126);
  SimplifyConfig cfg;
  cfg.band = 16;
  const auto findings = find_containments(g, all_nodes(g), cfg);
  ASSERT_EQ(findings.verified.size(), 1u);
  // The 6-base overestimate shrinks the window (74) and the end-trimmed
  // overlap (~68), but the edge must verify at high identity.
  EXPECT_GE(findings.verified[0].overlap, 60u);
  EXPECT_LE(findings.verified[0].overlap, 85u);
  // Some misregistration is absorbed as mismatch columns (a mismatch costs
  // less than a gap), so identity dips but stays above the 0.90 gate.
  EXPECT_GT(findings.verified[0].identity, 0.90f);
}

// ---------------------------------------------------------------------------
// Tips and bubbles
// ---------------------------------------------------------------------------

// Main chain m0 -> m1 -> m2 -> m3 with a short spur attached to m1.
struct TipFixture {
  AsmGraph g;
  std::vector<NodeId> chain;
  NodeId spur;

  TipFixture() {
    Rng rng(8);
    for (int i = 0; i < 4; ++i) {
      chain.push_back(g.add_node(random_seq(rng, 120), 5));
    }
    for (int i = 0; i + 1 < 4; ++i) g.add_edge(chain[i], chain[i + 1], 60);
    spur = g.add_node(random_seq(rng, 90), 1);
    g.add_edge(spur, chain[1], 40);  // dead-end path into a junction
  }
};

TEST(Tips, ClipsShortDeadEnd) {
  TipFixture fx;
  SimplifyConfig cfg;
  cfg.tip_max_nodes = 2;
  cfg.tip_max_bp = 200;
  const auto tips = find_tips(fx.g, all_nodes(fx.g), cfg);
  ASSERT_EQ(tips.size(), 1u);
  EXPECT_EQ(tips[0], fx.spur);
  apply_node_removals(fx.g, tips);
  EXPECT_FALSE(fx.g.node_live(fx.spur));
  // Chain unharmed.
  for (const NodeId v : fx.chain) EXPECT_TRUE(fx.g.node_live(v));
}

TEST(Tips, LongDeadEndKept) {
  TipFixture fx;
  SimplifyConfig cfg;
  cfg.tip_max_nodes = 2;
  cfg.tip_max_bp = 50;  // spur (90 bp) exceeds the bp bound
  EXPECT_TRUE(find_tips(fx.g, all_nodes(fx.g), cfg).empty());
}

TEST(Tips, IsolatedPathIsNotATip) {
  // The chain's own endpoints have degree-0 ends but no junction with
  // alternative support; they must not be clipped.
  AsmGraph g;
  Rng rng(9);
  const NodeId a = g.add_node(random_seq(rng, 100), 2);
  const NodeId b = g.add_node(random_seq(rng, 100), 2);
  g.add_edge(a, b, 50);
  SimplifyConfig cfg;
  EXPECT_TRUE(find_tips(g, all_nodes(g), cfg).empty());
}

TEST(Tips, RightSideTipClipped) {
  AsmGraph g;
  Rng rng(10);
  std::vector<NodeId> chain;
  for (int i = 0; i < 4; ++i) chain.push_back(g.add_node(random_seq(rng, 120), 5));
  for (int i = 0; i + 1 < 4; ++i) g.add_edge(chain[i], chain[i + 1], 60);
  const NodeId spur = g.add_node(random_seq(rng, 80), 1);
  g.add_edge(chain[2], spur, 40);  // chain[2] now has out-degree 2
  SimplifyConfig cfg;
  cfg.tip_max_nodes = 2;
  cfg.tip_max_bp = 200;
  const auto tips = find_tips(g, all_nodes(g), cfg);
  ASSERT_EQ(tips.size(), 1u);
  EXPECT_EQ(tips[0], spur);
}

TEST(Bubbles, PopsWeakerBranch) {
  // a -> {x | y} -> d, where x has higher coverage than y.
  AsmGraph g;
  Rng rng(11);
  const NodeId a = g.add_node(random_seq(rng, 120), 5);
  const NodeId x = g.add_node(random_seq(rng, 120), 8);
  const NodeId y = g.add_node(random_seq(rng, 120), 2);
  const NodeId d = g.add_node(random_seq(rng, 120), 5);
  g.add_edge(a, x, 60);
  g.add_edge(a, y, 60);
  g.add_edge(x, d, 60);
  g.add_edge(y, d, 60);
  SimplifyConfig cfg;
  const auto removals = find_bubbles(g, all_nodes(g), cfg);
  ASSERT_EQ(removals.size(), 1u);
  EXPECT_EQ(removals[0], y);
}

TEST(Bubbles, LongBranchesNotPopped) {
  AsmGraph g;
  Rng rng(12);
  const NodeId a = g.add_node(random_seq(rng, 120), 5);
  const NodeId d = g.add_node(random_seq(rng, 120), 5);
  // Branch 1: 2 interior nodes; branch 2: 7 interior nodes (> limit).
  NodeId prev = a;
  for (int i = 0; i < 2; ++i) {
    const NodeId v = g.add_node(random_seq(rng, 100), 3);
    g.add_edge(prev, v, 50);
    prev = v;
  }
  g.add_edge(prev, d, 50);
  prev = a;
  for (int i = 0; i < 7; ++i) {
    const NodeId v = g.add_node(random_seq(rng, 100), 3);
    g.add_edge(prev, v, 50);
    prev = v;
  }
  g.add_edge(prev, d, 50);
  SimplifyConfig cfg;
  cfg.bubble_max_nodes = 5;
  // The long branch is not followed to the merge point, so no bubble is
  // detected (conservative behaviour).
  EXPECT_TRUE(find_bubbles(g, all_nodes(g), cfg).empty());
}

TEST(Bubbles, NoBubbleOnDivergingPaths) {
  AsmGraph g;
  Rng rng(13);
  const NodeId a = g.add_node(random_seq(rng, 100), 3);
  const NodeId x = g.add_node(random_seq(rng, 100), 3);
  const NodeId y = g.add_node(random_seq(rng, 100), 3);
  g.add_edge(a, x, 50);
  g.add_edge(a, y, 50);  // branches never re-join
  SimplifyConfig cfg;
  EXPECT_TRUE(find_bubbles(g, all_nodes(g), cfg).empty());
}

// ---------------------------------------------------------------------------
// Serial simplification pipeline
// ---------------------------------------------------------------------------

TEST(Simplify, SerialPipelineCleansCraftedGraph) {
  Rng rng(14);
  const std::string genome = random_seq(rng, 800);
  AsmGraph g;
  // True chain of overlapping contigs.
  const NodeId a = g.add_node(genome.substr(0, 300), 10);
  const NodeId b = g.add_node(genome.substr(220, 300), 10);
  const NodeId c = g.add_node(genome.substr(440, 300), 10);
  g.add_edge(a, b, 80);
  g.add_edge(b, c, 80);
  g.add_edge(a, c, 60);  // transitive AND false (sequences don't overlap)
  // A contained contig, sitting 20 bases into b.
  const NodeId small = g.add_node(genome.substr(240, 100), 1);
  g.add_edge(b, small, 100, /*offset_estimate=*/20);

  SimplifyConfig cfg;
  const auto stats = simplify_serial(g, cfg);
  EXPECT_EQ(stats.transitive_edges, 1u);
  EXPECT_EQ(stats.contained_nodes, 1u);
  EXPECT_GE(stats.verified_edges, 2u);
  EXPECT_FALSE(g.node_live(small));
  EXPECT_TRUE(g.find_edge(a, b).has_value());
  EXPECT_TRUE(g.find_edge(b, c).has_value());
  EXPECT_FALSE(g.find_edge(a, c).has_value());
}

// ---------------------------------------------------------------------------
// Traversal
// ---------------------------------------------------------------------------

TEST(Traverse, ChainBecomesSinglePath) {
  AsmGraph g;
  Rng rng(15);
  std::vector<NodeId> chain;
  for (int i = 0; i < 5; ++i) chain.push_back(g.add_node(random_seq(rng, 80), 2));
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(chain[i], chain[i + 1], 40);
  const auto paths = traverse_serial(g);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], chain);
}

TEST(Traverse, BranchBreaksPath) {
  AsmGraph g;
  Rng rng(16);
  const NodeId a = g.add_node(random_seq(rng, 80), 2);
  const NodeId b = g.add_node(random_seq(rng, 80), 2);
  const NodeId c = g.add_node(random_seq(rng, 80), 2);
  const NodeId d = g.add_node(random_seq(rng, 80), 2);
  g.add_edge(a, b, 40);
  g.add_edge(a, c, 40);  // branch: no unambiguous extension from a
  g.add_edge(b, d, 40);
  g.add_edge(c, d, 40);  // d has two in-edges
  const auto paths = traverse_serial(g);
  // Every node is its own path: nothing is unambiguous.
  EXPECT_EQ(paths.size(), 4u);
  std::set<NodeId> covered;
  for (const auto& p : paths) {
    for (const NodeId v : p) covered.insert(v);
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(Traverse, RemovedNodesSkipped) {
  AsmGraph g;
  Rng rng(17);
  const NodeId a = g.add_node(random_seq(rng, 80), 2);
  const NodeId b = g.add_node(random_seq(rng, 80), 2);
  const NodeId c = g.add_node(random_seq(rng, 80), 2);
  g.add_edge(a, b, 40);
  g.add_edge(b, c, 40);
  g.remove_node(b);
  const auto paths = traverse_serial(g);
  EXPECT_EQ(paths.size(), 2u);  // a and c as singletons
}

TEST(Traverse, CycleHandledWithoutHanging) {
  AsmGraph g;
  Rng rng(18);
  std::vector<NodeId> ring;
  for (int i = 0; i < 4; ++i) ring.push_back(g.add_node(random_seq(rng, 80), 2));
  for (int i = 0; i < 4; ++i) g.add_edge(ring[i], ring[(i + 1) % 4], 40);
  const auto paths = traverse_serial(g);
  std::size_t total = 0;
  for (const auto& p : paths) total += p.size();
  EXPECT_EQ(total, 4u);  // every node exactly once
}

// ---------------------------------------------------------------------------
// Parallel == serial equivalence
// ---------------------------------------------------------------------------

AsmGraph make_complex_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = random_seq(rng, 3000);
  AsmGraph g;
  // Chain of 20 contigs with 80 bp true overlaps.
  std::vector<NodeId> chain;
  for (int i = 0; i < 20; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 140, 220), 6));
  }
  for (int i = 0; i + 1 < 20; ++i) g.add_edge(chain[i], chain[i + 1], 80);
  // Transitive shortcuts.
  for (int i = 0; i < 18; i += 3) g.add_edge(chain[i], chain[i + 2], 20);
  // False edges between unrelated nodes.
  const NodeId junk1 = g.add_node(random_seq(rng, 150), 1);
  const NodeId junk2 = g.add_node(random_seq(rng, 150), 1);
  g.add_edge(junk1, chain[5], 60);
  g.add_edge(chain[10], junk2, 60);
  // A contained contig inside chain[2] (= genome[280:500]), 20 bases in.
  const NodeId small = g.add_node(genome.substr(300, 90), 1);
  g.add_edge(chain[2], small, 90, /*offset_estimate=*/20);
  return g;
}

std::vector<PartId> striped_partition(const AsmGraph& g, PartId parts) {
  std::vector<PartId> part(g.node_count());
  // Contiguous stripes mimic a real linear partitioning.
  const std::size_t per =
      (g.node_count() + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    part[v] = static_cast<PartId>(v / per);
  }
  return part;
}

class DistParallel : public ::testing::TestWithParam<int> {};

TEST_P(DistParallel, SimplifyMatchesSerial) {
  AsmGraph serial_g = make_complex_graph(100);
  AsmGraph parallel_g = make_complex_graph(100);
  SimplifyConfig cfg;
  const auto serial_stats = simplify_serial(serial_g, cfg);

  const PartId parts = 4;
  const auto part = striped_partition(parallel_g, parts);
  const auto result =
      simplify_parallel(parallel_g, part, parts, cfg, GetParam());

  EXPECT_EQ(result.stats.transitive_edges, serial_stats.transitive_edges);
  EXPECT_EQ(result.stats.false_edges, serial_stats.false_edges);
  EXPECT_EQ(result.stats.contained_nodes, serial_stats.contained_nodes);
  EXPECT_EQ(result.stats.tip_nodes, serial_stats.tip_nodes);
  EXPECT_EQ(result.stats.bubble_nodes, serial_stats.bubble_nodes);
  // Graphs end in the same live state.
  ASSERT_EQ(parallel_g.node_count(), serial_g.node_count());
  for (NodeId v = 0; v < serial_g.node_count(); ++v) {
    EXPECT_EQ(parallel_g.node_live(v), serial_g.node_live(v)) << "node " << v;
  }
  ASSERT_EQ(parallel_g.edge_count(), serial_g.edge_count());
  for (EdgeId e = 0; e < serial_g.edge_count(); ++e) {
    EXPECT_EQ(parallel_g.edge(e).removed, serial_g.edge(e).removed)
        << "edge " << e;
  }
}

TEST_P(DistParallel, TraverseCoversAllLiveNodesOnce) {
  AsmGraph g = make_complex_graph(200);
  SimplifyConfig cfg;
  simplify_serial(g, cfg);
  const PartId parts = 4;
  const auto part = striped_partition(g, parts);
  const auto result = traverse_parallel(g, part, parts, GetParam());
  std::set<NodeId> covered;
  for (const auto& path : result.paths) {
    for (const NodeId v : path) {
      EXPECT_TRUE(covered.insert(v).second) << "node visited twice";
      EXPECT_TRUE(g.node_live(v));
    }
  }
  EXPECT_EQ(covered.size(), g.live_node_count());
  // Consecutive path nodes are connected by live edges.
  for (const auto& path : result.paths) {
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(g.find_edge(path[i - 1], path[i]).has_value());
    }
  }
}

TEST_P(DistParallel, TraverseJoinsAcrossPartitions) {
  // A clean chain striped across partitions: worker sub-paths must be joined
  // back into ONE maximal path by the master.
  AsmGraph g;
  Rng rng(300);
  std::vector<NodeId> chain;
  for (int i = 0; i < 12; ++i) chain.push_back(g.add_node(random_seq(rng, 80), 2));
  for (int i = 0; i + 1 < 12; ++i) g.add_edge(chain[i], chain[i + 1], 40);
  const PartId parts = 4;
  const auto part = striped_partition(g, parts);
  const auto result = traverse_parallel(g, part, parts, GetParam());
  ASSERT_EQ(result.paths.size(), 1u);
  EXPECT_EQ(result.paths[0], chain);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistParallel,
                         ::testing::Values(1, 2, 4));

TEST(DistParallelTiming, MorePartitionsAndRanksReduceTrimMakespan) {
  // Fig. 6's shape in miniature: distributing trimming over more partitions
  // and ranks reduces virtual-time makespan. The master protocol is pinned —
  // this is the paper's §V master/worker cost shape; the symmetric default
  // pays WAL replication and is measured separately below.
  const DistConfig master{DistProtocol::kMaster};
  AsmGraph g1 = make_complex_graph(400);
  AsmGraph g8 = make_complex_graph(400);
  SimplifyConfig cfg;
  const auto t1 = simplify_parallel(g1, striped_partition(g1, 1), 1, cfg, 1,
                                    {}, 1, {}, {}, master)
                      .run.makespan;
  const auto t8 = simplify_parallel(g8, striped_partition(g8, 8), 8, cfg, 8,
                                    {}, 1, {}, {}, master)
                      .run.makespan;
  EXPECT_GT(t1 / t8, 2.0);
}

TEST(DistParallelTiming, SymmetricProtocolStillScalesDespiteWalCharge) {
  // The symmetric (default) protocol replicates every phase commit to the
  // WAL, so its 8-rank speedup is below master's — but distribution must
  // still win by a clear margin.
  const DistConfig sym{DistProtocol::kSymmetric};
  AsmGraph g1 = make_complex_graph(400);
  AsmGraph g8 = make_complex_graph(400);
  SimplifyConfig cfg;
  const auto t1 = simplify_parallel(g1, striped_partition(g1, 1), 1, cfg, 1,
                                    {}, 1, {}, {}, sym)
                      .run.makespan;
  const auto t8 = simplify_parallel(g8, striped_partition(g8, 8), 8, cfg, 8,
                                    {}, 1, {}, {}, sym)
                      .run.makespan;
  EXPECT_GT(t1 / t8, 1.5);
}

}  // namespace
}  // namespace focus::dist
