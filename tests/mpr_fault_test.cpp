// Fault model tests (DESIGN.md §7): deterministic fault schedules, failure
// detection in the runtime (timeouts, CRC, composite errors), and exact
// recovery by the fault-tolerant distributed drivers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/gfa.hpp"
#include "dist/parallel.hpp"
#include "dist/variants.hpp"
#include "graph/coarsen.hpp"
#include "io/preprocess.hpp"
#include "mpr/fault.hpp"
#include "mpr/runtime.hpp"
#include "partition/mlpart.hpp"
#include "sim/datasets.hpp"

namespace focus {
namespace {

using dist::AsmGraph;
using dist::SimplifyConfig;
using dist::SimplifyStats;

// --- Fault plan determinism -------------------------------------------------

TEST(FaultPlan, EmptyByDefaultAndPure) {
  mpr::FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.seed = 42;
  EXPECT_TRUE(plan.empty()) << "a seed alone injects nothing";
  plan.p_drop = 0.5;
  EXPECT_FALSE(plan.empty());
  for (Rank r = 0; r < 4; ++r) {
    for (std::uint64_t op = 1; op <= 64; ++op) {
      const auto a = plan.decide(r, op);
      const auto b = plan.decide(r, op);
      EXPECT_EQ(a.drop, b.drop) << "decide must be pure";
    }
  }
}

TEST(FaultPlan, CrashPointFiresExactlyAtItsOp) {
  mpr::FaultPlan plan;
  plan.crashes.push_back({1, 3});
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.decide(1, 3).crash);
  EXPECT_FALSE(plan.decide(1, 2).crash);
  EXPECT_FALSE(plan.decide(1, 4).crash);
  EXPECT_FALSE(plan.decide(2, 3).crash);
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules) {
  mpr::FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.p_drop = b.p_drop = 0.5;
  int differs = 0;
  for (std::uint64_t op = 1; op <= 256; ++op) {
    if (a.decide(0, op).drop != b.decide(0, op).drop) ++differs;
  }
  EXPECT_GT(differs, 32);
}

// --- CRC32 and hostile message lengths --------------------------------------

TEST(Crc32, MatchesIeeeCheckValue) {
  const std::string check = "123456789";
  EXPECT_EQ(mpr::crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                       check.size()),
            0xcbf43926u);
  EXPECT_EQ(mpr::crc32(nullptr, 0), 0u);
}

TEST(MessageHardening, HostileVectorLengthRejectedBeforeAllocation) {
  mpr::Message msg;
  // A corrupted 8-byte length prefix claiming ~1 exabyte of payload.
  msg.pack(static_cast<std::uint64_t>(1) << 60);
  msg.pack(std::uint32_t{7});
  EXPECT_THROW(msg.unpack_vector<std::uint64_t>(), Error);
}

TEST(MessageHardening, HostileStringLengthRejectedBeforeAllocation) {
  mpr::Message msg;
  msg.pack(static_cast<std::uint64_t>(1) << 60);
  EXPECT_THROW(msg.unpack_string(), Error);
}

TEST(MessageHardening, VectorLengthMustMatchRemainderExactly) {
  mpr::Message msg;
  msg.pack(std::uint64_t{3});               // claims 3 elements…
  msg.pack_vector(std::vector<int>{1, 2});  // …but fewer bytes follow
  EXPECT_THROW(msg.unpack_vector<std::uint64_t>(), Error);
}

// --- Runtime failure detection ----------------------------------------------

TEST(RuntimeFault, RecvThrowsCorruptMessageOnChecksumMismatch) {
  mpr::FaultPlan plan;
  plan.seed = 7;
  plan.p_corrupt = 1.0;
  EXPECT_THROW(
      mpr::Runtime::execute(
          2,
          [](mpr::Comm& comm) {
            if (comm.rank() == 1) {
              mpr::Message msg;
              msg.pack_vector(std::vector<int>{1, 2, 3});
              comm.send(0, 5, std::move(msg));
            } else {
              comm.recv(1, 5);
            }
          },
          {}, plan),
      mpr::CorruptMessage);
}

TEST(RuntimeFault, TryRecvReportsCorruptInsteadOfThrowing) {
  mpr::FaultPlan plan;
  plan.seed = 7;
  plan.p_corrupt = 1.0;
  mpr::RecvStatus status = mpr::RecvStatus::kOk;
  const auto stats = mpr::Runtime::execute(
      2,
      [&](mpr::Comm& comm) {
        if (comm.rank() == 1) {
          mpr::Message msg;
          msg.pack_vector(std::vector<int>{1, 2, 3});
          comm.send(0, 5, std::move(msg));
        } else {
          status = comm.try_recv(1, 5, 1.0).status;
        }
      },
      {}, plan);
  EXPECT_EQ(status, mpr::RecvStatus::kCorrupt);
  EXPECT_EQ(stats.ranks_failed, 0);
}

TEST(RuntimeFault, TimedRecvTimesOutOnTerminatedSender) {
  double vtime_after = -1.0;
  mpr::RecvStatus status = mpr::RecvStatus::kOk;
  const auto stats = mpr::Runtime::execute(2, [&](mpr::Comm& comm) {
    if (comm.rank() == 0) {
      const auto res = comm.try_recv(1, 7, 0.25);
      status = res.status;
      vtime_after = comm.vtime();
    }
    // Rank 1 terminates without ever sending.
  });
  EXPECT_EQ(status, mpr::RecvStatus::kTimeout);
  EXPECT_DOUBLE_EQ(vtime_after, 0.25) << "deadline charged to the clock";
  EXPECT_DOUBLE_EQ(stats.recovery_vtime, 0.25);
}

TEST(RuntimeFault, TimedRecvTimesOutOnQuiescence) {
  // Rank 1 is alive but blocked on a message rank 0 has not sent: the
  // configuration is terminal, so rank 0's deadline must fire — after which
  // rank 0 unblocks rank 1 and both finish cleanly.
  mpr::RecvStatus status = mpr::RecvStatus::kOk;
  const auto stats = mpr::Runtime::execute(2, [&](mpr::Comm& comm) {
    if (comm.rank() == 0) {
      status = comm.try_recv(1, 7, 0.5).status;
      mpr::Message msg;
      msg.pack(std::uint32_t{1});
      comm.send(1, 8, std::move(msg));
    } else {
      auto msg = comm.recv(0, 8);
      EXPECT_EQ(msg.unpack<std::uint32_t>(), 1u);
    }
  });
  EXPECT_EQ(status, mpr::RecvStatus::kTimeout);
  EXPECT_DOUBLE_EQ(stats.recovery_vtime, 0.5);
  EXPECT_EQ(stats.ranks_failed, 0);
}

TEST(RuntimeFault, UntimedRecvFromDeadRankThrowsRankFailed) {
  EXPECT_THROW(mpr::Runtime::execute(2,
                                     [](mpr::Comm& comm) {
                                       if (comm.rank() == 0) {
                                         comm.recv(1, 3);
                                       }
                                     }),
               mpr::RankFailed);
}

TEST(RuntimeFault, CompositeErrorListsEveryFailedRank) {
  try {
    mpr::Runtime::execute(3, [](mpr::Comm& comm) {
      if (comm.rank() == 1) FOCUS_THROW("boom-one");
      if (comm.rank() == 2) FOCUS_THROW("boom-two");
    });
    FAIL() << "expected a composite error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
    EXPECT_NE(what.find("boom-one"), std::string::npos) << what;
    EXPECT_NE(what.find("boom-two"), std::string::npos) << what;
  }
}

TEST(RuntimeFault, InjectedCrashIsCountedNotRethrown) {
  mpr::FaultPlan plan;
  plan.crashes.push_back({1, 1});  // rank 1 dies at its first op
  const auto stats = mpr::Runtime::execute(
      2,
      [](mpr::Comm& comm) {
        if (comm.rank() == 1) {
          mpr::Message msg;
          msg.pack(std::uint32_t{0});
          comm.send(0, 2, std::move(msg));  // crashes here
        } else {
          EXPECT_EQ(comm.try_recv(1, 2, 0.125).status,
                    mpr::RecvStatus::kTimeout);
        }
      },
      {}, plan);
  EXPECT_EQ(stats.ranks_failed, 1);
  EXPECT_EQ(stats.messages, 0u) << "the crashed send delivered nothing";
}

// --- Fault-tolerant drivers -------------------------------------------------

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

/// 20-contig chain over a 3 kbp genome with transitive shortcuts, two junk
/// spurs and one contained fragment — every simplify phase has work to do.
AsmGraph make_fault_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = random_seq(rng, 3000);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 20; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 140, 220), 6));
  }
  for (int i = 0; i + 1 < 20; ++i) g.add_edge(chain[i], chain[i + 1], 80);
  for (int i = 0; i < 18; i += 3) g.add_edge(chain[i], chain[i + 2], 20);
  const NodeId junk1 = g.add_node(random_seq(rng, 150), 1);
  const NodeId junk2 = g.add_node(random_seq(rng, 150), 1);
  g.add_edge(junk1, chain[5], 60);
  g.add_edge(chain[10], junk2, 60);
  const NodeId small = g.add_node(genome.substr(300, 90), 1);
  g.add_edge(chain[2], small, 90, /*offset_estimate=*/20);
  return g;
}

std::vector<PartId> striped_partition(const AsmGraph& g, PartId parts) {
  std::vector<PartId> part(g.node_count());
  const std::size_t per =
      (g.node_count() + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    part[v] = static_cast<PartId>(v / per);
  }
  return part;
}

constexpr PartId kParts = 4;

struct DriverOutcome {
  SimplifyStats stats;
  mpr::RunStats simplify_run;
  std::vector<std::vector<NodeId>> paths;
  mpr::RunStats traverse_run;
};

// The master protocol is pinned explicitly (not via environment) so the
// seed goldens below stay stable under FOCUS_DIST_PROTOCOL.
DriverOutcome run_drivers(int nranks, const mpr::FaultPlan& plan = {},
                          const mpr::FaultConfig& fault = {},
                          const dist::DistConfig& dcfg = {
                              dist::DistProtocol::kMaster}) {
  AsmGraph g = make_fault_graph(100);
  const auto part = striped_partition(g, kParts);
  DriverOutcome out;
  auto s = dist::simplify_parallel(g, part, kParts, SimplifyConfig{}, nranks,
                                   {}, 1, plan, fault, dcfg);
  out.stats = s.stats;
  out.simplify_run = s.run;
  auto t = dist::traverse_parallel(g, part, kParts, nranks, {}, 1, plan, fault,
                                   dcfg);
  out.paths = std::move(t.paths);
  out.traverse_run = t.run;
  return out;
}

void expect_same_assembly(const DriverOutcome& got, const DriverOutcome& want,
                          const std::string& context) {
  EXPECT_EQ(got.stats.transitive_edges, want.stats.transitive_edges) << context;
  EXPECT_EQ(got.stats.false_edges, want.stats.false_edges) << context;
  EXPECT_EQ(got.stats.contained_nodes, want.stats.contained_nodes) << context;
  EXPECT_EQ(got.stats.verified_edges, want.stats.verified_edges) << context;
  EXPECT_EQ(got.stats.tip_nodes, want.stats.tip_nodes) << context;
  EXPECT_EQ(got.stats.bubble_nodes, want.stats.bubble_nodes) << context;
  ASSERT_EQ(got.paths, want.paths) << context;
}

// Pre-fault-tolerance RunStats captured from the seed build: an empty plan
// must keep the fast path bit-identical, makespans included.
TEST(DistFault, EmptyPlanIsByteIdenticalToSeedGoldens) {
  struct Golden {
    int ranks;
    double s_makespan;
    std::uint64_t s_messages, s_bytes;
    double t_makespan;
    std::uint64_t t_messages, t_bytes;
  };
  const Golden goldens[] = {
      {1, 0x1.2f626e343b1b1p-11, 0, 0, 0x1.8d48d35882223p-22, 0, 0},
      {2, 0x1.a4ae284f88063p-12, 4, 148, 0x1.00cac4f988867p-16, 1, 76},
      {3, 0x1.4298b474efc9cp-12, 8, 260, 0x1.52d528d5a5fe2p-16, 2, 72},
      {4, 0x1.11b0e00fd33a5p-12, 12, 324, 0x1.52f784ed764bep-16, 3, 116},
  };
  for (const Golden& gold : goldens) {
    const auto out = run_drivers(gold.ranks);
    EXPECT_EQ(out.simplify_run.makespan, gold.s_makespan) << gold.ranks;
    EXPECT_EQ(out.simplify_run.messages, gold.s_messages) << gold.ranks;
    EXPECT_EQ(out.simplify_run.bytes, gold.s_bytes) << gold.ranks;
    EXPECT_EQ(out.traverse_run.makespan, gold.t_makespan) << gold.ranks;
    EXPECT_EQ(out.traverse_run.messages, gold.t_messages) << gold.ranks;
    EXPECT_EQ(out.traverse_run.bytes, gold.t_bytes) << gold.ranks;
    EXPECT_EQ(out.simplify_run.retries, 0u);
    EXPECT_EQ(out.simplify_run.ranks_failed, 0);
    EXPECT_EQ(out.simplify_run.recovery_vtime, 0.0);
    EXPECT_EQ(out.paths.size(), 3u) << gold.ranks;
  }
}

// Crash a single worker at every op position it can reach; the recovered
// assembly must be exactly the fault-free one, and the failure must be
// reported in the stats.
TEST(DistFault, CrashAtEveryWorkerOpRecoversExactAssembly) {
  const int nranks = 3;
  const auto want = run_drivers(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 10; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      const auto got = run_drivers(nranks, plan);
      const std::string context = "worker " + std::to_string(worker) +
                                  " crashed at op " + std::to_string(op);
      expect_same_assembly(got, want, context);
      // The simplify protocol runs 9 worker ops (4 × recv+send, final recv),
      // so every op in that range must actually kill the worker.
      if (op <= 9) {
        EXPECT_EQ(got.simplify_run.ranks_failed, 1) << context;
      }
      if (op <= 2) {
        EXPECT_GE(got.simplify_run.retries, 1u) << context;
        EXPECT_GT(got.simplify_run.recovery_vtime, 0.0) << context;
      }
    }
  }
}

TEST(DistFault, SingleRankMasterToleratesPlanWithoutWorkers) {
  // With one rank the master scans everything itself; a plan that would
  // crash workers has nobody to kill.
  mpr::FaultPlan plan;
  plan.crashes.push_back({1, 1});
  const auto want = run_drivers(1);
  const auto got = run_drivers(1, plan);
  expect_same_assembly(got, want, "single-rank");
  EXPECT_EQ(got.simplify_run.ranks_failed, 0);
}

TEST(DistFault, SameSeedGivesBitIdenticalRunStats) {
  mpr::FaultPlan plan;
  plan.seed = 99;
  plan.p_drop = 0.10;
  plan.p_duplicate = 0.05;
  plan.p_corrupt = 0.05;
  plan.p_delay = 0.10;
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  const auto a = run_drivers(4, plan, fault);
  const auto b = run_drivers(4, plan, fault);
  EXPECT_EQ(a.simplify_run.makespan, b.simplify_run.makespan);
  EXPECT_EQ(a.simplify_run.rank_vtime, b.simplify_run.rank_vtime);
  EXPECT_EQ(a.simplify_run.messages, b.simplify_run.messages);
  EXPECT_EQ(a.simplify_run.bytes, b.simplify_run.bytes);
  EXPECT_EQ(a.simplify_run.retries, b.simplify_run.retries);
  EXPECT_EQ(a.simplify_run.ranks_failed, b.simplify_run.ranks_failed);
  EXPECT_EQ(a.simplify_run.recovery_vtime, b.simplify_run.recovery_vtime);
  EXPECT_EQ(a.traverse_run.makespan, b.traverse_run.makespan);
  EXPECT_EQ(a.traverse_run.messages, b.traverse_run.messages);
  EXPECT_EQ(a.traverse_run.retries, b.traverse_run.retries);
  expect_same_assembly(a, b, "same seed");
}

// 50 seeds of mixed message faults (drops, duplicates, corruption, delays):
// recovery must reproduce the fault-free assembly every time. Run under
// TSan/ASan via tools/run_sanitizers.sh (ctest label: fault).
TEST(DistFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 4;
  const auto want = run_drivers(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (std::uint64_t trial = 0; trial < 50; ++trial) {
    mpr::FaultPlan plan;
    plan.seed = trial * 7 + 1;
    plan.p_drop = 0.05;
    plan.p_duplicate = 0.05;
    plan.p_corrupt = 0.05;
    plan.p_delay = 0.05;
    const auto got = run_drivers(nranks, plan, fault);
    expect_same_assembly(got, want, "trial " + std::to_string(trial));
  }
}

TEST(DistFault, RetriesExhaustedThrows) {
  mpr::FaultPlan plan;
  plan.seed = 5;
  plan.p_drop = 1.0;  // every message vanishes, so the first round must fail
  mpr::FaultConfig fault;
  fault.max_retries = 0;  // …and no replay is allowed
  EXPECT_THROW(run_drivers(3, plan, fault), Error);
}

// --- Symmetric protocol under faults (DESIGN.md §7b) ------------------------

const dist::DistConfig kSymCfg{dist::DistProtocol::kSymmetric};

TEST(DistFaultSymmetric, FaultFreeMatchesMasterProtocol) {
  for (const int nranks : {1, 2, 3, 4}) {
    const auto want = run_drivers(nranks);
    const auto got = run_drivers(nranks, {}, {}, kSymCfg);
    expect_same_assembly(got, want, "ranks " + std::to_string(nranks));
    EXPECT_EQ(got.simplify_run.retries, 0u);
    EXPECT_EQ(got.simplify_run.ranks_failed, 0);
    EXPECT_EQ(got.traverse_run.ranks_failed, 0);
  }
}

// Crash EVERY rank — the coordinator included — at every op position. Killing
// rank 0 forces the coordinator rotation: a successor inherits the log,
// fast-forwards through the committed phases, and finishes the run; the
// recovered assembly must be exactly the fault-free master one. This is the
// property the master protocol cannot have (its rank 0 is irreplaceable).
TEST(DistFaultSymmetric, CrashAtEveryOpOnEveryRankRecoversExactAssembly) {
  const int nranks = 3;
  const auto want = run_drivers(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 10; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      const auto got = run_drivers(nranks, plan, {}, kSymCfg);
      const std::string context = "rank " + std::to_string(victim) +
                                  " crashed at op " + std::to_string(op);
      expect_same_assembly(got, want, context);
      // Simplify runs 9 worker ops (4 × recv+send, final recv) and more on
      // the coordinator, so every op in 1..9 actually kills the victim.
      if (op <= 9) {
        EXPECT_EQ(got.simplify_run.ranks_failed, 1) << context;
      }
    }
  }
}

TEST(DistFaultSymmetric, SingleRankToleratesPlanWithoutPeers) {
  mpr::FaultPlan plan;
  plan.crashes.push_back({1, 1});
  const auto want = run_drivers(1);
  const auto got = run_drivers(1, plan, {}, kSymCfg);
  expect_same_assembly(got, want, "single-rank symmetric");
  EXPECT_EQ(got.simplify_run.ranks_failed, 0);
}

TEST(DistFaultSymmetric, SameSeedGivesBitIdenticalRunStats) {
  mpr::FaultPlan plan;
  plan.seed = 99;
  plan.p_drop = 0.10;
  plan.p_duplicate = 0.05;
  plan.p_corrupt = 0.05;
  plan.p_delay = 0.10;
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  const auto a = run_drivers(4, plan, fault, kSymCfg);
  const auto b = run_drivers(4, plan, fault, kSymCfg);
  EXPECT_EQ(a.simplify_run.makespan, b.simplify_run.makespan);
  EXPECT_EQ(a.simplify_run.rank_vtime, b.simplify_run.rank_vtime);
  EXPECT_EQ(a.simplify_run.messages, b.simplify_run.messages);
  EXPECT_EQ(a.simplify_run.bytes, b.simplify_run.bytes);
  EXPECT_EQ(a.simplify_run.retries, b.simplify_run.retries);
  EXPECT_EQ(a.simplify_run.ranks_failed, b.simplify_run.ranks_failed);
  EXPECT_EQ(a.simplify_run.recovery_vtime, b.simplify_run.recovery_vtime);
  EXPECT_EQ(a.traverse_run.makespan, b.traverse_run.makespan);
  EXPECT_EQ(a.traverse_run.messages, b.traverse_run.messages);
  expect_same_assembly(a, b, "symmetric same seed");
}

// Mixed message faults (drops, duplicates, corruption, delays) against the
// fault-free master oracle: a falsely-suspected worker becomes an orphan that
// must still terminate and agree. Run under TSan/ASan via
// tools/run_sanitizers.sh (ctest label: fault).
TEST(DistFaultSymmetric, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 4;
  const auto want = run_drivers(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    mpr::FaultPlan plan;
    plan.seed = trial * 13 + 3;
    plan.p_drop = 0.05;
    plan.p_duplicate = 0.05;
    plan.p_corrupt = 0.05;
    plan.p_delay = 0.05;
    const auto got = run_drivers(nranks, plan, fault, kSymCfg);
    expect_same_assembly(got, want,
                         "symmetric trial " + std::to_string(trial));
  }
}

TEST(DistFaultSymmetric, RetriesExhaustedThrows) {
  mpr::FaultPlan plan;
  plan.seed = 5;
  plan.p_drop = 1.0;
  mpr::FaultConfig fault;
  fault.max_retries = 0;
  EXPECT_THROW(run_drivers(3, plan, fault, kSymCfg), Error);
}

// --- Fault-tolerant distributed-index overlap driver ------------------------

/// Small simulated read set (~100 preprocessed reads): two query blocks of
/// the FT overlap driver, enough for reassignments to move real work.
const io::ReadSet& overlap_fault_reads() {
  static const io::ReadSet reads = [] {
    const sim::Dataset d = sim::make_dataset(1, /*scale=*/0.13,
                                             /*coverage=*/3.0);
    return io::preprocess(d.data.reads, {});
  }();
  return reads;
}

std::vector<align::Overlap> run_overlap_driver(
    int nranks, const mpr::FaultPlan& plan = {},
    const mpr::FaultConfig& fault = {},
    const dist::DistConfig& dcfg = {dist::DistProtocol::kMaster}) {
  return dist::overlap_parallel(overlap_fault_reads(), align::OverlapperConfig{},
                                nranks, {}, plan, fault, dcfg)
      .overlaps;
}

void expect_same_overlaps(const std::vector<align::Overlap>& got,
                          const std::vector<align::Overlap>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].query == want[i].query && got[i].ref == want[i].ref &&
                got[i].length == want[i].length &&
                got[i].identity == want[i].identity &&
                got[i].kind == want[i].kind)
        << context << " record " << i;
  }
}

TEST(OverlapFault, EmptyPlanMatchesAllPairsAndShardedPaths) {
  // The FT envelope with no plan is the sharded fast path; both must equal
  // the all-pairs serial reference on the same reads.
  const auto want =
      align::find_overlaps_serial(overlap_fault_reads(), align::OverlapperConfig{});
  for (const int nranks : {1, 3}) {
    expect_same_overlaps(run_overlap_driver(nranks), want,
                         "fault-free ranks " + std::to_string(nranks));
  }
}

// Crash a single worker at every op position it can reach during the overlap
// phase; the recovered overlap set must be exactly the fault-free one.
TEST(OverlapFault, CrashAtEveryWorkerOpRecoversExactOverlaps) {
  const int nranks = 3;
  const auto want = run_overlap_driver(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      const auto got = run_overlap_driver(nranks, plan);
      expect_same_overlaps(got, want,
                           "worker " + std::to_string(worker) +
                               " crashed at op " + std::to_string(op));
    }
  }
}

// Symmetric protocol: any rank may die — including rank 0, which the
// master/worker protocol cannot lose — and a successor replays the phase
// from the replicated WAL.
TEST(OverlapFault, SymmetricCrashAtEveryOpOnEveryRankRecovers) {
  const int nranks = 3;
  const dist::DistConfig sym{dist::DistProtocol::kSymmetric};
  const auto want = run_overlap_driver(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      const auto got = run_overlap_driver(nranks, plan, {}, sym);
      expect_same_overlaps(got, want,
                           "symmetric rank " + std::to_string(victim) +
                               " crashed at op " + std::to_string(op));
    }
  }
}

TEST(OverlapFault, SingleRankMasterToleratesPlanWithoutWorkers) {
  mpr::FaultPlan plan;
  plan.crashes.push_back({1, 1});
  expect_same_overlaps(run_overlap_driver(1, plan), run_overlap_driver(1),
                       "single-rank overlap");
}

// Mixed message faults (drops, duplicates, corruption, delays) over several
// seeds: replay recovery must reproduce the fault-free overlap set each time.
TEST(OverlapFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 3;
  const auto want = run_overlap_driver(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (const auto protocol :
       {dist::DistProtocol::kMaster, dist::DistProtocol::kSymmetric}) {
    const dist::DistConfig dcfg{protocol};
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      mpr::FaultPlan plan;
      plan.seed = trial * 13 + 3;
      plan.p_drop = 0.05;
      plan.p_duplicate = 0.05;
      plan.p_corrupt = 0.05;
      plan.p_delay = 0.05;
      expect_same_overlaps(
          run_overlap_driver(nranks, plan, fault, dcfg), want,
          "trial " + std::to_string(trial) +
              (protocol == dist::DistProtocol::kSymmetric ? " symmetric"
                                                          : " master"));
    }
  }
}

// --- Fault-tolerant preprocess driver (stage 1) -----------------------------

const io::ReadSet& preprocess_fault_raw_reads() {
  static const io::ReadSet reads =
      sim::make_dataset(1, /*scale=*/0.13, /*coverage=*/3.0).data.reads;
  return reads;
}

void expect_same_reads(const io::ReadSet& got, const io::ReadSet& want,
                       const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].name == want[i].name && got[i].seq == want[i].seq &&
                got[i].qual == want[i].qual &&
                got[i].origin == want[i].origin &&
                got[i].reverse == want[i].reverse)
        << context << " read " << i;
  }
}

io::ParallelPreprocessResult run_preprocess_driver(
    int nranks, const mpr::FaultPlan& plan = {},
    const mpr::FaultConfig& fault = {}, bool symmetric = false) {
  return io::preprocess_parallel(preprocess_fault_raw_reads(), {}, nranks, {},
                                 plan, fault, symmetric);
}

TEST(PreprocessFault, EmptyPlanMatchesSerialReference) {
  io::PreprocessStats want_stats;
  const auto want =
      io::preprocess(preprocess_fault_raw_reads(), {}, &want_stats);
  for (const int nranks : {1, 3}) {
    const auto got = run_preprocess_driver(nranks);
    expect_same_reads(got.reads, want,
                      "fault-free ranks " + std::to_string(nranks));
    EXPECT_EQ(got.stats.input_reads, want_stats.input_reads);
    EXPECT_EQ(got.stats.dropped_short, want_stats.dropped_short);
    EXPECT_EQ(got.stats.output_reads, want_stats.output_reads);
    EXPECT_EQ(got.stats.bases_trimmed, want_stats.bases_trimmed);
  }
}

// Crash a single worker at every op position it can reach during stage 1;
// the recovered read set and stats must be exactly the fault-free ones.
TEST(PreprocessFault, CrashAtEveryWorkerOpRecoversExactReads) {
  const int nranks = 3;
  const auto want = run_preprocess_driver(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      const auto got = run_preprocess_driver(nranks, plan);
      const std::string context = "worker " + std::to_string(worker) +
                                  " crashed at op " + std::to_string(op);
      expect_same_reads(got.reads, want.reads, context);
      EXPECT_EQ(got.stats.output_reads, want.stats.output_reads) << context;
    }
  }
}

// Symmetric protocol: crash EVERY rank — the initial coordinator included —
// at every op position; a successor must finish from the WAL.
TEST(PreprocessFault, SymmetricCrashAtEveryOpOnEveryRankRecovers) {
  const int nranks = 3;
  const auto want = run_preprocess_driver(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      const auto got =
          run_preprocess_driver(nranks, plan, {}, /*symmetric=*/true);
      expect_same_reads(got.reads, want.reads,
                        "rank " + std::to_string(victim) + " crashed at op " +
                            std::to_string(op));
    }
  }
}

TEST(PreprocessFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 3;
  const auto want = run_preprocess_driver(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (const bool symmetric : {false, true}) {
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      mpr::FaultPlan plan;
      plan.seed = trial * 17 + 5;
      plan.p_drop = 0.05;
      plan.p_duplicate = 0.05;
      plan.p_corrupt = 0.05;
      plan.p_delay = 0.05;
      const auto got = run_preprocess_driver(nranks, plan, fault, symmetric);
      expect_same_reads(got.reads, want.reads,
                        std::string(symmetric ? "symmetric" : "master") +
                            " trial " + std::to_string(trial));
    }
  }
}

// --- Fault-tolerant partition driver (stage 5) ------------------------------

const graph::GraphHierarchy& partition_fault_hierarchy() {
  static const graph::GraphHierarchy h = [] {
    Rng rng(77);
    graph::GraphBuilder b(120);
    for (NodeId v = 1; v < 120; ++v) {
      b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
                 1 + static_cast<Weight>(rng.next_below(50)));
    }
    for (int i = 0; i < 240; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(120));
      const auto v = static_cast<NodeId>(rng.next_below(120));
      if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
    }
    graph::CoarsenConfig cfg;
    cfg.min_nodes = 8;
    cfg.max_levels = 5;
    return graph::build_multilevel(b.build(), cfg);
  }();
  return h;
}

partition::ParallelPartitionResult run_partition_driver(
    int nranks, const mpr::FaultPlan& plan = {},
    const mpr::FaultConfig& fault = {}, bool symmetric = false) {
  return partition::partition_hierarchy_parallel(
      partition_fault_hierarchy(), 4, partition::PartitionerConfig{}, nranks,
      {}, plan, fault, symmetric);
}

void expect_same_partitioning(const partition::HierarchyPartitioning& got,
                              const partition::HierarchyPartitioning& want,
                              const std::string& context) {
  EXPECT_EQ(got.parts, want.parts) << context;
  EXPECT_EQ(got.finest_cut, want.finest_cut) << context;
  ASSERT_EQ(got.levels, want.levels) << context;
}

TEST(PartitionFault, EmptyPlanMatchesFaultFreeDriver) {
  const auto want = run_partition_driver(3);
  // The FT dispatch must not change the fault-free path at any rank count,
  // and the fault-free path itself equals the serial partitioner.
  const auto serial = partition::partition_hierarchy(
      partition_fault_hierarchy(), 4, partition::PartitionerConfig{});
  EXPECT_EQ(want.partitioning.levels, serial.levels);
  EXPECT_EQ(want.partitioning.finest_cut, serial.finest_cut);
}

// Crash a single worker at every op position it can reach during the
// bisection and refinement phases; the recovered partitioning must be exactly
// the fault-free (== serial) one.
TEST(PartitionFault, CrashAtEveryWorkerOpRecoversExactPartitioning) {
  const int nranks = 3;
  const auto want = run_partition_driver(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 8; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      const auto got = run_partition_driver(nranks, plan);
      expect_same_partitioning(got.partitioning, want.partitioning,
                               "worker " + std::to_string(worker) +
                                   " crashed at op " + std::to_string(op));
    }
  }
}

// Symmetric protocol: crash EVERY rank at every op position. A successor
// coordinator must replay the committed bisection steps from the WAL to
// rebuild the evolving labels, then finish the remaining phases.
TEST(PartitionFault, SymmetricCrashAtEveryOpOnEveryRankRecovers) {
  const int nranks = 3;
  const auto want = run_partition_driver(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 8; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      const auto got =
          run_partition_driver(nranks, plan, {}, /*symmetric=*/true);
      expect_same_partitioning(got.partitioning, want.partitioning,
                               "rank " + std::to_string(victim) +
                                   " crashed at op " + std::to_string(op));
    }
  }
}

TEST(PartitionFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 3;
  const auto want = run_partition_driver(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (const bool symmetric : {false, true}) {
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      mpr::FaultPlan plan;
      plan.seed = trial * 19 + 7;
      plan.p_drop = 0.05;
      plan.p_duplicate = 0.05;
      plan.p_corrupt = 0.05;
      plan.p_delay = 0.05;
      const auto got = run_partition_driver(nranks, plan, fault, symmetric);
      expect_same_partitioning(
          got.partitioning, want.partitioning,
          std::string(symmetric ? "symmetric" : "master") + " trial " +
              std::to_string(trial));
    }
  }
}

// --- Fault-tolerant variant scan + GFA emission -----------------------------

/// Three SNP bubbles along a backbone chain — several variant sites spread
/// over the striped partitions.
AsmGraph make_variant_fault_graph() {
  Rng rng(55);
  AsmGraph g;
  NodeId prev = g.add_node(random_seq(rng, 200), 10);
  for (int bubble = 0; bubble < 3; ++bubble) {
    std::string allele_a = random_seq(rng, 250);
    std::string allele_b = allele_a;
    for (int s = 0; s < 3; ++s) {
      const std::size_t pos = 20 + static_cast<std::size_t>(s) * 40;
      allele_b[pos] = allele_b[pos] == 'A' ? 'C' : 'A';
    }
    const NodeId a = g.add_node(allele_a, 8);
    const NodeId b = g.add_node(allele_b, 3);
    const NodeId post = g.add_node(random_seq(rng, 200), 10);
    g.add_edge(prev, a, 50);
    g.add_edge(prev, b, 50);
    g.add_edge(a, post, 50);
    g.add_edge(b, post, 50);
    prev = post;
  }
  return g;
}

std::vector<dist::Variant> run_variants_driver(
    int nranks, const mpr::FaultPlan& plan = {},
    const mpr::FaultConfig& fault = {},
    const dist::DistConfig& dcfg = {dist::DistProtocol::kMaster}) {
  static const AsmGraph g = make_variant_fault_graph();
  static const auto part = striped_partition(g, kParts);
  return dist::find_variants_parallel(g, part, kParts, {}, nranks, {}, plan,
                                      fault, dcfg)
      .variants;
}

void expect_same_variants(const std::vector<dist::Variant>& got,
                          const std::vector<dist::Variant>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_TRUE(got[i].branch_point == want[i].branch_point &&
                got[i].merge_point == want[i].merge_point &&
                got[i].major_allele == want[i].major_allele &&
                got[i].minor_allele == want[i].minor_allele &&
                got[i].identity == want[i].identity)
        << context << " record " << i;
  }
}

TEST(VariantsFault, EmptyPlanMatchesSerialReference) {
  const auto want = dist::find_variants_serial(make_variant_fault_graph(), {});
  EXPECT_EQ(want.size(), 3u) << "fixture must contain three bubbles";
  for (const int nranks : {1, 3}) {
    expect_same_variants(run_variants_driver(nranks), want,
                         "fault-free ranks " + std::to_string(nranks));
  }
}

TEST(VariantsFault, CrashAtEveryWorkerOpRecoversExactVariants) {
  const int nranks = 3;
  const auto want = run_variants_driver(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 5; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      expect_same_variants(run_variants_driver(nranks, plan), want,
                           "worker " + std::to_string(worker) +
                               " crashed at op " + std::to_string(op));
    }
  }
}

TEST(VariantsFault, SymmetricCrashAtEveryOpOnEveryRankRecovers) {
  const int nranks = 3;
  const auto want = run_variants_driver(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 5; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      expect_same_variants(run_variants_driver(nranks, plan, {}, kSymCfg),
                           want,
                           "rank " + std::to_string(victim) +
                               " crashed at op " + std::to_string(op));
    }
  }
}

TEST(VariantsFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 3;
  const auto want = run_variants_driver(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (const auto& dcfg :
       {dist::DistConfig{dist::DistProtocol::kMaster}, kSymCfg}) {
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      mpr::FaultPlan plan;
      plan.seed = trial * 23 + 9;
      plan.p_drop = 0.05;
      plan.p_duplicate = 0.05;
      plan.p_corrupt = 0.05;
      plan.p_delay = 0.05;
      expect_same_variants(run_variants_driver(nranks, plan, fault, dcfg),
                           want, "trial " + std::to_string(trial));
    }
  }
}

// --- Fault-tolerant GFA emission --------------------------------------------

/// A 600-node chain: three segment-id blocks and three link-id blocks, so
/// reassignment after a crash moves real rendering work.
AsmGraph make_gfa_fault_graph() {
  Rng rng(66);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 600; ++i) {
    chain.push_back(g.add_node(random_seq(rng, 120), 2));
  }
  for (int i = 0; i + 1 < 600; ++i) g.add_edge(chain[i], chain[i + 1], 40);
  return g;
}

std::string run_gfa_driver(int nranks, const mpr::FaultPlan& plan = {},
                           const mpr::FaultConfig& fault = {},
                           const dist::DistConfig& dcfg = {
                               dist::DistProtocol::kMaster}) {
  static const AsmGraph g = make_gfa_fault_graph();
  return dist::write_gfa_parallel(g, {}, nranks, {}, plan, fault, dcfg).gfa;
}

TEST(GfaFault, EmptyPlanMatchesSerialBytes) {
  std::ostringstream want;
  dist::write_gfa(want, make_gfa_fault_graph(), {});
  for (const int nranks : {1, 3}) {
    EXPECT_EQ(run_gfa_driver(nranks), want.str())
        << "fault-free ranks " << nranks;
  }
}

TEST(GfaFault, CrashAtEveryWorkerOpRecoversExactBytes) {
  const int nranks = 3;
  const auto want = run_gfa_driver(nranks);
  for (Rank worker = 1; worker < nranks; ++worker) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({worker, op});
      EXPECT_EQ(run_gfa_driver(nranks, plan), want)
          << "worker " << worker << " crashed at op " << op;
    }
  }
}

TEST(GfaFault, SymmetricCrashAtEveryOpOnEveryRankRecovers) {
  const int nranks = 3;
  const auto want = run_gfa_driver(nranks);
  for (Rank victim = 0; victim < nranks; ++victim) {
    for (std::uint64_t op = 1; op <= 6; ++op) {
      mpr::FaultPlan plan;
      plan.crashes.push_back({victim, op});
      EXPECT_EQ(run_gfa_driver(nranks, plan, {}, kSymCfg), want)
          << "rank " << victim << " crashed at op " << op;
    }
  }
}

TEST(GfaFault, StressRandomMessageFaultsAlwaysRecover) {
  const int nranks = 3;
  const auto want = run_gfa_driver(nranks);
  mpr::FaultConfig fault;
  fault.max_retries = 32;
  for (const auto& dcfg :
       {dist::DistConfig{dist::DistProtocol::kMaster}, kSymCfg}) {
    for (std::uint64_t trial = 0; trial < 10; ++trial) {
      mpr::FaultPlan plan;
      plan.seed = trial * 29 + 11;
      plan.p_drop = 0.05;
      plan.p_duplicate = 0.05;
      plan.p_corrupt = 0.05;
      plan.p_delay = 0.05;
      EXPECT_EQ(run_gfa_driver(nranks, plan, fault, dcfg), want)
          << "trial " << trial;
    }
  }
}

// --- FOCUS_FAULT_* environment parsing --------------------------------------

// RAII save/restore so the suite never leaks an environment change.
class ScopedEnvVar {
 public:
  explicit ScopedEnvVar(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~ScopedEnvVar() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

void expect_env_error(const std::function<void()>& parse,
                      const std::string& needle) {
  try {
    parse();
    FAIL() << "expected a focus::Error mentioning '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FaultEnv, MalformedSeedNamesTheOffendingValue) {
  ScopedEnvVar seed("FOCUS_FAULT_SEED");
  seed.set("banana");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); }, "banana");
  seed.set("12x");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); }, "12x");
}

TEST(FaultEnv, RateOutsideUnitIntervalRejected) {
  ScopedEnvVar seed("FOCUS_FAULT_SEED");
  ScopedEnvVar drop("FOCUS_FAULT_DROP");
  seed.set("7");
  drop.set("1.5");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); }, "1.5");
  drop.set("-0.1");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); }, "-0.1");
  drop.set("half");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); }, "half");
  drop.set("0.25");
  EXPECT_DOUBLE_EQ(mpr::FaultPlan::from_env().p_drop, 0.25);
}

TEST(FaultEnv, RateWithoutSeedRejectedAsInert) {
  ScopedEnvVar seed("FOCUS_FAULT_SEED");
  ScopedEnvVar drop("FOCUS_FAULT_DROP");
  ::unsetenv("FOCUS_FAULT_SEED");
  drop.set("0.25");
  expect_env_error([] { (void)mpr::FaultPlan::from_env(); },
                   "FOCUS_FAULT_SEED");
  seed.set("7");
  EXPECT_DOUBLE_EQ(mpr::FaultPlan::from_env().p_drop, 0.25);
}

TEST(FaultEnv, MaxRetriesValidated) {
  ScopedEnvVar retries("FOCUS_FAULT_MAX_RETRIES");
  retries.set("0");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "0");
  retries.set("1001");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "1001");
  retries.set("many");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "many");
  retries.set("16");
  EXPECT_EQ(mpr::FaultConfig::from_env().max_retries, 16);
}

TEST(FaultEnv, RecvTimeoutValidated) {
  ScopedEnvVar timeout("FOCUS_FAULT_RECV_TIMEOUT");
  timeout.set("-1");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "-1");
  timeout.set("0");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "0");
  timeout.set("soon");
  expect_env_error([] { (void)mpr::FaultConfig::from_env(); }, "soon");
  timeout.set("0.5");
  EXPECT_DOUBLE_EQ(mpr::FaultConfig::from_env().recv_timeout_vtime, 0.5);
}

TEST(FaultEnv, DefaultsWhenUnset) {
  ScopedEnvVar retries("FOCUS_FAULT_MAX_RETRIES");
  ScopedEnvVar timeout("FOCUS_FAULT_RECV_TIMEOUT");
  ::unsetenv("FOCUS_FAULT_MAX_RETRIES");
  ::unsetenv("FOCUS_FAULT_RECV_TIMEOUT");
  const auto config = mpr::FaultConfig::from_env();
  const mpr::FaultConfig defaults;
  EXPECT_EQ(config.max_retries, defaults.max_retries);
  EXPECT_DOUBLE_EQ(config.recv_timeout_vtime, defaults.recv_timeout_vtime);
}

}  // namespace
}  // namespace focus
