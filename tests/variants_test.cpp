// Tests for variant detection on the assembly graph (the paper's §VI-D
// future-work extension).
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "dist/variants.hpp"
#include "sim/genome.hpp"

namespace focus::dist {
namespace {

std::string random_seq(Rng& rng, std::size_t len) {
  return sim::random_genome(len, rng);
}

// Builds a bubble: pre -> {allele_a | allele_b} -> post, where the alleles
// differ by `snps` substitutions.
struct BubbleFixture {
  AsmGraph g;
  NodeId pre, a, b, post;

  explicit BubbleFixture(std::uint64_t seed, int snps, Weight cov_a = 8,
                         Weight cov_b = 3) {
    Rng rng(seed);
    const std::string genome = random_seq(rng, 800);
    std::string allele_a = genome.substr(150, 250);
    std::string allele_b = allele_a;
    for (int s = 0; s < snps; ++s) {
      const std::size_t pos = 20 + static_cast<std::size_t>(s) * 40;
      allele_b[pos] = allele_b[pos] == 'A' ? 'C' : 'A';
    }
    pre = g.add_node(genome.substr(0, 200), 10);
    a = g.add_node(allele_a, cov_a);
    b = g.add_node(allele_b, cov_b);
    post = g.add_node(genome.substr(350, 200), 10);
    g.add_edge(pre, a, 50);
    g.add_edge(pre, b, 50);
    g.add_edge(a, post, 50);
    g.add_edge(b, post, 50);
  }
};

TEST(Variants, DetectsSnpBubble) {
  BubbleFixture fx(1, /*snps=*/3);
  const auto variants = find_variants_serial(fx.g);
  ASSERT_EQ(variants.size(), 1u);
  const Variant& v = variants[0];
  EXPECT_EQ(v.branch_point, fx.pre);
  EXPECT_EQ(v.merge_point, fx.post);
  EXPECT_EQ(v.major_allele, fx.a);  // coverage 8 > 3
  EXPECT_EQ(v.minor_allele, fx.b);
  EXPECT_EQ(v.major_coverage, 8);
  EXPECT_EQ(v.minor_coverage, 3);
  EXPECT_EQ(v.mismatch_sites, 3u);
  EXPECT_EQ(v.indel_sites, 0u);
  EXPECT_NEAR(v.identity, 247.0 / 250.0, 1e-4);
}

TEST(Variants, UnrelatedBranchesAreNotVariants) {
  Rng rng(2);
  AsmGraph g;
  const std::string genome = random_seq(rng, 600);
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  // Two branches with unrelated sequence (a repeat boundary, not alleles).
  const NodeId x = g.add_node(random_seq(rng, 250), 5);
  const NodeId y = g.add_node(random_seq(rng, 250), 5);
  const NodeId post = g.add_node(genome.substr(400, 200), 10);
  g.add_edge(pre, x, 50);
  g.add_edge(pre, y, 50);
  g.add_edge(x, post, 50);
  g.add_edge(y, post, 50);
  EXPECT_TRUE(find_variants_serial(g).empty());
}

TEST(Variants, LengthRatioGuard) {
  Rng rng(3);
  AsmGraph g;
  const std::string genome = random_seq(rng, 900);
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  const NodeId x = g.add_node(genome.substr(150, 100), 5);
  const NodeId y = g.add_node(genome.substr(150, 400), 5);  // 4x longer
  const NodeId post = g.add_node(genome.substr(540, 200), 10);
  g.add_edge(pre, x, 50);
  g.add_edge(pre, y, 50);
  g.add_edge(x, post, 50);
  g.add_edge(y, post, 50);
  VariantConfig cfg;
  cfg.max_length_ratio = 1.3;
  EXPECT_TRUE(find_variants_serial(g, cfg).empty());
}

TEST(Variants, IndelAlleleCounted) {
  Rng rng(4);
  AsmGraph g;
  const std::string genome = random_seq(rng, 800);
  std::string allele_a = genome.substr(150, 250);
  std::string allele_b = allele_a;
  allele_b.erase(100, 4);  // 4 bp deletion
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  g.add_node(allele_a, 6);
  g.add_node(allele_b, 4);
  const NodeId post = g.add_node(genome.substr(350, 200), 10);
  g.add_edge(pre, 1, 50);
  g.add_edge(pre, 2, 50);
  g.add_edge(1, post, 50);
  g.add_edge(2, post, 50);
  const auto variants = find_variants_serial(g);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].indel_sites, 4u);
  EXPECT_EQ(variants[0].mismatch_sites, 0u);
}

TEST(Variants, CoverageTieBreaksById) {
  BubbleFixture fx(5, 2, /*cov_a=*/5, /*cov_b=*/5);
  const auto variants = find_variants_serial(fx.g);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].major_allele, fx.a);  // lower id wins the tie
}

TEST(Variants, ChainWithoutBubblesIsQuiet) {
  Rng rng(6);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 6; ++i) chain.push_back(g.add_node(random_seq(rng, 150), 4));
  for (int i = 0; i + 1 < 6; ++i) g.add_edge(chain[i], chain[i + 1], 60);
  EXPECT_TRUE(find_variants_serial(g).empty());
}

TEST(Variants, ThreeAllelesYieldAllPairs) {
  Rng rng(7);
  AsmGraph g;
  const std::string genome = random_seq(rng, 800);
  std::string base = genome.substr(150, 250);
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  std::vector<NodeId> alleles;
  for (int k = 0; k < 3; ++k) {
    std::string allele = base;
    if (k > 0) allele[30 * static_cast<std::size_t>(k)] = 'A';
    alleles.push_back(g.add_node(allele, 4 + k));
  }
  const NodeId post = g.add_node(genome.substr(350, 200), 10);
  for (const NodeId a : alleles) {
    g.add_edge(pre, a, 50);
    g.add_edge(a, post, 50);
  }
  const auto variants = find_variants_serial(g);
  EXPECT_EQ(variants.size(), 3u);  // all C(3,2) pairs
}

TEST(Variants, MultiNodeBranchBubble) {
  // Each allele is a chain of two contigs between the anchors.
  Rng rng(10);
  AsmGraph g;
  const std::string genome = random_seq(rng, 1200);
  std::string allele_a = genome.substr(150, 500);
  std::string allele_b = allele_a;
  for (int s = 0; s < 5; ++s) {
    allele_b[50 + static_cast<std::size_t>(s) * 90] = 'A';
  }
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  const NodeId a1 = g.add_node(allele_a.substr(0, 300), 6);
  const NodeId a2 = g.add_node(allele_a.substr(200, 300), 6);
  const NodeId b1 = g.add_node(allele_b.substr(0, 300), 2);
  const NodeId b2 = g.add_node(allele_b.substr(200, 300), 2);
  const NodeId post = g.add_node(genome.substr(600, 200), 10);
  g.add_edge(pre, a1, 50);
  g.add_edge(a1, a2, 100);
  g.add_edge(a2, post, 50);
  g.add_edge(pre, b1, 50);
  g.add_edge(b1, b2, 100);
  g.add_edge(b2, post, 50);
  const auto variants = find_variants_serial(g);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].major_allele, a1);
  EXPECT_EQ(variants[0].minor_allele, b1);
  EXPECT_EQ(variants[0].major_nodes, 2u);
  EXPECT_EQ(variants[0].minor_nodes, 2u);
  // Alleles mutated at a handful of positions; count depends on whether a
  // site falls in the overlap region (counted once after merging).
  EXPECT_GE(variants[0].mismatch_sites, 4u);
  EXPECT_LE(variants[0].mismatch_sites, 6u);
}

TEST(Variants, OpenBubbleCalledFromDivergingChains) {
  // Haplotype-style structure: the two branches never re-merge.
  Rng rng(11);
  AsmGraph g;
  const std::string genome = random_seq(rng, 1000);
  std::string allele_a = genome.substr(150, 400);
  std::string allele_b = allele_a;
  allele_b[100] = allele_b[100] == 'C' ? 'G' : 'C';
  allele_b[250] = allele_b[250] == 'T' ? 'A' : 'T';
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  const NodeId a = g.add_node(allele_a, 7);
  const NodeId b = g.add_node(allele_b, 3);
  g.add_edge(pre, a, 50);
  g.add_edge(pre, b, 50);
  const auto variants = find_variants_serial(g);
  ASSERT_EQ(variants.size(), 1u);
  EXPECT_EQ(variants[0].merge_point, kInvalidNode);  // open bubble
  EXPECT_EQ(variants[0].mismatch_sites, 2u);
  EXPECT_EQ(variants[0].major_allele, a);
}

TEST(Variants, OpenBubblesCanBeDisabled) {
  Rng rng(12);
  AsmGraph g;
  const std::string genome = random_seq(rng, 1000);
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  g.add_node(genome.substr(150, 400), 7);
  g.add_node(genome.substr(150, 400), 3);
  g.add_edge(pre, 1, 50);
  g.add_edge(pre, 2, 50);
  VariantConfig cfg;
  cfg.allow_open_bubbles = false;
  EXPECT_TRUE(find_variants_serial(g, cfg).empty());
  cfg.allow_open_bubbles = true;
  EXPECT_EQ(find_variants_serial(g, cfg).size(), 1u);
}

TEST(Variants, ShortOpenPrefixesNotCalled) {
  Rng rng(13);
  AsmGraph g;
  const std::string genome = random_seq(rng, 600);
  const NodeId pre = g.add_node(genome.substr(0, 200), 10);
  g.add_node(genome.substr(150, 60), 7);  // below min_open_prefix
  g.add_node(genome.substr(150, 60), 3);
  g.add_edge(pre, 1, 50);
  g.add_edge(pre, 2, 50);
  EXPECT_TRUE(find_variants_serial(g).empty());
}

class VariantsParallel : public ::testing::TestWithParam<int> {};

TEST_P(VariantsParallel, MatchesSerial) {
  // Several bubbles across a longer chain, striped over 4 partitions.
  Rng rng(8);
  AsmGraph g;
  const std::string genome = random_seq(rng, 4000);
  std::vector<NodeId> anchors;
  for (int i = 0; i < 5; ++i) {
    anchors.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 700, 300), 10));
  }
  for (int i = 0; i + 1 < 5; ++i) {
    std::string allele_a =
        genome.substr(static_cast<std::size_t>(i) * 700 + 250, 500);
    std::string allele_b = allele_a;
    allele_b[100] = allele_b[100] == 'G' ? 'T' : 'G';
    const NodeId a = g.add_node(allele_a, 7);
    const NodeId b = g.add_node(allele_b, 2);
    g.add_edge(anchors[i], a, 50);
    g.add_edge(anchors[i], b, 50);
    g.add_edge(a, anchors[i + 1], 50);
    g.add_edge(b, anchors[i + 1], 50);
  }

  const auto serial = find_variants_serial(g);
  ASSERT_EQ(serial.size(), 4u);

  std::vector<PartId> part(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    part[v] = static_cast<PartId>(v % 4);
  }
  const auto parallel =
      find_variants_parallel(g, part, 4, VariantConfig{}, GetParam());
  ASSERT_EQ(parallel.variants.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel.variants[i].branch_point, serial[i].branch_point);
    EXPECT_EQ(parallel.variants[i].major_allele, serial[i].major_allele);
    EXPECT_EQ(parallel.variants[i].mismatch_sites, serial[i].mismatch_sites);
  }
  EXPECT_GT(parallel.run.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, VariantsParallel,
                         ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace focus::dist
