// Tests for the symmetric owner-computes protocol (DESIGN.md §7b): the
// master and symmetric drivers must produce byte-identical simplified
// graphs, stats counters and traversal paths at every rank count, the
// FOCUS_DIST_PROTOCOL selector must parse strictly, and the symmetric
// runtime stats must be bit-deterministic across reruns.
//
// Heavy grid variants (full pipeline on the simulated datasets D1–D3) are
// labelled perf-smoke in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/assembler.hpp"
#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "io/preprocess.hpp"
#include "sim/datasets.hpp"

namespace focus::dist {
namespace {

const DistConfig kMasterCfg{DistProtocol::kMaster};
const DistConfig kSymmetricCfg{DistProtocol::kSymmetric};

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

// Same fixture as dist_test.cpp: a 20-contig chain with transitive
// shortcuts, junk spurs and a contained fragment — all simplify phases and
// the cross-partition traversal join have work to do.
AsmGraph make_complex_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = random_seq(rng, 3000);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 20; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 140, 220), 6));
  }
  for (int i = 0; i + 1 < 20; ++i) g.add_edge(chain[i], chain[i + 1], 80);
  for (int i = 0; i < 18; i += 3) g.add_edge(chain[i], chain[i + 2], 20);
  const NodeId junk1 = g.add_node(random_seq(rng, 150), 1);
  const NodeId junk2 = g.add_node(random_seq(rng, 150), 1);
  g.add_edge(junk1, chain[5], 60);
  g.add_edge(chain[10], junk2, 60);
  const NodeId small = g.add_node(genome.substr(300, 90), 1);
  g.add_edge(chain[2], small, 90, /*offset_estimate=*/20);
  return g;
}

std::vector<PartId> striped_partition(const AsmGraph& g, PartId parts) {
  std::vector<PartId> part(g.node_count());
  const std::size_t per =
      (g.node_count() + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    part[v] = static_cast<PartId>(v / per);
  }
  return part;
}

void expect_same_graph(const AsmGraph& got, const AsmGraph& want,
                       const std::string& context) {
  ASSERT_EQ(got.node_count(), want.node_count()) << context;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    EXPECT_EQ(got.node_live(v), want.node_live(v)) << context << " node " << v;
  }
  ASSERT_EQ(got.edge_count(), want.edge_count()) << context;
  for (EdgeId e = 0; e < want.edge_count(); ++e) {
    EXPECT_EQ(got.edge(e).removed, want.edge(e).removed)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).verified, want.edge(e).verified)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).overlap, want.edge(e).overlap)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).identity, want.edge(e).identity)
        << context << " edge " << e;
  }
}

void expect_same_stats(const SimplifyStats& got, const SimplifyStats& want,
                       const std::string& context) {
  EXPECT_EQ(got.transitive_edges, want.transitive_edges) << context;
  EXPECT_EQ(got.false_edges, want.false_edges) << context;
  EXPECT_EQ(got.contained_nodes, want.contained_nodes) << context;
  EXPECT_EQ(got.verified_edges, want.verified_edges) << context;
  EXPECT_EQ(got.tip_nodes, want.tip_nodes) << context;
  EXPECT_EQ(got.bubble_nodes, want.bubble_nodes) << context;
}

// ---------------------------------------------------------------------------
// FOCUS_DIST_PROTOCOL parsing
// ---------------------------------------------------------------------------

// RAII save/restore so the suite never leaks an environment change into
// other tests in the same binary.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(DistProtocolEnv, UnsetAndEmptyDefaultToSymmetric) {
  ScopedEnv env("FOCUS_DIST_PROTOCOL");
  env.unset();
  EXPECT_EQ(dist_protocol_from_env(), DistProtocol::kSymmetric);
  EXPECT_EQ(DistConfig{}.protocol, DistProtocol::kSymmetric);
  env.set("");
  EXPECT_EQ(dist_protocol_from_env(), DistProtocol::kSymmetric);
}

TEST(DistProtocolEnv, NamedProtocolsParse) {
  ScopedEnv env("FOCUS_DIST_PROTOCOL");
  env.set("master");
  EXPECT_EQ(dist_protocol_from_env(), DistProtocol::kMaster);
  EXPECT_EQ(DistConfig{}.protocol, DistProtocol::kMaster);
  env.set("symmetric");
  EXPECT_EQ(dist_protocol_from_env(), DistProtocol::kSymmetric);
  EXPECT_EQ(DistConfig{}.protocol, DistProtocol::kSymmetric);
}

TEST(DistProtocolEnv, TypoThrowsInsteadOfSilentFallback) {
  ScopedEnv env("FOCUS_DIST_PROTOCOL");
  env.set("symetric");
  EXPECT_THROW(dist_protocol_from_env(), Error);
}

// ---------------------------------------------------------------------------
// Master == symmetric equivalence sweep
// ---------------------------------------------------------------------------

class DistProtocolSweep : public ::testing::TestWithParam<int> {};

TEST_P(DistProtocolSweep, SimplifyByteIdenticalToMaster) {
  const int nranks = GetParam();
  for (const PartId parts : {PartId{4}, PartId{8}}) {
    AsmGraph master_g = make_complex_graph(100);
    AsmGraph sym_g = make_complex_graph(100);
    const auto part = striped_partition(master_g, parts);
    SimplifyConfig cfg;
    const auto master = simplify_parallel(master_g, part, parts, cfg, nranks,
                                          {}, 1, {}, {}, kMasterCfg);
    const auto sym = simplify_parallel(sym_g, part, parts, cfg, nranks, {}, 1,
                                       {}, {}, kSymmetricCfg);
    const std::string context =
        "ranks " + std::to_string(nranks) + " parts " + std::to_string(parts);
    expect_same_stats(sym.stats, master.stats, context);
    expect_same_graph(sym_g, master_g, context);
  }
}

TEST_P(DistProtocolSweep, TraverseByteIdenticalToMaster) {
  const int nranks = GetParam();
  for (const PartId parts : {PartId{4}, PartId{8}}) {
    AsmGraph g = make_complex_graph(200);
    SimplifyConfig cfg;
    simplify_serial(g, cfg);
    const auto part = striped_partition(g, parts);
    const auto master =
        traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kMasterCfg);
    const auto sym =
        traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kSymmetricCfg);
    ASSERT_EQ(sym.paths, master.paths)
        << "ranks " << nranks << " parts " << parts;
  }
}

TEST_P(DistProtocolSweep, TraverseCyclesByteIdenticalToMaster) {
  // Rings spanning partitions: the pointer-jumping stitch must emit every
  // cycle from its minimum sub-path id with the exact master rotation.
  const int nranks = GetParam();
  AsmGraph g;
  Rng rng(18);
  for (const int len : {4, 7}) {
    std::vector<NodeId> ring;
    for (int i = 0; i < len; ++i) {
      ring.push_back(g.add_node(random_seq(rng, 80), 2));
    }
    for (int i = 0; i < len; ++i) {
      g.add_edge(ring[static_cast<std::size_t>(i)],
                 ring[static_cast<std::size_t>((i + 1) % len)], 40);
    }
  }
  const PartId parts = 4;
  const auto part = striped_partition(g, parts);
  const auto master =
      traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kMasterCfg);
  const auto sym =
      traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kSymmetricCfg);
  ASSERT_EQ(sym.paths, master.paths) << "ranks " << nranks;
}

TEST_P(DistProtocolSweep, TraverseMixedChainsAndCyclesByteIdentical) {
  // Stresses the fully symmetric emission: many sub-path groups — disjoint
  // cross-partition chains and rings interleaved — whose pieces route to
  // different group owners, get joined locally, and reach rank 0 as
  // pre-sorted per-owner runs. The master protocol is the oracle at every
  // rank count, so the k-way merge must reproduce its exact path order.
  const int nranks = GetParam();
  AsmGraph g;
  Rng rng(77);
  // Four chains of varying length, node ids interleaved with the rings so
  // the striped partition scatters every structure across partitions.
  std::vector<std::vector<NodeId>> chains(4);
  for (int round = 0; round < 6; ++round) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      if (round < 3 + static_cast<int>(c)) {
        chains[c].push_back(g.add_node(random_seq(rng, 90), 2));
      }
    }
    if (round < 2) {
      std::vector<NodeId> ring;
      for (int i = 0; i < 5 + round; ++i) {
        ring.push_back(g.add_node(random_seq(rng, 70), 2));
      }
      for (std::size_t i = 0; i < ring.size(); ++i) {
        g.add_edge(ring[i], ring[(i + 1) % ring.size()], 30);
      }
    }
  }
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      g.add_edge(chain[i], chain[i + 1], 40);
    }
  }
  for (const PartId parts : {PartId{4}, PartId{8}}) {
    const auto part = striped_partition(g, parts);
    const auto master =
        traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kMasterCfg);
    const auto sym =
        traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kSymmetricCfg);
    ASSERT_EQ(sym.paths, master.paths)
        << "ranks " << nranks << " parts " << parts;
    // Every node appears in exactly one emitted path.
    std::vector<int> seen(g.node_count(), 0);
    for (const auto& path : sym.paths) {
      for (const NodeId v : path) seen[v] += 1;
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(seen[v], g.node_live(v) ? 1 : 0) << "node " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistProtocolSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST(DistProtocol, SymmetricRunStatsAreBitDeterministic) {
  const PartId parts = 8;
  const int nranks = 4;
  SimplifyConfig cfg;
  auto run_once = [&](mpr::RunStats* simplify_run, mpr::RunStats* trav_run) {
    AsmGraph g = make_complex_graph(300);
    const auto part = striped_partition(g, parts);
    const auto s = simplify_parallel(g, part, parts, cfg, nranks, {}, 1, {},
                                     {}, kSymmetricCfg);
    *simplify_run = s.run;
    const auto t =
        traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, kSymmetricCfg);
    *trav_run = t.run;
  };
  mpr::RunStats s1, t1, s2, t2;
  run_once(&s1, &t1);
  run_once(&s2, &t2);
  EXPECT_EQ(s1.makespan, s2.makespan);
  EXPECT_EQ(s1.rank_vtime, s2.rank_vtime);
  EXPECT_EQ(s1.messages, s2.messages);
  EXPECT_EQ(s1.bytes, s2.bytes);
  EXPECT_EQ(t1.makespan, t2.makespan);
  EXPECT_EQ(t1.rank_vtime, t2.rank_vtime);
  EXPECT_EQ(t1.messages, t2.messages);
  EXPECT_EQ(t1.bytes, t2.bytes);
}

TEST(DistProtocol, AssemblerConfigSelectsProtocol) {
  // FocusConfig::dist reaches stages 6 and 7: both protocols end to end
  // through the pipeline façade must agree on contigs and counters.
  const sim::Dataset d = sim::make_dataset(1, /*scale=*/0.15, /*coverage=*/6.0);
  core::FocusConfig cfg;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 50;
  cfg.overlap.min_identity = 0.90;
  cfg.partitions = 4;
  cfg.ranks = 4;
  cfg.dist = kMasterCfg;
  const auto master = core::assemble_reads(d.data.reads, cfg);
  cfg.dist = kSymmetricCfg;
  const auto sym = core::assemble_reads(d.data.reads, cfg);
  EXPECT_EQ(sym.contigs, master.contigs);
  EXPECT_EQ(sym.paths, master.paths);
  expect_same_stats(sym.simplify_stats, master.simplify_stats, "assembler");
}

// ---------------------------------------------------------------------------
// Heavy grid: full pipeline on the simulated datasets (perf-smoke label)
// ---------------------------------------------------------------------------

TEST(DistProtocolHeavy, GridDatasetsRanksByteIdentical) {
  // Datasets D1–D3 through the whole pipeline: at every rank count the
  // master run is the oracle and the symmetric protocol must reproduce its
  // simplified graph, contigs, paths and counters. The oracle runs per rank
  // count because the master protocol's own path order follows its gather
  // order (partitions striped p % ranks) — equivalence is per sweep point.
  for (const int ds : {1, 2, 3}) {
    const sim::Dataset d =
        sim::make_dataset(ds, /*scale=*/0.25, /*coverage=*/6.0);
    core::FocusConfig cfg;
    cfg.overlap.k = 14;
    cfg.overlap.min_kmer_hits = 3;
    cfg.overlap.min_overlap = 50;
    cfg.overlap.min_identity = 0.90;
    cfg.partitions = 8;
    for (const int nranks : {1, 2, 4, 8}) {
      cfg.ranks = nranks;
      cfg.dist = kMasterCfg;
      const auto master = core::assemble_reads(d.data.reads, cfg);
      cfg.dist = kSymmetricCfg;
      const auto sym = core::assemble_reads(d.data.reads, cfg);
      const std::string context =
          "dataset " + std::to_string(ds) + " ranks " + std::to_string(nranks);
      EXPECT_EQ(sym.contigs, master.contigs) << context;
      ASSERT_EQ(sym.paths, master.paths) << context;
      expect_same_stats(sym.simplify_stats, master.simplify_stats, context);
      expect_same_graph(sym.assembly_graph, master.assembly_graph, context);
      EXPECT_EQ(sym.stats.n50, master.stats.n50) << context;
      EXPECT_EQ(sym.stats.total_bases, master.stats.total_bases) << context;
    }
  }
}

}  // namespace
}  // namespace focus::dist
