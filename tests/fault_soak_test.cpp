// Whole-pipeline chaos soak (ctest label: soak): the full FocusAssembler —
// preprocess, distributed-index overlap, coarsen, hybrid, partition,
// simplify, traverse — run under crash sweeps and mixed-fault storms
// (crashes, drops, duplicates, corruption, delays), across both wire
// protocols and both graph-store backends. Every run must recover the
// byte-identical fault-free assembly, and same-seed runs must produce
// bit-identical RunStats. The heavier sweep lives in bench/bench_fault_soak
// (BENCH_fault_soak.json); this suite is the CI-sized core of it.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/assembler.hpp"
#include "sim/datasets.hpp"

namespace focus::core {
namespace {

const sim::Dataset& soak_dataset() {
  static const sim::Dataset d =
      sim::make_dataset(1, /*scale=*/0.15, /*coverage=*/6.0);
  return d;
}

FocusConfig soak_config(dist::DistProtocol protocol,
                        graph::GraphStoreBackend backend) {
  FocusConfig cfg;
  cfg.overlap.strategy = align::SeedStrategy::kDistributedIndex;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.coarsen.max_levels = 8;
  cfg.partitions = 4;
  cfg.ranks = 4;
  cfg.min_contig_length = 150;
  // Pin everything the environment could perturb: the soak controls its own
  // fault schedule.
  cfg.fault_plan = mpr::FaultPlan{};
  cfg.fault = mpr::FaultConfig{};
  cfg.fault.max_retries = 32;
  cfg.dist.protocol = protocol;
  cfg.graph_store = graph::GraphStoreConfig{};
  cfg.graph_store.backend = backend;
  return cfg;
}

/// The fault-free oracle. Protocols and backends are output-equivalent, so
/// one oracle serves every configuration under test.
const AssemblyResult& oracle() {
  static const AssemblyResult result = assemble_reads(
      soak_dataset().data.reads,
      soak_config(dist::DistProtocol::kMaster,
                  graph::GraphStoreBackend::kInMemory));
  return result;
}

void expect_same_assembly(const AssemblyResult& got, const std::string& ctx) {
  const AssemblyResult& want = oracle();
  ASSERT_EQ(got.contigs, want.contigs) << ctx;
  EXPECT_EQ(got.stats.n50, want.stats.n50) << ctx;
  EXPECT_EQ(got.stats.total_bases, want.stats.total_bases) << ctx;
  ASSERT_EQ(got.paths, want.paths) << ctx;
  EXPECT_EQ(got.partitioning.finest_cut, want.partitioning.finest_cut) << ctx;
  EXPECT_EQ(got.reads.size(), want.reads.size()) << ctx;
  EXPECT_EQ(got.overlaps.size(), want.overlaps.size()) << ctx;
}

mpr::FaultPlan storm_plan(std::uint64_t seed) {
  mpr::FaultPlan plan;
  plan.seed = seed * 31 + 17;
  plan.p_drop = 0.02;
  plan.p_duplicate = 0.02;
  plan.p_corrupt = 0.02;
  plan.p_delay = 0.02;
  return plan;
}

// 50 seeds of mixed message faults through the full pipeline, spread over
// protocol × backend so every combination sees storms.
TEST(FaultSoak, FiftySeedStormsRecoverByteIdenticalAssembly) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const auto protocol = (seed % 2 == 0) ? dist::DistProtocol::kMaster
                                          : dist::DistProtocol::kSymmetric;
    const auto backend = (seed % 4 < 2) ? graph::GraphStoreBackend::kInMemory
                                        : graph::GraphStoreBackend::kCsrSpill;
    FocusConfig cfg = soak_config(protocol, backend);
    cfg.fault_plan = storm_plan(seed);
    const auto got = assemble_reads(soak_dataset().data.reads, cfg);
    expect_same_assembly(
        got, "seed " + std::to_string(seed) +
                 (protocol == dist::DistProtocol::kSymmetric ? " symmetric"
                                                             : " master") +
                 (backend == graph::GraphStoreBackend::kCsrSpill
                      ? " csr-spill"
                      : " memory"));
  }
}

// Crash one rank at a sweep of op positions — the pipeline runs many
// Runtime::execute sessions, so early ops hit preprocess and overlap while
// later ones land in partition/simplify/traverse.
TEST(FaultSoak, CrashSweepThroughPipelineRecovers) {
  for (const auto protocol :
       {dist::DistProtocol::kMaster, dist::DistProtocol::kSymmetric}) {
    // The master protocol cannot lose rank 0; the symmetric one can.
    const Rank first_victim = protocol == dist::DistProtocol::kMaster ? 1 : 0;
    for (Rank victim = first_victim; victim < 3; ++victim) {
      for (std::uint64_t op = 1; op <= 8; op += 1) {
        FocusConfig cfg =
            soak_config(protocol, graph::GraphStoreBackend::kInMemory);
        cfg.fault_plan.crashes.push_back({victim, op});
        const auto got = assemble_reads(soak_dataset().data.reads, cfg);
        expect_same_assembly(
            got, std::string(protocol == dist::DistProtocol::kSymmetric
                                 ? "symmetric"
                                 : "master") +
                     " rank " + std::to_string(victim) + " crashed at op " +
                     std::to_string(op));
      }
    }
  }
}

// Same seed, same config => bit-identical virtual-time accounting, down to
// the RunStats of every recovered stage.
TEST(FaultSoak, SameSeedStormIsBitIdentical) {
  FocusConfig cfg = soak_config(dist::DistProtocol::kSymmetric,
                                graph::GraphStoreBackend::kInMemory);
  cfg.fault_plan = storm_plan(7);
  const auto a = assemble_reads(soak_dataset().data.reads, cfg);
  const auto b = assemble_reads(soak_dataset().data.reads, cfg);
  ASSERT_EQ(a.contigs, b.contigs);
  EXPECT_EQ(a.simplify_run.makespan, b.simplify_run.makespan);
  EXPECT_EQ(a.simplify_run.rank_vtime, b.simplify_run.rank_vtime);
  EXPECT_EQ(a.simplify_run.messages, b.simplify_run.messages);
  EXPECT_EQ(a.simplify_run.bytes, b.simplify_run.bytes);
  EXPECT_EQ(a.simplify_run.retries, b.simplify_run.retries);
  EXPECT_EQ(a.simplify_run.ranks_failed, b.simplify_run.ranks_failed);
  EXPECT_EQ(a.simplify_run.recovery_vtime, b.simplify_run.recovery_vtime);
  EXPECT_EQ(a.traverse_run.makespan, b.traverse_run.makespan);
  EXPECT_EQ(a.traverse_run.retries, b.traverse_run.retries);
  for (const auto& [stage, timing] : a.timings) {
    const auto it = b.timings.find(stage);
    ASSERT_NE(it, b.timings.end()) << stage;
    EXPECT_EQ(timing.vtime, it->second.vtime) << stage;
  }
}

// The csr-spill backend's nth-write disk fault (a simulated mid-write crash,
// retried from the intact payload) composes with a message-fault storm: both
// recovery paths fire in one run and the assembly is still byte-identical.
TEST(FaultSoak, DiskWriteFaultComposesWithMessageStorm) {
  FocusConfig cfg = soak_config(dist::DistProtocol::kSymmetric,
                                graph::GraphStoreBackend::kCsrSpill);
  cfg.fault_plan = storm_plan(11);
  cfg.graph_store.write_fault_nth = 2;
  const auto got = assemble_reads(soak_dataset().data.reads, cfg);
  expect_same_assembly(got, "disk fault + storm");
}

}  // namespace
}  // namespace focus::core
