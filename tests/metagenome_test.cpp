// Metagenome-level integration tests: assembling a multi-genus community and
// checking genus separation, classification agreement, and the Fig. 7
// community-structure signal end to end.
#include <gtest/gtest.h>

#include "core/assembler.hpp"
#include "core/classify.hpp"
#include "core/community.hpp"
#include "partition/partition.hpp"
#include "sim/datasets.hpp"

namespace focus::core {
namespace {

struct MetagenomeRun {
  sim::Dataset dataset;
  AssemblyResult result;
};

const MetagenomeRun& shared_run() {
  static const MetagenomeRun run = [] {
    MetagenomeRun r;
    r.dataset = sim::make_dataset(1, /*scale=*/0.35, /*coverage=*/10.0);
    FocusConfig cfg;
    cfg.partitions = 16;
    cfg.ranks = 4;
    cfg.overlap.subsets = 3;
    r.result = assemble_reads(r.dataset.data.reads, cfg);
    return r;
  }();
  return run;
}

TEST(Metagenome, ProducesSubstantialAssembly) {
  const auto& run = shared_run();
  EXPECT_GT(run.result.contigs.size(), 20u);
  EXPECT_GT(run.result.stats.n50, 150u);
  EXPECT_GT(run.result.stats.total_bases,
            run.dataset.community.total_genome_bases() / 4);
}

TEST(Metagenome, ContigsAreGenusPure) {
  // Classify assembled contigs against the reference genomes: bulk sequence
  // diverges 15% between genera, so a correctly assembled (non-chimeric)
  // contig classifies cleanly.
  const auto& run = shared_run();
  const KmerClassifier classifier(run.dataset.community, 21);
  std::size_t classified = 0, total_long = 0;
  for (const auto& contig : run.result.contigs) {
    if (contig.size() < 200) continue;
    ++total_long;
    if (classifier.classify(contig) != kUnclassified) ++classified;
  }
  ASSERT_GT(total_long, 10u);
  EXPECT_GT(static_cast<double>(classified) / static_cast<double>(total_long),
            0.9);
}

TEST(Metagenome, GroundTruthAndClassifierAgreeOnReads) {
  const auto& run = shared_run();
  const KmerClassifier classifier(run.dataset.community, 21);
  std::size_t agree = 0, both = 0;
  for (ReadId i = 0; i < run.result.reads.size(); ++i) {
    const ReadId origin = run.result.reads[i].origin;
    if (origin == kInvalidRead) continue;
    const auto truth = run.dataset.data.provenance[origin].genus;
    const auto called = classifier.classify(run.result.reads[i].seq);
    if (called == kUnclassified) continue;
    ++both;
    if (called == truth) ++agree;
  }
  ASSERT_GT(both, run.result.reads.size() / 2);
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(both), 0.95);
}

TEST(Metagenome, PartitioningExposesCommunityStructure) {
  // The Fig. 7 signal as a hard assertion: genus concentration far above
  // uniform and within-phylum correlation above between-phyla correlation.
  const auto& run = shared_run();
  std::vector<std::uint32_t> truth(run.result.reads.size(), kUnclassified);
  for (ReadId i = 0; i < run.result.reads.size(); ++i) {
    const ReadId origin = run.result.reads[i].origin;
    if (origin != kInvalidRead) {
      truth[i] = run.dataset.data.provenance[origin].genus;
    }
  }
  std::vector<std::string> names, phyla;
  for (const auto& g : run.dataset.community.genera) {
    names.push_back(g.name);
    phyla.push_back(g.phylum);
  }
  const auto matrix = genus_partition_distribution(
      truth, run.result.read_partition, names, 16);
  const auto conc = concentration(matrix);
  double mean_conc = 0.0;
  for (const double c : conc) mean_conc += c;
  mean_conc /= static_cast<double>(conc.size());
  EXPECT_GT(mean_conc, 2.5 / 16.0);  // at least 2.5x uniform

  const auto cc = phylum_coclustering(matrix, phyla);
  EXPECT_GT(cc.within_phylum, cc.between_phyla);
}

TEST(Metagenome, HybridGraphMuchSmallerThanOverlapGraph) {
  const auto& run = shared_run();
  EXPECT_LT(run.result.hybrid.hybrid_graph().node_count() * 2,
            run.result.overlap_graph.node_count());
}

TEST(Metagenome, EdgeCutSmallFractionOfTotalWeight) {
  // Paper Table II: cuts are a small fraction of the total overlap-graph
  // edge weight.
  const auto& run = shared_run();
  const auto cut = partition::edge_cut(run.result.overlap_graph,
                                       run.result.read_partition);
  EXPECT_LT(static_cast<double>(cut),
            0.1 * static_cast<double>(
                      run.result.overlap_graph.total_edge_weight()));
}

}  // namespace
}  // namespace focus::core
