// Tests for the metagenome simulator: genomes, phylogeny, read sampling,
// ground-truth provenance, dataset registry.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "sim/community.hpp"
#include "sim/datasets.hpp"
#include "sim/genome.hpp"
#include "sim/sequencer.hpp"

namespace focus::sim {
namespace {

TEST(Genome, RandomGenomeHasRequestedLengthAndAlphabet) {
  Rng rng(1);
  const auto g = random_genome(5000, rng);
  EXPECT_EQ(g.size(), 5000u);
  EXPECT_TRUE(dna::is_clean(g));
}

TEST(Genome, RandomGenomeBalancedComposition) {
  Rng rng(2);
  const auto g = random_genome(40000, rng);
  for (const char base : {'A', 'C', 'G', 'T'}) {
    const auto count = std::count(g.begin(), g.end(), base);
    EXPECT_NEAR(static_cast<double>(count) / static_cast<double>(g.size()),
                0.25, 0.02);
  }
}

TEST(Genome, MutationRateApproximatelyRealized) {
  Rng rng(3);
  const auto g = random_genome(20000, rng);
  MutationConfig mc;
  mc.substitution_rate = 0.10;
  const auto m = mutate_genome(g, mc, rng);
  ASSERT_EQ(m.size(), g.size());  // no indels configured
  EXPECT_NEAR(approximate_identity(g, m), 0.90, 0.01);
}

TEST(Genome, ZeroRatesAreIdentity) {
  Rng rng(4);
  const auto g = random_genome(1000, rng);
  EXPECT_EQ(mutate_genome(g, MutationConfig{}, rng), g);
}

TEST(Genome, IndelsChangeLengthModestly) {
  Rng rng(5);
  const auto g = random_genome(10000, rng);
  MutationConfig mc;
  mc.insertion_rate = 0.01;
  mc.deletion_rate = 0.01;
  const auto m = mutate_genome(g, mc, rng);
  EXPECT_NE(m.size(), g.size());
  EXPECT_NEAR(static_cast<double>(m.size()),
              static_cast<double>(g.size()), 0.05 * g.size());
}

TEST(Genome, InjectRepeatsKeepsLength) {
  Rng rng(6);
  auto g = random_genome(5000, rng);
  const auto before = g.size();
  inject_repeats(g, 200, 3, rng);
  EXPECT_EQ(g.size(), before);
  EXPECT_TRUE(dna::is_clean(g));
}

TEST(Genome, InjectRepeatsNoopOnTinyGenome) {
  Rng rng(7);
  auto g = random_genome(100, rng);
  const auto copy = g;
  inject_repeats(g, 200, 3, rng);  // genome < 2 * repeat_len
  EXPECT_EQ(g, copy);
}

// ---------------------------------------------------------------------------
// Community / phylogeny
// ---------------------------------------------------------------------------

PhylogenyConfig small_phylo() {
  PhylogenyConfig cfg;
  cfg.genome_length = 6000;
  return cfg;
}

TEST(Community, BuildsRequestedGenera) {
  Rng rng(10);
  const auto c = build_community({{"GenA", "PhyX", 2.0},
                                  {"GenB", "PhyX", 1.0},
                                  {"GenC", "PhyY", 1.0}},
                                 small_phylo(), rng);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.genera[0].name, "GenA");
  EXPECT_EQ(c.genera[2].phylum, "PhyY");
  EXPECT_EQ(c.index_of("GenB"), 1u);
  EXPECT_THROW(c.index_of("Nope"), Error);
  EXPECT_EQ(c.phyla(), (std::vector<std::string>{"PhyX", "PhyY"}));
}

TEST(Community, NormalizedAbundanceSumsToOne) {
  Rng rng(11);
  const auto c = build_community({{"A", "P", 3.0}, {"B", "P", 1.0}},
                                 small_phylo(), rng);
  const auto ab = c.normalized_abundance();
  EXPECT_NEAR(ab[0], 0.75, 1e-12);
  EXPECT_NEAR(ab[1], 0.25, 1e-12);
}

TEST(Community, WithinPhylumMoreSimilarThanBetween) {
  Rng rng(12);
  const auto c = build_community({{"A1", "P1", 1.0},
                                  {"A2", "P1", 1.0},
                                  {"B1", "P2", 1.0}},
                                 small_phylo(), rng);
  const double within =
      approximate_identity(c.genera[0].genome, c.genera[1].genome);
  const double between =
      approximate_identity(c.genera[0].genome, c.genera[2].genome);
  EXPECT_GT(within, between + 0.05);
}

TEST(Community, BulkDivergenceSeparatesGenera) {
  // Bulk identity between same-phylum genera must be low enough that 100 bp
  // overlaps fail a 90% identity gate; the conserved segments are the
  // exception by design.
  Rng rng(13);
  PhylogenyConfig cfg = small_phylo();
  cfg.conserved_segments = 0;  // look at bulk only
  cfg.indel_rate = 0.0;
  const auto c = build_community({{"A1", "P1", 1.0}, {"A2", "P1", 1.0}},
                                 cfg, rng);
  const double identity =
      approximate_identity(c.genera[0].genome, c.genera[1].genome);
  // Two genomes at genus_divergence = 0.15 each from the ancestor.
  EXPECT_LT(identity, 0.80);
}

TEST(Community, RejectsBadInputs) {
  Rng rng(14);
  EXPECT_THROW(build_community({}, small_phylo(), rng), Error);
  EXPECT_THROW(build_community({{"A", "P", 0.0}}, small_phylo(), rng), Error);
  PhylogenyConfig tiny;
  tiny.genome_length = 10;
  EXPECT_THROW(build_community({{"A", "P", 1.0}}, tiny, rng), Error);
}

// ---------------------------------------------------------------------------
// Sequencer
// ---------------------------------------------------------------------------

Community one_genus_community(Rng& rng, std::size_t len = 5000) {
  PhylogenyConfig cfg;
  cfg.genome_length = len;
  cfg.repeat_copies = 0;
  return build_community({{"Solo", "P", 1.0}}, cfg, rng);
}

TEST(Sequencer, ProducesExpectedReadCountAndLengths) {
  Rng rng(20);
  const auto c = one_genus_community(rng);
  SequencerConfig cfg;
  cfg.read_length = 80;
  cfg.coverage = 10.0;
  const auto sim = shotgun_sequence(c, cfg, rng);
  const auto expected =
      static_cast<std::size_t>(10.0 * c.total_genome_bases() / 80.0);
  EXPECT_EQ(sim.size(), expected);
  ASSERT_EQ(sim.provenance.size(), sim.reads.size());
  for (const auto& r : sim.reads) {
    EXPECT_EQ(r.seq.size(), 80u);
    EXPECT_EQ(r.qual.size(), 80u);
  }
}

TEST(Sequencer, ProvenanceLocatesReads) {
  Rng rng(21);
  const auto c = one_genus_community(rng);
  SequencerConfig cfg;
  cfg.read_length = 100;
  cfg.coverage = 3.0;
  cfg.error_rate_5p = 0.0;
  cfg.error_rate_3p = 0.0;
  cfg.bad_tail_fraction = 0.0;
  const auto sim = shotgun_sequence(c, cfg, rng);
  for (ReadId i = 0; i < sim.reads.size(); ++i) {
    const auto& prov = sim.provenance[i];
    ASSERT_LT(prov.position + 100, c.genera[0].genome.size() + 1);
    std::string truth = c.genera[0].genome.substr(prov.position, 100);
    if (prov.reverse_strand) truth = dna::reverse_complement(truth);
    EXPECT_EQ(sim.reads[i].seq, truth) << "read " << i;
  }
}

TEST(Sequencer, ErrorRateWithinExpectedBand) {
  Rng rng(22);
  const auto c = one_genus_community(rng, 20000);
  SequencerConfig cfg;
  cfg.read_length = 100;
  cfg.coverage = 5.0;
  cfg.error_rate_5p = 0.01;
  cfg.error_rate_3p = 0.01;
  cfg.bad_tail_fraction = 0.0;
  const auto sim = shotgun_sequence(c, cfg, rng);
  std::uint64_t mismatches = 0, bases = 0;
  for (ReadId i = 0; i < sim.reads.size(); ++i) {
    const auto& prov = sim.provenance[i];
    std::string truth = c.genera[0].genome.substr(prov.position, 100);
    if (prov.reverse_strand) truth = dna::reverse_complement(truth);
    for (std::size_t j = 0; j < truth.size(); ++j) {
      if (truth[j] != sim.reads[i].seq[j]) ++mismatches;
      ++bases;
    }
  }
  EXPECT_NEAR(static_cast<double>(mismatches) / static_cast<double>(bases),
              0.01, 0.003);
}

TEST(Sequencer, QualityDeclinesTowardThreePrime) {
  Rng rng(23);
  const auto c = one_genus_community(rng);
  SequencerConfig cfg;
  cfg.bad_tail_fraction = 0.0;
  const auto sim = shotgun_sequence(c, cfg, rng);
  double q_start = 0.0, q_end = 0.0;
  for (const auto& r : sim.reads) {
    q_start += r.qual.front() - '!';
    q_end += r.qual.back() - '!';
  }
  EXPECT_GT(q_start / sim.size(), q_end / sim.size() + 8.0);
}

TEST(Sequencer, AbundanceDrivesGenusSampling) {
  Rng rng(24);
  PhylogenyConfig pc;
  pc.genome_length = 4000;
  const auto c = build_community({{"Hi", "P", 9.0}, {"Lo", "P", 1.0}}, pc, rng);
  SequencerConfig cfg;
  cfg.coverage = 20.0;
  const auto sim = shotgun_sequence(c, cfg, rng);
  std::size_t hi = 0;
  for (const auto& p : sim.provenance) {
    if (p.genus == 0) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / sim.size(), 0.9, 0.03);
}

TEST(Sequencer, RejectsImpossibleConfigs) {
  Rng rng(25);
  const auto c = one_genus_community(rng, 1000);
  SequencerConfig cfg;
  cfg.read_length = 5000;  // longer than the genome
  EXPECT_THROW(shotgun_sequence(c, cfg, rng), Error);
  SequencerConfig cfg2;
  cfg2.coverage = -1.0;
  EXPECT_THROW(shotgun_sequence(c, cfg2, rng), Error);
}

// ---------------------------------------------------------------------------
// Dataset registry
// ---------------------------------------------------------------------------

TEST(Datasets, ThreeDatasetsWithPaperGenera) {
  EXPECT_EQ(dataset_count(), 3);
  const auto& table = genus_phylum_table();
  EXPECT_EQ(table.size(), 10u);
  // Spot-check the phylum assignments the paper discusses.
  for (const auto& [genus, phylum] : table) {
    if (genus == "Roseburia" || genus == "Clostridium" ||
        genus == "Eubacterium") {
      EXPECT_EQ(phylum, "Firmicutes") << genus;
    }
    if (genus == "Bacteroides" || genus == "Prevotella") {
      EXPECT_EQ(phylum, "Bacteroidetes") << genus;
    }
  }
}

TEST(Datasets, MakeDatasetDeterministic) {
  const auto a = make_dataset(1, 0.25, 4.0);
  const auto b = make_dataset(1, 0.25, 4.0);
  EXPECT_EQ(a.name, "D1");
  EXPECT_EQ(a.sra_analog, "SRR513170");
  ASSERT_EQ(a.data.size(), b.data.size());
  for (ReadId i = 0; i < a.data.size(); ++i) {
    EXPECT_EQ(a.data.reads[i].seq, b.data.reads[i].seq);
  }
}

TEST(Datasets, DatasetsDiffer) {
  const auto d1 = make_dataset(1, 0.25, 3.0);
  const auto d2 = make_dataset(2, 0.25, 3.0);
  EXPECT_NE(d1.community.genera[0].genome, d2.community.genera[0].genome);
}

TEST(Datasets, HundredBpReadsLikePaper) {
  const auto d = make_dataset(3, 0.25, 3.0);
  EXPECT_EQ(d.read_length(), 100u);
  EXPECT_EQ(d.community.size(), 10u);
}

TEST(Datasets, InvalidIndexRejected) {
  EXPECT_THROW(make_dataset(0), Error);
  EXPECT_THROW(make_dataset(4), Error);
  EXPECT_THROW(make_dataset(1, -1.0), Error);
}

}  // namespace
}  // namespace focus::sim
