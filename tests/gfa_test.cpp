// Tests for GFA 1.0 export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "dist/gfa.hpp"

namespace focus::dist {
namespace {

AsmGraph small_graph() {
  AsmGraph g;
  g.add_node("ACGTACGT", 3);
  g.add_node("TACGTTTT", 5);
  g.add_node("GGGG", 1);
  g.add_edge(0, 1, 5);
  g.add_edge(1, 2, 2);
  return g;
}

TEST(Gfa, WritesHeaderSegmentsAndLinks) {
  const AsmGraph g = small_graph();
  std::ostringstream out;
  write_gfa(out, g);
  const std::string text = out.str();
  EXPECT_NE(text.find("H\tVN:Z:1.0\n"), std::string::npos);
  EXPECT_NE(text.find("S\tc0\tACGTACGT\tRC:i:3\n"), std::string::npos);
  EXPECT_NE(text.find("S\tc1\tTACGTTTT\tRC:i:5\n"), std::string::npos);
  EXPECT_NE(text.find("L\tc0\t+\tc1\t+\t5M\n"), std::string::npos);
  EXPECT_NE(text.find("L\tc1\t+\tc2\t+\t2M\n"), std::string::npos);
}

TEST(Gfa, SkipsRemovedNodesAndTheirLinks) {
  AsmGraph g = small_graph();
  g.remove_node(1);
  std::ostringstream out;
  write_gfa(out, g);
  const std::string text = out.str();
  EXPECT_EQ(text.find("S\tc1"), std::string::npos);
  EXPECT_EQ(text.find("L\t"), std::string::npos);  // both links touched c1
  EXPECT_NE(text.find("S\tc0"), std::string::npos);
}

TEST(Gfa, MinSegmentLengthFilters) {
  const AsmGraph g = small_graph();
  GfaOptions options;
  options.min_segment_length = 6;
  std::ostringstream out;
  write_gfa(out, g, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("S\tc0"), std::string::npos);
  EXPECT_EQ(text.find("S\tc2"), std::string::npos);  // 4 bp < 6
  // The c1 -> c2 link is suppressed with its endpoint.
  EXPECT_EQ(text.find("L\tc1\t+\tc2"), std::string::npos);
}

TEST(Gfa, TagsCanBeDisabled) {
  const AsmGraph g = small_graph();
  GfaOptions options;
  options.read_count_tags = false;
  std::ostringstream out;
  write_gfa(out, g, options);
  EXPECT_EQ(out.str().find("RC:i:"), std::string::npos);
}

TEST(Gfa, FileWriteFailsOnBadPath) {
  const AsmGraph g = small_graph();
  EXPECT_THROW(write_gfa_file("/nonexistent/dir/out.gfa", g), Error);
}

}  // namespace
}  // namespace focus::dist
