// Tests for core components: assembly stats, contig dedup, the k-mer
// classifier, community analysis, and assembly-graph construction.
#include <gtest/gtest.h>

#include <set>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "core/asm_build.hpp"
#include "core/classify.hpp"
#include "core/community.hpp"
#include "core/stats.hpp"
#include "sim/datasets.hpp"
#include "sim/sequencer.hpp"

namespace focus::core {
namespace {

// ---------------------------------------------------------------------------
// Assembly stats
// ---------------------------------------------------------------------------

TEST(AssemblyStats, Basics) {
  const auto s = assembly_stats({"ACGTACGTAC", "ACGT", "ACGTAC"});
  EXPECT_EQ(s.contig_count, 3u);
  EXPECT_EQ(s.total_bases, 20u);
  EXPECT_EQ(s.max_contig, 10u);
  EXPECT_EQ(s.n50, 10u);  // 10 >= 10 (half of 20)
  EXPECT_NEAR(s.mean_length, 20.0 / 3.0, 1e-9);
}

TEST(AssemblyStats, Empty) {
  const auto s = assembly_stats({});
  EXPECT_EQ(s.contig_count, 0u);
  EXPECT_EQ(s.n50, 0u);
  EXPECT_EQ(s.max_contig, 0u);
}

TEST(DedupeContigs, CollapsesReverseComplementTwins) {
  const std::string a = "ACGTTACCGGA";
  const auto out = dedupe_contigs({a, dna::reverse_complement(a)}, 1);
  EXPECT_EQ(out.size(), 1u);
}

TEST(DedupeContigs, KeepsDistinctContigs) {
  const auto out = dedupe_contigs({"AAAATTTTCCC", "GGGGCCCCAAA"}, 1);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DedupeContigs, DropsShortAndSortsByLength) {
  const auto out = dedupe_contigs({"ACG", "AAAACCCCGGGG", "TTTTTAAAAA"}, 5);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 12u);
  EXPECT_EQ(out[1].size(), 10u);
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST(Classifier, ClassifiesSimulatedReadsAccurately) {
  const auto ds = sim::make_dataset(1, /*scale=*/0.4, /*coverage=*/2.0);
  const KmerClassifier classifier(ds.community, 21);
  std::size_t correct = 0, classified = 0;
  for (ReadId i = 0; i < ds.data.size(); ++i) {
    const auto genus = classifier.classify(ds.data.reads[i].seq);
    if (genus == kUnclassified) continue;
    ++classified;
    if (genus == ds.data.provenance[i].genus) ++correct;
  }
  ASSERT_GT(classified, ds.data.size() * 9 / 10);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(classified),
            0.95);
}

TEST(Classifier, UnrelatedSequenceUnclassified) {
  const auto ds = sim::make_dataset(2, 0.25, 1.0);
  const KmerClassifier classifier(ds.community, 21);
  // A sequence from a different dataset's community (unrelated root genome).
  const auto other = sim::make_dataset(1, 0.25, 1.0);
  const std::string foreign = other.community.genera[0].genome.substr(0, 100);
  EXPECT_EQ(classifier.classify(foreign), kUnclassified);
}

TEST(Classifier, HandlesReverseStrandReads) {
  const auto ds = sim::make_dataset(3, 0.25, 1.0);
  const KmerClassifier classifier(ds.community, 21);
  const std::string fwd = ds.community.genera[4].genome.substr(500, 100);
  EXPECT_EQ(classifier.classify(fwd), 4u);
  EXPECT_EQ(classifier.classify(dna::reverse_complement(fwd)), 4u);
}

TEST(Classifier, RejectsBadK) {
  const auto ds = sim::make_dataset(1, 0.25, 1.0);
  EXPECT_THROW(KmerClassifier(ds.community, 5), Error);
  EXPECT_THROW(KmerClassifier(ds.community, 40), Error);
}

// ---------------------------------------------------------------------------
// Community analysis
// ---------------------------------------------------------------------------

TEST(Community, FractionsSumToOnePerGenus) {
  const std::vector<std::uint32_t> genus = {0, 0, 0, 1, 1, kUnclassified};
  const std::vector<PartId> part = {0, 0, 1, 1, 1, 0};
  const auto m = genus_partition_distribution(genus, part, {"A", "B"}, 2);
  EXPECT_EQ(m.classified_reads[0], 3u);
  EXPECT_EQ(m.classified_reads[1], 2u);
  EXPECT_NEAR(m.fraction[0][0] + m.fraction[0][1], 1.0, 1e-12);
  EXPECT_NEAR(m.fraction[0][0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.fraction[1][1], 1.0, 1e-12);
}

TEST(Community, SkipsUnassignedReads) {
  const std::vector<std::uint32_t> genus = {0, 0};
  const std::vector<PartId> part = {kNoPart, 0};
  const auto m = genus_partition_distribution(genus, part, {"A"}, 2);
  EXPECT_EQ(m.classified_reads[0], 1u);
}

TEST(Community, ConcentrationDetectsSkew) {
  GenusPartitionMatrix m;
  m.genus_names = {"uniform", "peaked"};
  m.partitions = 4;
  m.fraction = {{0.25, 0.25, 0.25, 0.25}, {0.85, 0.05, 0.05, 0.05}};
  m.classified_reads = {100, 100};
  const auto c = concentration(m);
  EXPECT_NEAR(c[0], 0.25, 1e-12);
  EXPECT_NEAR(c[1], 0.85, 1e-12);
}

TEST(Community, PhylumCoclusteringMetric) {
  GenusPartitionMatrix m;
  m.genus_names = {"f1", "f2", "b1"};
  m.partitions = 4;
  // f1, f2 share a profile; b1 is anti-correlated.
  m.fraction = {{0.7, 0.2, 0.05, 0.05},
                {0.6, 0.3, 0.05, 0.05},
                {0.05, 0.05, 0.2, 0.7}};
  m.classified_reads = {10, 10, 10};
  const auto cc = phylum_coclustering(m, {"Firmicutes", "Firmicutes",
                                          "Bacteroidetes"});
  EXPECT_GT(cc.within_phylum, 0.8);
  EXPECT_LT(cc.between_phyla, 0.0);
}

TEST(Community, HeatmapRendersAllRows) {
  GenusPartitionMatrix m;
  m.genus_names = {"Alpha", "Beta"};
  m.partitions = 3;
  m.fraction = {{1.0, 0.0, 0.0}, {0.0, 0.5, 0.5}};
  m.classified_reads = {5, 6};
  const auto text = render_heatmap(m);
  EXPECT_NE(text.find("Alpha"), std::string::npos);
  EXPECT_NE(text.find("Beta"), std::string::npos);
  EXPECT_NE(text.find("P0"), std::string::npos);
}

TEST(Community, RejectsMismatchedInputs) {
  EXPECT_THROW(genus_partition_distribution({0}, {0, 1}, {"A"}, 2), Error);
  EXPECT_THROW(genus_partition_distribution({0}, {0}, {"A"}, 0), Error);
}

// ---------------------------------------------------------------------------
// Assembly-graph construction
// ---------------------------------------------------------------------------

TEST(AsmBuild, BuildsContigsFromLayouts) {
  // Hand-craft a tiny hybrid set: two clusters, each a 2-read chain, plus a
  // read-level edge between the clusters.
  io::ReadSet reads;
  const std::string genome =
      "ACGTACGGTTACACGGATTACAGGCATTACGGATCAGGTACCATGGCAATTGGCCATGCATGCA";
  reads.add(io::Read{"r0", genome.substr(0, 24), "", 0, false});
  reads.add(io::Read{"r1", genome.substr(12, 24), "", 1, false});
  reads.add(io::Read{"r2", genome.substr(24, 24), "", 2, false});
  reads.add(io::Read{"r3", genome.substr(36, 24), "", 3, false});

  graph::Digraph read_graph(4);
  read_graph.add_edge(0, 1, 12);
  read_graph.add_edge(1, 2, 12);  // cross-cluster edge
  read_graph.add_edge(2, 3, 12);
  read_graph.finalize();

  graph::HybridGraphSet hybrid;
  hybrid.cluster_reads = {{0, 1}, {2, 3}};
  hybrid.layouts = {{{0, 12}, {1, 0}}, {{2, 12}, {3, 0}}};

  const auto built = build_assembly_graph(hybrid, read_graph, reads);
  ASSERT_EQ(built.graph.node_count(), 2u);
  EXPECT_EQ(built.graph.node(0).contig, genome.substr(0, 36));
  EXPECT_EQ(built.graph.node(1).contig, genome.substr(24, 36));
  EXPECT_EQ(built.cluster_of[0], 0u);
  EXPECT_EQ(built.cluster_of[3], 1u);
  // One inter-cluster edge with the geometric overlap estimate:
  // cluster 1 starts at genome offset 24; cluster 0 spans [0, 36) -> 12 bp.
  ASSERT_EQ(built.graph.edge_count(), 1u);
  const auto& e = built.graph.edge(0);
  EXPECT_EQ(e.from, 0u);
  EXPECT_EQ(e.to, 1u);
  EXPECT_EQ(e.overlap, 12u);
  EXPECT_EQ(e.offset, 24u);
}

TEST(AsmBuild, ContainedReadsGetClusterButNoOffset) {
  io::ReadSet reads;
  reads.add(io::Read{"r0", std::string(30, 'A'), "", 0, false});
  reads.add(io::Read{"r1", std::string(20, 'A'), "", 1, false});
  graph::Digraph read_graph(2);
  read_graph.mark_contained(1);
  read_graph.finalize();
  graph::HybridGraphSet hybrid;
  hybrid.cluster_reads = {{0, 1}};
  hybrid.layouts = {{{0, 0}}};
  const auto built = build_assembly_graph(hybrid, read_graph, reads);
  EXPECT_EQ(built.graph.node_count(), 1u);
  EXPECT_EQ(built.cluster_of[1], 0u);
  EXPECT_EQ(built.graph.node(0).reads, 2);
}

}  // namespace
}  // namespace focus::core
