// Tests for the shared-memory work-stealing pool and for the determinism
// contract of everything built on it: pooled overlap detection, parallel
// heavy-edge-matching scoring, and the full pipeline must produce
// byte-identical results at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "align/overlapper.hpp"
#include "common/dna.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/assembler.hpp"
#include "graph/coarsen.hpp"
#include "graph/graph.hpp"
#include "io/preprocess.hpp"
#include "partition/partition.hpp"
#include "sim/community.hpp"
#include "sim/genome.hpp"
#include "sim/sequencer.hpp"

namespace focus {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, FocusThreadsEnvControlsAutoWidth) {
  ASSERT_EQ(setenv("FOCUS_THREADS", "3", 1), 0);
  EXPECT_EQ(default_thread_count(), 3u);
  EXPECT_EQ(resolve_thread_count(0), 3u);
  EXPECT_EQ(resolve_thread_count(5), 5u);  // explicit request wins

  // "0" means auto (hardware concurrency), and unset falls back the same way.
  ASSERT_EQ(setenv("FOCUS_THREADS", "0", 1), 0);
  EXPECT_GE(default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("FOCUS_THREADS"), 0);
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, FocusThreadsRejectsMalformedValues) {
  // Malformed or out-of-range widths are configuration errors, not silent
  // hardware fallbacks: the typed error names the variable and the value.
  for (const char* bad : {"garbage", "4x", " 4", "4 ", "-1", "257", "1e2",
                          "99999999999999999999", "0x8"}) {
    SCOPED_TRACE(std::string("FOCUS_THREADS=") + bad);
    ASSERT_EQ(setenv("FOCUS_THREADS", bad, 1), 0);
    EXPECT_THROW(default_thread_count(), Error);
  }
  // The boundary widths themselves are accepted.
  ASSERT_EQ(setenv("FOCUS_THREADS", "1", 1), 0);
  EXPECT_EQ(default_thread_count(), 1u);
  ASSERT_EQ(setenv("FOCUS_THREADS", "256", 1), 0);
  EXPECT_EQ(default_thread_count(), 256u);
  ASSERT_EQ(unsetenv("FOCUS_THREADS"), 0);
}

TEST(ThreadPool, SerialFallbackSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

class ThreadPoolWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadPoolWidths, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  std::vector<int> hits(4097, 0);
  pool.parallel_for(hits.size(), 13, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];  // chunks are disjoint
  });
  for (const int h : hits) ASSERT_EQ(h, 1);
}

TEST_P(ThreadPoolWidths, ParallelTransformPreservesIndexOrder) {
  ThreadPool pool(GetParam());
  const auto out = pool.parallel_transform<std::size_t>(
      1000, 3, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
}

TEST_P(ThreadPoolWidths, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t b, std::size_t) {
                          if (b == 37) throw std::runtime_error("chunk 37");
                        }),
      std::runtime_error);
  // The pool must remain fully usable after an exceptional batch.
  std::atomic<int> ran{0};
  pool.parallel_for(64, 4, [&](std::size_t b, std::size_t e) {
    ran.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ran.load(), 64);
}

TEST_P(ThreadPoolWidths, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(GetParam());
  std::vector<std::uint64_t> sums(8, 0);
  pool.parallel_for(sums.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t outer = b; outer < e; ++outer) {
      const auto inner = pool.parallel_transform<std::uint64_t>(
          100, 10, [outer](std::size_t i) { return outer * 100 + i; });
      sums[outer] = std::accumulate(inner.begin(), inner.end(), 0ULL);
    }
  });
  for (std::size_t outer = 0; outer < sums.size(); ++outer) {
    EXPECT_EQ(sums[outer], outer * 100 * 100 + 4950);
  }
}

TEST_P(ThreadPoolWidths, EmptyAndTinyRanges) {
  ThreadPool pool(GetParam());
  pool.parallel_for(0, 8, [](std::size_t, std::size_t) { FAIL(); });
  int calls = 0;
  std::mutex mu;
  pool.parallel_for(1, 1000, [&](std::size_t b, std::size_t e) {
    std::lock_guard<std::mutex> lk(mu);
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
  });
  EXPECT_EQ(calls, 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, ThreadPoolWidths,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------------------
// Helpers shared by the determinism tests
// ---------------------------------------------------------------------------

bool same_overlap(const align::Overlap& a, const align::Overlap& b) {
  return a.query == b.query && a.ref == b.ref && a.length == b.length &&
         a.identity == b.identity && a.kind == b.kind;
}

::testing::AssertionResult same_overlaps(
    const std::vector<align::Overlap>& a,
    const std::vector<align::Overlap>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "overlap counts differ: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_overlap(a[i], b[i])) {
      return ::testing::AssertionFailure()
             << "overlap " << i << " differs: (" << a[i].query << ","
             << a[i].ref << "," << a[i].length << ") vs (" << b[i].query
             << "," << b[i].ref << "," << b[i].length << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

io::ReadSet simulated_reads(std::size_t genome_len, double coverage,
                            std::uint64_t seed) {
  Rng rng(seed);
  sim::PhylogenyConfig pc;
  pc.genome_length = genome_len;
  pc.conserved_segments = 0;
  const sim::Community community =
      sim::build_community({{"T", "P", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 80;
  sc.coverage = coverage;
  const auto simulated = sim::shotgun_sequence(community, sc, rng);
  return io::preprocess(simulated.reads, io::PreprocessConfig{});
}

graph::Graph random_graph(std::uint64_t seed, std::size_t n,
                          std::size_t extra) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Determinism regression: pooled overlap detection
// ---------------------------------------------------------------------------

TEST(OverlapDeterminism, PooledMatchesSerialAtEveryThreadCount) {
  const io::ReadSet reads = simulated_reads(3000, 10.0, 77);
  align::OverlapperConfig cfg;
  cfg.k = 14;
  cfg.subsets = 4;

  double serial_work = 0.0;
  cfg.threads = 1;
  const auto serial = align::find_overlaps_serial(reads, cfg, &serial_work);
  ASSERT_GT(serial.size(), 0u);
  ASSERT_GT(serial_work, 0.0);

  double pooled_work_prev = 0.0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.threads = threads;
    double pooled_work = 0.0;
    const auto pooled = align::find_overlaps(reads, cfg, &pooled_work);
    EXPECT_TRUE(same_overlaps(serial, pooled));
    ASSERT_GT(pooled_work, 0.0);
    // Work units are summed in a thread-count-independent order, so they are
    // bitwise identical across pool widths (> 1; the serial fallback orders
    // index-build work differently, which float addition notices).
    if (threads > 2) EXPECT_EQ(pooled_work, pooled_work_prev);
    pooled_work_prev = pooled_work;
  }
}

TEST(OverlapDeterminism, SingleSubsetAndMoreSubsetsThanReads) {
  const io::ReadSet reads = simulated_reads(1500, 6.0, 13);
  for (const std::size_t subsets : {std::size_t{1}, reads.size() + 3}) {
    SCOPED_TRACE("subsets=" + std::to_string(subsets));
    align::OverlapperConfig cfg;
    cfg.k = 12;
    cfg.subsets = subsets;
    cfg.threads = 1;
    const auto serial = align::find_overlaps_serial(reads, cfg);
    cfg.threads = 4;
    EXPECT_TRUE(same_overlaps(serial, align::find_overlaps(reads, cfg)));
  }
}

// ---------------------------------------------------------------------------
// Determinism regression: parallel HEM scoring and coarsening
// ---------------------------------------------------------------------------

TEST(CoarsenDeterminism, PooledMatchingIsByteIdentical) {
  const auto g = random_graph(21, 3000, 9000);
  for (const Weight cap : {Weight{0}, Weight{4}}) {
    SCOPED_TRACE("cap=" + std::to_string(cap));
    Rng serial_rng(99);
    const auto serial = graph::heavy_edge_matching(g, serial_rng, cap);
    for (const unsigned threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      ThreadPool pool(threads);
      Rng pooled_rng(99);
      const auto pooled =
          graph::heavy_edge_matching(g, pooled_rng, cap, &pool);
      EXPECT_EQ(serial, pooled);
    }
  }
}

TEST(CoarsenDeterminism, MultilevelHierarchyIdenticalAcrossThreadCounts) {
  const auto g0 = random_graph(31, 4000, 12000);
  graph::CoarsenConfig cfg;
  cfg.min_nodes = 32;
  cfg.threads = 1;
  const auto reference = graph::build_multilevel(g0, cfg);
  ASSERT_GT(reference.depth(), 1u);

  for (const unsigned threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    cfg.threads = threads;
    const auto pooled = graph::build_multilevel(g0, cfg);
    ASSERT_EQ(pooled.depth(), reference.depth());
    EXPECT_EQ(pooled.parent, reference.parent);
    for (std::size_t l = 0; l < reference.depth(); ++l) {
      EXPECT_EQ(pooled.levels[l].node_count(),
                reference.levels[l].node_count());
      EXPECT_EQ(pooled.levels[l].edge_count(),
                reference.levels[l].edge_count());
      EXPECT_EQ(pooled.levels[l].total_edge_weight(),
                reference.levels[l].total_edge_weight());
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism regression: full quickstart pipeline
// ---------------------------------------------------------------------------

TEST(PipelineDeterminism, ContigsEdgeCutsAndOverlapsIdenticalAcrossThreads) {
  Rng rng(2024);
  sim::PhylogenyConfig pc;
  pc.genome_length = 4000;
  pc.repeat_copies = 1;
  pc.conserved_segments = 0;
  const sim::Community community =
      sim::build_community({{"Example", "Phylum", 1.0}}, pc, rng);
  sim::SequencerConfig sc;
  sc.read_length = 100;
  sc.coverage = 12.0;
  sc.error_rate_5p = 0.0;
  sc.error_rate_3p = 0.0;
  sc.bad_tail_fraction = 0.0;
  const auto sim_reads = sim::shotgun_sequence(community, sc, rng);

  std::vector<align::Overlap> ref_overlaps;
  std::vector<std::string> ref_contigs;
  Weight ref_cut = 0;
  bool have_reference = false;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    core::FocusConfig config;
    config.partitions = 8;
    config.ranks = 4;
    config.overlap.threads = threads;
    config.coarsen.threads = threads;
    const auto result = core::assemble_reads(sim_reads.reads, config);
    const Weight cut =
        partition::edge_cut(result.overlap_graph, result.read_partition);
    if (!have_reference) {
      ref_overlaps = result.overlaps;
      ref_contigs = result.contigs;
      ref_cut = cut;
      have_reference = true;
      ASSERT_GT(ref_contigs.size(), 0u);
    } else {
      EXPECT_TRUE(same_overlaps(ref_overlaps, result.overlaps));
      EXPECT_EQ(ref_contigs, result.contigs);
      EXPECT_EQ(ref_cut, cut);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized stress: pooled vs serial reference on 50 random read sets
// ---------------------------------------------------------------------------

TEST(OverlapStress, FiftyRandomReadSetsMatchSerialReference) {
  Rng meta(0xf0c05);  // master seed: failures reproduce from the trace below
  const unsigned thread_choices[] = {2, 3, 4, 8};
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t trial_seed = meta.next_u64();
    SCOPED_TRACE("trial=" + std::to_string(trial) +
                 " seed=" + std::to_string(trial_seed));
    Rng rng(trial_seed);

    // Random genome and read set.
    const std::size_t genome_len =
        static_cast<std::size_t>(rng.next_in(300, 1200));
    const std::string genome = sim::random_genome(genome_len, rng);
    const std::size_t read_len =
        static_cast<std::size_t>(rng.next_in(50, 90));
    const double coverage = static_cast<double>(rng.next_in(4, 8));
    const std::size_t n_reads = std::max<std::size_t>(
        4, static_cast<std::size_t>(coverage * static_cast<double>(genome_len) /
                                    static_cast<double>(read_len)));
    io::ReadSet reads;
    for (std::size_t r = 0; r < n_reads; ++r) {
      const auto pos = rng.next_below(genome.size() - read_len + 1);
      std::string seq = genome.substr(pos, read_len);
      // Sprinkle substitution errors so identity thresholds actually bite.
      for (char& c : seq) {
        if (rng.next_bool(0.005)) c = "ACGT"[rng.next_below(4)];
      }
      if (rng.next_bool(0.5)) seq = dna::reverse_complement(seq);
      reads.add(io::Read{"r" + std::to_string(r), seq, "", kInvalidRead,
                         false});
    }

    align::OverlapperConfig cfg;
    cfg.k = static_cast<unsigned>(12 + 2 * rng.next_below(3));  // 12/14/16
    cfg.subsets = 1 + static_cast<std::size_t>(rng.next_below(5));
    cfg.min_identity = 0.85 + 0.05 * static_cast<double>(rng.next_below(3));
    cfg.min_overlap = 30 + 10 * static_cast<std::uint32_t>(rng.next_below(3));

    cfg.threads = 1;
    const auto serial = align::find_overlaps_serial(reads, cfg);
    cfg.threads = thread_choices[static_cast<std::size_t>(trial) % 4];
    const auto pooled = align::find_overlaps(reads, cfg);
    ASSERT_TRUE(same_overlaps(serial, pooled));
  }
}

}  // namespace
}  // namespace focus
