// Tests for the contiguity tester and hybrid graph set construction
// (paper §II-D, §III).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "graph/coarsen.hpp"
#include "graph/contiguity.hpp"
#include "graph/hybrid.hpp"

namespace focus::graph {
namespace {

std::vector<std::uint32_t> uniform_lengths(std::size_t n, std::uint32_t len = 100) {
  return std::vector<std::uint32_t>(n, len);
}

// ---------------------------------------------------------------------------
// ContiguityTester
// ---------------------------------------------------------------------------

TEST(Contiguity, SimplePathIsContiguous) {
  Digraph g(4);
  g.add_edge(0, 1, 60);
  g.add_edge(1, 2, 55);
  g.add_edge(2, 3, 70);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(4));
  std::vector<LayoutStep> layout;
  ASSERT_TRUE(tester.contiguous(std::vector<NodeId>{0, 1, 2, 3}, &layout));
  ASSERT_EQ(layout.size(), 4u);
  EXPECT_EQ(layout[0].read, 0u);
  EXPECT_EQ(layout[0].overlap_to_next, 60);
  EXPECT_EQ(layout[3].read, 3u);
  EXPECT_EQ(layout[3].overlap_to_next, 0);
}

TEST(Contiguity, SubclusterOfPathIsContiguous) {
  Digraph g(5);
  for (NodeId v = 0; v + 1 < 5; ++v) g.add_edge(v, v + 1, 50);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(5));
  EXPECT_TRUE(tester.contiguous(std::vector<NodeId>{1, 2, 3}));
}

TEST(Contiguity, BranchIsNotContiguous) {
  Digraph g(4);
  g.add_edge(0, 1, 50);
  g.add_edge(0, 2, 50);  // fork
  g.add_edge(1, 3, 50);
  g.add_edge(2, 3, 50);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(4));
  EXPECT_FALSE(tester.contiguous(std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Contiguity, DisconnectedClusterIsNotContiguous) {
  Digraph g(4);
  g.add_edge(0, 1, 50);
  g.add_edge(2, 3, 50);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(4));
  EXPECT_FALSE(tester.contiguous(std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_TRUE(tester.contiguous(std::vector<NodeId>{0, 1}));
}

TEST(Contiguity, CycleIsNotContiguous) {
  Digraph g(3);
  g.add_edge(0, 1, 50);
  g.add_edge(1, 2, 50);
  g.add_edge(2, 0, 50);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(3));
  EXPECT_FALSE(tester.contiguous(std::vector<NodeId>{0, 1, 2}));
}

TEST(Contiguity, TransitiveEdgesDoNotBreakPath) {
  // 0->1->2 with the redundant transitive edge 0->2: still one contig.
  Digraph g(3);
  g.add_edge(0, 1, 70);
  g.add_edge(1, 2, 70);
  g.add_edge(0, 2, 40);  // transitive
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(3));
  std::vector<LayoutStep> layout;
  ASSERT_TRUE(tester.contiguous(std::vector<NodeId>{0, 1, 2}, &layout));
  ASSERT_EQ(layout.size(), 3u);
  EXPECT_EQ(layout[1].read, 1u);
}

TEST(Contiguity, ContainedReadsExcludedFromPath) {
  Digraph g(4);
  g.add_edge(0, 1, 60);
  g.add_edge(1, 2, 60);
  g.mark_contained(3);  // floats inside the cluster without layout edges
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(4));
  std::vector<LayoutStep> layout;
  ASSERT_TRUE(tester.contiguous(std::vector<NodeId>{0, 1, 2, 3}, &layout));
  EXPECT_EQ(layout.size(), 3u);  // contained read not in the layout
}

TEST(Contiguity, SingletonAlwaysContiguous) {
  Digraph g(2);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(2));
  std::vector<LayoutStep> layout;
  ASSERT_TRUE(tester.contiguous(std::vector<NodeId>{1}, &layout));
  ASSERT_EQ(layout.size(), 1u);
  EXPECT_EQ(layout[0].read, 1u);
}

TEST(Contiguity, AllContainedClusterUsesLongestRead) {
  Digraph g(3);
  g.mark_contained(0);
  g.mark_contained(1);
  g.mark_contained(2);
  g.finalize();
  ContiguityTester tester(g, {80, 120, 100});
  std::vector<LayoutStep> layout;
  ASSERT_TRUE(tester.contiguous(std::vector<NodeId>{0, 1, 2}, &layout));
  ASSERT_EQ(layout.size(), 1u);
  EXPECT_EQ(layout[0].read, 1u);  // the longest
}

TEST(Contiguity, EmptyClusterNotContiguous) {
  Digraph g(1);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(1));
  EXPECT_FALSE(tester.contiguous(std::vector<NodeId>{}));
}

TEST(Contiguity, TwoParallelChainsNotContiguous) {
  // Two chains inside one cluster (e.g. fwd and rc strands).
  Digraph g(4);
  g.add_edge(0, 1, 50);
  g.add_edge(2, 3, 50);
  g.finalize();
  ContiguityTester tester(g, uniform_lengths(4));
  EXPECT_FALSE(tester.contiguous(std::vector<NodeId>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Hybrid graph set
// ---------------------------------------------------------------------------

// A linear read chain: coarsening produces clusters that are all contiguous,
// so representatives come from coarse levels and the hybrid graph is small.
struct LinearFixture {
  Graph g0;
  Digraph reads;
  GraphHierarchy ml;

  explicit LinearFixture(std::size_t n) : reads(n) {
    GraphBuilder b(n);
    for (NodeId v = 0; v + 1 < n; ++v) {
      b.add_edge(v, v + 1, 60);
      reads.add_edge(v, v + 1, 60);
    }
    reads.finalize();
    g0 = b.build();
    CoarsenConfig cfg;
    cfg.min_nodes = 4;
    cfg.max_levels = 6;
    ml = build_multilevel(g0, cfg);
  }
};

TEST(Hybrid, LinearChainCollapsesToFewRepresentatives) {
  LinearFixture fx(64);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(64));
  // Every cluster of a pure chain is contiguous, so representatives come
  // from the coarsest level.
  EXPECT_EQ(hybrid.hierarchy.depth(), fx.ml.depth());
  EXPECT_LT(hybrid.hybrid_graph().node_count(), fx.ml.levels[0].node_count());
  EXPECT_EQ(hybrid.hybrid_graph().node_count(),
            fx.ml.coarsest().node_count());
}

TEST(Hybrid, ClusterReadsPartitionAllReads) {
  LinearFixture fx(48);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(48));
  std::set<NodeId> seen;
  for (NodeId h = 0; h < hybrid.cluster_reads.size(); ++h) {
    for (const NodeId r : hybrid.cluster_reads[h]) {
      EXPECT_TRUE(seen.insert(r).second) << "read in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 48u);
}

TEST(Hybrid, NodeWeightsMatchClusterSizes) {
  LinearFixture fx(32);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(32));
  const Graph& hg = hybrid.hybrid_graph();
  ASSERT_EQ(hg.node_count(), hybrid.cluster_reads.size());
  for (NodeId h = 0; h < hg.node_count(); ++h) {
    EXPECT_EQ(hg.node_weight(h),
              static_cast<Weight>(hybrid.cluster_reads[h].size()));
  }
  EXPECT_EQ(hg.total_node_weight(), fx.g0.total_node_weight());
}

TEST(Hybrid, LayoutsCoverEveryHybridNode) {
  LinearFixture fx(40);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(40));
  ASSERT_EQ(hybrid.layouts.size(), hybrid.cluster_reads.size());
  for (NodeId h = 0; h < hybrid.layouts.size(); ++h) {
    EXPECT_FALSE(hybrid.layouts[h].empty());
    // Layout reads are cluster members.
    const std::set<NodeId> members(hybrid.cluster_reads[h].begin(),
                                   hybrid.cluster_reads[h].end());
    for (const auto& step : hybrid.layouts[h]) {
      EXPECT_TRUE(members.contains(step.read));
    }
  }
}

TEST(Hybrid, ParentMapsAreConsistent) {
  LinearFixture fx(64);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(64));
  const auto& h = hybrid.hierarchy;
  ASSERT_EQ(h.parent.size(), h.depth() - 1);
  for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
    ASSERT_EQ(h.parent[l].size(), h.levels[l].node_count());
    Weight child_weight_sum = 0;
    std::vector<Weight> parent_weight(h.levels[l + 1].node_count(), 0);
    for (NodeId v = 0; v < h.levels[l].node_count(); ++v) {
      ASSERT_LT(h.parent[l][v], h.levels[l + 1].node_count());
      parent_weight[h.parent[l][v]] += h.levels[l].node_weight(v);
      child_weight_sum += h.levels[l].node_weight(v);
    }
    for (NodeId p = 0; p < h.levels[l + 1].node_count(); ++p) {
      EXPECT_EQ(parent_weight[p], h.levels[l + 1].node_weight(p));
    }
    EXPECT_EQ(child_weight_sum, h.levels[l + 1].total_node_weight());
  }
}

TEST(Hybrid, BranchingForcesFinerRepresentatives) {
  // A cross/star topology in the read digraph: coarse clusters spanning the
  // branch cannot be contiguous, so they must expand toward finer levels.
  const std::size_t n = 33;
  Digraph reads(n);
  GraphBuilder b(n);
  // Chain 0..15, chain 16..31, both feeding node 32 (a junction).
  for (NodeId v = 0; v + 1 < 16; ++v) {
    b.add_edge(v, v + 1, 60);
    reads.add_edge(v, v + 1, 60);
  }
  for (NodeId v = 16; v + 1 < 32; ++v) {
    b.add_edge(v, v + 1, 60);
    reads.add_edge(v, v + 1, 60);
  }
  b.add_edge(15, 32, 50);
  reads.add_edge(15, 32, 50);
  b.add_edge(31, 32, 50);
  reads.add_edge(31, 32, 50);
  reads.finalize();
  const Graph g0 = b.build();
  CoarsenConfig cfg;
  cfg.min_nodes = 2;
  cfg.max_levels = 8;
  const auto ml = build_multilevel(g0, cfg);
  const auto hybrid = build_hybrid(ml, reads, uniform_lengths(n));
  // The junction prevents total collapse: more hybrid nodes than coarsest
  // nodes, fewer than reads.
  EXPECT_GT(hybrid.hybrid_graph().node_count(), ml.coarsest().node_count());
  EXPECT_LT(hybrid.hybrid_graph().node_count(), n);
  // Representative level histogram sums to the hybrid node count.
  std::size_t reps = 0;
  for (const auto count : hybrid.reps_per_level) reps += count;
  EXPECT_EQ(reps, hybrid.hybrid_graph().node_count());
}

TEST(Hybrid, ProjectToReadsAssignsEveryRead) {
  LinearFixture fx(32);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(32));
  std::vector<PartId> parts(hybrid.hybrid_graph().node_count());
  for (NodeId h = 0; h < parts.size(); ++h) {
    parts[h] = static_cast<PartId>(h % 4);
  }
  const auto read_parts = hybrid.project_to_reads(parts, 32);
  ASSERT_EQ(read_parts.size(), 32u);
  for (NodeId r = 0; r < 32; ++r) {
    EXPECT_NE(read_parts[r], kNoPart);
    // The read's partition equals its cluster's partition.
  }
  for (NodeId h = 0; h < hybrid.cluster_reads.size(); ++h) {
    for (const NodeId r : hybrid.cluster_reads[h]) {
      EXPECT_EQ(read_parts[r], parts[h]);
    }
  }
}

TEST(Hybrid, HybridEdgesReflectFinestEdges) {
  LinearFixture fx(32);
  const auto hybrid = build_hybrid(fx.ml, fx.reads, uniform_lengths(32));
  const Graph& hg = hybrid.hybrid_graph();
  // A chain's hybrid graph is itself a chain: edge count = node count - 1
  // (single component, no extra edges).
  EXPECT_EQ(hg.edge_count(), hg.node_count() - 1);
  // Total edge weight = G0 total minus weight internal to clusters.
  EXPECT_LE(hg.total_edge_weight(), fx.g0.total_edge_weight());
}

TEST(Hybrid, SingleLevelHierarchy) {
  // Edge case: multilevel set with only G0 (no coarsening possible).
  GraphBuilder b(3);
  const Graph g0 = b.build();  // no edges
  GraphHierarchy ml;
  ml.levels.push_back(g0);
  Digraph reads(3);
  reads.finalize();
  const auto hybrid = build_hybrid(ml, reads, uniform_lengths(3));
  EXPECT_EQ(hybrid.hierarchy.depth(), 1u);
  EXPECT_EQ(hybrid.hybrid_graph().node_count(), 3u);
  for (const auto& layout : hybrid.layouts) {
    EXPECT_EQ(layout.size(), 1u);
  }
}

}  // namespace
}  // namespace focus::graph
