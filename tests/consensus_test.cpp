// Tests for quality-weighted consensus calling.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "sim/genome.hpp"

namespace focus::core {
namespace {

using graph::LayoutStep;

io::Read make_read(const std::string& seq, const std::string& qual = "") {
  io::Read r;
  r.name = "r";
  r.seq = seq;
  r.qual = qual;
  return r;
}

TEST(Consensus, SingleReadIsItself) {
  io::ReadSet reads;
  reads.add(make_read("ACGTACGT"));
  const std::vector<LayoutStep> layout{{0, 0}};
  const auto c = consensus_from_layout(reads, layout);
  EXPECT_EQ(c.sequence, "ACGTACGT");
  EXPECT_DOUBLE_EQ(c.mean_depth, 1.0);
  EXPECT_EQ(c.corrected_columns, 0u);
}

TEST(Consensus, ChainsReadsLikeMerge) {
  io::ReadSet reads;
  reads.add(make_read("ACGTAC"));
  reads.add(make_read("TACGGG"));
  const std::vector<LayoutStep> layout{{0, 3}, {1, 0}};
  const auto c = consensus_from_layout(reads, layout);
  EXPECT_EQ(c.sequence, "ACGTACGGG");
  // Overlap columns have depth 2.
  EXPECT_EQ(c.depth[2], 1);
  EXPECT_EQ(c.depth[3], 2);
  EXPECT_EQ(c.depth[5], 2);
  EXPECT_EQ(c.depth[6], 1);
}

TEST(Consensus, MajorityCorrectsSequencingError) {
  // Three reads over the same region; the middle read has one error. The
  // two correct reads outvote it.
  const std::string truth = "ACGTACGTACGTACGTACGT";
  std::string erroneous = truth.substr(4);
  erroneous[6] = 'A';  // truth has 'G' at column 10, covered by all 3 reads
  io::ReadSet reads;
  reads.add(make_read(truth.substr(0, 16)));
  reads.add(make_read(erroneous));          // offset 4
  reads.add(make_read(truth.substr(8)));    // offset 8
  const std::vector<LayoutStep> layout{{0, 12}, {1, 12}, {2, 0}};
  const auto c = consensus_from_layout(reads, layout);
  EXPECT_EQ(c.sequence, truth);
  EXPECT_GE(c.corrected_columns, 1u);
}

TEST(Consensus, QualityBreaksTwoWayTies) {
  // Two reads disagree at one column; the high-quality call wins.
  io::ReadSet reads;
  reads.add(make_read("ACGT", "!!!!"));   // phred 0 everywhere
  reads.add(make_read("AGGT", "IIII"));   // phred 40 everywhere
  const std::vector<LayoutStep> layout{{0, 4}, {1, 0}};
  const auto c = consensus_from_layout(reads, layout);
  EXPECT_EQ(c.sequence, "AGGT");
}

TEST(Consensus, NsNeverVote) {
  io::ReadSet reads;
  reads.add(make_read("ANGT"));
  reads.add(make_read("ACGT"));
  const std::vector<LayoutStep> layout{{0, 4}, {1, 0}};
  const auto c = consensus_from_layout(reads, layout);
  EXPECT_EQ(c.sequence, "ACGT");
}

TEST(Consensus, EmptyLayoutRejected) {
  io::ReadSet reads;
  EXPECT_THROW(consensus_from_layout(reads, {}), Error);
}

TEST(Consensus, WorkScalesWithBases) {
  io::ReadSet reads;
  reads.add(make_read(std::string(100, 'A')));
  reads.add(make_read(std::string(50, 'C')));
  const std::vector<LayoutStep> layout{{0, 10}, {1, 0}};
  EXPECT_DOUBLE_EQ(consensus_work(reads, layout), 150.0);
}

TEST(Consensus, DeepPileupMatchesTruth) {
  // Simulated pileup: 10 noisy copies of the same fragment; consensus
  // recovers the truth despite 3% per-base errors.
  Rng rng(9);
  const std::string truth = sim::random_genome(300, rng);
  io::ReadSet reads;
  std::vector<LayoutStep> layout;
  for (int i = 0; i < 10; ++i) {
    std::string copy = truth;
    for (auto& base : copy) {
      if (rng.next_bool(0.03)) {
        base = "ACGT"[rng.next_below(4)];
      }
    }
    reads.add(make_read(copy, std::string(300, 'I')));
    layout.push_back({static_cast<NodeId>(i), 300});
  }
  layout.back().overlap_to_next = 0;
  const auto c = consensus_from_layout(reads, layout);
  ASSERT_EQ(c.sequence.size(), truth.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (c.sequence[i] != truth[i]) ++mismatches;
  }
  EXPECT_LE(mismatches, 2u);
  EXPECT_DOUBLE_EQ(c.mean_depth, 10.0);
}

}  // namespace
}  // namespace focus::core
