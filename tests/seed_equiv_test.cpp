// Seed-backend equivalence suite: the hashed k-mer index (2-bit packed
// reads, open-addressing postings table) must produce byte-identical overlap
// sets to the suffix-array oracle — on the simulated benchmark datasets,
// across k / band / max_kmer_occurrences settings, and at every thread
// width. This is the acceptance gate for replacing the paper's suffix-array
// seeding on the hot path (§II-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "align/banded_nw.hpp"
#include "align/kmer_index.hpp"
#include "align/overlapper.hpp"
#include "align/suffix_array.hpp"
#include "common/packed_seq.hpp"
#include "common/rng.hpp"
#include "io/preprocess.hpp"
#include "sim/datasets.hpp"

namespace focus::align {
namespace {

// Small but non-trivial dataset slices: ~35 kbp of genomes at 6x coverage
// gives a few hundred preprocessed reads per dataset — enough to exercise
// repeats, reverse complements, and containments without slowing the suite.
io::ReadSet dataset_reads(int index) {
  const sim::Dataset d = sim::make_dataset(index, /*scale=*/0.3,
                                           /*coverage=*/6.0);
  return io::preprocess(d.data.reads, {});
}

bool identical(const std::vector<Overlap>& a, const std::vector<Overlap>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query || a[i].ref != b[i].ref ||
        a[i].length != b[i].length || a[i].identity != b[i].identity ||
        a[i].kind != b[i].kind) {
      return false;
    }
  }
  return true;
}

std::vector<Overlap> run_with_backend(const io::ReadSet& reads,
                                      OverlapperConfig cfg,
                                      SeedBackend backend) {
  cfg.seed_backend = backend;
  cfg.threads = 1;
  return find_overlaps_serial(reads, cfg);
}

// ---------------------------------------------------------------------------
// KmerIndex vs SuffixArray: raw seed hits
// ---------------------------------------------------------------------------

TEST(KmerIndexOracle, PostingsMatchSuffixArrayOccurrenceCounts) {
  const io::ReadSet reads = dataset_reads(1);
  std::vector<ReadId> members;
  for (ReadId id = 0; id < reads.size() && id < 120; ++id) {
    members.push_back(id);
  }
  const unsigned k = 14;
  const KmerIndex index(reads, members, k);

  // Oracle: concatenated text + suffix array, as RefIndex builds it.
  std::string text;
  for (const ReadId id : members) {
    text += reads[id].seq;
    text += '\x01';
  }
  const SuffixArray sa(text);

  // Every clean k-mer of every member must have identical occurrence counts
  // in both structures.
  std::size_t checked = 0;
  for (std::size_t m = 0; m < members.size(); m += 7) {
    const std::string& seq = reads[members[m]].seq;
    dna::PackedSeq packed(seq);
    for (std::size_t pos = 0; pos + k <= seq.size(); pos += 11) {
      std::uint64_t key;
      if (!packed.kmer_at(pos, k, key)) continue;
      const auto sa_count = sa.count(std::string_view(seq).substr(pos, k));
      ASSERT_EQ(index.count(key), sa_count)
          << "member " << m << " pos " << pos;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(KmerIndexOracle, PostingsSortedByMemberThenPosition) {
  const io::ReadSet reads = dataset_reads(2);
  std::vector<ReadId> members;
  for (ReadId id = 0; id < reads.size() && id < 60; ++id) members.push_back(id);
  const unsigned k = 12;
  const KmerIndex index(reads, members, k);

  dna::PackedSeq packed(reads[members[0]].seq);
  std::uint64_t key;
  std::size_t buckets_checked = 0;
  for (std::size_t pos = 0; pos + k <= reads[members[0]].seq.size(); ++pos) {
    if (!packed.kmer_at(pos, k, key)) continue;
    const auto [first, last] = index.find(key);
    ASSERT_NE(first, last);  // the k-mer itself must be indexed
    for (const KmerIndex::Posting* p = first; p + 1 < last; ++p) {
      const bool ordered = p->member < (p + 1)->member ||
                           (p->member == (p + 1)->member &&
                            p->pos < (p + 1)->pos);
      ASSERT_TRUE(ordered) << "posting order violated";
    }
    ++buckets_checked;
  }
  EXPECT_GT(buckets_checked, 50u);
}

TEST(KmerIndexOracle, AbsentAndEmpty) {
  io::ReadSet reads;
  reads.add(io::Read{"r0", "ACGTACGTACGTACGT", "", kInvalidRead, false});
  const KmerIndex index(reads, {0}, 8);
  // A key built from a sequence not present in the read.
  dna::PackedSeq probe("TTTTTTTT");
  std::uint64_t key;
  ASSERT_TRUE(probe.kmer_at(0, 8, key));
  EXPECT_EQ(index.count(key), 0u);

  const KmerIndex empty(reads, {}, 8);
  EXPECT_EQ(empty.posting_count(), 0u);
  EXPECT_EQ(empty.count(key), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence on the simulated datasets
// ---------------------------------------------------------------------------

TEST(SeedBackendEquivalence, SweepKBandAndMaskingOnDataset1) {
  const io::ReadSet reads = dataset_reads(1);
  ASSERT_GT(reads.size(), 100u);
  for (const unsigned k : {12u, 16u}) {
    for (const std::uint32_t band : {4u, 8u}) {
      for (const std::size_t max_occ : {std::size_t{16}, std::size_t{64}}) {
        SCOPED_TRACE("k=" + std::to_string(k) + " band=" +
                     std::to_string(band) + " max_occ=" +
                     std::to_string(max_occ));
        OverlapperConfig cfg;
        cfg.k = k;
        cfg.band = band;
        cfg.max_kmer_occurrences = max_occ;
        cfg.min_overlap = 40;
        cfg.subsets = 3;
        const auto hashed =
            run_with_backend(reads, cfg, SeedBackend::kKmerHash);
        const auto oracle =
            run_with_backend(reads, cfg, SeedBackend::kSuffixArray);
        EXPECT_TRUE(identical(hashed, oracle))
            << "hashed=" << hashed.size() << " oracle=" << oracle.size();
      }
    }
  }
}

TEST(SeedBackendEquivalence, AllDatasetsDefaultConfig) {
  for (int d = 1; d <= 3; ++d) {
    SCOPED_TRACE("dataset D" + std::to_string(d));
    const io::ReadSet reads = dataset_reads(d);
    OverlapperConfig cfg;
    cfg.k = 14;
    cfg.subsets = 4;
    const auto hashed = run_with_backend(reads, cfg, SeedBackend::kKmerHash);
    const auto oracle =
        run_with_backend(reads, cfg, SeedBackend::kSuffixArray);
    ASSERT_GT(oracle.size(), 0u);
    EXPECT_TRUE(identical(hashed, oracle))
        << "hashed=" << hashed.size() << " oracle=" << oracle.size();
  }
}

TEST(SeedBackendEquivalence, ReadsWithAmbiguousBases) {
  // Sprinkle Ns over a dataset slice: windows touching an N must be skipped
  // identically by the packed extraction and the literal suffix-array match.
  io::ReadSet base = dataset_reads(1);
  Rng rng(99);
  io::ReadSet reads;
  for (ReadId id = 0; id < base.size() && id < 150; ++id) {
    io::Read r = base[id];
    if (rng.next_bool(0.5)) {
      r.seq[rng.next_below(r.seq.size())] = 'N';
    }
    reads.add(std::move(r));
  }
  OverlapperConfig cfg;
  cfg.k = 12;
  cfg.subsets = 2;
  cfg.min_overlap = 40;
  const auto hashed = run_with_backend(reads, cfg, SeedBackend::kKmerHash);
  const auto oracle = run_with_backend(reads, cfg, SeedBackend::kSuffixArray);
  EXPECT_TRUE(identical(hashed, oracle))
      << "hashed=" << hashed.size() << " oracle=" << oracle.size();
}

class SeedBackendThreadWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(SeedBackendThreadWidths, HashedPoolMatchesSuffixArraySerial) {
  const io::ReadSet reads = dataset_reads(2);
  OverlapperConfig cfg;
  cfg.k = 14;
  cfg.subsets = 3;
  cfg.seed_backend = SeedBackend::kSuffixArray;
  cfg.threads = 1;
  const auto oracle = find_overlaps_serial(reads, cfg);
  ASSERT_GT(oracle.size(), 0u);

  cfg.seed_backend = SeedBackend::kKmerHash;
  cfg.threads = GetParam();
  const auto hashed = find_overlaps(reads, cfg);
  EXPECT_TRUE(identical(hashed, oracle))
      << "hashed=" << hashed.size() << " oracle=" << oracle.size();
}

INSTANTIATE_TEST_SUITE_P(Widths, SeedBackendThreadWidths,
                         ::testing::Values(1, 2, 4, 8));

TEST(SeedBackendEquivalence, MprRanksMatchOracle) {
  const io::ReadSet reads = dataset_reads(3);
  OverlapperConfig cfg;
  cfg.k = 14;
  cfg.subsets = 3;
  cfg.seed_backend = SeedBackend::kSuffixArray;
  const auto oracle = find_overlaps_serial(reads, cfg);

  cfg.seed_backend = SeedBackend::kKmerHash;
  const auto parallel = find_overlaps_parallel(reads, cfg, 3);
  EXPECT_TRUE(identical(parallel.overlaps, oracle))
      << "mpr=" << parallel.overlaps.size() << " oracle=" << oracle.size();
  EXPECT_GT(parallel.stats.makespan, 0.0);
}

// ---------------------------------------------------------------------------
// Two-pass banded NW: score pass and prefilter soundness
// ---------------------------------------------------------------------------

TEST(TwoPassNw, ScoreOnlyMatchesFullPassOnRandomPairs) {
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    const auto len = 30 + rng.next_below(120);
    for (std::uint64_t i = 0; i < len; ++i) {
      a.push_back("ACGT"[rng.next_below(4)]);
    }
    std::string b;
    for (const char c : a) {
      if (rng.next_bool(0.03)) continue;                 // deletion
      b.push_back(rng.next_bool(0.06) ? "ACGT"[rng.next_below(4)] : c);
      if (rng.next_bool(0.03)) b.push_back("ACGT"[rng.next_below(4)]);
    }
    const auto band = static_cast<std::uint32_t>(2 + rng.next_below(14));
    const BandScore pre = banded_score_only(a, b, band);
    const AlignmentResult full = banded_global_align(a, b, band);
    ASSERT_EQ(pre.valid, full.valid) << "trial " << trial;
    if (full.valid) {
      ASSERT_EQ(pre.score, full.score) << "trial " << trial;
    }
  }
}

TEST(TwoPassNw, PrefilterNeverRejectsAnAcceptableAlignment) {
  // Soundness: whenever score_may_pass() says no, the full traceback must
  // indeed fail the (min_columns, min_identity) thresholds.
  Rng rng(777);
  int rejections = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string a, b;
    const auto len = 20 + rng.next_below(100);
    for (std::uint64_t i = 0; i < len; ++i) {
      a.push_back("ACGT"[rng.next_below(4)]);
    }
    // Mix of related and unrelated partners to cover both filter outcomes.
    if (rng.next_bool(0.5)) {
      for (const char c : a) {
        b.push_back(rng.next_bool(0.25) ? "ACGT"[rng.next_below(4)] : c);
      }
    } else {
      for (std::uint64_t i = 0; i < len; ++i) {
        b.push_back("ACGT"[rng.next_below(4)]);
      }
    }
    const std::uint32_t band = 8;
    const std::uint32_t min_columns = 30 + rng.next_below(40);
    const double min_identity = 0.80 + 0.15 * rng.next_real();
    const BandScore pre = banded_score_only(a, b, band);
    ASSERT_TRUE(pre.valid);
    const bool may_pass =
        score_may_pass(pre.score, a.size(), b.size(), min_columns,
                       min_identity);
    const AlignmentResult full = banded_global_align(a, b, band);
    const bool accepted = full.valid && full.columns >= min_columns &&
                          full.identity() >= min_identity;
    if (!may_pass) {
      ++rejections;
      EXPECT_FALSE(accepted)
          << "prefilter rejected an acceptable alignment: score=" << pre.score
          << " columns=" << full.columns << " identity=" << full.identity();
    }
  }
  EXPECT_GT(rejections, 0) << "sweep never exercised the reject path";
}

TEST(TwoPassNw, PrefilterAbstainsForUnsoundScoring) {
  // A scoring where mismatch < 2*gap breaks the bound derivation; the filter
  // must abstain (return true) rather than guess.
  AlignScoring odd;
  odd.match = 1;
  odd.mismatch = -9;
  odd.gap = -1;
  EXPECT_TRUE(score_may_pass(0, 100, 100, 1000, 1.0, odd));
}

// ---------------------------------------------------------------------------
// RefIndex backend plumbing
// ---------------------------------------------------------------------------

TEST(RefIndexBackend, SuffixArrayBackendStillServesSa) {
  io::ReadSet reads;
  reads.add(io::Read{"a", "ACGTACGTAC", "", kInvalidRead, false});
  reads.add(io::Read{"b", "TTGGCCAATT", "", kInvalidRead, false});
  OverlapperConfig cfg;
  cfg.seed_backend = SeedBackend::kSuffixArray;
  RefIndex index(reads, {0, 1}, cfg);
  EXPECT_EQ(index.backend(), SeedBackend::kSuffixArray);
  EXPECT_EQ(index.sa().count("ACGT"), 2u);
  EXPECT_EQ(index.resolve(0).first, 0u);
  EXPECT_EQ(index.resolve(11).first, 1u);
  EXPECT_EQ(index.resolve(11).second, 0u);
  EXPECT_GT(index.build_work(), 0.0);
}

TEST(RefIndexBackend, HashBackendServesKmersAndResolve) {
  io::ReadSet reads;
  reads.add(io::Read{"a", "ACGTACGTACGTACGT", "", kInvalidRead, false});
  OverlapperConfig cfg;
  cfg.k = 8;
  RefIndex index(reads, {0}, cfg);
  EXPECT_EQ(index.backend(), SeedBackend::kKmerHash);
  EXPECT_EQ(index.seed_k(), 8u);
  EXPECT_GT(index.kmers().posting_count(), 0u);
  EXPECT_GT(index.build_work(), 0.0);
  // resolve() works regardless of backend (it only needs member offsets).
  EXPECT_EQ(index.resolve(3).first, 0u);
  EXPECT_EQ(index.resolve(3).second, 3u);
}

}  // namespace
}  // namespace focus::align
