// Concurrent-assembler determinism suite: two in-process assemblies running
// at the same time — raw std::threads or JobScheduler lanes — must each
// produce the byte-identical result of a serial run, across wire protocols,
// graph-store backends, and thread-pool widths. This is the proof obligation
// for the global-state sweep (EnvSnapshot, per-pool TLS slots, job-boundary
// scratch reset): before it, scattered getenv reads and cross-pool
// thread_local indices made two concurrent Assemblers unsound. Runs under
// TSan via tools/run_sanitizers.sh.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "core/assembler.hpp"
#include "sim/datasets.hpp"
#include "svc/scheduler.hpp"

namespace focus {
namespace {

const sim::Dataset& dataset_one() {
  static const sim::Dataset d =
      sim::make_dataset(1, /*scale=*/0.13, /*coverage=*/5.0);
  return d;
}

const sim::Dataset& dataset_two() {
  static const sim::Dataset d =
      sim::make_dataset(2, /*scale=*/0.13, /*coverage=*/5.0);
  return d;
}

/// Env-independent pipeline config; distributed-index overlap so stage 2
/// also exercises the mpr runtime concurrently.
core::FocusConfig jobs_config(dist::DistProtocol protocol,
                              graph::GraphStoreBackend backend,
                              unsigned width = 0) {
  core::FocusConfig cfg{EnvSnapshot{}};
  cfg.overlap.strategy = align::SeedStrategy::kDistributedIndex;
  cfg.overlap.k = 14;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.partitions = 4;
  cfg.ranks = 2;
  cfg.min_contig_length = 150;
  cfg.dist.protocol = protocol;
  cfg.graph_store.backend = backend;
  if (width != 0) {
    cfg.overlap.threads = width;
    cfg.coarsen.threads = width;
    cfg.partitioner.threads = width;
  }
  return cfg;
}

/// Serial oracles. Outputs are protocol/backend/width-invariant, so one
/// oracle per dataset serves every configuration under test.
const core::AssemblyResult& oracle_one() {
  static const core::AssemblyResult r =
      core::assemble_reads(dataset_one().data.reads,
                           jobs_config(dist::DistProtocol::kMaster,
                                       graph::GraphStoreBackend::kInMemory));
  return r;
}

const core::AssemblyResult& oracle_two() {
  static const core::AssemblyResult r =
      core::assemble_reads(dataset_two().data.reads,
                           jobs_config(dist::DistProtocol::kMaster,
                                       graph::GraphStoreBackend::kInMemory));
  return r;
}

void expect_same_assembly(const core::AssemblyResult& got,
                          const core::AssemblyResult& want,
                          const std::string& ctx) {
  ASSERT_EQ(got.contigs, want.contigs) << ctx;
  ASSERT_EQ(got.paths, want.paths) << ctx;
  EXPECT_EQ(got.reads.size(), want.reads.size()) << ctx;
  EXPECT_EQ(got.overlaps.size(), want.overlaps.size()) << ctx;
  EXPECT_EQ(got.partitioning.finest_cut, want.partitioning.finest_cut) << ctx;
  EXPECT_EQ(got.stats.n50, want.stats.n50) << ctx;
  EXPECT_EQ(got.stats.total_bases, want.stats.total_bases) << ctx;
}

/// Runs two full assemblies concurrently on raw std::threads and checks both
/// against the serial oracles.
void run_concurrent_pair(const core::FocusConfig& cfg1,
                         const core::FocusConfig& cfg2,
                         const std::string& ctx) {
  core::AssemblyResult r1, r2;
  std::thread t1([&] {
    r1 = core::FocusAssembler(cfg1).assemble(dataset_one().data.reads);
  });
  std::thread t2([&] {
    r2 = core::FocusAssembler(cfg2).assemble(dataset_two().data.reads);
  });
  t1.join();
  t2.join();
  expect_same_assembly(r1, oracle_one(), ctx + " / dataset 1");
  expect_same_assembly(r2, oracle_two(), ctx + " / dataset 2");
}

TEST(ConcurrentAssemblers, ProtocolAndBackendMatrixMatchesSerial) {
  for (const auto protocol :
       {dist::DistProtocol::kMaster, dist::DistProtocol::kSymmetric}) {
    for (const auto backend : {graph::GraphStoreBackend::kInMemory,
                               graph::GraphStoreBackend::kCsrSpill}) {
      const std::string ctx =
          std::string("protocol=") +
          (protocol == dist::DistProtocol::kMaster ? "master" : "symmetric") +
          " backend=" +
          (backend == graph::GraphStoreBackend::kInMemory ? "memory"
                                                          : "csr-spill");
      SCOPED_TRACE(ctx);
      run_concurrent_pair(jobs_config(protocol, backend),
                          jobs_config(protocol, backend), ctx);
    }
  }
}

TEST(ConcurrentAssemblers, HeavyWidthSweepMatchesSerial) {
  for (const unsigned width : {1u, 2u, 4u, 8u}) {
    const std::string ctx = "width=" + std::to_string(width);
    SCOPED_TRACE(ctx);
    run_concurrent_pair(jobs_config(dist::DistProtocol::kSymmetric,
                                    graph::GraphStoreBackend::kInMemory,
                                    width),
                        jobs_config(dist::DistProtocol::kSymmetric,
                                    graph::GraphStoreBackend::kInMemory,
                                    width),
                        ctx);
  }
}

TEST(ConcurrentAssemblers, MixedConfigurationsShareTheProcess) {
  // The two concurrent jobs deliberately disagree on protocol, backend and
  // width: nothing one job configures may leak into the other.
  run_concurrent_pair(jobs_config(dist::DistProtocol::kMaster,
                                  graph::GraphStoreBackend::kCsrSpill, 2),
                      jobs_config(dist::DistProtocol::kSymmetric,
                                  graph::GraphStoreBackend::kInMemory, 8),
                      "mixed configs");
}

TEST(ConcurrentAssemblers, SchedulerLanesMatchSerial) {
  svc::SchedulerConfig sc;
  sc.max_in_flight = 2;
  svc::JobScheduler sched(sc);

  auto f1 = sched.submit("t1", dataset_one().data.reads,
                         jobs_config(dist::DistProtocol::kSymmetric,
                                     graph::GraphStoreBackend::kInMemory));
  auto f2 = sched.submit("t2", dataset_two().data.reads,
                         jobs_config(dist::DistProtocol::kSymmetric,
                                     graph::GraphStoreBackend::kInMemory));
  const svc::JobResult r1 = f1.get();
  const svc::JobResult r2 = f2.get();
  expect_same_assembly(r1.assembly, oracle_one(), "scheduler / dataset 1");
  expect_same_assembly(r2.assembly, oracle_two(), "scheduler / dataset 2");

  // Repeat submissions ride the shared artifact cache and stay identical.
  const svc::JobResult again =
      sched.submit("t1", dataset_one().data.reads,
                   jobs_config(dist::DistProtocol::kSymmetric,
                               graph::GraphStoreBackend::kInMemory))
          .get();
  EXPECT_TRUE(again.stats.cache_hits.preprocess);
  EXPECT_TRUE(again.stats.cache_hits.overlaps);
  EXPECT_TRUE(again.stats.cache_hits.coarsen);
  expect_same_assembly(again.assembly, oracle_one(), "scheduler / repeat");
}

}  // namespace
}  // namespace focus
