// Determinism of the pool-parallel partitioner (and its fork_join primitive):
// partition_hierarchy must produce byte-identical output — part vectors at
// every hierarchy level, the edge cut, and the work accounting — at every
// thread width. The serial width-1 run is the reference; widths 2/4/8
// exercise the fork_join recursion walk and the pooled scoring loops.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/parallel.hpp"
#include "graph/coarsen.hpp"
#include "partition/mlpart.hpp"
#include "partition/partition.hpp"

namespace focus::partition {
namespace {

using graph::Graph;
using graph::GraphBuilder;

Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
  }
  return b.build();
}

graph::GraphHierarchy hierarchy_of(const Graph& g) {
  graph::CoarsenConfig cfg;
  cfg.min_nodes = 8;
  cfg.max_levels = 6;
  return graph::build_multilevel(g, cfg);
}

// Bitwise equality for the work doubles: "byte-identical" is the contract,
// not "approximately equal".
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// ---------------------------------------------------------------------------
// fork_join primitive
// ---------------------------------------------------------------------------

TEST(ForkJoin, RunsBothSidesAtEveryWidth) {
  for (const unsigned width : {1u, 2u, 4u}) {
    SCOPED_TRACE(width);
    ThreadPool pool(width);
    std::atomic<int> left{0}, right{0};
    pool.fork_join([&] { left.fetch_add(1); }, [&] { right.fetch_add(1); });
    EXPECT_EQ(left.load(), 1);
    EXPECT_EQ(right.load(), 1);
  }
}

TEST(ForkJoin, NestedRecursionFromWorkersDoesNotDeadlock) {
  // Recursive range sum: every interior call fork_joins from whatever thread
  // is running it, like the partitioner's recursion-tree walk.
  for (const unsigned width : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(width);
    ThreadPool pool(width);
    std::function<std::uint64_t(std::uint64_t, std::uint64_t)> range_sum =
        [&](std::uint64_t lo, std::uint64_t hi) -> std::uint64_t {
      if (hi - lo <= 16) {
        std::uint64_t s = 0;
        for (std::uint64_t i = lo; i < hi; ++i) s += i;
        return s;
      }
      const std::uint64_t mid = lo + (hi - lo) / 2;
      std::uint64_t a = 0, b = 0;
      pool.fork_join([&] { a = range_sum(lo, mid); },
                     [&] { b = range_sum(mid, hi); });
      return a + b;
    };
    EXPECT_EQ(range_sum(0, 4096), 4096ull * 4095ull / 2);
  }
}

TEST(ForkJoin, PropagatesExceptionsFromEitherSide) {
  for (const unsigned width : {1u, 4u}) {
    SCOPED_TRACE(width);
    ThreadPool pool(width);
    EXPECT_THROW(
        pool.fork_join([] { throw std::runtime_error("left"); }, [] {}),
        std::runtime_error);
    EXPECT_THROW(
        pool.fork_join([] {}, [] { throw std::runtime_error("right"); }),
        std::runtime_error);
    // The pool survives for further use.
    std::atomic<int> ok{0};
    pool.fork_join([&] { ok.fetch_add(1); }, [&] { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 2);
  }
}

// ---------------------------------------------------------------------------
// Partitioner determinism across thread widths
// ---------------------------------------------------------------------------

PartitionerConfig config_with_threads(unsigned threads) {
  PartitionerConfig cfg;
  cfg.threads = threads;
  return cfg;
}

// Asserts every work slot of `run` — step_work, kway_work, and the
// intra-bisection step_trial_work / step_pooled_work grids — is bitwise
// identical to `reference`.
void expect_same_work_grids(const HierarchyPartitioning& run,
                            const HierarchyPartitioning& reference) {
  EXPECT_TRUE(same_bits(run.work, reference.work));
  ASSERT_EQ(run.step_work.size(), reference.step_work.size());
  for (std::size_t s = 0; s < run.step_work.size(); ++s) {
    ASSERT_EQ(run.step_work[s].size(), reference.step_work[s].size());
    for (std::size_t r = 0; r < run.step_work[s].size(); ++r) {
      EXPECT_TRUE(same_bits(run.step_work[s][r], reference.step_work[s][r]))
          << "step " << s << " region " << r;
    }
  }
  ASSERT_EQ(run.kway_work.size(), reference.kway_work.size());
  for (std::size_t l = 0; l < run.kway_work.size(); ++l) {
    EXPECT_TRUE(same_bits(run.kway_work[l], reference.kway_work[l]))
        << "level " << l;
  }
  ASSERT_EQ(run.step_trial_work.size(), reference.step_trial_work.size());
  for (std::size_t s = 0; s < run.step_trial_work.size(); ++s) {
    ASSERT_EQ(run.step_trial_work[s].size(),
              reference.step_trial_work[s].size());
    for (std::size_t r = 0; r < run.step_trial_work[s].size(); ++r) {
      const auto& rt = run.step_trial_work[s][r];
      const auto& ft = reference.step_trial_work[s][r];
      ASSERT_EQ(rt.size(), ft.size()) << "step " << s << " region " << r;
      for (std::size_t t = 0; t < rt.size(); ++t) {
        EXPECT_TRUE(same_bits(rt[t], ft[t]))
            << "step " << s << " region " << r << " trial " << t;
      }
    }
  }
  ASSERT_EQ(run.step_pooled_work.size(), reference.step_pooled_work.size());
  for (std::size_t s = 0; s < run.step_pooled_work.size(); ++s) {
    ASSERT_EQ(run.step_pooled_work[s].size(),
              reference.step_pooled_work[s].size());
    for (std::size_t r = 0; r < run.step_pooled_work[s].size(); ++r) {
      EXPECT_TRUE(same_bits(run.step_pooled_work[s][r],
                            reference.step_pooled_work[s][r]))
          << "step " << s << " region " << r;
    }
  }
}

TEST(PartitionThreads, ByteIdenticalAcrossWidths) {
  // Big enough that the pooled inner loops (>= 512-node gates) engage, not
  // just the fork_join recursion.
  const Graph g = random_graph(91, 1200, 2600);
  const auto h = hierarchy_of(g);
  const PartId k = 8;

  const auto reference = partition_hierarchy(h, k, config_with_threads(1));
  ASSERT_EQ(reference.levels.size(), h.depth());

  for (const unsigned width : {2u, 4u, 8u}) {
    SCOPED_TRACE(width);
    const auto run = partition_hierarchy(h, k, config_with_threads(width));
    EXPECT_EQ(run.levels, reference.levels);
    EXPECT_EQ(run.finest_cut, reference.finest_cut);
    expect_same_work_grids(run, reference);
  }
}

TEST(PartitionThreads, TrialsByteIdenticalAcrossWidths) {
  // Multi-trial initial bisections: the trials of one region run
  // concurrently on the pool (on top of fork_join siblings and the pooled
  // KL loops), and the result — parts, cut, and every work slot including
  // the per-trial grid — must still be byte-identical at every width.
  const Graph g = random_graph(93, 1200, 2600);
  const auto h = hierarchy_of(g);
  const PartId k = 8;

  PartitionerConfig ref_cfg = config_with_threads(1);
  ref_cfg.trials = 4;
  const auto reference = partition_hierarchy(h, k, ref_cfg);
  ASSERT_EQ(reference.levels.size(), h.depth());
  // The root region records one work slot per trial.
  ASSERT_FALSE(reference.step_trial_work.empty());
  EXPECT_EQ(reference.step_trial_work[0][0].size(), 4u);

  for (const unsigned width : {2u, 4u, 8u}) {
    SCOPED_TRACE(width);
    PartitionerConfig cfg = config_with_threads(width);
    cfg.trials = 4;
    const auto run = partition_hierarchy(h, k, cfg);
    EXPECT_EQ(run.levels, reference.levels);
    EXPECT_EQ(run.finest_cut, reference.finest_cut);
    expect_same_work_grids(run, reference);
  }
}

TEST(PartitionThreads, PooledDriverMatchesMprDriver) {
  // The pooled recursion-tree walk and the mpr wave driver must agree — they
  // are two schedules of the same bisection tree.
  const Graph g = random_graph(92, 300, 700);
  const auto h = hierarchy_of(g);
  const auto pooled = partition_hierarchy(h, 8, config_with_threads(4));
  const auto mpr = partition_hierarchy_parallel(h, 8, config_with_threads(4), 3);
  ASSERT_EQ(mpr.partitioning.levels.size(), pooled.levels.size());
  for (std::size_t l = 0; l < pooled.levels.size(); ++l) {
    EXPECT_EQ(mpr.partitioning.levels[l], pooled.levels[l]) << "level " << l;
  }
  EXPECT_EQ(mpr.partitioning.finest_cut, pooled.finest_cut);
}

TEST(PartitionThreads, TrialsPooledDriverMatchesMprDriver) {
  // Multi-trial selection is a pure function of (seed, region, trial) with a
  // total-order winner, so both drivers must pick the same trial everywhere.
  const Graph g = random_graph(94, 300, 700);
  const auto h = hierarchy_of(g);
  PartitionerConfig cfg = config_with_threads(4);
  cfg.trials = 3;
  const auto pooled = partition_hierarchy(h, 8, cfg);
  const auto mpr = partition_hierarchy_parallel(h, 8, cfg, 3);
  ASSERT_EQ(mpr.partitioning.levels.size(), pooled.levels.size());
  for (std::size_t l = 0; l < pooled.levels.size(); ++l) {
    EXPECT_EQ(mpr.partitioning.levels[l], pooled.levels[l]) << "level " << l;
  }
  EXPECT_EQ(mpr.partitioning.finest_cut, pooled.finest_cut);
}

TEST(PartitionThreadsStress, FiftyRandomTrialsIdenticalAndBalanced) {
  Rng master(0xf0c05);
  double balance_sum = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE(trial);
    const std::size_t n = 64 + master.next_below(400);
    const std::size_t extra = n + master.next_below(2 * n);
    const auto k = static_cast<PartId>(2 << master.next_below(3));  // 2/4/8
    const Graph g = random_graph(master.next_u64(), n, extra);
    const auto h = hierarchy_of(g);

    PartitionerConfig cfg = config_with_threads(1);
    cfg.seed = master.next_u64();
    const auto reference = partition_hierarchy(h, k, cfg);

    PartitionerConfig pooled_cfg = cfg;
    pooled_cfg.threads = 1 + static_cast<unsigned>(master.next_below(8));
    const auto run = partition_hierarchy(h, k, pooled_cfg);
    EXPECT_EQ(run.levels, reference.levels)
        << "n=" << n << " k=" << k << " threads=" << pooled_cfg.threads;
    EXPECT_EQ(run.finest_cut, reference.finest_cut);
    EXPECT_TRUE(same_bits(run.work, reference.work));

    // Balance: 1.03 is the partitioner's *per-decision* rejection bound (GGG
    // side alternation, k-way move admission), not a global guarantee — on
    // these adversarial random graphs (random heavy edge weights, no planted
    // structure) log2(k) compounding bisections drift further. Measured over
    // this fixed seed set: max 1.43, mean 1.10 (cf. partition_test's
    // BalanceIsReasonable < 1.6 on the same family). Assert that envelope;
    // BalanceBoundHoldsOnUniformBlobs below asserts the 1.03 bound itself on
    // a well-conditioned workload.
    const double balance = node_balance(g, run.levels[0], k);
    balance_sum += balance;
    EXPECT_LT(balance, 1.5) << "n=" << n << " k=" << k;
  }
  EXPECT_LT(balance_sum / 50.0, 1.15);
}

TEST(PartitionThreads, BalanceBoundHoldsOnUniformBlobs) {
  // Four equal-size cliques joined by light bridges: the partitioner should
  // recover them, and on this well-conditioned input the finest partition
  // meets the 1.03 imbalance bound the growing/refinement stages target.
  constexpr std::size_t kBlob = 24;
  GraphBuilder b(4 * kBlob);
  for (std::size_t blob = 0; blob < 4; ++blob) {
    const auto base = static_cast<NodeId>(blob * kBlob);
    for (NodeId i = 0; i < kBlob; ++i) {
      for (NodeId j = i + 1; j < kBlob; ++j) {
        b.add_edge(base + i, base + j, 20);
      }
    }
  }
  for (std::size_t blob = 0; blob + 1 < 4; ++blob) {
    b.add_edge(static_cast<NodeId>(blob * kBlob),
               static_cast<NodeId>((blob + 1) * kBlob), 1);
  }
  const Graph g = b.build();
  const auto h = hierarchy_of(g);
  for (const unsigned width : {1u, 4u}) {
    SCOPED_TRACE(width);
    const auto run = partition_hierarchy(h, 4, config_with_threads(width));
    EXPECT_LE(node_balance(g, run.levels[0], 4), 1.03);
  }
}

// ---------------------------------------------------------------------------
// dist-layer partition gather
// ---------------------------------------------------------------------------

TEST(PartitionNodeLists, IdenticalAcrossWidths) {
  Rng rng(777);
  const PartId nparts = 14;
  std::vector<PartId> part(10'000);
  for (auto& p : part) p = static_cast<PartId>(rng.next_below(nparts));
  const auto reference = dist::partition_node_lists(part, nparts, 1);
  for (const unsigned width : {2u, 4u, 8u}) {
    SCOPED_TRACE(width);
    EXPECT_EQ(dist::partition_node_lists(part, nparts, width), reference);
  }
}

}  // namespace
}  // namespace focus::partition
