// Cross-module property tests: randomized sweeps over seeds asserting the
// structural invariants the pipeline relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "align/overlapper.hpp"
#include "common/rng.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "graph/coarsen.hpp"
#include "partition/kl.hpp"
#include "partition/kway.hpp"
#include "partition/mlpart.hpp"
#include "partition/partition.hpp"
#include "sim/genome.hpp"

namespace focus {
namespace {

graph::Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(40)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(40)));
  }
  return b.build();
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Coarsening invariants
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, CoarseningPreservesMassAndNeverGrowsEdges) {
  const auto g0 = random_graph(GetParam(), 150, 300);
  graph::CoarsenConfig cfg;
  cfg.min_nodes = 4;
  cfg.seed = GetParam() * 3 + 1;
  const auto h = graph::build_multilevel(g0, cfg);
  for (std::size_t l = 1; l < h.depth(); ++l) {
    EXPECT_EQ(h.levels[l].total_node_weight(), g0.total_node_weight());
    EXPECT_LE(h.levels[l].total_edge_weight(),
              h.levels[l - 1].total_edge_weight());
    EXPECT_LE(h.levels[l].edge_count(), h.levels[l - 1].edge_count());
    // Every parent id is valid and node weights aggregate exactly.
    std::vector<Weight> agg(h.levels[l].node_count(), 0);
    for (NodeId v = 0; v < h.levels[l - 1].node_count(); ++v) {
      ASSERT_LT(h.parent[l - 1][v], h.levels[l].node_count());
      agg[h.parent[l - 1][v]] += h.levels[l - 1].node_weight(v);
    }
    for (NodeId c = 0; c < h.levels[l].node_count(); ++c) {
      EXPECT_EQ(agg[c], h.levels[l].node_weight(c));
    }
  }
}

// ---------------------------------------------------------------------------
// Partitioning invariants
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, KlRefinementIsMonotoneAndValid) {
  const auto g = random_graph(GetParam() + 100, 60, 150);
  Rng rng(GetParam());
  std::vector<PartId> part(60);
  for (NodeId v = 0; v < 60; ++v) part[v] = static_cast<PartId>(v % 2);
  const Weight before = partition::edge_cut(g, part);
  const Weight after = partition::kl_bisection_refine(g, part);
  EXPECT_LE(after, before);
  EXPECT_TRUE(partition::is_complete(part, 2));
}

TEST_P(SeedSweep, KwayRefinementIsMonotoneForEveryK) {
  const auto g = random_graph(GetParam() + 200, 80, 200);
  for (const PartId k : {2, 3, 5, 8}) {
    Rng rng(GetParam() * 13 + static_cast<std::uint64_t>(k));
    std::vector<PartId> part(80);
    for (auto& p : part) p = static_cast<PartId>(rng.next_below(
        static_cast<std::uint64_t>(k)));
    const Weight before = partition::edge_cut(g, part);
    const Weight after = partition::kway_kl_refine(g, part, k);
    EXPECT_LE(after, before) << "k=" << k;
    EXPECT_TRUE(partition::is_complete(part, k));
  }
}

TEST_P(SeedSweep, HierarchyPartitionIsDisjointCover) {
  const auto g = random_graph(GetParam() + 300, 120, 260);
  graph::CoarsenConfig ccfg;
  ccfg.min_nodes = 8;
  const auto h = graph::build_multilevel(g, ccfg);
  partition::PartitionerConfig pcfg;
  pcfg.seed = GetParam();
  const auto result = partition::partition_hierarchy(h, 8, pcfg);
  // Complete on every level; every part non-empty on the finest level.
  for (std::size_t l = 0; l < h.depth(); ++l) {
    EXPECT_TRUE(partition::is_complete(result.levels[l], 8));
  }
  std::set<PartId> used(result.levels[0].begin(), result.levels[0].end());
  EXPECT_EQ(used.size(), 8u);
  // The cut metric agrees with a fresh recomputation.
  EXPECT_EQ(result.finest_cut, partition::edge_cut(g, result.levels[0]));
}

// ---------------------------------------------------------------------------
// Overlap detection against ground truth
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, OverlapperFindsAllTrueAdjacenciesAndNoFalseOnes) {
  Rng rng(GetParam() + 400);
  const std::string genome = sim::random_genome(1200, rng);
  // Reads every 35 bp: adjacent reads overlap by 65, next-nearest by 30
  // (below the 40 threshold).
  io::ReadSet reads;
  std::vector<std::size_t> starts;
  for (std::size_t s = 0; s + 100 <= genome.size(); s += 35) {
    reads.add(io::Read{"r" + std::to_string(s), genome.substr(s, 100), "",
                       kInvalidRead, false});
    starts.push_back(s);
  }
  align::OverlapperConfig cfg;
  cfg.k = 12;
  cfg.min_overlap = 40;
  cfg.subsets = 3;
  const auto overlaps = align::find_overlaps_serial(reads, cfg);

  std::set<std::pair<ReadId, ReadId>> found;
  for (const auto& o : overlaps) found.insert({o.query, o.ref});
  // Exactly the adjacent pairs (i, i+1) must be present (random genomes can
  // occasionally add a spurious repeat match; forbid only distant pairs).
  for (ReadId i = 0; i + 1 < reads.size(); ++i) {
    EXPECT_TRUE(found.contains({i, static_cast<ReadId>(i + 1)}))
        << "missing adjacent overlap " << i;
  }
  for (const auto& [q, r] : found) {
    EXPECT_LE(r - q, 1u) << "spurious distant overlap " << q << "-" << r;
  }
}

// ---------------------------------------------------------------------------
// Simplification invariants
// ---------------------------------------------------------------------------

TEST_P(SeedSweep, SimplifyReachesStructuralFixpoint) {
  Rng rng(GetParam() + 500);
  const std::string genome = sim::random_genome(2500, rng);
  dist::AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 10; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 200, 300), 5));
  }
  for (int i = 0; i + 1 < 10; ++i) g.add_edge(chain[i], chain[i + 1], 100);
  // Random transitive shortcuts.
  for (int i = 0; i + 2 < 10; ++i) {
    if (rng.next_bool(0.5)) g.add_edge(chain[i], chain[i + 2], 20);
  }
  dist::SimplifyConfig cfg;
  dist::simplify_serial(g, cfg);
  // A second pass must find no transitive edges, false edges, or
  // containments (those passes are idempotent by construction).
  const auto second = dist::simplify_serial(g, cfg);
  EXPECT_EQ(second.transitive_edges, 0u);
  EXPECT_EQ(second.false_edges, 0u);
  EXPECT_EQ(second.contained_nodes, 0u);
}

TEST_P(SeedSweep, TraversalPartitionsLiveNodes) {
  Rng rng(GetParam() + 600);
  dist::AsmGraph g;
  // Random sparse DAG-ish structure.
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    g.add_node(sim::random_genome(120, rng), 1 + rng.next_below(8));
  }
  for (int i = 0; i < n; ++i) {
    const auto fanout = rng.next_below(3);
    for (std::uint64_t f = 0; f < fanout; ++f) {
      const auto to = static_cast<NodeId>(rng.next_below(n));
      if (to != static_cast<NodeId>(i)) {
        g.add_edge(static_cast<NodeId>(i), to, 40);
      }
    }
  }
  // Randomly remove some nodes.
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.2)) g.remove_node(static_cast<NodeId>(i));
  }
  const auto paths = dist::traverse_serial(g);
  std::set<NodeId> covered;
  for (const auto& path : paths) {
    for (const NodeId v : path) {
      EXPECT_TRUE(g.node_live(v));
      EXPECT_TRUE(covered.insert(v).second);
    }
  }
  EXPECT_EQ(covered.size(), g.live_node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace focus
