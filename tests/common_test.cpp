// Unit and property tests for src/common: rng, dna, indexed heap, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/dna.hpp"
#include "common/error.hpp"
#include "common/indexed_heap.hpp"
#include "common/packed_seq.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace focus {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextRealInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.next_real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(19);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.3, 0.02);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(23);
  const auto p = rng.permutation(100);
  std::set<std::uint32_t> values(p.begin(), p.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 1, 2, 3, 5, 8, 13};
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ---------------------------------------------------------------------------
// dna
// ---------------------------------------------------------------------------

TEST(Dna, IsBase) {
  EXPECT_TRUE(dna::is_base('A'));
  EXPECT_TRUE(dna::is_base('C'));
  EXPECT_TRUE(dna::is_base('G'));
  EXPECT_TRUE(dna::is_base('T'));
  EXPECT_FALSE(dna::is_base('N'));
  EXPECT_FALSE(dna::is_base('a'));
  EXPECT_FALSE(dna::is_base('X'));
  EXPECT_FALSE(dna::is_base('\0'));
}

TEST(Dna, Complement) {
  EXPECT_EQ(dna::complement('A'), 'T');
  EXPECT_EQ(dna::complement('T'), 'A');
  EXPECT_EQ(dna::complement('C'), 'G');
  EXPECT_EQ(dna::complement('G'), 'C');
  EXPECT_EQ(dna::complement('N'), 'N');
  EXPECT_EQ(dna::complement('q'), 'N');
}

TEST(Dna, ReverseComplement) {
  EXPECT_EQ(dna::reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(dna::reverse_complement("AAAC"), "GTTT");
  EXPECT_EQ(dna::reverse_complement(""), "");
  EXPECT_EQ(dna::reverse_complement("AN"), "NT");
}

TEST(Dna, ReverseComplementIsInvolution) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    for (int i = 0; i < 50; ++i) {
      s.push_back(dna::decode_base(static_cast<std::uint8_t>(rng.next_below(4))));
    }
    EXPECT_EQ(dna::reverse_complement(dna::reverse_complement(s)), s);
  }
}

TEST(Dna, Canonicalize) {
  EXPECT_EQ(dna::canonicalize("acgt"), "ACGT");
  EXPECT_EQ(dna::canonicalize("A-C*T"), "ANCNT");
}

TEST(Dna, IsClean) {
  EXPECT_TRUE(dna::is_clean("ACGT"));
  EXPECT_TRUE(dna::is_clean(""));
  EXPECT_FALSE(dna::is_clean("ACGN"));
}

TEST(Dna, EncodeDecodeRoundTrip) {
  for (const char c : {'A', 'C', 'G', 'T'}) {
    EXPECT_EQ(dna::decode_base(dna::encode_base(c)), c);
  }
}

TEST(Dna, PackKmer) {
  std::uint64_t kmer = 0;
  ASSERT_TRUE(dna::pack_kmer("ACGT", 0, 4, kmer));
  // A=0 C=1 G=2 T=3 -> 0b00011011
  EXPECT_EQ(kmer, 0b00011011u);
  EXPECT_FALSE(dna::pack_kmer("ACGT", 1, 4, kmer));  // out of range
  EXPECT_FALSE(dna::pack_kmer("ACNT", 0, 4, kmer));  // ambiguous base
  ASSERT_TRUE(dna::pack_kmer("ACGT", 2, 2, kmer));
  EXPECT_EQ(kmer, 0b1011u);
}

TEST(Dna, Identity) {
  EXPECT_DOUBLE_EQ(dna::identity("ACGT", "ACGT"), 1.0);
  EXPECT_DOUBLE_EQ(dna::identity("ACGT", "ACGA"), 0.75);
  EXPECT_DOUBLE_EQ(dna::identity("", ""), 1.0);
  EXPECT_THROW(dna::identity("A", "AB"), Error);
}

// ---------------------------------------------------------------------------
// PackedSeq
// ---------------------------------------------------------------------------

TEST(PackedSeq, RoundTripsCleanSequence) {
  const std::string seq = "ACGTACGTTTGGCCAA";
  dna::PackedSeq p(seq);
  ASSERT_EQ(p.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_FALSE(p.ambiguous_at(i)) << "position " << i;
    EXPECT_EQ(p.char_at(i), seq[i]) << "position " << i;
  }
  EXPECT_EQ(p.unpack(), seq);
  EXPECT_EQ(p.ambiguous_count(), 0u);
}

TEST(PackedSeq, MarksNAndLowercaseAndJunkAmbiguous) {
  // Lowercase is NOT silently uppercased: the index must match the literal
  // semantics of the suffix-array oracle, where 'a' never equals 'A'.
  const std::string seq = "ACNgt*T";
  dna::PackedSeq p(seq);
  EXPECT_FALSE(p.ambiguous_at(0));
  EXPECT_FALSE(p.ambiguous_at(1));
  EXPECT_TRUE(p.ambiguous_at(2));   // N
  EXPECT_TRUE(p.ambiguous_at(3));   // g
  EXPECT_TRUE(p.ambiguous_at(4));   // t
  EXPECT_TRUE(p.ambiguous_at(5));   // *
  EXPECT_FALSE(p.ambiguous_at(6));
  EXPECT_EQ(p.unpack(), "ACNNNNT");
  EXPECT_EQ(p.ambiguous_count(), 4u);
}

TEST(PackedSeq, EmptyAndShorterThanK) {
  dna::PackedSeq empty{std::string_view{}};
  EXPECT_TRUE(empty.empty());
  std::uint64_t key = 99;
  EXPECT_FALSE(empty.kmer_at(0, 8, key));

  dna::PackedSeq tiny("ACGT");
  EXPECT_FALSE(tiny.kmer_at(0, 8, key));   // read shorter than k
  EXPECT_FALSE(tiny.kmer_at(1, 4, key));   // window runs off the end
  EXPECT_TRUE(tiny.kmer_at(0, 4, key));
}

TEST(PackedSeq, KmerKeysMatchSubstringEquality) {
  // kmer_at keys are equal exactly when the underlying substrings are equal
  // — the property the hashed seed index relies on.
  Rng rng(42);
  std::string seq;
  for (int i = 0; i < 300; ++i) seq.push_back("ACGT"[rng.next_below(4)]);
  dna::PackedSeq p(seq);
  for (const unsigned k : {8u, 15u, 16u, 31u, 32u}) {
    std::map<std::uint64_t, std::string> seen;
    for (std::size_t pos = 0; pos + k <= seq.size(); ++pos) {
      std::uint64_t key;
      ASSERT_TRUE(p.kmer_at(pos, k, key));
      const std::string sub = seq.substr(pos, k);
      const auto it = seen.find(key);
      if (it != seen.end()) {
        EXPECT_EQ(it->second, sub) << "key collision at k=" << k;
      } else {
        seen.emplace(key, sub);
      }
    }
    // Distinct substrings must get distinct keys.
    std::set<std::string> subs;
    for (std::size_t pos = 0; pos + k <= seq.size(); ++pos) {
      subs.insert(seq.substr(pos, k));
    }
    EXPECT_EQ(seen.size(), subs.size()) << "k=" << k;
  }
}

TEST(PackedSeq, KmerAtRejectsWindowsTouchingAmbiguousBases) {
  std::string seq(100, 'A');
  seq[50] = 'N';
  dna::PackedSeq p(seq);
  std::uint64_t key;
  for (std::size_t pos = 0; pos + 16 <= seq.size(); ++pos) {
    const bool covers_n = pos <= 50 && 50 < pos + 16;
    EXPECT_EQ(p.kmer_at(pos, 16, key), !covers_n) << "pos " << pos;
  }
  EXPECT_TRUE(p.clean_window(0, 50));
  EXPECT_FALSE(p.clean_window(0, 51));
  EXPECT_TRUE(p.clean_window(51, 49));
  EXPECT_FALSE(p.clean_window(51, 50));  // out of range
}

TEST(PackedSeq, KmerAtCrossesWordBoundaries) {
  // Windows straddling the 32-base word boundary must extract correctly.
  Rng rng(7);
  std::string seq;
  for (int i = 0; i < 96; ++i) seq.push_back("ACGT"[rng.next_below(4)]);
  dna::PackedSeq p(seq);
  for (const unsigned k : {16u, 32u}) {
    for (std::size_t pos = 20; pos + k <= 70; ++pos) {
      std::uint64_t key_direct;
      ASSERT_TRUE(p.kmer_at(pos, k, key_direct));
      // Reference: pack the substring standalone (window at offset 0).
      dna::PackedSeq sub(std::string_view(seq).substr(pos, k));
      std::uint64_t key_ref;
      ASSERT_TRUE(sub.kmer_at(0, k, key_ref));
      EXPECT_EQ(key_direct, key_ref) << "pos " << pos << " k " << k;
    }
  }
}

TEST(PackedSeq, AssignReusesBuffersAcrossSequences) {
  dna::PackedSeq p("ACGTACGTACGT");
  p.assign("TTT");
  EXPECT_EQ(p.size(), 3u);
  EXPECT_EQ(p.unpack(), "TTT");
  p.assign("ACGNA");
  EXPECT_EQ(p.unpack(), "ACGNA");
  std::uint64_t key;
  EXPECT_TRUE(p.kmer_at(0, 3, key));
  EXPECT_FALSE(p.kmer_at(1, 3, key));  // covers the N
}

// ---------------------------------------------------------------------------
// IndexedMaxHeap
// ---------------------------------------------------------------------------

TEST(IndexedMaxHeap, BasicPushPop) {
  IndexedMaxHeap<int> heap(10);
  heap.push(3, 5);
  heap.push(7, 10);
  heap.push(1, 1);
  EXPECT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.top(), 7u);
  EXPECT_EQ(heap.pop(), 7u);
  EXPECT_EQ(heap.pop(), 3u);
  EXPECT_EQ(heap.pop(), 1u);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedMaxHeap, TieBreaksBySmallestKey) {
  IndexedMaxHeap<int> heap(10);
  heap.push(5, 7);
  heap.push(2, 7);
  heap.push(9, 7);
  EXPECT_EQ(heap.pop(), 2u);
  EXPECT_EQ(heap.pop(), 5u);
  EXPECT_EQ(heap.pop(), 9u);
}

TEST(IndexedMaxHeap, UpdateRaisesAndLowers) {
  IndexedMaxHeap<int> heap(4);
  heap.push(0, 1);
  heap.push(1, 2);
  heap.push(2, 3);
  heap.update(0, 100);
  EXPECT_EQ(heap.top(), 0u);
  heap.update(0, -1);
  EXPECT_EQ(heap.top(), 2u);
  EXPECT_EQ(heap.priority(0), -1);
}

TEST(IndexedMaxHeap, EraseMiddle) {
  IndexedMaxHeap<int> heap(8);
  for (std::uint32_t k = 0; k < 8; ++k) heap.push(k, static_cast<int>(k));
  heap.erase(4);
  EXPECT_FALSE(heap.contains(4));
  std::vector<std::uint32_t> order;
  while (!heap.empty()) order.push_back(heap.pop());
  EXPECT_EQ(order, (std::vector<std::uint32_t>{7, 6, 5, 3, 2, 1, 0}));
}

TEST(IndexedMaxHeap, PushOrUpdate) {
  IndexedMaxHeap<int> heap(4);
  heap.push_or_update(2, 5);
  heap.push_or_update(2, 9);
  EXPECT_EQ(heap.size(), 1u);
  EXPECT_EQ(heap.priority(2), 9);
}

TEST(IndexedMaxHeap, ResetClearsAndResizes) {
  IndexedMaxHeap<int> heap(2);
  heap.push(0, 1);
  heap.reset(100);
  EXPECT_TRUE(heap.empty());
  heap.push(99, 42);
  EXPECT_EQ(heap.top(), 99u);
}

// Property: heap agrees with a reference model under a random op sequence.
class IndexedHeapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexedHeapProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  const std::size_t universe = 64;
  IndexedMaxHeap<std::int64_t> heap(universe);
  std::map<std::uint32_t, std::int64_t> model;

  for (int step = 0; step < 2000; ++step) {
    const auto key = static_cast<std::uint32_t>(rng.next_below(universe));
    const auto op = rng.next_below(4);
    if (op == 0) {  // insert or update
      const auto prio = rng.next_in(-1000, 1000);
      heap.push_or_update(key, prio);
      model[key] = prio;
    } else if (op == 1 && heap.contains(key)) {  // erase
      heap.erase(key);
      model.erase(key);
    } else if (op == 2 && !heap.empty()) {  // pop max
      const auto k = heap.pop();
      auto best = model.begin();
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->second > best->second) best = it;
      }
      EXPECT_EQ(k, best->first);
      model.erase(best);
    } else if (op == 3 && heap.contains(key)) {  // priority query
      EXPECT_EQ(heap.priority(key), model.at(key));
    }
    ASSERT_EQ(heap.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexedHeapProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(Stats, N50Basics) {
  EXPECT_EQ(n50({}), 0u);
  EXPECT_EQ(n50({100}), 100u);
  // Total 100+80+70+50 = 300, half = 150; 100+80 = 180 >= 150 -> 80.
  EXPECT_EQ(n50({50, 80, 100, 70}), 80u);
}

TEST(Stats, NxFractions) {
  const std::vector<std::uint64_t> lens{10, 20, 30, 40};  // total 100
  EXPECT_EQ(nx(lens, 0.25), 40u);
  EXPECT_EQ(nx(lens, 0.5), 30u);
  EXPECT_EQ(nx(lens, 0.9), 20u);  // 40+30+20 = 90 >= 90
  EXPECT_EQ(nx(lens, 0.95), 10u);
  EXPECT_THROW(nx(lens, 0.0), Error);
  EXPECT_THROW(nx(lens, 1.5), Error);
}

TEST(Stats, Pearson) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);  // constant input
  EXPECT_THROW(pearson({1.0}, {1.0, 2.0}), Error);
}

// ---------------------------------------------------------------------------
// error machinery
// ---------------------------------------------------------------------------

TEST(ErrorMacros, CheckThrowsFocusError) {
  EXPECT_THROW(FOCUS_CHECK(false, "bad input"), Error);
  EXPECT_NO_THROW(FOCUS_CHECK(true, "fine"));
}

TEST(ErrorMacros, AssertThrowsLogicError) {
  EXPECT_THROW(FOCUS_ASSERT(false, "broken invariant"), std::logic_error);
}

TEST(ErrorMacros, MessagesIncludeLocation) {
  try {
    FOCUS_THROW("custom message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace focus
