// Tests for the alignment substrate: suffix array, banded Needleman–Wunsch,
// and overlap detection/classification (paper §II-B).
#include <gtest/gtest.h>

#include <algorithm>

#include "align/banded_nw.hpp"
#include "align/overlap.hpp"
#include "align/overlapper.hpp"
#include "align/suffix_array.hpp"
#include "common/dna.hpp"
#include "common/rng.hpp"

namespace focus::align {
namespace {

// ---------------------------------------------------------------------------
// Suffix array
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> naive_suffix_array(const std::string& text) {
  std::vector<std::uint32_t> sa(text.size());
  std::iota(sa.begin(), sa.end(), 0u);
  std::sort(sa.begin(), sa.end(), [&](std::uint32_t a, std::uint32_t b) {
    return text.substr(a) < text.substr(b);
  });
  return sa;
}

TEST(SuffixArray, EmptyAndSingle) {
  SuffixArray empty("");
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.count("A"), 0u);

  SuffixArray one("G");
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(one.at(0), 0u);
  EXPECT_EQ(one.count("G"), 1u);
  EXPECT_EQ(one.count("C"), 0u);
}

TEST(SuffixArray, KnownExample) {
  // banana-style classic on DNA alphabet.
  const std::string text = "GATAGACA";
  SuffixArray sa(text);
  const auto expected = naive_suffix_array(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    EXPECT_EQ(sa.at(i), expected[i]) << "index " << i;
  }
}

TEST(SuffixArray, RepetitiveText) {
  const std::string text(64, 'A');
  SuffixArray sa(text);
  const auto expected = naive_suffix_array(text);
  for (std::size_t i = 0; i < text.size(); ++i) {
    EXPECT_EQ(sa.at(i), expected[i]);
  }
  EXPECT_EQ(sa.count("AAAA"), 61u);
}

class SuffixArrayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SuffixArrayProperty, MatchesNaiveConstruction) {
  Rng rng(GetParam());
  const auto len = 1 + rng.next_below(300);
  std::string text;
  for (std::uint64_t i = 0; i < len; ++i) {
    text.push_back("ACGT\x01"[rng.next_below(5)]);  // includes separators
  }
  SuffixArray sa(text);
  const auto expected = naive_suffix_array(text);
  ASSERT_EQ(sa.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(sa.at(i), expected[i]) << "seed " << GetParam() << " index " << i;
  }
}

TEST_P(SuffixArrayProperty, FindLocatesAllOccurrences) {
  Rng rng(GetParam() ^ 0xabcdef);
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text.push_back("ACGT"[rng.next_below(4)]);
  }
  SuffixArray sa(text);
  for (int trial = 0; trial < 20; ++trial) {
    const auto plen = 1 + rng.next_below(8);
    const auto pos = rng.next_below(text.size() - plen);
    const std::string pattern = text.substr(pos, plen);
    // Reference count by scanning.
    std::vector<std::uint32_t> expected;
    for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
      if (text.compare(i, pattern.size(), pattern) == 0) {
        expected.push_back(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(sa.locate(pattern), expected) << "pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixArrayProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SuffixArray, AbsentPatternNotFound) {
  SuffixArray sa("ACGTACGT");
  EXPECT_EQ(sa.count("TTT"), 0u);
  EXPECT_TRUE(sa.locate("GGG").empty());
}

TEST(SuffixArray, PatternLongerThanText) {
  SuffixArray sa("ACG");
  EXPECT_EQ(sa.count("ACGT"), 0u);
}

// ---------------------------------------------------------------------------
// Banded Needleman–Wunsch
// ---------------------------------------------------------------------------

TEST(BandedNw, IdenticalSequences) {
  const auto r = banded_global_align("ACGTACGT", "ACGTACGT", 4);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.columns, 8u);
  EXPECT_EQ(r.matches, 8u);
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.gaps, 0u);
  EXPECT_DOUBLE_EQ(r.identity(), 1.0);
}

TEST(BandedNw, SingleSubstitution) {
  const auto r = banded_global_align("ACGTACGT", "ACGAACGT", 4);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.columns, 8u);
  EXPECT_EQ(r.matches, 7u);
  EXPECT_EQ(r.mismatches, 1u);
  EXPECT_DOUBLE_EQ(r.identity(), 7.0 / 8.0);
}

TEST(BandedNw, SingleInsertion) {
  const auto r = banded_global_align("ACGTACGT", "ACGTTACGT", 4);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.columns, 9u);
  EXPECT_EQ(r.matches, 8u);
  EXPECT_EQ(r.gaps, 1u);
}

TEST(BandedNw, EmptySequences) {
  const auto r = banded_global_align("", "", 2);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.columns, 0u);

  const auto r2 = banded_global_align("ACG", "", 2);
  ASSERT_TRUE(r2.valid);
  EXPECT_EQ(r2.columns, 3u);
  EXPECT_EQ(r2.gaps, 3u);
}

TEST(BandedNw, LargeLengthDifferenceHandledBySkew) {
  const std::string a = "ACGTACGTACGTACGTACGT";
  const std::string b = a.substr(0, 10);
  const auto r = banded_global_align(a, b, 2);
  ASSERT_TRUE(r.valid);  // skew-adjusted band always connects corners
  EXPECT_EQ(r.gaps, 10u);
}

TEST(BandedNw, ScoreMatchesCountsUnderScoring) {
  AlignScoring scoring;
  const auto r = banded_global_align("ACGTACGT", "ACCTACGT", 4, scoring);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.score, static_cast<std::int32_t>(r.matches) * scoring.match +
                         static_cast<std::int32_t>(r.mismatches) *
                             scoring.mismatch +
                         static_cast<std::int32_t>(r.gaps) * scoring.gap);
}

class BandedNwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandedNwProperty, AgreesWithWideBandOnNoisyPairs) {
  // A band of width >= the true number of indels must recover the same score
  // as an effectively-unbounded band.
  Rng rng(GetParam());
  std::string a;
  for (int i = 0; i < 120; ++i) a.push_back("ACGT"[rng.next_below(4)]);
  std::string b;
  for (const char c : a) {
    if (rng.next_bool(0.02)) continue;              // deletion
    b.push_back(rng.next_bool(0.05)
                    ? "ACGT"[rng.next_below(4)]     // substitution
                    : c);
    if (rng.next_bool(0.02)) b.push_back("ACGT"[rng.next_below(4)]);
  }
  const auto wide = banded_global_align(a, b, 120);
  const auto banded = banded_global_align(a, b, 16);
  ASSERT_TRUE(wide.valid);
  ASSERT_TRUE(banded.valid);
  EXPECT_EQ(banded.score, wide.score);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedNwProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(BandedNw, WorkEstimateScalesWithBandAndLength) {
  EXPECT_GT(banded_align_work(100, 100, 16), banded_align_work(100, 100, 4));
  EXPECT_GT(banded_align_work(200, 200, 8), banded_align_work(100, 100, 8));
}

// ---------------------------------------------------------------------------
// Overlap records
// ---------------------------------------------------------------------------

TEST(OverlapRecord, FlipSwapsPerspective) {
  Overlap o;
  o.query = 3;
  o.ref = 7;
  o.length = 55;
  o.identity = 0.97f;
  o.kind = OverlapKind::kSuffixPrefix;
  const Overlap f = flipped(o);
  EXPECT_EQ(f.query, 7u);
  EXPECT_EQ(f.ref, 3u);
  EXPECT_EQ(f.kind, OverlapKind::kPrefixSuffix);
  EXPECT_EQ(f.length, 55u);

  Overlap c;
  c.query = 2;
  c.ref = 9;
  c.kind = OverlapKind::kQueryContained;
  EXPECT_EQ(flipped(c).kind, OverlapKind::kRefContained);
}

TEST(OverlapRecord, CanonicalizeOrdersIds) {
  Overlap o;
  o.query = 9;
  o.ref = 2;
  o.kind = OverlapKind::kSuffixPrefix;
  const Overlap c = canonicalized(o);
  EXPECT_EQ(c.query, 2u);
  EXPECT_EQ(c.ref, 9u);
  EXPECT_EQ(c.kind, OverlapKind::kPrefixSuffix);
  // Already canonical stays put.
  EXPECT_EQ(canonicalized(c).query, 2u);
}

// ---------------------------------------------------------------------------
// Overlap detection
// ---------------------------------------------------------------------------

// Builds a read set by cutting windows from a random genome; returns reads
// plus their true positions.
struct TestReads {
  io::ReadSet reads;
  std::vector<std::size_t> position;
  std::string genome;
};

TestReads windows_from_genome(std::uint64_t seed, std::size_t genome_len,
                              const std::vector<std::size_t>& starts,
                              std::size_t read_len) {
  Rng rng(seed);
  TestReads t;
  for (std::size_t i = 0; i < genome_len; ++i) {
    t.genome.push_back("ACGT"[rng.next_below(4)]);
  }
  for (const auto start : starts) {
    io::Read r;
    r.name = "w" + std::to_string(start);
    r.seq = t.genome.substr(start, read_len);
    t.reads.add(std::move(r));
    t.position.push_back(start);
  }
  return t;
}

OverlapperConfig small_config() {
  OverlapperConfig cfg;
  cfg.k = 12;
  cfg.min_kmer_hits = 3;
  cfg.min_overlap = 30;
  cfg.min_identity = 0.9;
  cfg.subsets = 2;
  return cfg;
}

TEST(Overlapper, DetectsDovetailOverlap) {
  // Two 100 bp reads overlapping by 60 bp.
  const auto t = windows_from_genome(101, 300, {0, 40}, 100);
  const auto overlaps = find_overlaps_serial(t.reads, small_config());
  ASSERT_EQ(overlaps.size(), 1u);
  const Overlap& o = overlaps[0];
  EXPECT_EQ(o.length, 60u);
  EXPECT_FLOAT_EQ(o.identity, 1.0f);
  // Canonical: query 0 (earlier read), ref 1; read 0's suffix meets read 1's
  // prefix.
  EXPECT_EQ(o.query, 0u);
  EXPECT_EQ(o.ref, 1u);
  EXPECT_EQ(o.kind, OverlapKind::kSuffixPrefix);
}

TEST(Overlapper, DetectsContainment) {
  Rng rng(202);
  std::string genome;
  for (int i = 0; i < 300; ++i) genome.push_back("ACGT"[rng.next_below(4)]);
  io::ReadSet reads;
  reads.add(io::Read{"big", genome.substr(0, 150), "", kInvalidRead, false});
  reads.add(io::Read{"small", genome.substr(30, 60), "", kInvalidRead, false});
  const auto overlaps = find_overlaps_serial(reads, small_config());
  ASSERT_EQ(overlaps.size(), 1u);
  // Canonical form: query = 0 = big; the contained read is ref (read 1).
  EXPECT_EQ(overlaps[0].kind, OverlapKind::kRefContained);
  EXPECT_GE(overlaps[0].length, 58u);
}

TEST(Overlapper, RejectsShortOverlap) {
  // Overlap of 20 bp < min_overlap 30.
  const auto t = windows_from_genome(103, 300, {0, 80}, 100);
  const auto overlaps = find_overlaps_serial(t.reads, small_config());
  EXPECT_TRUE(overlaps.empty());
}

TEST(Overlapper, RejectsLowIdentity) {
  auto t = windows_from_genome(104, 300, {0, 40}, 100);
  // Corrupt the overlap region of read 1 heavily (every 4th base).
  io::Read corrupted = t.reads[1];
  for (std::size_t i = 0; i < 60; i += 4) {
    corrupted.seq[i] = dna::complement(corrupted.seq[i]);
  }
  io::ReadSet reads;
  reads.add(t.reads[0]);
  reads.add(std::move(corrupted));
  const auto overlaps = find_overlaps_serial(reads, small_config());
  EXPECT_TRUE(overlaps.empty());
}

TEST(Overlapper, ToleratesSequencingErrorsWithinThreshold) {
  auto t = windows_from_genome(105, 300, {0, 40}, 100);
  io::Read noisy = t.reads[1];
  // 3 substitutions in a 60 bp overlap -> 95% identity.
  noisy.seq[10] = dna::complement(noisy.seq[10]);
  noisy.seq[30] = dna::complement(noisy.seq[30]);
  noisy.seq[50] = dna::complement(noisy.seq[50]);
  io::ReadSet reads;
  reads.add(t.reads[0]);
  reads.add(std::move(noisy));
  const auto overlaps = find_overlaps_serial(reads, small_config());
  ASSERT_EQ(overlaps.size(), 1u);
  EXPECT_GE(overlaps[0].identity, 0.94f);
  EXPECT_LT(overlaps[0].identity, 1.0f);
}

TEST(Overlapper, ChainOfReadsYieldsChainOfOverlaps) {
  const auto t =
      windows_from_genome(106, 500, {0, 50, 100, 150, 200}, 100);
  const auto overlaps = find_overlaps_serial(t.reads, small_config());
  // Adjacent pairs overlap by 50; next-nearest by 0 (exactly abutting).
  ASSERT_EQ(overlaps.size(), 4u);
  for (const auto& o : overlaps) {
    EXPECT_EQ(o.ref, o.query + 1);
    EXPECT_EQ(o.length, 50u);
  }
}

TEST(Overlapper, NoFalseOverlapsBetweenUnrelatedReads) {
  Rng rng(303);
  io::ReadSet reads;
  for (int i = 0; i < 6; ++i) {
    std::string seq;
    for (int j = 0; j < 100; ++j) seq.push_back("ACGT"[rng.next_below(4)]);
    reads.add(io::Read{"u" + std::to_string(i), seq, "", kInvalidRead, false});
  }
  EXPECT_TRUE(find_overlaps_serial(reads, small_config()).empty());
}

TEST(Overlapper, SkipsKmersWithAmbiguousBases) {
  auto t = windows_from_genome(107, 300, {0, 40}, 100);
  io::Read with_n = t.reads[1];
  with_n.seq[5] = 'N';
  io::ReadSet reads;
  reads.add(t.reads[0]);
  reads.add(std::move(with_n));
  // Still detected: plenty of clean k-mers remain.
  EXPECT_EQ(find_overlaps_serial(reads, small_config()).size(), 1u);
}

class ParallelOverlapEquivalence
    : public ::testing::TestWithParam<int> {};

TEST_P(ParallelOverlapEquivalence, MatchesSerialForAnyRankCount) {
  const auto t = windows_from_genome(
      108, 900, {0, 60, 120, 180, 240, 300, 360, 420, 480, 540, 600, 660},
      100);
  OverlapperConfig cfg = small_config();
  cfg.subsets = 3;
  const auto serial = find_overlaps_serial(t.reads, cfg);
  const auto parallel = find_overlaps_parallel(t.reads, cfg, GetParam());
  ASSERT_EQ(parallel.overlaps.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel.overlaps[i].query, serial[i].query);
    EXPECT_EQ(parallel.overlaps[i].ref, serial[i].ref);
    EXPECT_EQ(parallel.overlaps[i].length, serial[i].length);
    EXPECT_EQ(parallel.overlaps[i].kind, serial[i].kind);
  }
  EXPECT_GT(parallel.stats.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParallelOverlapEquivalence,
                         ::testing::Values(1, 2, 3, 4, 6));

TEST(Overlapper, DedupeKeepsLongest) {
  std::vector<Overlap> dup;
  Overlap a;
  a.query = 1;
  a.ref = 2;
  a.length = 50;
  a.kind = OverlapKind::kSuffixPrefix;
  Overlap b = flipped(a);
  b.length = 70;  // same pair, longer record, flipped orientation
  dup.push_back(a);
  dup.push_back(b);
  const auto out = dedupe_overlaps(dup);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].length, 70u);
  EXPECT_EQ(out[0].query, 1u);
}

TEST(Overlapper, ReadsShorterThanKAreSkipped) {
  io::ReadSet reads;
  reads.add(io::Read{"tiny", "ACGT", "", kInvalidRead, false});
  reads.add(io::Read{"tiny2", "ACGT", "", kInvalidRead, false});
  OverlapperConfig cfg = small_config();
  EXPECT_TRUE(find_overlaps_serial(reads, cfg).empty());
}

TEST(RefIndex, ResolvesPositionsToReads) {
  io::ReadSet reads;
  reads.add(io::Read{"a", "AAAA", "", kInvalidRead, false});
  reads.add(io::Read{"b", "CCCC", "", kInvalidRead, false});
  RefIndex index(reads, {0, 1});
  EXPECT_EQ(index.resolve(0).first, 0u);
  EXPECT_EQ(index.resolve(3).second, 3u);
  EXPECT_EQ(index.resolve(5).first, 1u);
  EXPECT_EQ(index.resolve(5).second, 0u);
}

}  // namespace
}  // namespace focus::align
