// Tests for graph structures, coarsening (HEM), and the multilevel set.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "align/overlap.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/coarsen.hpp"
#include "graph/digraph.hpp"
#include "graph/graph.hpp"

namespace focus::graph {
namespace {

Graph path_graph(std::size_t n, Weight w = 10) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1, w);
  return b.build();
}

// Random connected-ish graph for property tests.
Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra_edges) {
  Rng rng(seed);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(100)));
  }
  for (std::size_t i = 0; i < extra_edges; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(100)));
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Graph / GraphBuilder
// ---------------------------------------------------------------------------

TEST(GraphBuilder, MergesParallelEdges) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 0, 5);  // same undirected edge
  b.add_edge(1, 2, 7);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge_weight(0, 1), 15);
  EXPECT_EQ(g.edge_weight(1, 0), 15);
  EXPECT_EQ(g.edge_weight(1, 2), 7);
  EXPECT_EQ(g.edge_weight(0, 2), 0);
  EXPECT_EQ(g.total_edge_weight(), 22);
}

TEST(GraphBuilder, RejectsInvalidEdges) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 0, 1), Error);
  EXPECT_THROW(b.add_edge(0, 2, 1), Error);
  EXPECT_THROW(b.add_edge(0, 1, 0), Error);
  EXPECT_THROW(b.set_node_weight(5, 1), Error);
}

TEST(Graph, NeighborsSortedById) {
  GraphBuilder b(5);
  b.add_edge(2, 4, 1);
  b.add_edge(2, 0, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(2, 1, 1);
  const Graph g = b.build();
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 4u);
  for (std::size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1].to, adj[i].to);
  }
}

TEST(Graph, WeightsAndDegrees) {
  const Graph g = path_graph(4, 10);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.total_node_weight(), 4);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_EQ(g.weighted_degree(1), 20);
}

TEST(Graph, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.total_edge_weight(), 0);
}

TEST(BuildOverlapGraph, EdgesFromOverlaps) {
  std::vector<align::Overlap> overlaps;
  align::Overlap o;
  o.query = 0;
  o.ref = 1;
  o.length = 60;
  o.kind = align::OverlapKind::kSuffixPrefix;
  overlaps.push_back(o);
  o.query = 2;
  o.ref = 1;
  o.length = 40;
  overlaps.push_back(o);
  // Duplicate pair with smaller weight should be ignored.
  o.query = 1;
  o.ref = 0;
  o.length = 30;
  overlaps.push_back(o);
  const Graph g = build_overlap_graph(3, overlaps);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_EQ(g.edge_weight(0, 1), 60);
  EXPECT_EQ(g.edge_weight(1, 2), 40);
}

TEST(BuildOverlapGraph, RejectsUnknownRead) {
  std::vector<align::Overlap> overlaps(1);
  overlaps[0].query = 0;
  overlaps[0].ref = 9;
  overlaps[0].length = 50;
  EXPECT_THROW(build_overlap_graph(3, overlaps), Error);
}

// ---------------------------------------------------------------------------
// Digraph
// ---------------------------------------------------------------------------

TEST(Digraph, EdgesAndContainment) {
  std::vector<align::Overlap> overlaps;
  align::Overlap o;
  o.query = 0;
  o.ref = 1;
  o.length = 60;
  o.kind = align::OverlapKind::kSuffixPrefix;
  overlaps.push_back(o);
  o.query = 2;
  o.ref = 1;
  o.length = 50;
  o.kind = align::OverlapKind::kPrefixSuffix;  // edge 1 -> 2
  overlaps.push_back(o);
  o.query = 3;
  o.ref = 0;
  o.length = 40;
  o.kind = align::OverlapKind::kQueryContained;
  overlaps.push_back(o);
  const Digraph g = build_read_digraph(4, overlaps);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_edges(0)[0].to, 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_edges(1)[0].to, 2u);
  EXPECT_EQ(g.in_degree(1), 1u);
  EXPECT_TRUE(g.is_contained(3));
  EXPECT_FALSE(g.is_contained(0));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(Digraph, RejectsSelfLoop) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(1, 1, 10), Error);
}

// ---------------------------------------------------------------------------
// Heavy-edge matching
// ---------------------------------------------------------------------------

TEST(HeavyEdgeMatching, MatchingIsSymmetricAndValid) {
  const Graph g = random_graph(42, 50, 80);
  Rng rng(7);
  const auto match = heavy_edge_matching(g, rng);
  ASSERT_EQ(match.size(), 50u);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(match[match[v]], v);  // symmetric (self for unmatched)
    if (match[v] != v) {
      EXPECT_GT(g.edge_weight(v, match[v]), 0);  // matched along real edges
    }
  }
}

TEST(HeavyEdgeMatching, PrefersHeavyEdges) {
  // Star with one heavy spoke: the center must match the heavy neighbor.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 100);
  b.add_edge(0, 3, 1);
  const Graph g = b.build();
  // Try several visit orders; whenever 0 is visited first it must pick 2.
  Rng rng(1);
  bool zero_matched_two = false;
  for (int trial = 0; trial < 10; ++trial) {
    const auto match = heavy_edge_matching(g, rng);
    if (match[0] == 2) zero_matched_two = true;
  }
  EXPECT_TRUE(zero_matched_two);
}

TEST(HeavyEdgeMatching, IsolatedNodesStayUnmatched) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  const Graph g = b.build();
  Rng rng(3);
  const auto match = heavy_edge_matching(g, rng);
  EXPECT_EQ(match[2], 2u);
}

// ---------------------------------------------------------------------------
// Contraction
// ---------------------------------------------------------------------------

TEST(Contract, PreservesNodeWeightAndInternalizesMatchedEdges) {
  const Graph g = path_graph(6);
  Rng rng(5);
  const auto match = heavy_edge_matching(g, rng);
  std::vector<NodeId> parent;
  const Graph coarse = contract(g, match, parent);
  EXPECT_EQ(coarse.total_node_weight(), g.total_node_weight());
  EXPECT_LT(coarse.node_count(), g.node_count());
  ASSERT_EQ(parent.size(), g.node_count());
  for (const NodeId p : parent) EXPECT_LT(p, coarse.node_count());
  // Matched pairs share a parent.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(parent[v], parent[match[v]]);
  }
}

TEST(Contract, EdgeWeightConservedUpToInternalized) {
  const Graph g = random_graph(77, 40, 60);
  Rng rng(9);
  const auto match = heavy_edge_matching(g, rng);
  std::vector<NodeId> parent;
  const Graph coarse = contract(g, match, parent);
  // Total edge weight decreases exactly by the internalized matched weight.
  Weight internalized = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (match[v] > v) internalized += g.edge_weight(v, match[v]);
  }
  EXPECT_EQ(coarse.total_edge_weight(), g.total_edge_weight() - internalized);
}

// ---------------------------------------------------------------------------
// Multilevel set
// ---------------------------------------------------------------------------

TEST(Multilevel, MonotoneShrinkage) {
  const Graph g0 = random_graph(123, 200, 400);
  CoarsenConfig cfg;
  cfg.min_nodes = 8;
  cfg.max_levels = 12;
  const auto h = build_multilevel(g0, cfg);
  ASSERT_GE(h.depth(), 2u);
  for (std::size_t l = 1; l < h.depth(); ++l) {
    EXPECT_LT(h.levels[l].node_count(), h.levels[l - 1].node_count());
    EXPECT_EQ(h.levels[l].total_node_weight(), g0.total_node_weight());
  }
  EXPECT_EQ(h.parent.size(), h.depth() - 1);
}

TEST(Multilevel, StopsAtMinNodes) {
  const Graph g0 = path_graph(100);
  CoarsenConfig cfg;
  cfg.min_nodes = 30;
  cfg.max_levels = 20;
  const auto h = build_multilevel(g0, cfg);
  // Once a level has <= 30 nodes no further level is built.
  EXPECT_LE(h.coarsest().node_count(), 60u);  // halving overshoot bound
  for (std::size_t l = 0; l + 1 < h.depth(); ++l) {
    EXPECT_GT(h.levels[l].node_count(), cfg.min_nodes);
  }
}

TEST(Multilevel, ExpandClustersPartitionsFinestNodes) {
  const Graph g0 = random_graph(321, 64, 100);
  CoarsenConfig cfg;
  cfg.min_nodes = 4;
  const auto h = build_multilevel(g0, cfg);
  for (std::size_t l = 0; l < h.depth(); ++l) {
    const auto clusters = h.expand_clusters(l);
    ASSERT_EQ(clusters.size(), h.levels[l].node_count());
    std::set<NodeId> seen;
    for (NodeId c = 0; c < clusters.size(); ++c) {
      // Cluster weight equals coarse node weight.
      Weight w = 0;
      for (const NodeId v : clusters[c]) {
        EXPECT_TRUE(seen.insert(v).second) << "node in two clusters";
        w += g0.node_weight(v);
      }
      EXPECT_EQ(w, h.levels[l].node_weight(c));
    }
    EXPECT_EQ(seen.size(), g0.node_count());
  }
}

TEST(Multilevel, AncestorAtConsistentWithClusters) {
  const Graph g0 = random_graph(555, 40, 60);
  CoarsenConfig cfg;
  cfg.min_nodes = 4;
  const auto h = build_multilevel(g0, cfg);
  const std::size_t top = h.depth() - 1;
  const auto clusters = h.expand_clusters(top);
  for (NodeId c = 0; c < clusters.size(); ++c) {
    for (const NodeId v : clusters[c]) {
      EXPECT_EQ(h.ancestor_at(v, top), c);
    }
  }
}

TEST(Multilevel, DisconnectedGraphCoarsensComponentwise) {
  GraphBuilder b(6);
  b.add_edge(0, 1, 5);
  b.add_edge(2, 3, 5);
  // Nodes 4, 5 isolated.
  const Graph g0 = b.build();
  CoarsenConfig cfg;
  cfg.min_nodes = 2;
  const auto h = build_multilevel(g0, cfg);
  // Isolated nodes persist; edges never appear between components.
  for (const auto& level : h.levels) {
    EXPECT_LE(level.edge_count(), 2u);
  }
}

TEST(Multilevel, StallDetectionOnEdgelessGraph) {
  GraphBuilder b(50);
  const Graph g0 = b.build();  // no edges: nothing can match
  CoarsenConfig cfg;
  cfg.min_nodes = 4;
  const auto h = build_multilevel(g0, cfg);
  EXPECT_EQ(h.depth(), 1u);  // coarsening stalls immediately
}

}  // namespace
}  // namespace focus::graph
