// Distributed-index overlap equivalence suite: the mpr-sharded k-mer index
// strategy (SeedStrategy::kDistributedIndex) must produce byte-identical
// overlap sets to the all-pairs path — across rank counts, thread widths,
// datasets, and config sweeps (k, max_kmer_occurrences, subset counts),
// including the degenerate shard layouts. Plus the routing property tests:
// shard ownership is a pure function of (key, ranks), reruns are
// deterministic down to the message counts, and duplicate candidate pairs
// from multi-seed hits collapse to one canonical record.
//
// Heavy grid variants are labelled perf-smoke in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "align/kmer_index.hpp"
#include "align/overlapper.hpp"
#include "align/shard_index.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/preprocess.hpp"
#include "sim/datasets.hpp"

namespace focus::align {
namespace {

// Same slice sizing as the seed-backend suite: a few hundred preprocessed
// reads per dataset — repeats, reverse complements and containments included.
io::ReadSet dataset_reads(int index, double scale = 0.3) {
  const sim::Dataset d = sim::make_dataset(index, scale, /*coverage=*/6.0);
  return io::preprocess(d.data.reads, {});
}

bool identical(const std::vector<Overlap>& a, const std::vector<Overlap>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query || a[i].ref != b[i].ref ||
        a[i].length != b[i].length || a[i].identity != b[i].identity ||
        a[i].kind != b[i].kind) {
      return false;
    }
  }
  return true;
}

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

io::ReadSet reads_from(const std::vector<std::string>& seqs) {
  io::ReadSet reads;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    reads.add({"r" + std::to_string(i), seqs[i],
               std::string(seqs[i].size(), 'I')});
  }
  return reads;
}

// ---------------------------------------------------------------------------
// Serial reference: the single-shard pipeline against the all-pairs driver
// ---------------------------------------------------------------------------

TEST(DistributedOverlap, SerialPipelineMatchesAllPairsAcrossConfigs) {
  const io::ReadSet reads = dataset_reads(1);
  for (const unsigned k : {12u, 16u}) {
    for (const std::size_t max_occ : {std::size_t{16}, std::size_t{64}}) {
      for (const std::size_t subsets : {std::size_t{1}, std::size_t{3},
                                        std::size_t{5}}) {
        OverlapperConfig cfg;
        cfg.k = k;
        cfg.max_kmer_occurrences = max_occ;
        cfg.subsets = subsets;
        const auto want = find_overlaps_serial(reads, cfg);
        const auto got = find_overlaps_distributed_serial(reads, cfg);
        EXPECT_TRUE(identical(got, want))
            << "k=" << k << " max_occ=" << max_occ << " subsets=" << subsets;
      }
    }
  }
}

TEST(DistributedOverlap, SerialPipelineMatchesSuffixArrayOracle) {
  // The distributed pipeline always seeds from the hashed shard; it must
  // still agree with an all-pairs run seeded by the suffix-array oracle.
  const io::ReadSet reads = dataset_reads(2);
  OverlapperConfig cfg;
  cfg.seed_backend = SeedBackend::kSuffixArray;
  const auto oracle = find_overlaps_serial(reads, cfg);
  const auto got = find_overlaps_distributed_serial(reads, cfg);
  EXPECT_TRUE(identical(got, oracle));
}

// ---------------------------------------------------------------------------
// The full grid: ranks x thread widths x datasets (perf-smoke label)
// ---------------------------------------------------------------------------

TEST(DistributedOverlapHeavy, GridRanksThreadsDatasetsByteIdentical) {
  for (const int ds : {1, 2, 3}) {
    const io::ReadSet reads = dataset_reads(ds, /*scale=*/0.25);
    OverlapperConfig cfg;

    // All-pairs oracle at every pooled width; widths must agree pairwise.
    cfg.threads = 1;
    const auto want = find_overlaps(reads, cfg);
    for (const unsigned threads : {2u, 4u}) {
      cfg.threads = threads;
      EXPECT_TRUE(identical(find_overlaps(reads, cfg), want))
          << "dataset " << ds << " threads " << threads;
    }

    // Sharded protocol at every rank count against the same oracle.
    for (const int nranks : {1, 2, 4, 8}) {
      const auto got = find_overlaps_sharded(reads, cfg, nranks);
      EXPECT_TRUE(identical(got.overlaps, want))
          << "dataset " << ds << " ranks " << nranks;
    }
  }
}

TEST(DistributedOverlapHeavy, StrategyDispatchInParallelDriver) {
  // find_overlaps_parallel must honour OverlapperConfig::strategy: both
  // strategies through the same entry point, same bytes out.
  const io::ReadSet reads = dataset_reads(1, /*scale=*/0.25);
  OverlapperConfig cfg;
  for (const int nranks : {1, 3, 4}) {
    cfg.strategy = SeedStrategy::kAllPairs;
    const auto want = find_overlaps_parallel(reads, cfg, nranks);
    cfg.strategy = SeedStrategy::kDistributedIndex;
    const auto got = find_overlaps_parallel(reads, cfg, nranks);
    EXPECT_TRUE(identical(got.overlaps, want.overlaps)) << "ranks " << nranks;
  }
}

// ---------------------------------------------------------------------------
// Degenerate shard layouts
// ---------------------------------------------------------------------------

TEST(DistributedOverlap, HomopolymersPutEveryKeyOnOneShard) {
  // Every k-mer of a poly-A read is the same key, so at 8 ranks exactly one
  // shard holds postings and seven are empty — the worst skew possible.
  const io::ReadSet reads =
      reads_from({std::string(100, 'A'), std::string(100, 'A'),
                  std::string(90, 'A'), std::string(100, 'A')});
  for (const std::size_t max_occ : {std::size_t{64}, std::size_t{1000}}) {
    OverlapperConfig cfg;
    cfg.max_kmer_occurrences = max_occ;
    cfg.subsets = 2;
    const auto want = find_overlaps_serial(reads, cfg);
    for (const int nranks : {1, 8}) {
      const auto got = find_overlaps_sharded(reads, cfg, nranks);
      EXPECT_TRUE(identical(got.overlaps, want))
          << "max_occ=" << max_occ << " ranks=" << nranks;
    }
    // Sanity: the relaxed mask must actually find the overlaps the default
    // mask suppresses, or this case tests nothing.
    if (max_occ == 1000) EXPECT_FALSE(want.empty());
  }
}

TEST(DistributedOverlap, ReadsShorterThanKContributeNothing) {
  Rng rng(7);
  const std::string genome = random_seq(rng, 240);
  const io::ReadSet reads = reads_from(
      {genome.substr(0, 150), genome.substr(80, 150), "ACGTACGT",  // < k
       "AC", genome.substr(40, 150)});
  OverlapperConfig cfg;
  cfg.subsets = 3;
  const auto want = find_overlaps_serial(reads, cfg);
  EXPECT_FALSE(want.empty());
  for (const int nranks : {1, 2, 4, 8}) {
    const auto got = find_overlaps_sharded(reads, cfg, nranks);
    EXPECT_TRUE(identical(got.overlaps, want)) << "ranks " << nranks;
  }
  for (const auto& o : want) {
    EXPECT_NE(o.query, 2u);
    EXPECT_NE(o.ref, 2u);
    EXPECT_NE(o.query, 3u);
    EXPECT_NE(o.ref, 3u);
  }
}

TEST(DistributedOverlap, TinyAndDisjointSetsStayEmpty) {
  // More ranks than reads, and reads with no shared k-mers: both paths agree
  // on the empty answer (and the protocol survives empty stripes).
  Rng rng(11);
  const io::ReadSet disjoint =
      reads_from({random_seq(rng, 120), random_seq(rng, 120)});
  OverlapperConfig cfg;
  for (const int nranks : {1, 4, 8}) {
    const auto got = find_overlaps_sharded(disjoint, cfg, nranks);
    EXPECT_TRUE(got.overlaps.empty()) << "ranks " << nranks;
  }
  EXPECT_TRUE(find_overlaps_serial(disjoint, cfg).empty());
}

// ---------------------------------------------------------------------------
// Property tests: routing, determinism, dedup
// ---------------------------------------------------------------------------

TEST(ShardRouting, OwnerIsPureInRangeAndSpreads) {
  Rng rng(1234);
  std::vector<std::size_t> per_rank(8, 0);
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t key = rng.next_u64();
    for (const int nranks : {1, 2, 5, 8}) {
      const int owner = shard_owner(key, nranks);
      ASSERT_GE(owner, 0);
      ASSERT_LT(owner, nranks);
      // Pure: same (key, nranks) always maps to the same rank.
      ASSERT_EQ(owner, shard_owner(key, nranks));
    }
    ++per_rank[static_cast<std::size_t>(shard_owner(key, 8))];
  }
  for (int r = 0; r < 8; ++r) {
    // splitmix64 over 4096 keys: each of 8 ranks expects ~512; a rank with
    // under a quarter of that means the hash is not spreading.
    EXPECT_GT(per_rank[static_cast<std::size_t>(r)], 128u) << "rank " << r;
  }
  // Ownership agrees with what the extractors actually route.
  const io::ReadSet reads = reads_from({"ACGTACGTACGTACGTACGTACGT"});
  const auto buckets = extract_shard_postings(reads, 0, 1, 16, 4);
  for (std::size_t r = 0; r < buckets.size(); ++r) {
    for (const ShardPosting& p : buckets[r]) {
      EXPECT_EQ(shard_owner(p.key, 4), static_cast<int>(r));
    }
  }
}

TEST(DistributedOverlap, RerunIsDeterministicDownToTheMessages) {
  const io::ReadSet reads = dataset_reads(1);
  OverlapperConfig cfg;
  const auto a = find_overlaps_sharded(reads, cfg, 4);
  const auto b = find_overlaps_sharded(reads, cfg, 4);
  EXPECT_TRUE(identical(a.overlaps, b.overlaps));
  EXPECT_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.rank_vtime, b.stats.rank_vtime);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.bytes, b.stats.bytes);
}

TEST(DistributedOverlap, MultiSeedPairsCollapseToOneCanonicalRecord) {
  // Two reads sharing a long exact segment produce dozens of seed hits for
  // the same (query, ref) pair — across several shards at 4 ranks. They must
  // dedupe to exactly one canonical record per unordered pair, matching the
  // all-pairs answer.
  Rng rng(21);
  const std::string genome = random_seq(rng, 200);
  const io::ReadSet reads =
      reads_from({genome.substr(0, 140), genome.substr(60, 140)});
  OverlapperConfig cfg;
  cfg.subsets = 1;
  const auto want = find_overlaps_serial(reads, cfg);
  const auto got = find_overlaps_sharded(reads, cfg, 4);
  EXPECT_TRUE(identical(got.overlaps, want));
  std::map<std::pair<ReadId, ReadId>, int> pair_counts;
  for (const auto& o : got.overlaps) {
    ++pair_counts[{std::min(o.query, o.ref), std::max(o.query, o.ref)}];
  }
  ASSERT_EQ(pair_counts.size(), 1u);
  EXPECT_EQ(pair_counts.begin()->second, 1);
  EXPECT_EQ(pair_counts.begin()->first, (std::pair<ReadId, ReadId>{0u, 1u}));
}

// ---------------------------------------------------------------------------
// Env knob
// ---------------------------------------------------------------------------

TEST(SeedStrategyEnv, ParsesAliasesAndRejectsTypos) {
  const char* saved = std::getenv("FOCUS_SEED_STRATEGY");
  const std::string restore = saved != nullptr ? saved : "";

  unsetenv("FOCUS_SEED_STRATEGY");
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kAllPairs);
  setenv("FOCUS_SEED_STRATEGY", "", 1);
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kAllPairs);
  setenv("FOCUS_SEED_STRATEGY", "all-pairs", 1);
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kAllPairs);
  setenv("FOCUS_SEED_STRATEGY", "allpairs", 1);
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kAllPairs);
  setenv("FOCUS_SEED_STRATEGY", "distributed", 1);
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kDistributedIndex);
  setenv("FOCUS_SEED_STRATEGY", "distributed-index", 1);
  EXPECT_EQ(seed_strategy_from_env(), SeedStrategy::kDistributedIndex);
  setenv("FOCUS_SEED_STRATEGY", "fastest", 1);
  EXPECT_THROW(seed_strategy_from_env(), Error);

  // OverlapperConfig's default member initializer reads the env too.
  setenv("FOCUS_SEED_STRATEGY", "distributed", 1);
  EXPECT_EQ(OverlapperConfig{}.strategy, SeedStrategy::kDistributedIndex);

  if (saved != nullptr) {
    setenv("FOCUS_SEED_STRATEGY", restore.c_str(), 1);
  } else {
    unsetenv("FOCUS_SEED_STRATEGY");
  }
}

}  // namespace
}  // namespace focus::align
