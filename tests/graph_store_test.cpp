// Tests for the out-of-core graph backbone (DESIGN.md §8): GraphStoreConfig
// env parsing, SpillManager residency/LRU behaviour, HierarchySpill
// round-trips, StoredAsmGraph equivalence with AsmGraph on the serial and
// parallel kernels (both wire protocols, forced-spill budgets), and the
// assembler façade producing byte-identical assemblies on either backend.
//
// Heavy grid variants (full pipeline on the simulated datasets D1–D3 with a
// spill-forcing budget) are labelled perf-smoke in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/assembler.hpp"
#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "dist/simplify.hpp"
#include "dist/stored_graph.hpp"
#include "dist/traverse.hpp"
#include "graph/graph.hpp"
#include "graph/graph_store.hpp"
#include "sim/datasets.hpp"

namespace focus {
namespace {

using dist::AsmGraph;
using dist::EdgeId;
using dist::StoredAsmGraph;
using graph::GraphStoreBackend;
using graph::GraphStoreConfig;
using graph::SpillManager;

const dist::DistConfig kMasterCfg{dist::DistProtocol::kMaster};
const dist::DistConfig kSymmetricCfg{dist::DistProtocol::kSymmetric};

/// A budget small enough that every multi-partition fixture in this file
/// must evict and reload slices.
GraphStoreConfig tiny_budget_config() {
  GraphStoreConfig config;
  config.backend = GraphStoreBackend::kCsrSpill;
  config.mem_budget_bytes = 2048;
  return config;
}

std::string random_seq(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) s.push_back("ACGT"[rng.next_below(4)]);
  return s;
}

// Same fixture as dist_protocol_test.cpp: a 20-contig chain with transitive
// shortcuts, junk spurs and a contained fragment.
AsmGraph make_complex_graph(std::uint64_t seed) {
  Rng rng(seed);
  const std::string genome = random_seq(rng, 3000);
  AsmGraph g;
  std::vector<NodeId> chain;
  for (int i = 0; i < 20; ++i) {
    chain.push_back(
        g.add_node(genome.substr(static_cast<std::size_t>(i) * 140, 220), 6));
  }
  for (int i = 0; i + 1 < 20; ++i) g.add_edge(chain[i], chain[i + 1], 80);
  for (int i = 0; i < 18; i += 3) g.add_edge(chain[i], chain[i + 2], 20);
  const NodeId junk1 = g.add_node(random_seq(rng, 150), 1);
  const NodeId junk2 = g.add_node(random_seq(rng, 150), 1);
  g.add_edge(junk1, chain[5], 60);
  g.add_edge(chain[10], junk2, 60);
  const NodeId small = g.add_node(genome.substr(300, 90), 1);
  g.add_edge(chain[2], small, 90, /*offset_estimate=*/20);
  return g;
}

std::vector<PartId> striped_partition(std::size_t nodes, PartId parts) {
  std::vector<PartId> part(nodes);
  const std::size_t per =
      (nodes + static_cast<std::size_t>(parts) - 1) /
      static_cast<std::size_t>(parts);
  for (NodeId v = 0; v < nodes; ++v) part[v] = static_cast<PartId>(v / per);
  return part;
}

/// Full read-surface comparison of a store against its in-memory oracle.
void expect_store_matches(const StoredAsmGraph& got, const AsmGraph& want,
                          const std::string& context) {
  ASSERT_EQ(got.node_count(), want.node_count()) << context;
  ASSERT_EQ(got.edge_count(), want.edge_count()) << context;
  for (NodeId v = 0; v < want.node_count(); ++v) {
    EXPECT_EQ(got.node_live(v), want.node_live(v)) << context << " node " << v;
    EXPECT_EQ(got.contig(v), want.node(v).contig) << context << " node " << v;
    EXPECT_EQ(got.contig_size(v), want.node(v).contig.size())
        << context << " node " << v;
    EXPECT_EQ(got.node_reads(v), want.node(v).reads)
        << context << " node " << v;
    EXPECT_EQ(got.live_out(v), want.live_out(v)) << context << " node " << v;
    EXPECT_EQ(got.live_in(v), want.live_in(v)) << context << " node " << v;
    EXPECT_EQ(got.live_out_degree(v), want.live_out_degree(v))
        << context << " node " << v;
    EXPECT_EQ(got.live_in_degree(v), want.live_in_degree(v))
        << context << " node " << v;
  }
  for (EdgeId e = 0; e < want.edge_count(); ++e) {
    EXPECT_EQ(got.edge(e).from, want.edge(e).from) << context << " edge " << e;
    EXPECT_EQ(got.edge(e).to, want.edge(e).to) << context << " edge " << e;
    EXPECT_EQ(got.edge(e).overlap, want.edge(e).overlap)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).offset, want.edge(e).offset)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).identity, want.edge(e).identity)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).verified, want.edge(e).verified)
        << context << " edge " << e;
    EXPECT_EQ(got.edge(e).removed, want.edge(e).removed)
        << context << " edge " << e;
  }
  EXPECT_EQ(got.live_node_count(), want.live_node_count()) << context;
  EXPECT_EQ(got.live_edge_count(), want.live_edge_count()) << context;
}

void expect_same_stats(const dist::SimplifyStats& got,
                       const dist::SimplifyStats& want,
                       const std::string& context) {
  EXPECT_EQ(got.transitive_edges, want.transitive_edges) << context;
  EXPECT_EQ(got.false_edges, want.false_edges) << context;
  EXPECT_EQ(got.contained_nodes, want.contained_nodes) << context;
  EXPECT_EQ(got.verified_edges, want.verified_edges) << context;
  EXPECT_EQ(got.tip_nodes, want.tip_nodes) << context;
  EXPECT_EQ(got.bubble_nodes, want.bubble_nodes) << context;
}

// RAII env save/restore (same idiom as dist_protocol_test.cpp).
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }
  void set(const char* value) { ::setenv(name_, value, 1); }
  void unset() { ::unsetenv(name_); }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// ---------------------------------------------------------------------------
// Config parsing
// ---------------------------------------------------------------------------

TEST(GraphStoreConfigEnv, UnsetDefaultsToInMemory) {
  ScopedEnv backend("FOCUS_GRAPH_BACKEND");
  ScopedEnv budget("FOCUS_GRAPH_MEM_BUDGET");
  ScopedEnv dir("FOCUS_GRAPH_SPILL_DIR");
  backend.unset();
  budget.unset();
  dir.unset();
  const auto config = GraphStoreConfig::from_env();
  EXPECT_EQ(config.backend, GraphStoreBackend::kInMemory);
  EXPECT_EQ(config.mem_budget_bytes, 0u);
  EXPECT_TRUE(config.spill_dir.empty());
}

TEST(GraphStoreConfigEnv, NamedBackendsParse) {
  ScopedEnv backend("FOCUS_GRAPH_BACKEND");
  ScopedEnv budget("FOCUS_GRAPH_MEM_BUDGET");
  ScopedEnv dir("FOCUS_GRAPH_SPILL_DIR");
  backend.set("memory");
  EXPECT_EQ(GraphStoreConfig::from_env().backend,
            GraphStoreBackend::kInMemory);
  backend.set("csr-spill");
  budget.set("48M");
  dir.set("/tmp/focus-spill-test");
  const auto config = GraphStoreConfig::from_env();
  EXPECT_EQ(config.backend, GraphStoreBackend::kCsrSpill);
  EXPECT_EQ(config.mem_budget_bytes, 48u * 1024 * 1024);
  EXPECT_EQ(config.spill_dir, "/tmp/focus-spill-test");
}

TEST(GraphStoreConfigEnv, TypoThrowsInsteadOfSilentFallback) {
  ScopedEnv backend("FOCUS_GRAPH_BACKEND");
  backend.set("csrspill");
  EXPECT_THROW(GraphStoreConfig::from_env(), Error);
  backend.set("disk");
  EXPECT_THROW(GraphStoreConfig::from_env(), Error);
}

TEST(GraphStoreConfig, ParseMemSizeSuffixes) {
  EXPECT_EQ(graph::parse_mem_size("65536"), 65536u);
  EXPECT_EQ(graph::parse_mem_size("64K"), 64u * 1024);
  EXPECT_EQ(graph::parse_mem_size("48M"), 48u * 1024 * 1024);
  EXPECT_EQ(graph::parse_mem_size("2G"), 2ull * 1024 * 1024 * 1024);
  EXPECT_THROW(graph::parse_mem_size(""), Error);
  EXPECT_THROW(graph::parse_mem_size("12Q"), Error);
  EXPECT_THROW(graph::parse_mem_size("fifty"), Error);
}

// ---------------------------------------------------------------------------
// SpillManager residency
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> pattern_payload(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return bytes;
}

TEST(SpillManager, UnlimitedBudgetKeepsEverythingResident) {
  GraphStoreConfig config;
  SpillManager manager(config);
  for (std::uint32_t id = 0; id < 8; ++id) {
    manager.insert(id, pattern_payload(512, static_cast<std::uint8_t>(id)));
  }
  for (std::uint32_t id = 0; id < 8; ++id) {
    EXPECT_EQ(*manager.fetch(id),
              pattern_payload(512, static_cast<std::uint8_t>(id)));
  }
  const auto stats = manager.stats();
  EXPECT_EQ(stats.slices, 8u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.loads, 0u);
  EXPECT_EQ(stats.resident_bytes, 8u * 512);
}

TEST(SpillManager, BudgetEvictsColdestAndReloadsByteIdentical) {
  GraphStoreConfig config;
  config.mem_budget_bytes = 1024;  // room for two 512-byte slices
  SpillManager manager(config);
  for (std::uint32_t id = 0; id < 6; ++id) {
    manager.insert(id, pattern_payload(512, static_cast<std::uint8_t>(id)));
  }
  auto stats = manager.stats();
  EXPECT_GE(stats.evictions, 4u);
  EXPECT_GE(stats.writes, 4u);
  EXPECT_LE(stats.resident_bytes, 1024u);
  EXPECT_LE(stats.peak_resident_bytes, 1024u + 512u);
  // Every slice — resident or spilled — reloads byte-identical.
  for (std::uint32_t id = 0; id < 6; ++id) {
    EXPECT_EQ(*manager.fetch(id),
              pattern_payload(512, static_cast<std::uint8_t>(id)))
        << "slice " << id;
  }
  EXPECT_GE(manager.stats().loads, 1u);
  // A slice file is written at most once: re-evicting an already-written
  // slice must not rewrite it.
  const auto writes_before = manager.stats().writes;
  manager.evict_all();
  for (std::uint32_t id = 0; id < 6; ++id) manager.fetch(id);
  manager.evict_all();
  EXPECT_EQ(manager.stats().writes, 6u);
  EXPECT_GE(manager.stats().writes, writes_before);
}

TEST(SpillManager, SliceLargerThanBudgetStillRoundTrips) {
  GraphStoreConfig config;
  config.mem_budget_bytes = 256;
  SpillManager manager(config);
  manager.insert(7, pattern_payload(4096, 3));
  EXPECT_EQ(*manager.fetch(7), pattern_payload(4096, 3));
}

TEST(SpillManager, DuplicateInsertThrows) {
  GraphStoreConfig config;
  SpillManager manager(config);
  manager.insert(1, pattern_payload(16, 0));
  // Slice ids are write-once — reuse is an internal invariant violation.
  EXPECT_THROW(manager.insert(1, pattern_payload(16, 0)), std::logic_error);
}

TEST(SpillManager, FetchUnknownSliceThrows) {
  GraphStoreConfig config;
  SpillManager manager(config);
  EXPECT_THROW(manager.fetch(42), std::logic_error);
}

// ---------------------------------------------------------------------------
// HierarchySpill
// ---------------------------------------------------------------------------

TEST(HierarchySpill, LevelsRoundTripByteIdentical) {
  Rng rng(7);
  std::vector<graph::Graph> levels;
  for (const std::size_t n : {40u, 20u, 10u}) {
    graph::GraphBuilder b(n);
    for (NodeId v = 0; v < n; ++v) {
      b.set_node_weight(v, static_cast<Weight>(1 + rng.next_below(5)));
    }
    for (std::size_t i = 0; i < 3 * n; ++i) {
      const auto u = static_cast<NodeId>(rng.next_below(n));
      const auto v = static_cast<NodeId>(rng.next_below(n));
      if (u == v) continue;
      b.add_edge(u, v, static_cast<Weight>(1 + rng.next_below(9)));
    }
    levels.push_back(b.build());
  }

  GraphStoreConfig config;
  config.mem_budget_bytes = 64;  // force every level to disk
  SpillManager manager(config);
  graph::HierarchySpill spill(manager, /*id_base=*/1000);
  for (std::size_t l = 0; l < levels.size(); ++l) {
    spill.spill_level(l, levels[l]);
  }
  manager.evict_all();
  ASSERT_EQ(spill.levels(), levels.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const graph::Graph got = spill.load_level(l);
    const graph::Graph& want = levels[l];
    ASSERT_EQ(got.node_count(), want.node_count()) << "level " << l;
    ASSERT_EQ(got.edge_count(), want.edge_count()) << "level " << l;
    EXPECT_EQ(got.total_node_weight(), want.total_node_weight());
    EXPECT_EQ(got.total_edge_weight(), want.total_edge_weight());
    for (NodeId v = 0; v < want.node_count(); ++v) {
      EXPECT_EQ(got.node_weight(v), want.node_weight(v));
      const auto gn = got.neighbors(v);
      const auto wn = want.neighbors(v);
      ASSERT_EQ(gn.size(), wn.size()) << "level " << l << " node " << v;
      for (std::size_t i = 0; i < wn.size(); ++i) {
        EXPECT_EQ(gn[i].to, wn[i].to);
        EXPECT_EQ(gn[i].weight, wn[i].weight);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// StoredAsmGraph equivalence
// ---------------------------------------------------------------------------

TEST(StoredGraph, FromAsmGraphPreservesFullSurface) {
  const AsmGraph g = make_complex_graph(11);
  const PartId parts = 4;
  const auto part = striped_partition(g.node_count(), parts);
  const auto store =
      StoredAsmGraph::from_asm_graph(g, part, parts, tiny_budget_config());
  expect_store_matches(store, g, "fresh store");
  EXPECT_EQ(store.partition_count(), parts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(store.partition_of(v), part[v]);
  }
  EXPECT_GT(store.resident_metadata_bytes(), 0u);
  // The tiny budget forces slices through the disk path.
  EXPECT_GT(store.spill_stats().evictions, 0u);
  EXPECT_GT(store.spill_stats().loads, 0u);
}

TEST(StoredGraph, NonAcgtContigBytesAreExact) {
  // The 2-bit packing cannot represent N (or any other IUPAC/garbage byte);
  // the exception list must restore them byte-for-byte.
  AsmGraph g;
  const std::string weird = "ACGTNNNNRYKMacgtACGT-@xACGTNNN";
  g.add_node(weird, 2);
  g.add_node(std::string(100, 'N'), 1);
  g.add_node("ACGT", 1);
  const std::vector<PartId> part{0, 1, 0};
  const auto store =
      StoredAsmGraph::from_asm_graph(g, part, 2, tiny_budget_config());
  EXPECT_EQ(store.contig(0), weird);
  EXPECT_EQ(store.contig(1), std::string(100, 'N'));
  EXPECT_EQ(store.contig(2), "ACGT");
}

TEST(StoredGraph, ToAsmGraphRoundTripsMutations) {
  AsmGraph g = make_complex_graph(12);
  const auto part = striped_partition(g.node_count(), 4);
  auto store = StoredAsmGraph::from_asm_graph(g, part, 4, tiny_budget_config());
  // Apply the same mutations to both.
  g.remove_node(3);
  store.remove_node(3);
  g.remove_edge(2);
  store.remove_edge(2);
  g.set_verified(5, 77, 0.93F);
  store.set_verified(5, 77, 0.93F);
  expect_store_matches(store, g, "mutated store");
  const AsmGraph back = store.to_asm_graph();
  expect_store_matches(store, back, "round-tripped store");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(back.node(v).contig, g.node(v).contig);
    EXPECT_EQ(back.node(v).removed, g.node(v).removed);
  }
}

TEST(StoredGraph, SerialKernelsMatchInMemoryBackend) {
  AsmGraph g = make_complex_graph(13);
  const auto part = striped_partition(g.node_count(), 4);
  auto store = StoredAsmGraph::from_asm_graph(g, part, 4, tiny_budget_config());
  dist::SimplifyConfig cfg;
  const auto want_stats = dist::simplify_serial(g, cfg);
  const auto got_stats = dist::simplify_serial(store, cfg);
  expect_same_stats(got_stats, want_stats, "serial simplify");
  expect_store_matches(store, g, "post-simplify");
  const auto want_paths = dist::traverse_serial(g);
  const auto got_paths = dist::traverse_serial(store);
  EXPECT_EQ(got_paths, want_paths);
  for (const auto& path : want_paths) {
    EXPECT_EQ(store.merge_path_contigs(path), g.merge_path_contigs(path));
  }
}

class StoredGraphRankSweep : public ::testing::TestWithParam<int> {};

TEST_P(StoredGraphRankSweep, ParallelKernelsMatchInMemoryBackend) {
  const int nranks = GetParam();
  for (const auto* proto : {&kMasterCfg, &kSymmetricCfg}) {
    const std::string context =
        "ranks " + std::to_string(nranks) + " protocol " +
        (proto->protocol == dist::DistProtocol::kMaster ? "master"
                                                        : "symmetric");
    const PartId parts = 8;
    AsmGraph g = make_complex_graph(21);
    const auto part = striped_partition(g.node_count(), parts);
    auto store =
        StoredAsmGraph::from_asm_graph(g, part, parts, tiny_budget_config());
    dist::SimplifyConfig cfg;
    const auto want =
        dist::simplify_parallel(g, part, parts, cfg, nranks, {}, 1, {}, {},
                                *proto);
    const auto got =
        dist::simplify_parallel(store, part, parts, cfg, nranks, {}, 1, {},
                                {}, *proto);
    expect_same_stats(got.stats, want.stats, context);
    expect_store_matches(store, g, context);
    // Equal inputs must also cost equal virtual time on either backend.
    EXPECT_EQ(got.run.makespan, want.run.makespan) << context;
    EXPECT_EQ(got.run.messages, want.run.messages) << context;

    const auto want_t =
        dist::traverse_parallel(g, part, parts, nranks, {}, 1, {}, {}, *proto);
    const auto got_t = dist::traverse_parallel(store, part, parts, nranks, {},
                                               1, {}, {}, *proto);
    ASSERT_EQ(got_t.paths, want_t.paths) << context;
    EXPECT_EQ(got_t.run.makespan, want_t.run.makespan) << context;
    EXPECT_GT(store.spill_stats().loads, 0u) << context;
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, StoredGraphRankSweep,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Assembler façade
// ---------------------------------------------------------------------------

core::FocusConfig pipeline_config() {
  core::FocusConfig cfg;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 50;
  cfg.overlap.min_identity = 0.90;
  cfg.partitions = 4;
  cfg.ranks = 4;
  return cfg;
}

void expect_same_assembly(const core::AssemblyResult& got,
                          const core::AssemblyResult& want,
                          const std::string& context) {
  EXPECT_EQ(got.contigs, want.contigs) << context;
  ASSERT_EQ(got.paths, want.paths) << context;
  expect_same_stats(got.simplify_stats, want.simplify_stats, context);
  EXPECT_EQ(got.stats.n50, want.stats.n50) << context;
  EXPECT_EQ(got.stats.total_bases, want.stats.total_bases) << context;
  ASSERT_EQ(got.assembly_graph.node_count(), want.assembly_graph.node_count())
      << context;
  for (NodeId v = 0; v < want.assembly_graph.node_count(); ++v) {
    EXPECT_EQ(got.assembly_graph.node(v).contig,
              want.assembly_graph.node(v).contig)
        << context << " node " << v;
    EXPECT_EQ(got.assembly_graph.node(v).removed,
              want.assembly_graph.node(v).removed)
        << context << " node " << v;
  }
  ASSERT_EQ(got.assembly_graph.edge_count(), want.assembly_graph.edge_count())
      << context;
  for (EdgeId e = 0; e < want.assembly_graph.edge_count(); ++e) {
    EXPECT_EQ(got.assembly_graph.edge(e).removed,
              want.assembly_graph.edge(e).removed)
        << context << " edge " << e;
  }
  // The spilled-and-reloaded multilevel hierarchy must survive unchanged.
  ASSERT_EQ(got.multilevel.levels.size(), want.multilevel.levels.size())
      << context;
  for (std::size_t l = 0; l < want.multilevel.levels.size(); ++l) {
    EXPECT_EQ(got.multilevel.levels[l].node_count(),
              want.multilevel.levels[l].node_count())
        << context << " level " << l;
    EXPECT_EQ(got.multilevel.levels[l].edge_count(),
              want.multilevel.levels[l].edge_count())
        << context << " level " << l;
    EXPECT_EQ(got.multilevel.levels[l].total_edge_weight(),
              want.multilevel.levels[l].total_edge_weight())
        << context << " level " << l;
  }
}

TEST(GraphStoreAssembler, SpillBackendMatchesInMemoryEndToEnd) {
  const sim::Dataset d = sim::make_dataset(1, /*scale=*/0.15, /*coverage=*/6.0);
  core::FocusConfig cfg = pipeline_config();
  cfg.graph_store.backend = GraphStoreBackend::kInMemory;
  const auto want = core::assemble_reads(d.data.reads, cfg);
  cfg.graph_store.backend = GraphStoreBackend::kCsrSpill;
  cfg.graph_store.mem_budget_bytes = 4096;  // force slices through disk
  const auto got = core::assemble_reads(d.data.reads, cfg);
  expect_same_assembly(got, want, "spill backend");
}

TEST(GraphStoreAssembler, EnvSelectsBackend) {
  ScopedEnv backend("FOCUS_GRAPH_BACKEND");
  ScopedEnv budget("FOCUS_GRAPH_MEM_BUDGET");
  const sim::Dataset d = sim::make_dataset(2, /*scale=*/0.15, /*coverage=*/6.0);
  backend.unset();
  budget.unset();
  const auto want = core::assemble_reads(d.data.reads, pipeline_config());
  backend.set("csr-spill");
  budget.set("8K");
  // FocusConfig{} defaults graph_store from the environment.
  const auto got = core::assemble_reads(d.data.reads, pipeline_config());
  expect_same_assembly(got, want, "env-selected backend");
}

// Heavy grid (perf-smoke label): datasets D1–D3 through the whole pipeline,
// both protocols, spill-forcing budget, at every rank count — the in-memory
// backend is the oracle at each sweep point.
TEST(GraphStoreHeavy, GridDatasetsRanksProtocolsByteIdentical) {
  for (const int ds : {1, 2, 3}) {
    const sim::Dataset d =
        sim::make_dataset(ds, /*scale=*/0.25, /*coverage=*/6.0);
    core::FocusConfig cfg = pipeline_config();
    cfg.partitions = 8;
    for (const int nranks : {1, 2, 4, 8}) {
      cfg.ranks = nranks;
      for (const auto* proto : {&kMasterCfg, &kSymmetricCfg}) {
        cfg.dist = *proto;
        cfg.graph_store = GraphStoreConfig{};
        const auto want = core::assemble_reads(d.data.reads, cfg);
        cfg.graph_store.backend = GraphStoreBackend::kCsrSpill;
        cfg.graph_store.mem_budget_bytes = 8192;
        const auto got = core::assemble_reads(d.data.reads, cfg);
        const std::string context =
            "dataset " + std::to_string(ds) + " ranks " +
            std::to_string(nranks) + " protocol " +
            (proto->protocol == dist::DistProtocol::kMaster ? "master"
                                                            : "symmetric");
        expect_same_assembly(got, want, context);
      }
    }
  }
}

}  // namespace
}  // namespace focus
