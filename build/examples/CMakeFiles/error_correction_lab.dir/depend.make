# Empty dependencies file for error_correction_lab.
# This may be replaced when dependencies are built.
