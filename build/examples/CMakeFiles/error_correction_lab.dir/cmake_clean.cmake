file(REMOVE_RECURSE
  "CMakeFiles/error_correction_lab.dir/error_correction_lab.cpp.o"
  "CMakeFiles/error_correction_lab.dir/error_correction_lab.cpp.o.d"
  "error_correction_lab"
  "error_correction_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_correction_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
