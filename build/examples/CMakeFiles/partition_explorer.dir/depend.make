# Empty dependencies file for partition_explorer.
# This may be replaced when dependencies are built.
