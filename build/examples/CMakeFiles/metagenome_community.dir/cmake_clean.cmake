file(REMOVE_RECURSE
  "CMakeFiles/metagenome_community.dir/metagenome_community.cpp.o"
  "CMakeFiles/metagenome_community.dir/metagenome_community.cpp.o.d"
  "metagenome_community"
  "metagenome_community.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_community.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
