# Empty dependencies file for metagenome_community.
# This may be replaced when dependencies are built.
