# Empty dependencies file for strain_variants.
# This may be replaced when dependencies are built.
