file(REMOVE_RECURSE
  "CMakeFiles/strain_variants.dir/strain_variants.cpp.o"
  "CMakeFiles/strain_variants.dir/strain_variants.cpp.o.d"
  "strain_variants"
  "strain_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strain_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
