file(REMOVE_RECURSE
  "CMakeFiles/focus_asm.dir/focus_asm.cpp.o"
  "CMakeFiles/focus_asm.dir/focus_asm.cpp.o.d"
  "focus_asm"
  "focus_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
