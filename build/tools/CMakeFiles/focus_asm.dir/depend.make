# Empty dependencies file for focus_asm.
# This may be replaced when dependencies are built.
