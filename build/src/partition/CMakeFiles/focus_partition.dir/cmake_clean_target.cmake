file(REMOVE_RECURSE
  "libfocus_partition.a"
)
