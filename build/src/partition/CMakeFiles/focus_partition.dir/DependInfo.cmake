
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/ggg.cpp" "src/partition/CMakeFiles/focus_partition.dir/ggg.cpp.o" "gcc" "src/partition/CMakeFiles/focus_partition.dir/ggg.cpp.o.d"
  "/root/repo/src/partition/kl.cpp" "src/partition/CMakeFiles/focus_partition.dir/kl.cpp.o" "gcc" "src/partition/CMakeFiles/focus_partition.dir/kl.cpp.o.d"
  "/root/repo/src/partition/kway.cpp" "src/partition/CMakeFiles/focus_partition.dir/kway.cpp.o" "gcc" "src/partition/CMakeFiles/focus_partition.dir/kway.cpp.o.d"
  "/root/repo/src/partition/mlpart.cpp" "src/partition/CMakeFiles/focus_partition.dir/mlpart.cpp.o" "gcc" "src/partition/CMakeFiles/focus_partition.dir/mlpart.cpp.o.d"
  "/root/repo/src/partition/partition.cpp" "src/partition/CMakeFiles/focus_partition.dir/partition.cpp.o" "gcc" "src/partition/CMakeFiles/focus_partition.dir/partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/focus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/focus_align.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
