file(REMOVE_RECURSE
  "CMakeFiles/focus_partition.dir/ggg.cpp.o"
  "CMakeFiles/focus_partition.dir/ggg.cpp.o.d"
  "CMakeFiles/focus_partition.dir/kl.cpp.o"
  "CMakeFiles/focus_partition.dir/kl.cpp.o.d"
  "CMakeFiles/focus_partition.dir/kway.cpp.o"
  "CMakeFiles/focus_partition.dir/kway.cpp.o.d"
  "CMakeFiles/focus_partition.dir/mlpart.cpp.o"
  "CMakeFiles/focus_partition.dir/mlpart.cpp.o.d"
  "CMakeFiles/focus_partition.dir/partition.cpp.o"
  "CMakeFiles/focus_partition.dir/partition.cpp.o.d"
  "libfocus_partition.a"
  "libfocus_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
