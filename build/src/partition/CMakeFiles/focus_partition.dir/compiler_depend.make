# Empty compiler generated dependencies file for focus_partition.
# This may be replaced when dependencies are built.
