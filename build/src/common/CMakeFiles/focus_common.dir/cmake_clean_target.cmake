file(REMOVE_RECURSE
  "libfocus_common.a"
)
