file(REMOVE_RECURSE
  "CMakeFiles/focus_common.dir/dna.cpp.o"
  "CMakeFiles/focus_common.dir/dna.cpp.o.d"
  "CMakeFiles/focus_common.dir/error.cpp.o"
  "CMakeFiles/focus_common.dir/error.cpp.o.d"
  "CMakeFiles/focus_common.dir/stats.cpp.o"
  "CMakeFiles/focus_common.dir/stats.cpp.o.d"
  "libfocus_common.a"
  "libfocus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
