# Empty dependencies file for focus_common.
# This may be replaced when dependencies are built.
