file(REMOVE_RECURSE
  "libfocus_sim.a"
)
