
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/community.cpp" "src/sim/CMakeFiles/focus_sim.dir/community.cpp.o" "gcc" "src/sim/CMakeFiles/focus_sim.dir/community.cpp.o.d"
  "/root/repo/src/sim/datasets.cpp" "src/sim/CMakeFiles/focus_sim.dir/datasets.cpp.o" "gcc" "src/sim/CMakeFiles/focus_sim.dir/datasets.cpp.o.d"
  "/root/repo/src/sim/genome.cpp" "src/sim/CMakeFiles/focus_sim.dir/genome.cpp.o" "gcc" "src/sim/CMakeFiles/focus_sim.dir/genome.cpp.o.d"
  "/root/repo/src/sim/sequencer.cpp" "src/sim/CMakeFiles/focus_sim.dir/sequencer.cpp.o" "gcc" "src/sim/CMakeFiles/focus_sim.dir/sequencer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
