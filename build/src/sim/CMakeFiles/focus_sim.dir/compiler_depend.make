# Empty compiler generated dependencies file for focus_sim.
# This may be replaced when dependencies are built.
