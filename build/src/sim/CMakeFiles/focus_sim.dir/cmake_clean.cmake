file(REMOVE_RECURSE
  "CMakeFiles/focus_sim.dir/community.cpp.o"
  "CMakeFiles/focus_sim.dir/community.cpp.o.d"
  "CMakeFiles/focus_sim.dir/datasets.cpp.o"
  "CMakeFiles/focus_sim.dir/datasets.cpp.o.d"
  "CMakeFiles/focus_sim.dir/genome.cpp.o"
  "CMakeFiles/focus_sim.dir/genome.cpp.o.d"
  "CMakeFiles/focus_sim.dir/sequencer.cpp.o"
  "CMakeFiles/focus_sim.dir/sequencer.cpp.o.d"
  "libfocus_sim.a"
  "libfocus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
