file(REMOVE_RECURSE
  "libfocus_dist.a"
)
