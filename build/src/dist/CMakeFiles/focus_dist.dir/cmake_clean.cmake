file(REMOVE_RECURSE
  "CMakeFiles/focus_dist.dir/asm_graph.cpp.o"
  "CMakeFiles/focus_dist.dir/asm_graph.cpp.o.d"
  "CMakeFiles/focus_dist.dir/gfa.cpp.o"
  "CMakeFiles/focus_dist.dir/gfa.cpp.o.d"
  "CMakeFiles/focus_dist.dir/parallel.cpp.o"
  "CMakeFiles/focus_dist.dir/parallel.cpp.o.d"
  "CMakeFiles/focus_dist.dir/simplify.cpp.o"
  "CMakeFiles/focus_dist.dir/simplify.cpp.o.d"
  "CMakeFiles/focus_dist.dir/traverse.cpp.o"
  "CMakeFiles/focus_dist.dir/traverse.cpp.o.d"
  "CMakeFiles/focus_dist.dir/variants.cpp.o"
  "CMakeFiles/focus_dist.dir/variants.cpp.o.d"
  "libfocus_dist.a"
  "libfocus_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
