# Empty compiler generated dependencies file for focus_dist.
# This may be replaced when dependencies are built.
