
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dist/asm_graph.cpp" "src/dist/CMakeFiles/focus_dist.dir/asm_graph.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/asm_graph.cpp.o.d"
  "/root/repo/src/dist/gfa.cpp" "src/dist/CMakeFiles/focus_dist.dir/gfa.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/gfa.cpp.o.d"
  "/root/repo/src/dist/parallel.cpp" "src/dist/CMakeFiles/focus_dist.dir/parallel.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/parallel.cpp.o.d"
  "/root/repo/src/dist/simplify.cpp" "src/dist/CMakeFiles/focus_dist.dir/simplify.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/simplify.cpp.o.d"
  "/root/repo/src/dist/traverse.cpp" "src/dist/CMakeFiles/focus_dist.dir/traverse.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/traverse.cpp.o.d"
  "/root/repo/src/dist/variants.cpp" "src/dist/CMakeFiles/focus_dist.dir/variants.cpp.o" "gcc" "src/dist/CMakeFiles/focus_dist.dir/variants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/focus_align.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
