file(REMOVE_RECURSE
  "CMakeFiles/focus_io.dir/fastx.cpp.o"
  "CMakeFiles/focus_io.dir/fastx.cpp.o.d"
  "CMakeFiles/focus_io.dir/preprocess.cpp.o"
  "CMakeFiles/focus_io.dir/preprocess.cpp.o.d"
  "libfocus_io.a"
  "libfocus_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
