# Empty dependencies file for focus_io.
# This may be replaced when dependencies are built.
