
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fastx.cpp" "src/io/CMakeFiles/focus_io.dir/fastx.cpp.o" "gcc" "src/io/CMakeFiles/focus_io.dir/fastx.cpp.o.d"
  "/root/repo/src/io/preprocess.cpp" "src/io/CMakeFiles/focus_io.dir/preprocess.cpp.o" "gcc" "src/io/CMakeFiles/focus_io.dir/preprocess.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
