file(REMOVE_RECURSE
  "libfocus_io.a"
)
