# Empty compiler generated dependencies file for focus_baseline.
# This may be replaced when dependencies are built.
