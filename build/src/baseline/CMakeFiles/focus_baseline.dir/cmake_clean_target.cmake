file(REMOVE_RECURSE
  "libfocus_baseline.a"
)
