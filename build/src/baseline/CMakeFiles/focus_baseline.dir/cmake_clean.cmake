file(REMOVE_RECURSE
  "CMakeFiles/focus_baseline.dir/string_graph_assembler.cpp.o"
  "CMakeFiles/focus_baseline.dir/string_graph_assembler.cpp.o.d"
  "libfocus_baseline.a"
  "libfocus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
