
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/banded_nw.cpp" "src/align/CMakeFiles/focus_align.dir/banded_nw.cpp.o" "gcc" "src/align/CMakeFiles/focus_align.dir/banded_nw.cpp.o.d"
  "/root/repo/src/align/overlap.cpp" "src/align/CMakeFiles/focus_align.dir/overlap.cpp.o" "gcc" "src/align/CMakeFiles/focus_align.dir/overlap.cpp.o.d"
  "/root/repo/src/align/overlapper.cpp" "src/align/CMakeFiles/focus_align.dir/overlapper.cpp.o" "gcc" "src/align/CMakeFiles/focus_align.dir/overlapper.cpp.o.d"
  "/root/repo/src/align/suffix_array.cpp" "src/align/CMakeFiles/focus_align.dir/suffix_array.cpp.o" "gcc" "src/align/CMakeFiles/focus_align.dir/suffix_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
