file(REMOVE_RECURSE
  "CMakeFiles/focus_align.dir/banded_nw.cpp.o"
  "CMakeFiles/focus_align.dir/banded_nw.cpp.o.d"
  "CMakeFiles/focus_align.dir/overlap.cpp.o"
  "CMakeFiles/focus_align.dir/overlap.cpp.o.d"
  "CMakeFiles/focus_align.dir/overlapper.cpp.o"
  "CMakeFiles/focus_align.dir/overlapper.cpp.o.d"
  "CMakeFiles/focus_align.dir/suffix_array.cpp.o"
  "CMakeFiles/focus_align.dir/suffix_array.cpp.o.d"
  "libfocus_align.a"
  "libfocus_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
