# Empty dependencies file for focus_align.
# This may be replaced when dependencies are built.
