file(REMOVE_RECURSE
  "libfocus_align.a"
)
