file(REMOVE_RECURSE
  "libfocus_mpr.a"
)
