file(REMOVE_RECURSE
  "CMakeFiles/focus_mpr.dir/runtime.cpp.o"
  "CMakeFiles/focus_mpr.dir/runtime.cpp.o.d"
  "libfocus_mpr.a"
  "libfocus_mpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_mpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
