# Empty compiler generated dependencies file for focus_mpr.
# This may be replaced when dependencies are built.
