# Empty dependencies file for focus_graph.
# This may be replaced when dependencies are built.
