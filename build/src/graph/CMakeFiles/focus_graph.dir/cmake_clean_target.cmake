file(REMOVE_RECURSE
  "libfocus_graph.a"
)
