file(REMOVE_RECURSE
  "CMakeFiles/focus_graph.dir/coarsen.cpp.o"
  "CMakeFiles/focus_graph.dir/coarsen.cpp.o.d"
  "CMakeFiles/focus_graph.dir/contiguity.cpp.o"
  "CMakeFiles/focus_graph.dir/contiguity.cpp.o.d"
  "CMakeFiles/focus_graph.dir/digraph.cpp.o"
  "CMakeFiles/focus_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/focus_graph.dir/graph.cpp.o"
  "CMakeFiles/focus_graph.dir/graph.cpp.o.d"
  "CMakeFiles/focus_graph.dir/hybrid.cpp.o"
  "CMakeFiles/focus_graph.dir/hybrid.cpp.o.d"
  "libfocus_graph.a"
  "libfocus_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
