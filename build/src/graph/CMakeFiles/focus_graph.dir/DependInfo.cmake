
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coarsen.cpp" "src/graph/CMakeFiles/focus_graph.dir/coarsen.cpp.o" "gcc" "src/graph/CMakeFiles/focus_graph.dir/coarsen.cpp.o.d"
  "/root/repo/src/graph/contiguity.cpp" "src/graph/CMakeFiles/focus_graph.dir/contiguity.cpp.o" "gcc" "src/graph/CMakeFiles/focus_graph.dir/contiguity.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/graph/CMakeFiles/focus_graph.dir/digraph.cpp.o" "gcc" "src/graph/CMakeFiles/focus_graph.dir/digraph.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/focus_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/focus_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/hybrid.cpp" "src/graph/CMakeFiles/focus_graph.dir/hybrid.cpp.o" "gcc" "src/graph/CMakeFiles/focus_graph.dir/hybrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/focus_align.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
