file(REMOVE_RECURSE
  "CMakeFiles/focus_core.dir/asm_build.cpp.o"
  "CMakeFiles/focus_core.dir/asm_build.cpp.o.d"
  "CMakeFiles/focus_core.dir/assembler.cpp.o"
  "CMakeFiles/focus_core.dir/assembler.cpp.o.d"
  "CMakeFiles/focus_core.dir/classify.cpp.o"
  "CMakeFiles/focus_core.dir/classify.cpp.o.d"
  "CMakeFiles/focus_core.dir/community.cpp.o"
  "CMakeFiles/focus_core.dir/community.cpp.o.d"
  "CMakeFiles/focus_core.dir/consensus.cpp.o"
  "CMakeFiles/focus_core.dir/consensus.cpp.o.d"
  "CMakeFiles/focus_core.dir/stats.cpp.o"
  "CMakeFiles/focus_core.dir/stats.cpp.o.d"
  "libfocus_core.a"
  "libfocus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
