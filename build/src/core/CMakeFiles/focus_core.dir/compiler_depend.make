# Empty compiler generated dependencies file for focus_core.
# This may be replaced when dependencies are built.
