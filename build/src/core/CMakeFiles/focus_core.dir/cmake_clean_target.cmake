file(REMOVE_RECURSE
  "libfocus_core.a"
)
