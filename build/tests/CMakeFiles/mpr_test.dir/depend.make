# Empty dependencies file for mpr_test.
# This may be replaced when dependencies are built.
