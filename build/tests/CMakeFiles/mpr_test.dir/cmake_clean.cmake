file(REMOVE_RECURSE
  "CMakeFiles/mpr_test.dir/mpr_test.cpp.o"
  "CMakeFiles/mpr_test.dir/mpr_test.cpp.o.d"
  "mpr_test"
  "mpr_test.pdb"
  "mpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
