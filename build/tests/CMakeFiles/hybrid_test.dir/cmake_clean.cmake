file(REMOVE_RECURSE
  "CMakeFiles/hybrid_test.dir/hybrid_test.cpp.o"
  "CMakeFiles/hybrid_test.dir/hybrid_test.cpp.o.d"
  "hybrid_test"
  "hybrid_test.pdb"
  "hybrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
