
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_test.cpp" "tests/CMakeFiles/io_test.dir/io_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/focus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/focus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/focus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/focus_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/focus_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/focus_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/focus_align.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/focus_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/focus_mpr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/focus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
