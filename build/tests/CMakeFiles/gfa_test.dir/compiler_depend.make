# Empty compiler generated dependencies file for gfa_test.
# This may be replaced when dependencies are built.
