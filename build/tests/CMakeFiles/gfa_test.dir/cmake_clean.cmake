file(REMOVE_RECURSE
  "CMakeFiles/gfa_test.dir/gfa_test.cpp.o"
  "CMakeFiles/gfa_test.dir/gfa_test.cpp.o.d"
  "gfa_test"
  "gfa_test.pdb"
  "gfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
