# Empty compiler generated dependencies file for metagenome_test.
# This may be replaced when dependencies are built.
