file(REMOVE_RECURSE
  "CMakeFiles/metagenome_test.dir/metagenome_test.cpp.o"
  "CMakeFiles/metagenome_test.dir/metagenome_test.cpp.o.d"
  "metagenome_test"
  "metagenome_test.pdb"
  "metagenome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
