# Empty compiler generated dependencies file for variants_test.
# This may be replaced when dependencies are built.
