# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mpr_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/metagenome_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/gfa_test[1]_include.cmake")
