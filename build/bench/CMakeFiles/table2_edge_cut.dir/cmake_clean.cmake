file(REMOVE_RECURSE
  "CMakeFiles/table2_edge_cut.dir/table2_edge_cut.cpp.o"
  "CMakeFiles/table2_edge_cut.dir/table2_edge_cut.cpp.o.d"
  "table2_edge_cut"
  "table2_edge_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_edge_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
