# Empty compiler generated dependencies file for table2_edge_cut.
# This may be replaced when dependencies are built.
