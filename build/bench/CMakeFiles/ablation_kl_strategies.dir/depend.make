# Empty dependencies file for ablation_kl_strategies.
# This may be replaced when dependencies are built.
