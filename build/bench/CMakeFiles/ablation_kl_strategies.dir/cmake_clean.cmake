file(REMOVE_RECURSE
  "CMakeFiles/ablation_kl_strategies.dir/ablation_kl_strategies.cpp.o"
  "CMakeFiles/ablation_kl_strategies.dir/ablation_kl_strategies.cpp.o.d"
  "ablation_kl_strategies"
  "ablation_kl_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kl_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
