file(REMOVE_RECURSE
  "CMakeFiles/fig4_partition_speedup.dir/fig4_partition_speedup.cpp.o"
  "CMakeFiles/fig4_partition_speedup.dir/fig4_partition_speedup.cpp.o.d"
  "fig4_partition_speedup"
  "fig4_partition_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_partition_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
