# Empty compiler generated dependencies file for fig4_partition_speedup.
# This may be replaced when dependencies are built.
