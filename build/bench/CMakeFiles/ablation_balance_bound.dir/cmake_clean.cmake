file(REMOVE_RECURSE
  "CMakeFiles/ablation_balance_bound.dir/ablation_balance_bound.cpp.o"
  "CMakeFiles/ablation_balance_bound.dir/ablation_balance_bound.cpp.o.d"
  "ablation_balance_bound"
  "ablation_balance_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_balance_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
