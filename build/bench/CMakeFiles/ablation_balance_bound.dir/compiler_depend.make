# Empty compiler generated dependencies file for ablation_balance_bound.
# This may be replaced when dependencies are built.
