# Empty compiler generated dependencies file for fig5_hybrid_vs_multilevel.
# This may be replaced when dependencies are built.
