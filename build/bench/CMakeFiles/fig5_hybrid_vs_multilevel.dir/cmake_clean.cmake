file(REMOVE_RECURSE
  "CMakeFiles/fig5_hybrid_vs_multilevel.dir/fig5_hybrid_vs_multilevel.cpp.o"
  "CMakeFiles/fig5_hybrid_vs_multilevel.dir/fig5_hybrid_vs_multilevel.cpp.o.d"
  "fig5_hybrid_vs_multilevel"
  "fig5_hybrid_vs_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hybrid_vs_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
