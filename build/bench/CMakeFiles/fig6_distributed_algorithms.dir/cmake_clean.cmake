file(REMOVE_RECURSE
  "CMakeFiles/fig6_distributed_algorithms.dir/fig6_distributed_algorithms.cpp.o"
  "CMakeFiles/fig6_distributed_algorithms.dir/fig6_distributed_algorithms.cpp.o.d"
  "fig6_distributed_algorithms"
  "fig6_distributed_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_distributed_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
