# Empty dependencies file for fig6_distributed_algorithms.
# This may be replaced when dependencies are built.
