# Empty dependencies file for fig7_genus_partitions.
# This may be replaced when dependencies are built.
