file(REMOVE_RECURSE
  "CMakeFiles/fig7_genus_partitions.dir/fig7_genus_partitions.cpp.o"
  "CMakeFiles/fig7_genus_partitions.dir/fig7_genus_partitions.cpp.o.d"
  "fig7_genus_partitions"
  "fig7_genus_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_genus_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
