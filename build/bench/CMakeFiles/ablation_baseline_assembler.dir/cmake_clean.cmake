file(REMOVE_RECURSE
  "CMakeFiles/ablation_baseline_assembler.dir/ablation_baseline_assembler.cpp.o"
  "CMakeFiles/ablation_baseline_assembler.dir/ablation_baseline_assembler.cpp.o.d"
  "ablation_baseline_assembler"
  "ablation_baseline_assembler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_baseline_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
