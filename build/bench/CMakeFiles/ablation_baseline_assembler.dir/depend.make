# Empty dependencies file for ablation_baseline_assembler.
# This may be replaced when dependencies are built.
