file(REMOVE_RECURSE
  "CMakeFiles/table3_assembly_stats.dir/table3_assembly_stats.cpp.o"
  "CMakeFiles/table3_assembly_stats.dir/table3_assembly_stats.cpp.o.d"
  "table3_assembly_stats"
  "table3_assembly_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_assembly_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
