# Empty compiler generated dependencies file for table3_assembly_stats.
# This may be replaced when dependencies are built.
