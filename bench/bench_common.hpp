// Shared infrastructure for the paper-experiment drivers: dataset bundles
// (reads → overlaps → graphs → hierarchies, built once and reused by every
// configuration a driver sweeps), table formatting, and environment-variable
// scaling.
//
// Environment knobs:
//   FOCUS_BENCH_SCALE     genome-length multiplier (default 1.0)
//   FOCUS_BENCH_COVERAGE  sequencing depth (default 15)
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "align/overlapper.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/asm_build.hpp"
#include "core/assembler.hpp"
#include "graph/coarsen.hpp"
#include "graph/digraph.hpp"
#include "graph/hybrid.hpp"
#include "io/preprocess.hpp"
#include "sim/datasets.hpp"

namespace focus::bench {

inline double bench_scale(double fallback = 1.0) {
  const auto env = EnvSnapshot::capture();
  if (!env.bench_scale.has_value()) return fallback;
  return env::parse_double("FOCUS_BENCH_SCALE", *env.bench_scale);
}

inline double bench_coverage(double fallback = 15.0) {
  const auto env = EnvSnapshot::capture();
  if (!env.bench_coverage.has_value()) return fallback;
  return env::parse_double("FOCUS_BENCH_COVERAGE", *env.bench_coverage);
}

/// The pipeline configuration every experiment driver shares (mirrors the
/// paper's §VI-A setup: 50 bp minimum overlap, 90 % minimum identity).
inline core::FocusConfig bench_config() {
  core::FocusConfig cfg;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 50;
  cfg.overlap.min_identity = 0.90;
  cfg.overlap.subsets = 4;
  cfg.coarsen.min_nodes = 48;
  cfg.coarsen.max_levels = 10;
  return cfg;
}

/// Everything the experiment drivers need about one dataset, computed once.
struct DatasetBundle {
  sim::Dataset dataset;
  io::ReadSet reads;  // preprocessed (with reverse complements)
  std::vector<align::Overlap> overlaps;
  graph::Graph overlap_graph;          // G0
  graph::GraphHierarchy multilevel;    // {G0 … Gn}
  graph::HybridGraphSet hybrid;        // {G'0 … G'n}
  graph::Digraph read_graph;

  const graph::Graph& hybrid_graph() const {
    return hybrid.hierarchy.levels.front();
  }
};

/// Builds the bundle for dataset `index` (1..3). Progress goes to stderr so
/// stdout stays a clean table.
inline DatasetBundle prepare_dataset(int index) {
  Timer timer;
  DatasetBundle b;
  const core::FocusConfig cfg = bench_config();

  std::fprintf(stderr, "[prepare D%d] simulating reads (scale=%.2f cov=%.1f)\n",
               index, bench_scale(), bench_coverage());
  b.dataset = sim::make_dataset(index, bench_scale(), bench_coverage());

  std::fprintf(stderr, "[prepare D%d] preprocessing %zu reads\n", index,
               b.dataset.data.reads.size());
  b.reads = io::preprocess(b.dataset.data.reads, cfg.preprocess);

  std::fprintf(stderr, "[prepare D%d] aligning %zu reads (%u threads)\n",
               index, b.reads.size(),
               resolve_thread_count(cfg.overlap.threads));
  // Pooled aligner: byte-identical to find_overlaps_serial, but uses the
  // work-stealing pool (FOCUS_THREADS wide) so bundle preparation scales
  // with the host.
  b.overlaps = align::find_overlaps(b.reads, cfg.overlap);

  std::fprintf(stderr, "[prepare D%d] building graphs (%zu overlaps)\n", index,
               b.overlaps.size());
  b.overlap_graph = graph::build_overlap_graph(b.reads.size(), b.overlaps);
  b.multilevel = graph::build_multilevel(b.overlap_graph, cfg.coarsen);
  b.read_graph = graph::build_read_digraph(b.reads.size(), b.overlaps);
  std::vector<std::uint32_t> lengths;
  lengths.reserve(b.reads.size());
  for (const auto& r : b.reads) {
    lengths.push_back(static_cast<std::uint32_t>(r.seq.size()));
  }
  b.hybrid = graph::build_hybrid(b.multilevel, b.read_graph, std::move(lengths));

  std::fprintf(stderr,
               "[prepare D%d] done in %.1fs: |V(G0)|=%zu |E(G0)|=%zu "
               "|V(G'0)|=%zu levels=%zu\n",
               index, timer.seconds(), b.overlap_graph.node_count(),
               b.overlap_graph.edge_count(), b.hybrid_graph().node_count(),
               b.multilevel.depth());
  return b;
}

/// Builds the assembly graph for distributed-algorithm experiments.
inline core::AsmBuildResult build_asm(const DatasetBundle& b) {
  return core::build_assembly_graph(b.hybrid, b.read_graph, b.reads);
}

// --- Table formatting -------------------------------------------------------

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace focus::bench
