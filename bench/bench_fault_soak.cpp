// Whole-pipeline chaos soak — the full FocusAssembler (plus the variant
// caller and GFA emitter on its output graph) driven through crash-at-every-
// op sweeps and seeded mixed-fault storms (crash / drop / duplicate /
// corrupt / delay), across rank counts, wire protocols and graph-store
// backends. csr-spill runs also arm the spill manager's nth-write disk
// fault, so message recovery and disk-write recovery fire in the same run.
//
//   $ ./bench_fault_soak [--smoke] [output.json]
//
// Every faulted run is checked byte-identical to the fault-free oracle of
// its dataset: contigs, assembly stats, partition cut, variant list and GFA
// bytes. Per-stage fault-recovery counters (retries, ranks_failed,
// recovery_vtime) are recorded per run into the JSON report; the summary
// counts unrecovered runs, which must be zero — exit status is nonzero
// otherwise, so the smoke invocation doubles as a ctest (label:
// perf-smoke). Default output: BENCH_fault_soak.json.
//
// Scale: the soak favors many runs over big runs, so the default workload
// is deliberately small (FOCUS_BENCH_SCALE defaults to 0.3 here, not the
// 1.0 of the table/figure drivers; FOCUS_BENCH_COVERAGE to 6).
#include "bench_common.hpp"

#include <cstring>
#include <map>
#include <sstream>

#include "dist/gfa.hpp"
#include "dist/parallel.hpp"
#include "dist/variants.hpp"

namespace {

using namespace focus;

constexpr PartId kGraphParts = 4;

double soak_scale() { return bench::bench_scale(0.3); }
double soak_coverage() { return bench::bench_coverage(6.0); }

core::FocusConfig soak_config(int ranks, dist::DistProtocol protocol,
                              graph::GraphStoreBackend backend) {
  core::FocusConfig cfg;
  cfg.overlap.strategy = align::SeedStrategy::kDistributedIndex;
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.coarsen.max_levels = 8;
  cfg.partitions = kGraphParts;
  cfg.ranks = ranks;
  cfg.min_contig_length = 150;
  cfg.fault_plan = mpr::FaultPlan{};
  cfg.fault = mpr::FaultConfig{};
  cfg.fault.max_retries = 32;
  cfg.dist.protocol = protocol;
  cfg.graph_store = graph::GraphStoreConfig{};
  cfg.graph_store.backend = backend;
  return cfg;
}

/// Node partition for the post-pipeline variant/GFA drivers: striped over
/// the assembly graph, the same layout the driver fault tests use.
std::vector<PartId> striped_partition(std::size_t nodes) {
  std::vector<PartId> part(nodes);
  for (std::size_t v = 0; v < nodes; ++v) {
    part[v] = static_cast<PartId>(v % kGraphParts);
  }
  return part;
}

/// Everything a faulted run must reproduce byte-for-byte.
struct Expected {
  std::vector<std::string> contigs;
  std::uint64_t n50 = 0;
  std::uint64_t total_bases = 0;
  Weight finest_cut = 0;
  std::vector<dist::Variant> variants;
  std::string gfa;
};

/// Fault-free reference at one rank count. Traversal output is a function
/// of the rank count (subpath gather order feeds the greedy join), so each
/// rank count gets its own oracle; protocols and backends remain
/// output-equivalent at a fixed rank count.
Expected make_oracle(const io::ReadSet& raw, int ranks) {
  const auto result = core::assemble_reads(
      raw, soak_config(ranks, dist::DistProtocol::kMaster,
                       graph::GraphStoreBackend::kInMemory));
  Expected e;
  e.contigs = result.contigs;
  e.n50 = result.stats.n50;
  e.total_bases = result.stats.total_bases;
  e.finest_cut = result.partitioning.finest_cut;
  double work = 0.0;
  e.variants = dist::find_variants_serial(result.assembly_graph, {}, &work);
  std::ostringstream gfa;
  dist::write_gfa(gfa, result.assembly_graph);
  e.gfa = gfa.str();
  return e;
}

bool same_variants(const std::vector<dist::Variant>& a,
                   const std::vector<dist::Variant>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].branch_point != b[i].branch_point ||
        a[i].merge_point != b[i].merge_point ||
        a[i].major_allele != b[i].major_allele ||
        a[i].minor_allele != b[i].minor_allele ||
        a[i].major_coverage != b[i].major_coverage ||
        a[i].minor_coverage != b[i].minor_coverage) {
      return false;
    }
  }
  return true;
}

/// Per-stage fault-recovery counters of one soak run.
struct StageStats {
  std::uint64_t retries = 0;
  int ranks_failed = 0;
  double recovery_vtime = 0.0;
};

struct RunRecord {
  std::string kind;  // "storm" | "crash"
  int dataset = 0;
  int ranks = 0;
  std::string protocol;
  std::string backend;
  std::uint64_t seed = 0;  // storm runs
  int victim = 0;          // crash runs
  std::uint64_t op = 0;    // crash runs
  bool ok = false;
  std::map<std::string, StageStats> stages;
};

StageStats stage_stats(const mpr::RunStats& run) {
  return {run.retries, run.ranks_failed, run.recovery_vtime};
}

/// Runs the full pipeline plus the variant/GFA drivers under `cfg` and
/// checks the result against `want`. Fills `rec.stages` / `rec.ok`.
void soak_run(const io::ReadSet& raw, const core::FocusConfig& cfg,
              const Expected& want, RunRecord& rec) {
  const auto got = core::assemble_reads(raw, cfg);
  rec.stages["1-preprocess"] = stage_stats(got.preprocess_run);
  rec.stages["2-align"] = stage_stats(got.align_run);
  rec.stages["5-partition"] = stage_stats(got.partition_run);
  rec.stages["6-simplify"] = stage_stats(got.simplify_run);
  rec.stages["7-traverse"] = stage_stats(got.traverse_run);

  const auto part = striped_partition(got.assembly_graph.node_count());
  auto variants = dist::find_variants_parallel(
      got.assembly_graph, part, kGraphParts, {}, cfg.ranks, cfg.cost,
      cfg.fault_plan, cfg.fault, cfg.dist);
  rec.stages["8-variants"] = stage_stats(variants.run);
  auto gfa = dist::write_gfa_parallel(got.assembly_graph, {}, cfg.ranks,
                                      cfg.cost, cfg.fault_plan, cfg.fault,
                                      cfg.dist);
  rec.stages["9-gfa"] = stage_stats(gfa.run);

  rec.ok = got.contigs == want.contigs && got.stats.n50 == want.n50 &&
           got.stats.total_bases == want.total_bases &&
           got.partitioning.finest_cut == want.finest_cut &&
           same_variants(variants.variants, want.variants) &&
           gfa.gfa == want.gfa;
}

std::string protocol_name(dist::DistProtocol p) {
  return p == dist::DistProtocol::kSymmetric ? "symmetric" : "master";
}

std::string backend_name(graph::GraphStoreBackend b) {
  return b == graph::GraphStoreBackend::kCsrSpill ? "csr-spill" : "memory";
}

void write_report(const std::string& path, bool smoke,
                  const std::vector<RunRecord>& runs) {
  std::uint64_t unrecovered = 0, total_retries = 0;
  std::uint64_t total_ranks_failed = 0;
  double total_recovery_vtime = 0.0;
  for (const auto& r : runs) {
    if (!r.ok) ++unrecovered;
    for (const auto& [stage, s] : r.stages) {
      total_retries += s.retries;
      total_ranks_failed += static_cast<std::uint64_t>(s.ranks_failed);
      total_recovery_vtime += s.recovery_vtime;
    }
  }

  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"fault_soak\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"scale\": %.3f,\n  \"coverage\": %.1f,\n", soak_scale(),
               soak_coverage());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"dataset\": \"D%d\", \"ranks\": %d, "
                 "\"protocol\": \"%s\", \"backend\": \"%s\", ",
                 r.kind.c_str(), r.dataset, r.ranks, r.protocol.c_str(),
                 r.backend.c_str());
    if (r.kind == "storm") {
      std::fprintf(f, "\"seed\": %llu, ",
                   static_cast<unsigned long long>(r.seed));
    } else {
      std::fprintf(f, "\"victim\": %d, \"op\": %llu, ", r.victim,
                   static_cast<unsigned long long>(r.op));
    }
    std::fprintf(f, "\"ok\": %s, \"stages\": {", r.ok ? "true" : "false");
    bool first = true;
    for (const auto& [stage, s] : r.stages) {
      std::fprintf(f,
                   "%s\"%s\": {\"retries\": %llu, \"ranks_failed\": %d, "
                   "\"recovery_vtime\": %.6g}",
                   first ? "" : ", ", stage.c_str(),
                   static_cast<unsigned long long>(s.retries), s.ranks_failed,
                   s.recovery_vtime);
      first = false;
    }
    std::fprintf(f, "}}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"runs\": %zu, \"unrecovered\": %llu, "
               "\"total_retries\": %llu, \"total_ranks_failed\": %llu, "
               "\"total_recovery_vtime\": %.6g}\n}\n",
               runs.size(), static_cast<unsigned long long>(unrecovered),
               static_cast<unsigned long long>(total_retries),
               static_cast<unsigned long long>(total_ranks_failed),
               total_recovery_vtime);
  std::fclose(f);
  std::fprintf(stderr, "[fault_soak] wrote %s (%zu runs, %llu unrecovered)\n",
               path.c_str(), runs.size(),
               static_cast<unsigned long long>(unrecovered));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fault_soak.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const std::vector<int> datasets = smoke ? std::vector<int>{1}
                                          : std::vector<int>{1, 2, 3};
  const std::vector<int> rank_counts = smoke ? std::vector<int>{2, 4}
                                             : std::vector<int>{2, 4, 8};
  const std::uint64_t storm_seeds = smoke ? 8 : 50;
  const std::uint64_t crash_ops = smoke ? 4 : 8;
  const std::vector<dist::DistProtocol> protocols = {
      dist::DistProtocol::kMaster, dist::DistProtocol::kSymmetric};

  bench::print_header(std::string("Whole-pipeline fault soak ") +
                      (smoke ? "(smoke)" : "(full)"));

  std::vector<io::ReadSet> raws;
  // Oracle per (dataset, rank count): see make_oracle.
  std::map<std::pair<std::size_t, int>, Expected> oracles;
  for (std::size_t di = 0; di < datasets.size(); ++di) {
    raws.push_back(sim::make_dataset(datasets[di], soak_scale(),
                                     soak_coverage()).data.reads);
    for (const int ranks : rank_counts) {
      std::fprintf(stderr, "[fault_soak] preparing D%d ranks=%d oracle\n",
                   datasets[di], ranks);
      oracles.emplace(std::make_pair(di, ranks),
                      make_oracle(raws.back(), ranks));
    }
  }

  std::vector<RunRecord> runs;

  // Crash-at-every-op sweep: one victim per protocol (the master protocol
  // cannot lose rank 0; the symmetric one can) at each early op position —
  // the op counter restarts per stage, so one sweep position faults every
  // stage of the pipeline that reaches it.
  for (std::size_t di = 0; di < datasets.size(); ++di) {
    for (const int ranks : rank_counts) {
      for (const auto protocol : protocols) {
        const int victim = protocol == dist::DistProtocol::kMaster ? 1 : 0;
        for (std::uint64_t op = 1; op <= crash_ops; ++op) {
          auto cfg = soak_config(ranks, protocol,
                                 graph::GraphStoreBackend::kInMemory);
          cfg.fault_plan.crashes.push_back({victim, op});
          RunRecord rec;
          rec.kind = "crash";
          rec.dataset = datasets[di];
          rec.ranks = ranks;
          rec.protocol = protocol_name(protocol);
          rec.backend = backend_name(cfg.graph_store.backend);
          rec.victim = victim;
          rec.op = op;
          soak_run(raws[di], cfg, oracles.at({di, ranks}), rec);
          if (!rec.ok) {
            std::fprintf(stderr,
                         "[fault_soak] MISMATCH D%d ranks=%d %s crash r%d@%llu\n",
                         rec.dataset, ranks, rec.protocol.c_str(), victim,
                         static_cast<unsigned long long>(op));
          }
          runs.push_back(std::move(rec));
        }
      }
    }
  }
  std::fprintf(stderr, "[fault_soak] crash sweep done (%zu runs)\n",
               runs.size());

  // Seeded mixed-fault storms, spread over dataset x ranks x protocol x
  // backend; csr-spill runs also arm the nth-write disk fault.
  for (std::uint64_t seed = 0; seed < storm_seeds; ++seed) {
    const std::size_t di = seed % datasets.size();
    const int ranks = rank_counts[seed % rank_counts.size()];
    const auto protocol = protocols[(seed / 2) % protocols.size()];
    const auto backend = (seed % 4 < 2) ? graph::GraphStoreBackend::kInMemory
                                        : graph::GraphStoreBackend::kCsrSpill;
    auto cfg = soak_config(ranks, protocol, backend);
    cfg.fault_plan.seed = seed * 31 + 17;
    cfg.fault_plan.p_drop = 0.02;
    cfg.fault_plan.p_duplicate = 0.02;
    cfg.fault_plan.p_corrupt = 0.02;
    cfg.fault_plan.p_delay = 0.02;
    if (backend == graph::GraphStoreBackend::kCsrSpill) {
      cfg.graph_store.write_fault_nth = 1 + seed % 3;
    }
    RunRecord rec;
    rec.kind = "storm";
    rec.dataset = datasets[di];
    rec.ranks = ranks;
    rec.protocol = protocol_name(protocol);
    rec.backend = backend_name(backend);
    rec.seed = seed;
    soak_run(raws[di], cfg, oracles.at({di, ranks}), rec);
    if (!rec.ok) {
      std::fprintf(stderr, "[fault_soak] MISMATCH D%d storm seed %llu\n",
                   rec.dataset, static_cast<unsigned long long>(seed));
    }
    runs.push_back(std::move(rec));
  }

  write_report(out_path, smoke, runs);

  std::uint64_t unrecovered = 0;
  for (const auto& r : runs) {
    if (!r.ok) ++unrecovered;
  }
  std::vector<int> widths = {10, 8, 12, 12, 8};
  bench::print_row({"kind", "runs", "protocols", "backends", "bad"}, widths);
  bench::print_row({"all", std::to_string(runs.size()), "2", "2",
                    std::to_string(unrecovered)},
                   widths);
  if (unrecovered != 0) {
    std::fprintf(stderr, "[fault_soak] FAIL: %llu unrecovered runs\n",
                 static_cast<unsigned long long>(unrecovered));
    return 1;
  }
  std::printf("\nAll %zu faulted runs recovered the fault-free assembly.\n",
              runs.size());
  return 0;
}
