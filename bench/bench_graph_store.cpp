// Graph-store backend bench — peak RSS and wall/vtime of the in-memory
// AsmGraph backend vs the out-of-core CSR spill backend (DESIGN.md §8).
//
//   $ ./bench_graph_store [--smoke] [output.json]
//
// The workload is a deterministic synthetic assembly graph generated beyond
// the D1-D3 dataset scales: per-partition contig chains carved from a
// splitmix64-derived genome (so chain overlaps verify at identity 1.0),
// plus transitive shortcuts, dead-end tips and inconsistent cross-partition
// edges that simplification removes. Scale factor `sf` multiplies the
// partition count, so the graph grows linearly while per-partition slice
// sizes stay fixed.
//
// Each (scale, backend) cell runs in a forked child process — build,
// simplify_parallel, traverse_parallel, contig checksum — and reports
// ru_maxrss through a pipe, so one backend's allocations can never pollute
// the other's high-water mark. The parent checks the two backends'
// contig-stream checksums byte-identical at every scale, checks that the
// spill budget actually forced evictions, and (full mode) gates on a
// peak-RSS reduction of at least 2x at the largest scale. Exit status is
// nonzero if any check fails, so the smoke invocation doubles as a ctest
// (label: perf-smoke). Default output: BENCH_graph_store.json.
#include "bench_common.hpp"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "common/checksum.hpp"
#include "dist/parallel.hpp"
#include "dist/stored_graph.hpp"

namespace {

using namespace focus;

constexpr int kRanks = 4;

// --- Deterministic workload ------------------------------------------------

inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Synthetic per-partition workload. Chain node i of partition p carries the
/// genome window [i*(L-ov), i*(L-ov)+L) of partition p's genome, so
/// consecutive contigs overlap by exactly `ov` identical bases; every
/// `seg`-th chain edge is omitted so traversal emits bounded paths instead
/// of one giant per-partition contig.
struct Workload {
  PartId parts = 8;          // 8 * sf
  std::size_t chain = 6000;  // chain nodes per partition
  std::size_t seg = 250;     // chain segment length (path length bound)
  std::uint32_t len = 2400;  // contig length L
  std::uint32_t ov = 150;    // chain overlap
  std::uint32_t tip_len = 200;

  std::size_t tips() const { return chain / 64; }
  std::size_t block() const { return chain + tips(); }
  std::size_t node_count() const { return block() * parts; }

  PartId part_of(NodeId v) const {
    return static_cast<PartId>(v / block());
  }
  bool is_tip(NodeId v) const { return v % block() >= chain; }
  std::uint32_t len_of(NodeId v) const { return is_tip(v) ? tip_len : len; }

  /// Base j of partition p's genome (tips draw from a disjoint seed space so
  /// their spur edges never verify).
  char genome(std::uint64_t seed, std::uint64_t j) const {
    const std::uint64_t word = splitmix64(seed ^ (j >> 5));
    return "ACGT"[(word >> ((j & 31u) * 2u)) & 3u];
  }

  std::string contig_of(NodeId v) const {
    const std::uint64_t p = part_of(v);
    const std::size_t local = v % block();
    std::string s;
    const std::uint32_t n = len_of(v);
    s.reserve(n);
    if (is_tip(v)) {
      const std::uint64_t seed = (p << 32) | 0x80000000ull | (local - chain);
      for (std::uint32_t j = 0; j < n; ++j) s.push_back(genome(~seed, j));
    } else {
      const std::uint64_t j0 =
          static_cast<std::uint64_t>(local) * (len - ov);
      for (std::uint32_t j = 0; j < n; ++j) {
        s.push_back(genome(p << 32, j0 + j));
      }
    }
    return s;
  }

  /// Emits every edge in the deterministic insertion order both backends
  /// share (edge ids are assigned in call order by AsmGraph and the store
  /// builder alike).
  template <class AddEdge>
  void for_each_edge(AddEdge&& add) const {
    for (PartId p = 0; p < parts; ++p) {
      const NodeId base = static_cast<NodeId>(p * block());
      for (std::size_t i = 0; i < chain; ++i) {
        const NodeId v = base + static_cast<NodeId>(i);
        // Chain edge, broken at segment boundaries.
        if (i + 1 < chain && (i + 1) % seg != 0) {
          add(v, v + 1, ov, len - ov);
        }
        // Transitive shortcut: removed by §V-A reduction (or, failing that,
        // as a false edge — its claimed 2*ov overlap never verifies).
        if (i % 31 == 7 && i + 2 < chain && (i + 1) % seg != 0 &&
            (i + 2) % seg != 0) {
          add(v, v + 2, 2 * ov, len - 2 * ov);
        }
        // Dead-end spur into a tip node: trimmed by §V-C.
        if (i % 64 == 9 && i / 64 < tips()) {
          add(v, base + static_cast<NodeId>(chain + i / 64), 30, len - 30);
        }
      }
      // Inconsistent cross-partition edge: exercises the boundary protocol,
      // then falls to §V-B false-edge removal.
      if (p + 1 < parts) {
        add(base, static_cast<NodeId>((p + 1) * block()) + 1, 60, len - 60);
      }
    }
  }

  std::vector<PartId> partition() const {
    std::vector<PartId> part(node_count());
    for (NodeId v = 0; v < part.size(); ++v) part[v] = part_of(v);
    return part;
  }
};

// --- Child-side measurement ------------------------------------------------

struct CellResult {
  long maxrss_kb = 0;
  double wall = 0.0;
  double vtime = 0.0;
  std::uint32_t checksum = 0;
  std::size_t paths = 0;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  graph::SpillStats spill;
};

template <class GraphT>
CellResult run_kernels(GraphT& g, const Workload& wl) {
  CellResult r;
  r.nodes = g.node_count();
  r.edges = g.edge_count();
  const std::vector<PartId> part = wl.partition();
  auto simplified = dist::simplify_parallel(g, part, wl.parts,
                                            dist::SimplifyConfig{}, kRanks);
  auto traversed = dist::traverse_parallel(g, part, wl.parts, kRanks);
  r.vtime = simplified.run.makespan + traversed.run.makespan;
  r.paths = traversed.paths.size();
  // Stream the merged contigs through an incremental CRC — one path's
  // sequence in flight at a time, so the checksum never inflates the RSS
  // measurement.
  std::uint32_t crc = common::crc32_init();
  for (const auto& path : traversed.paths) {
    const std::string s = g.merge_path_contigs(path);
    crc = common::crc32_update(
        crc, reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }
  r.checksum = common::crc32_final(crc);
  return r;
}

CellResult run_cell(bool spill, const Workload& wl, std::size_t budget) {
  Timer wall;
  CellResult r;
  if (spill) {
    graph::GraphStoreConfig cfg;
    cfg.backend = graph::GraphStoreBackend::kCsrSpill;
    cfg.mem_budget_bytes = budget;
    const std::vector<PartId> part = wl.partition();
    dist::StoredAsmGraphBuilder builder(cfg, part, wl.parts);
    for (NodeId v = 0; v < wl.node_count(); ++v) {
      builder.declare_node(wl.len_of(v), 1);
    }
    wl.for_each_edge([&](NodeId f, NodeId t, std::uint32_t ov,
                         std::uint32_t off) { builder.add_edge(f, t, ov, off); });
    dist::StoredAsmGraph g =
        builder.finish([&](NodeId v) { return wl.contig_of(v); });
    r = run_kernels(g, wl);
    r.spill = g.spill_stats();
  } else {
    dist::AsmGraph g;
    for (NodeId v = 0; v < wl.node_count(); ++v) {
      g.add_node(wl.contig_of(v), 1);
    }
    wl.for_each_edge([&](NodeId f, NodeId t, std::uint32_t ov,
                         std::uint32_t off) { g.add_edge(f, t, ov, off); });
    r = run_kernels(g, wl);
  }
  r.wall = wall.seconds();
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  r.maxrss_kb = ru.ru_maxrss;
  return r;
}

/// Runs one (scale, backend) cell in a forked child so ru_maxrss isolates
/// this cell's allocations; the child reports one text line through a pipe.
bool run_cell_forked(bool spill, const Workload& wl, std::size_t budget,
                     CellResult* out) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    close(fds[0]);
    CellResult r = run_cell(spill, wl, budget);
    char line[512];
    const int n = std::snprintf(
        line, sizeof(line),
        "%ld %.6f %.6f %u %zu %zu %zu %llu %llu %llu %llu\n", r.maxrss_kb,
        r.wall, r.vtime, r.checksum, r.paths, r.nodes, r.edges,
        static_cast<unsigned long long>(r.spill.writes),
        static_cast<unsigned long long>(r.spill.loads),
        static_cast<unsigned long long>(r.spill.evictions),
        static_cast<unsigned long long>(r.spill.peak_resident_bytes));
    if (write(fds[1], line, static_cast<std::size_t>(n)) != n) _exit(3);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  char buf[512];
  std::size_t got = 0;
  while (got < sizeof(buf) - 1) {
    const ssize_t n = read(fds[0], buf + got, sizeof(buf) - 1 - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  buf[got] = '\0';
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "[graph_store] child failed (status %d)\n", status);
    return false;
  }
  unsigned long long writes = 0, loads = 0, evictions = 0, peak = 0;
  if (std::sscanf(buf, "%ld %lf %lf %u %zu %zu %zu %llu %llu %llu %llu",
                  &out->maxrss_kb, &out->wall, &out->vtime, &out->checksum,
                  &out->paths, &out->nodes, &out->edges, &writes, &loads,
                  &evictions, &peak) != 11) {
    std::fprintf(stderr, "[graph_store] bad child report: %s\n", buf);
    return false;
  }
  out->spill.writes = writes;
  out->spill.loads = loads;
  out->spill.evictions = evictions;
  out->spill.peak_resident_bytes = peak;
  return true;
}

struct ScalePoint {
  int sf = 0;
  Workload wl;
  CellResult memory;
  CellResult spill;
  double reduction() const {
    return spill.maxrss_kb > 0 ? static_cast<double>(memory.maxrss_kb) /
                                     static_cast<double>(spill.maxrss_kb)
                               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_graph_store.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Scale factor sf multiplies the partition count (8*sf partitions of
  // fixed slice size); the spill budget stays fixed so larger scales spill
  // harder. Smoke shrinks every dimension to keep the ctest in seconds.
  const std::vector<int> scales = smoke ? std::vector<int>{1}
                                        : std::vector<int>{1, 2, 4};
  const std::size_t budget = smoke ? std::size_t{256} * 1024
                                   : std::size_t{24} * 1024 * 1024;

  std::vector<ScalePoint> points;
  bool checksums_match = true;
  bool spill_forced = true;

  bench::print_header(std::string("Graph store backends: peak RSS ") +
                      (smoke ? "(smoke)" : "(scales 1/2/4)"));
  bench::print_row({"sf", "nodes", "backend", "rss_mb", "wall_s", "vtime",
                    "paths", "loads", "evict"},
                   {5, 10, 10, 10, 9, 12, 8, 8, 8});

  for (const int sf : scales) {
    ScalePoint pt;
    pt.sf = sf;
    pt.wl.parts = static_cast<PartId>(8 * sf);
    if (smoke) {
      pt.wl.chain = 600;
      pt.wl.seg = 100;
      pt.wl.len = 600;
      pt.wl.ov = 100;
    }
    if (!run_cell_forked(false, pt.wl, budget, &pt.memory) ||
        !run_cell_forked(true, pt.wl, budget, &pt.spill)) {
      return 2;
    }
    if (pt.memory.checksum != pt.spill.checksum ||
        pt.memory.paths != pt.spill.paths ||
        pt.memory.vtime != pt.spill.vtime) {
      checksums_match = false;
      std::fprintf(stderr,
                   "[graph_store] sf=%d backend divergence: "
                   "crc %08x/%08x paths %zu/%zu vtime %.3f/%.3f\n",
                   sf, pt.memory.checksum, pt.spill.checksum,
                   pt.memory.paths, pt.spill.paths, pt.memory.vtime,
                   pt.spill.vtime);
    }
    if (pt.spill.spill.evictions == 0 || pt.spill.spill.loads == 0) {
      spill_forced = false;
      std::fprintf(stderr,
                   "[graph_store] sf=%d budget never forced a spill\n", sf);
    }
    for (int b = 0; b < 2; ++b) {
      const CellResult& r = b == 0 ? pt.memory : pt.spill;
      bench::print_row(
          {std::to_string(sf), std::to_string(r.nodes),
           b == 0 ? "memory" : "csr-spill",
           bench::fmt(static_cast<double>(r.maxrss_kb) / 1024.0, 1),
           bench::fmt(r.wall, 2), bench::fmt(r.vtime, 1),
           std::to_string(r.paths), std::to_string(r.spill.loads),
           std::to_string(r.spill.evictions)},
          {5, 10, 10, 10, 9, 12, 8, 8, 8});
    }
    std::printf("%-5s rss reduction %.2fx\n", "",
                pt.reduction());
    points.push_back(pt);
  }

  // Full mode gates on the tentpole acceptance: >= 2x peak-RSS reduction at
  // the largest scale. Smoke graphs are metadata-dominated, so the smoke
  // gate checks only equivalence and forced spilling.
  const double last_reduction = points.back().reduction();
  const bool rss_ok = smoke || last_reduction >= 2.0;
  if (!rss_ok) {
    std::fprintf(stderr,
                 "[graph_store] rss reduction %.2fx at sf=%d below 2x gate\n",
                 last_reduction, points.back().sf);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[graph_store] cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"graph_store\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"ranks\": %d,\n", kRanks);
  std::fprintf(f, "  \"budget_bytes\": %zu,\n", budget);
  std::fprintf(f, "  \"identical_output\": %s,\n",
               checksums_match ? "true" : "false");
  std::fprintf(f, "  \"spill_forced\": %s,\n", spill_forced ? "true" : "false");
  std::fprintf(f, "  \"rss_reduction_at_largest_scale\": %.3f,\n",
               last_reduction);
  std::fprintf(f, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& pt = points[i];
    std::fprintf(f, "    {\"scale\": %d, \"nodes\": %zu, \"edges\": %zu,\n",
                 pt.sf, pt.memory.nodes, pt.memory.edges);
    std::fprintf(f,
                 "     \"memory\": {\"maxrss_kb\": %ld, \"wall_s\": %.3f, "
                 "\"vtime\": %.3f, \"paths\": %zu, \"checksum\": %u},\n",
                 pt.memory.maxrss_kb, pt.memory.wall, pt.memory.vtime,
                 pt.memory.paths, pt.memory.checksum);
    std::fprintf(
        f,
        "     \"csr_spill\": {\"maxrss_kb\": %ld, \"wall_s\": %.3f, "
        "\"vtime\": %.3f, \"paths\": %zu, \"checksum\": %u,\n"
        "       \"writes\": %llu, \"loads\": %llu, \"evictions\": %llu, "
        "\"peak_resident_bytes\": %llu},\n",
        pt.spill.maxrss_kb, pt.spill.wall, pt.spill.vtime, pt.spill.paths,
        pt.spill.checksum,
        static_cast<unsigned long long>(pt.spill.spill.writes),
        static_cast<unsigned long long>(pt.spill.spill.loads),
        static_cast<unsigned long long>(pt.spill.spill.evictions),
        static_cast<unsigned long long>(pt.spill.spill.peak_resident_bytes));
    std::fprintf(f, "     \"rss_reduction\": %.3f}%s\n", pt.reduction(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[graph_store] wrote %s\n", out_path.c_str());

  return (checksums_match && spill_forced && rss_ok) ? 0 : 1;
}
