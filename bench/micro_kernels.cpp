// google-benchmark microbenches for the computational kernels: suffix-array
// construction, banded NW, k-mer overlap query, HEM coarsening, greedy graph
// growing, KL refinement, and mpr messaging.
#include <benchmark/benchmark.h>

#include <unordered_set>

#include "align/banded_nw.hpp"
#include "align/overlapper.hpp"
#include "align/suffix_array.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dist/asm_graph.hpp"
#include "dist/simplify.hpp"
#include "graph/coarsen.hpp"
#include "mpr/runtime.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "sim/genome.hpp"

namespace {

using namespace focus;

std::string random_dna(std::uint64_t seed, std::size_t len) {
  Rng rng(seed);
  return sim::random_genome(len, rng);
}

graph::Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
  }
  return b.build();
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  const auto text = random_dna(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    align::SuffixArray sa(text);
    benchmark::DoNotOptimize(sa.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(10000)->Arg(100000)->Arg(400000);

void BM_SuffixArrayQuery(benchmark::State& state) {
  const auto text = random_dna(2, 200000);
  align::SuffixArray sa(text);
  Rng rng(3);
  for (auto _ : state) {
    const auto pos = rng.next_below(text.size() - 16);
    benchmark::DoNotOptimize(
        sa.count(std::string_view(text).substr(pos, 16)));
  }
}
BENCHMARK(BM_SuffixArrayQuery);

void BM_BandedNw(benchmark::State& state) {
  const auto band = static_cast<std::uint32_t>(state.range(0));
  const auto a = random_dna(4, 100);
  auto b = a;
  b[10] = b[10] == 'A' ? 'C' : 'A';
  b[50] = b[50] == 'G' ? 'T' : 'G';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_global_align(a, b, band));
  }
}
BENCHMARK(BM_BandedNw)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OverlapQuery(benchmark::State& state) {
  // Index 500 reads from a genome, query one read against it.
  Rng rng(5);
  const auto genome = random_dna(6, 20000);
  io::ReadSet reads;
  std::vector<ReadId> members;
  for (int i = 0; i < 500; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
    members.push_back(static_cast<ReadId>(i));
  }
  align::OverlapperConfig cfg;
  cfg.k = 14;
  cfg.seed_backend = state.range(0) == 0 ? align::SeedBackend::kKmerHash
                                         : align::SeedBackend::kSuffixArray;
  const align::RefIndex index(reads, members, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::query_overlaps(reads, index, 0, cfg));
  }
}
BENCHMARK(BM_OverlapQuery)->Arg(0)->Arg(1);

void BM_KmerIndexBuild(benchmark::State& state) {
  Rng rng(18);
  const auto genome = random_dna(19, 20000);
  io::ReadSet reads;
  std::vector<ReadId> members;
  for (int i = 0; i < 500; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
    members.push_back(static_cast<ReadId>(i));
  }
  for (auto _ : state) {
    align::KmerIndex index(reads, members, 14);
    benchmark::DoNotOptimize(index.posting_count());
  }
}
BENCHMARK(BM_KmerIndexBuild);

void BM_BandedNwScoreOnly(benchmark::State& state) {
  const auto band = static_cast<std::uint32_t>(state.range(0));
  const auto a = random_dna(4, 100);
  auto b = a;
  b[10] = b[10] == 'A' ? 'C' : 'A';
  b[50] = b[50] == 'G' ? 'T' : 'G';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_score_only(a, b, band));
  }
}
BENCHMARK(BM_BandedNwScoreOnly)->Arg(8)->Arg(16);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Pure pool overhead: scatter + steal + join of trivially small chunks.
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::size_t sink = 0;
    pool.parallel_for(1024, 16, [&](std::size_t b, std::size_t e) {
      benchmark::DoNotOptimize(b + e);
      (void)sink;
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FindOverlapsPool(benchmark::State& state) {
  // The §II-B hot path end to end on the work-stealing pool.
  Rng rng(14);
  const auto genome = random_dna(15, 40000);
  io::ReadSet reads;
  for (int i = 0; i < 800; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
  }
  align::OverlapperConfig cfg;
  cfg.k = 14;
  cfg.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::find_overlaps(reads, cfg).size());
  }
}
BENCHMARK(BM_FindOverlapsPool)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_HeavyEdgeMatchingPool(benchmark::State& state) {
  const auto g = random_graph(16, 20000, 60000);
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::heavy_edge_matching(g, rng, 0, &pool));
  }
}
BENCHMARK(BM_HeavyEdgeMatchingPool)->Arg(1)->Arg(2)->Arg(4);

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const auto g = random_graph(7, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::heavy_edge_matching(g, rng));
  }
}
BENCHMARK(BM_HeavyEdgeMatching)->Arg(1000)->Arg(10000);

void BM_CoarsenFull(benchmark::State& state) {
  const auto g = random_graph(9, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  graph::CoarsenConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_multilevel(g, cfg).depth());
  }
}
BENCHMARK(BM_CoarsenFull)->Arg(1000)->Arg(10000);

void BM_GreedyGraphGrowing(benchmark::State& state) {
  const auto g = random_graph(10, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::greedy_graph_growing(g, rng));
  }
}
BENCHMARK(BM_GreedyGraphGrowing)->Arg(1000)->Arg(10000);

void BM_KlRefine(benchmark::State& state) {
  const auto g = random_graph(12, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(13);
  const auto initial = partition::greedy_graph_growing(g, rng);
  for (auto _ : state) {
    auto part = initial;
    benchmark::DoNotOptimize(partition::kl_bisection_refine(g, part));
  }
}
BENCHMARK(BM_KlRefine)->Arg(200)->Arg(800);

// Branchy assembly graph for the transitive-reduction scan: a backbone chain
// with shortcut edges (the transitive candidates) plus random cross edges so
// most nodes clear the out-degree >= 2 gate.
dist::AsmGraph random_asm_graph(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  dist::AsmGraph g;
  for (std::size_t v = 0; v < n; ++v) {
    g.add_node(random_dna(seed + v, 60), 2);
  }
  for (std::size_t v = 0; v + 1 < n; ++v) {
    g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(v + 1), 30);
  }
  for (std::size_t v = 0; v + 2 < n; v += 2) {
    g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(v + 2), 10);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v && !g.find_edge(u, v).has_value()) g.add_edge(u, v, 5);
  }
  return g;
}

// The pre-epoch kernel: a fresh unordered_set of direct successors per
// scanned node. Kept inline here as the baseline the epoch-stamped scratch
// in find_transitive_edges is measured against.
std::vector<dist::EdgeId> transitive_with_set(const dist::AsmGraph& g,
                                        std::span<const NodeId> scan) {
  std::vector<dist::EdgeId> found;
  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    const auto out = g.live_out(v);
    if (out.size() < 2) continue;
    std::unordered_set<NodeId> direct;
    direct.reserve(out.size());
    for (const dist::EdgeId e : out) direct.insert(g.edge(e).to);
    for (const dist::EdgeId mid : out) {
      const NodeId w = g.edge(mid).to;
      for (const dist::EdgeId far : g.live_out(w)) {
        const NodeId x = g.edge(far).to;
        if (x == v || direct.find(x) == direct.end()) continue;
        const auto vx = g.find_edge(v, x);
        if (vx.has_value()) found.push_back(*vx);
      }
    }
  }
  return found;
}

void BM_TransitiveScanSetBaseline(benchmark::State& state) {
  const auto g =
      random_asm_graph(20, static_cast<std::size_t>(state.range(0)));
  std::vector<NodeId> all(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) all[v] = v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(transitive_with_set(g, all).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransitiveScanSetBaseline)->Arg(1000)->Arg(10000);

void BM_TransitiveScanEpochMarks(benchmark::State& state) {
  const auto g =
      random_asm_graph(20, static_cast<std::size_t>(state.range(0)));
  std::vector<NodeId> all(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) all[v] = v;
  dist::TransitiveScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dist::find_transitive_edges(g, all, scratch, nullptr).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransitiveScanEpochMarks)->Arg(1000)->Arg(10000);

void BM_MprPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto stats = mpr::Runtime::execute(2, [&](mpr::Comm& comm) {
      if (comm.rank() == 0) {
        mpr::Message m;
        m.pack_vector(std::vector<std::uint8_t>(bytes, 1));
        comm.send(1, 0, std::move(m));
        comm.recv(1, 1);
      } else {
        comm.recv(0, 0);
        mpr::Message m;
        m.pack<std::uint8_t>(1);
        comm.send(0, 1, std::move(m));
      }
    });
    benchmark::DoNotOptimize(stats.makespan);
  }
}
BENCHMARK(BM_MprPingPong)->Arg(64)->Arg(65536);

void BM_MprAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = mpr::Runtime::execute(ranks, [](mpr::Comm& comm) {
      benchmark::DoNotOptimize(comm.allreduce_sum(comm.rank()));
    });
    benchmark::DoNotOptimize(stats.makespan);
  }
}
BENCHMARK(BM_MprAllreduce)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
