// google-benchmark microbenches for the computational kernels: suffix-array
// construction, banded NW, k-mer overlap query, HEM coarsening, greedy graph
// growing, KL refinement, and mpr messaging.
#include <benchmark/benchmark.h>

#include "align/banded_nw.hpp"
#include "align/overlapper.hpp"
#include "align/suffix_array.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "graph/coarsen.hpp"
#include "mpr/runtime.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "sim/genome.hpp"

namespace {

using namespace focus;

std::string random_dna(std::uint64_t seed, std::size_t len) {
  Rng rng(seed);
  return sim::random_genome(len, rng);
}

graph::Graph random_graph(std::uint64_t seed, std::size_t n, std::size_t extra) {
  Rng rng(seed);
  graph::GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<NodeId>(rng.next_below(v)),
               1 + static_cast<Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u != v) b.add_edge(u, v, 1 + static_cast<Weight>(rng.next_below(50)));
  }
  return b.build();
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  const auto text = random_dna(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    align::SuffixArray sa(text);
    benchmark::DoNotOptimize(sa.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(10000)->Arg(100000)->Arg(400000);

void BM_SuffixArrayQuery(benchmark::State& state) {
  const auto text = random_dna(2, 200000);
  align::SuffixArray sa(text);
  Rng rng(3);
  for (auto _ : state) {
    const auto pos = rng.next_below(text.size() - 16);
    benchmark::DoNotOptimize(
        sa.count(std::string_view(text).substr(pos, 16)));
  }
}
BENCHMARK(BM_SuffixArrayQuery);

void BM_BandedNw(benchmark::State& state) {
  const auto band = static_cast<std::uint32_t>(state.range(0));
  const auto a = random_dna(4, 100);
  auto b = a;
  b[10] = b[10] == 'A' ? 'C' : 'A';
  b[50] = b[50] == 'G' ? 'T' : 'G';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_global_align(a, b, band));
  }
}
BENCHMARK(BM_BandedNw)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_OverlapQuery(benchmark::State& state) {
  // Index 500 reads from a genome, query one read against it.
  Rng rng(5);
  const auto genome = random_dna(6, 20000);
  io::ReadSet reads;
  std::vector<ReadId> members;
  for (int i = 0; i < 500; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
    members.push_back(static_cast<ReadId>(i));
  }
  align::OverlapperConfig cfg;
  cfg.k = 14;
  cfg.seed_backend = state.range(0) == 0 ? align::SeedBackend::kKmerHash
                                         : align::SeedBackend::kSuffixArray;
  const align::RefIndex index(reads, members, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::query_overlaps(reads, index, 0, cfg));
  }
}
BENCHMARK(BM_OverlapQuery)->Arg(0)->Arg(1);

void BM_KmerIndexBuild(benchmark::State& state) {
  Rng rng(18);
  const auto genome = random_dna(19, 20000);
  io::ReadSet reads;
  std::vector<ReadId> members;
  for (int i = 0; i < 500; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
    members.push_back(static_cast<ReadId>(i));
  }
  for (auto _ : state) {
    align::KmerIndex index(reads, members, 14);
    benchmark::DoNotOptimize(index.posting_count());
  }
}
BENCHMARK(BM_KmerIndexBuild);

void BM_BandedNwScoreOnly(benchmark::State& state) {
  const auto band = static_cast<std::uint32_t>(state.range(0));
  const auto a = random_dna(4, 100);
  auto b = a;
  b[10] = b[10] == 'A' ? 'C' : 'A';
  b[50] = b[50] == 'G' ? 'T' : 'G';
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::banded_score_only(a, b, band));
  }
}
BENCHMARK(BM_BandedNwScoreOnly)->Arg(8)->Arg(16);

void BM_ThreadPoolDispatch(benchmark::State& state) {
  // Pure pool overhead: scatter + steal + join of trivially small chunks.
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::size_t sink = 0;
    pool.parallel_for(1024, 16, [&](std::size_t b, std::size_t e) {
      benchmark::DoNotOptimize(b + e);
      (void)sink;
    });
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_FindOverlapsPool(benchmark::State& state) {
  // The §II-B hot path end to end on the work-stealing pool.
  Rng rng(14);
  const auto genome = random_dna(15, 40000);
  io::ReadSet reads;
  for (int i = 0; i < 800; ++i) {
    const auto pos = rng.next_below(genome.size() - 100);
    reads.add(io::Read{"r" + std::to_string(i), genome.substr(pos, 100), "",
                       kInvalidRead, false});
  }
  align::OverlapperConfig cfg;
  cfg.k = 14;
  cfg.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(align::find_overlaps(reads, cfg).size());
  }
}
BENCHMARK(BM_FindOverlapsPool)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_HeavyEdgeMatchingPool(benchmark::State& state) {
  const auto g = random_graph(16, 20000, 60000);
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::heavy_edge_matching(g, rng, 0, &pool));
  }
}
BENCHMARK(BM_HeavyEdgeMatchingPool)->Arg(1)->Arg(2)->Arg(4);

void BM_HeavyEdgeMatching(benchmark::State& state) {
  const auto g = random_graph(7, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::heavy_edge_matching(g, rng));
  }
}
BENCHMARK(BM_HeavyEdgeMatching)->Arg(1000)->Arg(10000);

void BM_CoarsenFull(benchmark::State& state) {
  const auto g = random_graph(9, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  graph::CoarsenConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::build_multilevel(g, cfg).depth());
  }
}
BENCHMARK(BM_CoarsenFull)->Arg(1000)->Arg(10000);

void BM_GreedyGraphGrowing(benchmark::State& state) {
  const auto g = random_graph(10, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition::greedy_graph_growing(g, rng));
  }
}
BENCHMARK(BM_GreedyGraphGrowing)->Arg(1000)->Arg(10000);

void BM_KlRefine(benchmark::State& state) {
  const auto g = random_graph(12, static_cast<std::size_t>(state.range(0)),
                              3 * static_cast<std::size_t>(state.range(0)));
  Rng rng(13);
  const auto initial = partition::greedy_graph_growing(g, rng);
  for (auto _ : state) {
    auto part = initial;
    benchmark::DoNotOptimize(partition::kl_bisection_refine(g, part));
  }
}
BENCHMARK(BM_KlRefine)->Arg(200)->Arg(800);

void BM_MprPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto stats = mpr::Runtime::execute(2, [&](mpr::Comm& comm) {
      if (comm.rank() == 0) {
        mpr::Message m;
        m.pack_vector(std::vector<std::uint8_t>(bytes, 1));
        comm.send(1, 0, std::move(m));
        comm.recv(1, 1);
      } else {
        comm.recv(0, 0);
        mpr::Message m;
        m.pack<std::uint8_t>(1);
        comm.send(0, 1, std::move(m));
      }
    });
    benchmark::DoNotOptimize(stats.makespan);
  }
}
BENCHMARK(BM_MprPingPong)->Arg(64)->Arg(65536);

void BM_MprAllreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto stats = mpr::Runtime::execute(ranks, [](mpr::Comm& comm) {
      benchmark::DoNotOptimize(comm.allreduce_sum(comm.rank()));
    });
    benchmark::DoNotOptimize(stats.makespan);
  }
}
BENCHMARK(BM_MprAllreduce)->Arg(2)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
