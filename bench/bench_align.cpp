// Alignment-kernel benchmark: hashed k-mer seeding + two-pass banded NW vs
// the suffix-array reference backend, recorded as a BENCH json.
//
//   $ ./bench_align [--smoke] [output.json]
//
// Reports, on the D1 simulated dataset (FOCUS_BENCH_SCALE /
// FOCUS_BENCH_COVERAGE apply in full mode):
//   * allocations per banded_global_align() / banded_score_only() call after
//     warmup, counted by a global operator-new override — must be zero;
//   * single-thread end-to-end overlap detection for both seed backends
//     (reads/s and verified-overlaps/s), with the hash-vs-suffix-array
//     speedup — the suffix-array path is the pre-overhaul kernel;
//   * the hashed backend on the work-stealing pool at 1/2/4/8 threads;
//   * modeled overlap-stage scaling at 1/2/4/8 mpr ranks: virtual-time
//     makespans of the all-pairs pair-striping driver vs the sharded
//     distributed-index protocol (DESIGN.md §6c). Wall clocks on this
//     single-core host are flat across rank counts by construction — the
//     vtime task model is what exposes the scaling, and both drivers'
//     outputs are identity-checked against the reference first.
// Every timed run is checked byte-identical against the suffix-array serial
// reference before its timing is reported. Exit status is nonzero if any
// equivalence or zero-allocation check fails, so the smoke invocation doubles
// as a ctest (label: perf-smoke). Default output: BENCH_align.json.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "align/banded_nw.hpp"
#include "align/overlapper.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "io/preprocess.hpp"
#include "sim/datasets.hpp"
#include "sim/genome.hpp"

// --- Global allocation counter ----------------------------------------------
// Counts every operator-new in the process; the kernel loops below snapshot
// it to prove the two-pass NW performs no heap allocation after warmup.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) &
                                       ~(static_cast<std::size_t>(a) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace focus;

constexpr unsigned kWidths[] = {1, 2, 4, 8};

double best_of(int repeats, const std::function<double()>& run_once) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double t = run_once();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

bool same_overlaps(const std::vector<align::Overlap>& a,
                   const std::vector<align::Overlap>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query || a[i].ref != b[i].ref ||
        a[i].length != b[i].length || a[i].identity != b[i].identity ||
        a[i].kind != b[i].kind) {
      return false;
    }
  }
  return true;
}

// Zero-allocation proof for the two-pass kernel: warm the thread-local
// scratch with the largest geometry used, then count allocations across many
// calls of both passes.
struct AllocProbe {
  std::uint64_t full_pass_allocs = 0;
  std::uint64_t score_pass_allocs = 0;
  std::uint64_t calls = 0;
};

AllocProbe probe_kernel_allocations() {
  Rng rng(20250806);
  const std::string a = sim::random_genome(400, rng);
  std::string b = a;
  for (int i = 0; i < 12; ++i) b[rng.next_below(b.size())] = 'T';
  constexpr std::uint32_t kBand = 16;

  // Warmup: grows the scratch rows/moves to their high-water mark.
  (void)align::banded_global_align(a, b, kBand);
  (void)align::banded_score_only(a, b, kBand);

  AllocProbe probe;
  probe.calls = 2000;
  const auto before_full = g_allocations.load();
  for (std::uint64_t i = 0; i < probe.calls; ++i) {
    const auto r = align::banded_global_align(a, b, kBand);
    if (!r.valid) std::abort();
  }
  probe.full_pass_allocs = g_allocations.load() - before_full;

  const auto before_score = g_allocations.load();
  for (std::uint64_t i = 0; i < probe.calls; ++i) {
    const auto s = align::banded_score_only(a, b, kBand);
    if (!s.valid) std::abort();
  }
  probe.score_pass_allocs = g_allocations.load() - before_score;
  return probe;
}

struct BackendRun {
  double seconds = 0.0;
  double reads_per_s = 0.0;
  double overlaps_per_s = 0.0;
};

// Pre-overhaul wall-clock reference: bench_threads.json records the serial
// alignment seconds measured with the original kernel (suffix-array seeding,
// guarded single-pass NW) on the same dataset, config, and host. Scraped
// when present so the json can report the speedup against the true pre-PR
// kernel, not just against the in-tree suffix-array backend (which shares
// this PR's faster NW).
double pre_pr_serial_seconds(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0.0;
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  const auto overlap = text.find("\"overlap\"");
  if (overlap == std::string::npos) return 0.0;
  const auto key = text.find("\"serial_seconds\":", overlap);
  if (key == std::string::npos) return 0.0;
  return std::atof(text.c_str() + key + std::strlen("\"serial_seconds\":"));
}

BackendRun timed_run(const io::ReadSet& reads, align::OverlapperConfig cfg,
                     int repeats, std::size_t overlap_count) {
  BackendRun out;
  out.seconds = best_of(repeats, [&] {
    Timer t;
    const auto found = align::find_overlaps(reads, cfg);
    if (found.size() != overlap_count) std::abort();
    return t.seconds();
  });
  out.reads_per_s = static_cast<double>(reads.size()) / out.seconds;
  out.overlaps_per_s = static_cast<double>(overlap_count) / out.seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_align.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  // Smoke mode pins a tiny deterministic dataset (finishes in well under two
  // seconds) so the perf-smoke ctest exercises every code path cheaply.
  const double scale = smoke ? 0.15 : bench::bench_scale();
  const double coverage = smoke ? 3.0 : bench::bench_coverage();
  const int repeats = smoke ? 1 : 3;

  std::fprintf(stderr, "[bench_align] dataset D1 scale=%.2f coverage=%.1f\n",
               scale, coverage);
  const sim::Dataset dataset = sim::make_dataset(1, scale, coverage);
  const io::ReadSet reads = io::preprocess(dataset.data.reads, {});

  align::OverlapperConfig cfg = bench::bench_config().overlap;
  cfg.threads = 1;

  // Reference: suffix-array backend, serial — the pre-overhaul kernel.
  cfg.seed_backend = align::SeedBackend::kSuffixArray;
  const auto reference = align::find_overlaps_serial(reads, cfg);
  std::fprintf(stderr, "[bench_align] %zu reads, %zu overlaps\n", reads.size(),
               reference.size());

  bool all_identical = true;

  // 1 — zero-allocation proof.
  const AllocProbe probe = probe_kernel_allocations();

  // 2 — backend comparison at one thread.
  cfg.seed_backend = align::SeedBackend::kSuffixArray;
  {
    const auto check = align::find_overlaps(reads, cfg);
    all_identical &= same_overlaps(check, reference);
  }
  const BackendRun sa_run = timed_run(reads, cfg, repeats, reference.size());
  cfg.seed_backend = align::SeedBackend::kKmerHash;
  {
    const auto check = align::find_overlaps(reads, cfg);
    all_identical &= same_overlaps(check, reference);
  }
  const BackendRun hash_run = timed_run(reads, cfg, repeats, reference.size());
  const double kernel_speedup = sa_run.seconds / hash_run.seconds;

  // 3 — hashed backend across pool widths.
  std::vector<BackendRun> pool_runs;
  for (const unsigned width : kWidths) {
    cfg.threads = width;
    const auto check = align::find_overlaps(reads, cfg);
    all_identical &= same_overlaps(check, reference);
    pool_runs.push_back(timed_run(reads, cfg, repeats, reference.size()));
  }

  // 4 — modeled overlap-stage scaling over mpr ranks. Both strategies'
  // makespans come from the same virtual-time cost model, so the comparison
  // is strategy-vs-strategy, not confounded by host parallelism; speedups
  // are each strategy's own 1-rank makespan over its n-rank makespan.
  struct ModeledRun {
    int ranks = 0;
    double all_pairs_makespan = 0.0;
    double distributed_makespan = 0.0;
  };
  std::vector<ModeledRun> modeled_runs;
  cfg.threads = 1;
  for (const unsigned width : kWidths) {
    ModeledRun m;
    m.ranks = static_cast<int>(width);
    cfg.strategy = align::SeedStrategy::kAllPairs;
    {
      const auto r = align::find_overlaps_parallel(reads, cfg, m.ranks);
      all_identical &= same_overlaps(r.overlaps, reference);
      m.all_pairs_makespan = r.stats.makespan;
    }
    cfg.strategy = align::SeedStrategy::kDistributedIndex;
    {
      const auto r = align::find_overlaps_parallel(reads, cfg, m.ranks);
      all_identical &= same_overlaps(r.overlaps, reference);
      m.distributed_makespan = r.stats.makespan;
    }
    modeled_runs.push_back(m);
  }
  cfg.strategy = align::SeedStrategy::kAllPairs;

  const bool zero_alloc =
      probe.full_pass_allocs == 0 && probe.score_pass_allocs == 0;

  // Only meaningful in full mode: the recorded baseline used the default
  // scale/coverage.
  double pre_pr_seconds = 0.0;
  if (!smoke) {
    // Repo root when run from the source tree, one level up when run from
    // the build tree.
    pre_pr_seconds = pre_pr_serial_seconds("bench_threads.json");
    if (pre_pr_seconds == 0.0) {
      pre_pr_seconds = pre_pr_serial_seconds("../bench_threads.json");
    }
  }

  std::printf("\nalignment kernel (D1, %zu reads, %zu overlaps)\n",
              reads.size(), reference.size());
  std::printf("  allocations per banded_global_align after warmup: %.4f\n",
              static_cast<double>(probe.full_pass_allocs) /
                  static_cast<double>(probe.calls));
  std::printf("  allocations per banded_score_only after warmup:   %.4f\n",
              static_cast<double>(probe.score_pass_allocs) /
                  static_cast<double>(probe.calls));
  std::printf("  %-22s %10s %12s %16s\n", "kernel", "seconds", "reads/s",
              "overlaps/s");
  std::printf("  %-22s %10.3f %12.0f %16.0f\n", "suffix-array (pre-PR)",
              sa_run.seconds, sa_run.reads_per_s, sa_run.overlaps_per_s);
  std::printf("  %-22s %10.3f %12.0f %16.0f\n", "kmer-hash (this PR)",
              hash_run.seconds, hash_run.reads_per_s, hash_run.overlaps_per_s);
  std::printf("  single-thread speedup: %.2fx\n", kernel_speedup);
  if (pre_pr_seconds > 0.0) {
    std::printf(
        "  vs pre-overhaul kernel (bench_threads.json, %.3f s): %.2fx\n",
        pre_pr_seconds, pre_pr_seconds / hash_run.seconds);
  }
  std::printf("  kmer-hash on pool:\n");
  for (std::size_t w = 0; w < pool_runs.size(); ++w) {
    std::printf("    %u threads: %10.3f s %12.0f reads/s\n", kWidths[w],
                pool_runs[w].seconds, pool_runs[w].reads_per_s);
  }
  std::printf("  modeled overlap-stage scaling (vtime makespan):\n");
  std::printf("    %6s %14s %10s %14s %10s\n", "ranks", "all-pairs", "spdup",
              "distributed", "spdup");
  for (const auto& m : modeled_runs) {
    std::printf("    %6d %14.6f %9.2fx %14.6f %9.2fx\n", m.ranks,
                m.all_pairs_makespan,
                modeled_runs[0].all_pairs_makespan / m.all_pairs_makespan,
                m.distributed_makespan,
                modeled_runs[0].distributed_makespan / m.distributed_makespan);
  }
  std::printf("  output identical across backends/widths/strategies: %s\n",
              all_identical ? "yes" : "NO (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench_align] cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"align_kernel\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"dataset\": \"D1\",\n");
  std::fprintf(f, "  \"scale\": %.3f,\n", scale);
  std::fprintf(f, "  \"coverage\": %.3f,\n", coverage);
  std::fprintf(f, "  \"reads\": %zu,\n", reads.size());
  std::fprintf(f, "  \"overlaps\": %zu,\n", reference.size());
  std::fprintf(f, "  \"identical_output\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"allocs_per_full_pass\": %.6f,\n",
               static_cast<double>(probe.full_pass_allocs) /
                   static_cast<double>(probe.calls));
  std::fprintf(f, "  \"allocs_per_score_pass\": %.6f,\n",
               static_cast<double>(probe.score_pass_allocs) /
                   static_cast<double>(probe.calls));
  std::fprintf(f,
               "  \"suffix_array\": {\"seconds\": %.6f, \"reads_per_s\": %.1f,"
               " \"overlaps_per_s\": %.1f},\n",
               sa_run.seconds, sa_run.reads_per_s, sa_run.overlaps_per_s);
  std::fprintf(f,
               "  \"kmer_hash\": {\"seconds\": %.6f, \"reads_per_s\": %.1f,"
               " \"overlaps_per_s\": %.1f},\n",
               hash_run.seconds, hash_run.reads_per_s, hash_run.overlaps_per_s);
  std::fprintf(f, "  \"single_thread_speedup\": %.3f,\n", kernel_speedup);
  if (pre_pr_seconds > 0.0) {
    std::fprintf(f,
                 "  \"pre_pr_kernel\": {\"source\": \"bench_threads.json\", "
                 "\"serial_seconds\": %.6f, \"speedup\": %.3f},\n",
                 pre_pr_seconds, pre_pr_seconds / hash_run.seconds);
  }
  std::fprintf(f, "  \"kmer_hash_pool\": [\n");
  for (std::size_t w = 0; w < pool_runs.size(); ++w) {
    std::fprintf(f,
                 "    {\"threads\": %u, \"seconds\": %.6f, "
                 "\"reads_per_s\": %.1f}%s\n",
                 kWidths[w], pool_runs[w].seconds, pool_runs[w].reads_per_s,
                 w + 1 < pool_runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"modeled_overlap_scaling\": [\n");
  for (std::size_t w = 0; w < modeled_runs.size(); ++w) {
    const auto& m = modeled_runs[w];
    std::fprintf(
        f,
        "    {\"ranks\": %d, \"all_pairs_makespan\": %.9f, "
        "\"all_pairs_speedup\": %.3f, \"distributed_makespan\": %.9f, "
        "\"distributed_speedup\": %.3f}%s\n",
        m.ranks, m.all_pairs_makespan,
        modeled_runs[0].all_pairs_makespan / m.all_pairs_makespan,
        m.distributed_makespan,
        modeled_runs[0].distributed_makespan / m.distributed_makespan,
        w + 1 < modeled_runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench_align] wrote %s\n", out_path.c_str());

  if (!all_identical) return 1;
  if (!zero_alloc) return 1;
  return 0;
}
