// Ablation — the 1.03 balance bound (paper §IV-A, §IV-D).
//
// The paper bounds edge-weight imbalance during greedy graph growing and
// node-weight imbalance during k-way refinement at 3 %. This ablation sweeps
// the bound to show the cut-vs-balance trade-off that motivates it.
#include "bench_common.hpp"

#include "partition/mlpart.hpp"
#include "partition/partition.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("ABLATION — balance bound sweep (GGG edge balance + k-way node balance)");

  auto bundle = prepare_dataset(1);
  const auto& hierarchy = bundle.hybrid.hierarchy;
  constexpr PartId kParts = 16;

  const std::vector<int> widths{10, 16, 16, 16};
  print_row({"Bound", "Cut (G'0)", "Node balance", "vtime (s)"}, widths);

  for (const double bound : {1.001, 1.01, 1.03, 1.10, 1.30, 2.0}) {
    partition::PartitionerConfig cfg;
    cfg.seed = 3;
    cfg.ggg.edge_balance_bound = bound;
    cfg.kway.balance_bound = bound;
    const auto run =
        partition::partition_hierarchy_parallel(hierarchy, kParts, cfg, 8);
    const double balance = partition::node_balance(
        hierarchy.finest(), run.partitioning.finest(), kParts);
    print_row({fmt(bound, 3), std::to_string(run.partitioning.finest_cut),
               fmt(balance, 3), fmt(run.stats.makespan, 5)},
              widths);
  }

  std::printf(
      "\nExpected: very tight bounds (1.001) constrain refinement and can "
      "leave cut\non the table; loose bounds (>1.3) improve cut slightly but "
      "degrade balance,\nwhich would skew per-worker load in the distributed "
      "phases. 1.03 (paper) sits\nnear the knee.\n");
  return 0;
}
