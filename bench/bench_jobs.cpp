// Multi-tenant job-runtime bench (DESIGN.md §10) — throughput, latency and
// artifact-cache effectiveness of the JobScheduler.
//
//   $ ./bench_jobs [--smoke] [output.json]
//
// Three measurements:
//   1. Cache-hit speedup: one cold assembly (every stage runs) vs the warm
//      repeat against the same ArtifactCache (stages 1-3 served from
//      artifacts). The warm result must be byte-identical to the cold one —
//      contigs, paths, partition cut and stats — or the bench fails.
//   2. Scheduler throughput: a stream of jobs from three tenants, round-robin
//      over the datasets, through `max_in_flight` lanes with the shared
//      cache. Reports jobs/sec and the p50/p99 end-to-end latency
//      (admission -> completion) from the per-job JobStats.
//   3. Determinism gate: every scheduler result is checked byte-identical to
//      the serial oracle of its dataset; repeat submissions must report
//      all-stage cache hits.
//
// Exit status is nonzero if any gate fails, so the smoke invocation doubles
// as a ctest (label: perf-smoke). Default output: BENCH_jobs.json.
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>

#include "svc/scheduler.hpp"

namespace {

using namespace focus;

core::FocusConfig jobs_config() {
  core::FocusConfig cfg{EnvSnapshot{}};  // env-independent; snapshot pinned
  cfg.overlap.k = 14;
  cfg.overlap.min_kmer_hits = 3;
  cfg.overlap.min_overlap = 40;
  cfg.overlap.subsets = 2;
  cfg.coarsen.min_nodes = 32;
  cfg.partitions = 4;
  cfg.ranks = 2;
  cfg.min_contig_length = 150;
  return cfg;
}

bool same_assembly(const core::AssemblyResult& a,
                   const core::AssemblyResult& b) {
  return a.contigs == b.contigs && a.paths == b.paths &&
         a.partitioning.finest_cut == b.partitioning.finest_cut &&
         a.stats.n50 == b.stats.n50 &&
         a.stats.total_bases == b.stats.total_bases &&
         a.overlaps.size() == b.overlaps.size();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_jobs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const double scale = bench::bench_scale(smoke ? 0.15 : 0.4);
  const double coverage = bench::bench_coverage(smoke ? 5.0 : 8.0);
  const std::vector<int> dataset_ids =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 2, 3};
  const std::size_t total_jobs = smoke ? 8 : 24;
  const unsigned in_flight = 2;

  std::vector<io::ReadSet> raw_reads;
  std::vector<core::AssemblyResult> oracles;
  for (const int id : dataset_ids) {
    std::fprintf(stderr, "[jobs] preparing D%d (scale=%.2f cov=%.1f)\n", id,
                 scale, coverage);
    raw_reads.push_back(sim::make_dataset(id, scale, coverage).data.reads);
    oracles.push_back(core::assemble_reads(raw_reads.back(), jobs_config()));
  }

  bool ok = true;

  // --- 1. Cold vs warm: artifact-cache speedup. ---------------------------
  svc::ArtifactCache cache(0);
  const core::FocusAssembler assembler(jobs_config());
  Timer timer;
  const core::AssemblyResult cold = assembler.assemble(raw_reads[0], &cache);
  const double cold_wall = timer.seconds();
  timer.restart();
  const core::AssemblyResult warm = assembler.assemble(raw_reads[0], &cache);
  const double warm_wall = timer.seconds();
  const double speedup = warm_wall > 0.0 ? cold_wall / warm_wall : 0.0;
  const bool warm_hit = warm.cache_hits.preprocess &&
                        warm.cache_hits.overlaps && warm.cache_hits.coarsen;
  if (!warm_hit || !same_assembly(cold, warm) ||
      !same_assembly(cold, oracles[0])) {
    std::fprintf(stderr, "[jobs] FAIL: warm repeat not identical or missed\n");
    ok = false;
  }
  std::fprintf(stderr, "[jobs] cold %.3fs -> warm %.3fs (%.2fx)\n", cold_wall,
               warm_wall, speedup);

  // --- 2+3. Scheduler throughput with the determinism gate. ---------------
  svc::SchedulerConfig sc;
  sc.max_in_flight = in_flight;
  svc::JobScheduler sched(sc);
  const char* tenants[] = {"alice", "bob", "carol"};

  // First wave: one job per dataset, completed before the stream starts, so
  // every later job finds warm artifacts (concurrent lanes racing to fill a
  // cold cache would legitimately miss).
  timer.restart();
  std::vector<double> latencies;
  std::size_t repeat_hits = 0, repeats = 0;
  std::vector<std::future<svc::JobResult>> warmup;
  for (std::size_t d = 0; d < raw_reads.size(); ++d) {
    warmup.push_back(
        sched.submit(tenants[d % 3], raw_reads[d], jobs_config()));
  }
  for (std::size_t d = 0; d < warmup.size(); ++d) {
    svc::JobResult r = warmup[d].get();
    latencies.push_back(r.stats.queue_wall + r.stats.exec_wall);
    if (!same_assembly(r.assembly, oracles[d])) {
      std::fprintf(stderr, "[jobs] FAIL: warmup job D%zu diverged\n", d + 1);
      ok = false;
    }
  }

  std::vector<std::future<svc::JobResult>> futures;
  std::vector<std::size_t> job_dataset;
  for (std::size_t j = raw_reads.size(); j < total_jobs; ++j) {
    const std::size_t d = j % raw_reads.size();
    job_dataset.push_back(d);
    futures.push_back(
        sched.submit(tenants[j % 3], raw_reads[d], jobs_config()));
  }
  for (std::size_t j = 0; j < futures.size(); ++j) {
    svc::JobResult r = futures[j].get();
    latencies.push_back(r.stats.queue_wall + r.stats.exec_wall);
    if (!same_assembly(r.assembly, oracles[job_dataset[j]])) {
      std::fprintf(stderr, "[jobs] FAIL: job %zu diverged from its oracle\n",
                   j);
      ok = false;
    }
    ++repeats;
    if (r.stats.cache_hits.preprocess && r.stats.cache_hits.overlaps &&
        r.stats.cache_hits.coarsen) {
      ++repeat_hits;
    }
  }
  const double span = timer.seconds();
  const double jobs_per_sec =
      span > 0.0 ? static_cast<double>(total_jobs) / span : 0.0;
  const svc::CacheStats cs = sched.cache_stats();
  sched.shutdown();

  if (repeat_hits != repeats) {
    std::fprintf(stderr, "[jobs] FAIL: %zu/%zu repeat jobs missed the cache\n",
                 repeats - repeat_hits, repeats);
    ok = false;
  }

  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  std::fprintf(stderr,
               "[jobs] %zu jobs in %.2fs: %.2f jobs/s, p50 %.3fs p99 %.3fs\n",
               total_jobs, span, jobs_per_sec, p50, p99);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"jobs\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"scale\": %.3f,\n  \"coverage\": %.1f,\n", scale,
               coverage);
  std::fprintf(f, "  \"datasets\": %zu,\n  \"jobs\": %zu,\n",
               dataset_ids.size(), total_jobs);
  std::fprintf(f, "  \"max_in_flight\": %u,\n", in_flight);
  std::fprintf(f, "  \"jobs_per_sec\": %.4f,\n", jobs_per_sec);
  std::fprintf(f, "  \"latency_p50_s\": %.6f,\n  \"latency_p99_s\": %.6f,\n",
               p50, p99);
  std::fprintf(f,
               "  \"cache\": {\"cold_wall_s\": %.6f, \"warm_wall_s\": %.6f, "
               "\"speedup\": %.3f, \"hits\": %llu, \"misses\": %llu, "
               "\"evictions\": %llu, \"resident_bytes\": %zu},\n",
               cold_wall, warm_wall, speedup,
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions),
               cs.resident_bytes);
  std::fprintf(f, "  \"determinism_ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::fprintf(stderr, "[jobs] wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
