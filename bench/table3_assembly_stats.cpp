// Table III — Assembly statistics across partitionings.
//
// Paper: N50, maximum contig length, and contig count for assemblies run on
// 4/16/32/64-way partitionings of the hybrid graph; the statistics are
// nearly constant across partition counts, demonstrating that partitioning
// does not degrade assembly quality.
#include "bench_common.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("TABLE III — Assembly statistics across hybrid-graph partitionings");

  const std::vector<int> widths{10, 8, 12, 18, 16};
  print_row({"Dataset", "k", "N50 (bp)", "Max contig (bp)", "Num contigs"},
            widths);

  for (int d = 1; d <= sim::dataset_count(); ++d) {
    const auto ds = sim::make_dataset(d, bench_scale(), bench_coverage());
    for (const PartId k : {4, 16, 32, 64}) {
      core::FocusConfig cfg = bench_config();
      cfg.partitions = k;
      cfg.ranks = std::min<int>(k, 8);
      const auto result = core::assemble_reads(ds.data.reads, cfg);
      print_row({ds.name, std::to_string(k),
                 std::to_string(result.stats.n50),
                 std::to_string(result.stats.max_contig),
                 std::to_string(result.stats.contig_count)},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): N50, max contig, and contig count vary only\n"
      "marginally across k — assembly quality is insensitive to how the\n"
      "hybrid graph is partitioned.\n");
  return 0;
}
