// Ablation — Kernighan–Lin pair-search strategies (paper §IV-B).
//
// The paper motivates the sorted-array + diagonal-scanning pair search
// (O(n² log n)) over the naive all-pairs search (O(n³)), plus the
// 50-idle-swap early stop. This ablation measures both strategies and the
// effect of the idle cutoff on work and cut quality.
#include "bench_common.hpp"

#include "common/rng.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "partition/partition.hpp"

namespace {

focus::graph::Graph random_graph(std::uint64_t seed, std::size_t n,
                                 std::size_t extra) {
  focus::Rng rng(seed);
  focus::graph::GraphBuilder b(n);
  for (focus::NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<focus::NodeId>(rng.next_below(v)),
               1 + static_cast<focus::Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<focus::NodeId>(rng.next_below(n));
    const auto v = static_cast<focus::NodeId>(rng.next_below(n));
    if (u != v) {
      b.add_edge(u, v, 1 + static_cast<focus::Weight>(rng.next_below(50)));
    }
  }
  return b.build();
}

}  // namespace

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("ABLATION — KL pair-search strategy and idle-swap cutoff");

  const std::vector<int> widths{8, 26, 14, 16, 12};
  print_row({"n", "Strategy", "Cut", "Work units", "Wall (ms)"}, widths);

  for (const std::size_t n : {64, 128, 256, 512}) {
    const auto g = random_graph(0xab1 + n, n, 3 * n);

    struct Variant {
      const char* name;
      partition::KlConfig cfg;
    };
    partition::KlConfig diagonal;
    partition::KlConfig naive;
    naive.diagonal_scanning = false;
    partition::KlConfig no_idle_stop;
    no_idle_stop.idle_swap_limit = 100000;  // effectively disabled

    const Variant variants[] = {
        {"diagonal-scan (paper)", diagonal},
        {"naive all-pairs", naive},
        {"diagonal, no idle stop", no_idle_stop},
    };

    for (const auto& variant : variants) {
      Rng rng(9);
      auto part = partition::greedy_graph_growing(g, rng);
      double work = 0.0;
      Timer timer;
      const Weight cut =
          partition::kl_bisection_refine(g, part, variant.cfg, &work);
      print_row({std::to_string(n), variant.name, std::to_string(cut),
                 fmt(work, 0), fmt(timer.seconds() * 1e3, 1)},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: diagonal scanning reaches the same cut as the naive search "
      "with\nfar less work (the gap grows with n, reflecting O(n^2 log n) vs "
      "O(n^3));\ndisabling the idle cutoff adds work without improving the "
      "cut.\n");
  return 0;
}
