// Ablation — Kernighan–Lin pair-search strategies (paper §IV-B).
//
// The paper motivates the sorted-array + diagonal-scanning pair search
// (O(n² log n)) over the naive all-pairs search (O(n³)), plus the
// 50-idle-swap early stop. This ablation measures the heap diagonal scan,
// the chunked bounded scan (the pool-parallel strategy, forced serial and
// pooled via KlConfig::pair_chunk_min_nodes = 0), and the naive all-pairs
// search, plus the effect of the idle cutoff on work and cut quality. All
// strategies select the same total-order argmax pair every swap, so cuts
// must agree exactly; only work and wall time differ.
#include "bench_common.hpp"

#include <cstdint>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "partition/partition.hpp"

namespace {

focus::graph::Graph random_graph(std::uint64_t seed, std::size_t n,
                                 std::size_t extra) {
  focus::Rng rng(seed);
  focus::graph::GraphBuilder b(n);
  for (focus::NodeId v = 1; v < n; ++v) {
    b.add_edge(v, static_cast<focus::NodeId>(rng.next_below(v)),
               1 + static_cast<focus::Weight>(rng.next_below(50)));
  }
  for (std::size_t i = 0; i < extra; ++i) {
    const auto u = static_cast<focus::NodeId>(rng.next_below(n));
    const auto v = static_cast<focus::NodeId>(rng.next_below(n));
    if (u != v) {
      b.add_edge(u, v, 1 + static_cast<focus::Weight>(rng.next_below(50)));
    }
  }
  return b.build();
}

}  // namespace

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("ABLATION — KL pair-search strategy and idle-swap cutoff");

  const std::vector<int> widths{8, 26, 14, 16, 12};
  print_row({"n", "Strategy", "Cut", "Work units", "Wall (ms)"}, widths);

  ThreadPool pool(4);

  for (const std::size_t n : {64, 128, 256, 512, 2048}) {
    const auto g = random_graph(0xab1 + n, n, 3 * n);

    struct Variant {
      const char* name;
      partition::KlConfig cfg;
      bool pooled;
    };
    partition::KlConfig heap;
    heap.pair_chunk_min_nodes = SIZE_MAX;  // never switch to chunks
    partition::KlConfig chunked;
    chunked.pair_chunk_min_nodes = 0;  // always chunk
    partition::KlConfig naive;
    naive.diagonal_scanning = false;
    partition::KlConfig no_idle_stop;
    no_idle_stop.pair_chunk_min_nodes = SIZE_MAX;
    no_idle_stop.idle_swap_limit = 100000;  // effectively disabled

    const Variant variants[] = {
        {"heap diagonal-scan (paper)", heap, false},
        {"chunked bounded scan", chunked, false},
        {"chunked, pool width 4", chunked, true},
        {"naive all-pairs", naive, false},
        {"heap, no idle stop", no_idle_stop, false},
    };

    for (const auto& variant : variants) {
      Rng rng(9);
      auto part = partition::greedy_graph_growing(g, rng);
      double work = 0.0;
      Timer timer;
      const Weight cut = partition::kl_bisection_refine(
          g, part, variant.cfg, &work, variant.pooled ? &pool : nullptr);
      print_row({std::to_string(n), variant.name, std::to_string(cut),
                 fmt(work, 0), fmt(timer.seconds() * 1e3, 1)},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected: every strategy lands on the same cut (same argmax pair "
      "every\nswap). The diagonal/chunked scans need far less work than the "
      "naive search\n(the gap grows with n, reflecting O(n^2 log n) vs "
      "O(n^3)); the chunked scan\ncharges work comparable to the heap scan "
      "(both prune via the sorted-D bound,\nwith different charging: per "
      "evaluated pair vs per heap operation) and is\nthe one the pool can "
      "split across workers; disabling the idle cutoff adds\nwork without "
      "improving the cut.\n");
  return 0;
}
