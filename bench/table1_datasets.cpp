// Table I — Data set characteristics.
//
// Paper: three Illumina gut-microbiome SRA runs (~5 Gbases, 100 bp reads).
// Here: the three synthetic metagenome stand-ins, reported with the same
// columns plus the simulation ground truth the SRA data lacks.
#include "bench_common.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header(
      "TABLE I — Dataset characteristics (synthetic stand-ins for the "
      "paper's SRA runs)");
  const std::vector<int> widths{10, 14, 16, 14, 14, 12, 10};
  print_row({"Dataset", "SRA analog", "Size (Mbases)", "Read len (bp)",
             "Reads", "Genera", "Phyla"},
            widths);

  for (int i = 1; i <= sim::dataset_count(); ++i) {
    const auto ds = sim::make_dataset(i, bench_scale(), bench_coverage());
    print_row({ds.name, ds.sra_analog,
               fmt(static_cast<double>(ds.total_read_bases()) / 1e6, 2),
               std::to_string(ds.read_length()),
               std::to_string(ds.data.reads.size()),
               std::to_string(ds.community.size()),
               std::to_string(ds.community.phyla().size())},
              widths);
  }

  std::printf(
      "\nPaper's Table I (for reference): SRR513170 5.02 Gb, SRR513441 "
      "4.93 Gb,\nSRR061581 4.97 Gb; all 100 bp reads. The stand-ins keep the "
      "100 bp read\nlength and relative composition differences, scaled to "
      "one machine.\n");
  return 0;
}
