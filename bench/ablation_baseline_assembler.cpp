// Ablation — Focus hybrid-graph assembly vs a serial string-graph baseline.
//
// Both consume identical preprocessed reads and verified overlaps, so the
// comparison isolates the graph strategy: the baseline runs Myers-style
// transitive reduction and path compaction over the full read-level graph;
// Focus coarsens, selects contiguous representatives, partitions the hybrid
// graph, and runs the same algorithms distributed over its clusters.
#include "bench_common.hpp"

#include "baseline/string_graph_assembler.hpp"
#include "dist/parallel.hpp"
#include "partition/mlpart.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("ABLATION — hybrid-graph assembly vs string-graph baseline");

  const std::vector<int> widths{10, 26, 12, 16, 16, 14};
  print_row({"Dataset", "Assembler", "Contigs", "N50 (bp)", "Max (bp)",
             "Work units"},
            widths);

  for (int d = 1; d <= sim::dataset_count(); ++d) {
    auto b = prepare_dataset(d);

    // Baseline: read-level string graph, serial.
    const auto base = baseline::assemble_string_graph(b.reads, b.overlaps);
    const auto base_stats = core::assembly_stats(base.contigs);
    print_row({b.dataset.name, "string-graph (baseline)",
               std::to_string(base_stats.contig_count),
               std::to_string(base_stats.n50),
               std::to_string(base_stats.max_contig), fmt(base.work, 0)},
              widths);

    // Focus route: the already-built hybrid graph + distributed passes.
    double work = 0.0;
    auto built = build_asm(b);
    work += b.hybrid.selection_work;
    dist::SimplifyConfig scfg;
    dist::simplify_serial(built.graph, scfg, &work);
    const auto paths = dist::traverse_serial(built.graph, &work);
    std::vector<std::string> contigs;
    for (const auto& path : paths) {
      contigs.push_back(built.graph.merge_path_contigs(path));
    }
    contigs = core::dedupe_contigs(std::move(contigs), 100);
    const auto focus_stats = core::assembly_stats(contigs);
    print_row({b.dataset.name, "focus hybrid graph",
               std::to_string(focus_stats.contig_count),
               std::to_string(focus_stats.n50),
               std::to_string(focus_stats.max_contig), fmt(work, 0)},
              widths);
    std::printf("\n");
  }

  std::printf(
      "Reading the table: the Focus route invests extra one-time work "
      "(contiguity\ntesting during hybrid-set construction, contig-level "
      "alignment during\nverification) and gets back fewer, longer contigs "
      "(higher N50) than the\nread-level baseline — and unlike the baseline, "
      "its cleaning and traversal\npasses distribute across partitions "
      "(Fig. 6) and its partitioning works on\na graph orders of magnitude "
      "smaller (Fig. 5).\n");
  return 0;
}
