// Fig. 4 — Graph partitioning speedup.
//
// Paper: speedup curve for partitioning the hybrid graph sets of the three
// read datasets into 16 partitions with 1..12 processors, three runs per
// point (random GGG seeds), mean ± sd; gains level off around 8–10
// processors because 2^(log2 16 − 1) = 8 bisection tasks and ~10 graph
// levels bound the available parallelism.
//
// Here: identical experiment in virtual time (makespan of the mpr runtime).
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "partition/mlpart.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  constexpr PartId kParts = 16;
  constexpr int kMaxRanks = 12;
  constexpr int kRuns = 3;

  print_header(
      "FIG. 4 — Partitioning speedup on the hybrid graph sets "
      "(k = 16, 3 runs averaged)");

  std::vector<DatasetBundle> bundles;
  for (int d = 1; d <= sim::dataset_count(); ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  const std::vector<int> widths{8, 10, 16, 16, 12, 12};
  print_row({"Ranks", "Dataset", "vtime mean (s)", "vtime sd", "Speedup",
             "Wall (s)"},
            widths);

  for (std::size_t d = 0; d < bundles.size(); ++d) {
    std::vector<double> base_runs;
    for (int p = 1; p <= kMaxRanks; ++p) {
      std::vector<double> vtimes;
      double wall = 0.0;
      for (int run = 0; run < kRuns; ++run) {
        partition::PartitionerConfig cfg;
        cfg.seed = 1000ull + static_cast<std::uint64_t>(run);
        const auto result = partition::partition_hierarchy_parallel(
            bundles[d].hybrid.hierarchy, kParts, cfg, p);
        vtimes.push_back(result.stats.makespan);
        wall += result.stats.wall_seconds;
      }
      if (p == 1) base_runs = vtimes;
      const double speedup = mean(base_runs) / mean(vtimes);
      print_row({std::to_string(p), bundles[d].dataset.name,
                 fmt(mean(vtimes), 4), fmt(stddev(vtimes), 4),
                 fmt(speedup, 2), fmt(wall, 2)},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): speedup rises with ranks and levels off at "
      "~8-10\nbecause bisection offers 2^(log2 k - 1) = 8 concurrent tasks "
      "and k-way\nrefinement one task per graph level (~10 levels).\n");
  return 0;
}
