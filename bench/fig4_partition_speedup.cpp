// Fig. 4 — Graph partitioning speedup.
//
//   $ ./fig4_partition_speedup [--smoke] [output.json]
//
// Paper: speedup curve for partitioning the hybrid graph sets of the three
// read datasets into 16 partitions with 1..12 processors, three runs per
// point (random GGG seeds), mean ± sd; gains level off around 8–10
// processors because 2^(log2 16 − 1) = 8 bisection tasks and ~10 graph
// levels bound the available parallelism.
//
// Three measurements per dataset, all recorded in the BENCH json:
//  A. the paper's experiment in deterministic virtual time (mpr makespan,
//     ranks 1..12) — answers the cluster-scaling question;
//  B. wall-clock of the pooled host driver (PartitionerConfig::threads in
//     {1,2,4,8}); every pooled run is checked byte-identical — part vectors
//     at every level, cut, and work accounting — against the width-1
//     reference, and the bench exits nonzero on a mismatch;
//  C. a modeled pool speedup: greedy list-scheduling of the measured
//     per-region work grid (HierarchyPartitioning::step_work/kway_work) over
//     w workers, respecting the recursion-tree dependencies. This isolates
//     the algorithmic parallelism from the host's core count, so the curve
//     is meaningful even on a single-core machine (where B cannot win).
//     Two task models are reported: the monolithic one (each region task is
//     an indivisible block of step_work[s][r] units — the historical curve,
//     which plateaus near 1.5x because the root bisection is one serial
//     task) and a split one that uses the intra-bisection accounting
//     (step_trial_work/step_pooled_work): a region task at width w takes
//     serial_rest + max(sum(trials)/w, max(trial)) + pooled/w units, since
//     the initial-bisection trials and the KL scoring/pair-search loops run
//     on the pool.
//  D. the same wall-clock + modeled sweep with trials = 8 multi-trial
//     initial bisections, the configuration that actually feeds the pool
//     inside the root bisection and lifts the plateau.
//
// --smoke shrinks the workload (dataset 1 only, scale 0.15, coverage 3) so
// the run doubles as the perf-smoke ctest.
#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "partition/mlpart.hpp"

namespace {

using namespace focus;

// Greedy list scheduling of the measured work grid on `workers` identical
// workers. Bisection tasks obey the recursion-tree precedence (region (s,r)
// unlocks (s+1,r) and (s+1,r+2^s)); the k-way level refinements all start
// after the tree completes (the driver's phase barrier). Returns the modeled
// makespan in work units.
double modeled_makespan(const partition::HierarchyPartitioning& p,
                        unsigned workers, bool split_tasks) {
  // Worker free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (unsigned w = 0; w < workers; ++w) free_at.push(0.0);

  const auto run_task = [&](double ready, double work) {
    double start = free_at.top();
    free_at.pop();
    start = std::max(start, ready);
    const double finish = start + work;
    free_at.push(finish);
    return finish;
  };

  // Effective duration of the region task (s, r). The monolithic model
  // charges the whole block; the split model lets the pool absorb the
  // intra-bisection parallel parts — the initial-bisection trials (bounded
  // below by the longest single trial, a chain) and the pooled KL scoring /
  // pair-search loops (embarrassingly parallel) — while the rest of the
  // task stays a serial chain.
  const auto task_duration = [&](std::size_t s, std::size_t r) {
    const double total = p.step_work[s][r];
    if (!split_tasks || workers <= 1) return total;
    double trial_sum = 0.0;
    double trial_max = 0.0;
    if (s < p.step_trial_work.size() && r < p.step_trial_work[s].size()) {
      for (const double t : p.step_trial_work[s][r]) {
        trial_sum += t;
        trial_max = std::max(trial_max, t);
      }
    }
    double pooled = 0.0;
    if (s < p.step_pooled_work.size() && r < p.step_pooled_work[s].size()) {
      pooled = p.step_pooled_work[s][r];
    }
    const double serial_rest = total - trial_sum - pooled;
    const double w = static_cast<double>(workers);
    return serial_rest + std::max(trial_sum / w, trial_max) + pooled / w;
  };

  // Walk the tree step by step; finish[r] is the finish time of region r's
  // bisection in the current step (== ready time of its two children).
  std::vector<double> finish{0.0};
  double tree_done = 0.0;
  for (std::size_t s = 0; s < p.step_work.size(); ++s) {
    const auto& step = p.step_work[s];
    std::vector<double> next(step.size() * 2, 0.0);
    for (std::size_t r = 0; r < step.size(); ++r) {
      const double f = run_task(finish[r], task_duration(s, r));
      next[r] = f;
      next[r + step.size()] = f;
      tree_done = std::max(tree_done, f);
    }
    finish = std::move(next);
  }

  // Phase barrier, then the per-level k-way refinements in level order.
  while (!free_at.empty()) free_at.pop();
  for (unsigned w = 0; w < workers; ++w) free_at.push(tree_done);
  double done = tree_done;
  for (const double work : p.kway_work) {
    done = std::max(done, run_task(tree_done, work));
  }
  return done;
}

bool same_partitioning(const partition::HierarchyPartitioning& a,
                       const partition::HierarchyPartitioning& b) {
  return a.levels == b.levels && a.finest_cut == b.finest_cut &&
         std::memcmp(&a.work, &b.work, sizeof(double)) == 0 &&
         a.step_work == b.step_work && a.kway_work == b.kway_work &&
         a.step_trial_work == b.step_trial_work &&
         a.step_pooled_work == b.step_pooled_work;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focus::bench;

  bool smoke = false;
  std::string out_path = "BENCH_partition.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  if (smoke) {
    // prepare_dataset reads these; the smoke workload must stay ctest-sized.
    setenv("FOCUS_BENCH_SCALE", "0.15", 1);
    setenv("FOCUS_BENCH_COVERAGE", "3.0", 1);
  }

  constexpr PartId kParts = 16;
  const int max_ranks = smoke ? 4 : 12;
  const int runs = smoke ? 1 : 3;
  const int datasets = smoke ? 1 : sim::dataset_count();
  const std::vector<unsigned> pool_widths{1, 2, 4, 8};

  print_header(
      "FIG. 4 — Partitioning speedup on the hybrid graph sets "
      "(k = 16, 3 runs averaged)");

  std::vector<DatasetBundle> bundles;
  for (int d = 1; d <= datasets; ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"partition\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"k\": %d,\n", static_cast<int>(kParts));
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"datasets\": [\n");

  bool all_identical = true;

  for (std::size_t d = 0; d < bundles.size(); ++d) {
    const graph::GraphHierarchy& h = bundles[d].hybrid.hierarchy;
    std::fprintf(f, "    {\n      \"name\": \"%s\",\n",
                 bundles[d].dataset.name.c_str());

    // --- A: virtual-time rank sweep (the paper's Fig. 4). -----------------
    const std::vector<int> widths{8, 10, 16, 16, 12, 12};
    print_row({"Ranks", "Dataset", "vtime mean (s)", "vtime sd", "Speedup",
               "Wall (s)"},
              widths);
    std::fprintf(f, "      \"fig4_vtime\": [\n");
    std::vector<double> base_runs;
    for (int p = 1; p <= max_ranks; ++p) {
      std::vector<double> vtimes;
      double wall = 0.0;
      for (int run = 0; run < runs; ++run) {
        partition::PartitionerConfig cfg;
        cfg.seed = 1000ull + static_cast<std::uint64_t>(run);
        const auto result =
            partition::partition_hierarchy_parallel(h, kParts, cfg, p);
        vtimes.push_back(result.stats.makespan);
        wall += result.stats.wall_seconds;
      }
      if (p == 1) base_runs = vtimes;
      const double speedup = mean(base_runs) / mean(vtimes);
      print_row({std::to_string(p), bundles[d].dataset.name,
                 fmt(mean(vtimes), 4), fmt(stddev(vtimes), 4),
                 fmt(speedup, 2), fmt(wall, 2)},
                widths);
      std::fprintf(f,
                   "        {\"ranks\": %d, \"vtime_mean\": %.6f, "
                   "\"vtime_sd\": %.6f, \"speedup\": %.3f}%s\n",
                   p, mean(vtimes), stddev(vtimes), speedup,
                   p < max_ranks ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    std::printf("\n");

    // --- B: wall-clock pooled host driver, identity-checked. --------------
    partition::PartitionerConfig cfg;
    cfg.seed = 1000;
    cfg.threads = 1;
    Timer t;
    const auto reference = partition::partition_hierarchy(h, kParts, cfg);
    const double serial_seconds = t.seconds();
    std::printf("pooled host driver (threads sweep, wall-clock)\n");
    std::printf("  %-10s %12s %10s %10s\n", "threads", "seconds", "speedup",
                "identical");
    std::printf("  %-10u %12.3f %10s %10s\n", 1u, serial_seconds, "1.00x",
                "ref");
    std::fprintf(f, "      \"pool_wall\": {\n");
    std::fprintf(f, "        \"serial_seconds\": %.6f,\n", serial_seconds);
    std::fprintf(f, "        \"pool\": [\n");
    bool identical = true;
    for (std::size_t w = 1; w < pool_widths.size(); ++w) {
      cfg.threads = pool_widths[w];
      Timer tw;
      const auto pooled = partition::partition_hierarchy(h, kParts, cfg);
      const double seconds = tw.seconds();
      const bool same = same_partitioning(reference, pooled);
      identical = identical && same;
      std::printf("  %-10u %12.3f %9.2fx %10s\n", pool_widths[w], seconds,
                  serial_seconds / seconds, same ? "yes" : "NO (BUG)");
      std::fprintf(f,
                   "          {\"threads\": %u, \"seconds\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   pool_widths[w], seconds, serial_seconds / seconds,
                   w + 1 < pool_widths.size() ? "," : "");
    }
    all_identical = all_identical && identical;
    std::fprintf(f, "        ],\n");
    std::fprintf(f, "        \"identical_output\": %s\n      },\n",
                 identical ? "true" : "false");

    // --- C: modeled pool speedup from the measured work grid. -------------
    const double total_work = modeled_makespan(reference, 1, false);
    std::printf("\nmodeled pool speedup (list-scheduled work grid, "
                "total %.0f units)\n", total_work);
    std::printf("  %-10s %12s %10s\n", "threads", "monolithic", "split");
    std::fprintf(f, "      \"modeled_pool\": [\n");
    for (std::size_t w = 0; w < pool_widths.size(); ++w) {
      const double mono =
          total_work / modeled_makespan(reference, pool_widths[w], false);
      const double split =
          total_work / modeled_makespan(reference, pool_widths[w], true);
      std::printf("  %-10u %11.2fx %9.2fx\n", pool_widths[w], mono, split);
      std::fprintf(f,
                   "        {\"threads\": %u, \"speedup\": %.3f, "
                   "\"speedup_split\": %.3f}%s\n",
                   pool_widths[w], mono, split,
                   w + 1 < pool_widths.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");

    // --- D: multi-trial initial bisection (trials = 8), identity-checked. --
    partition::PartitionerConfig tcfg;
    tcfg.seed = 1000;
    tcfg.trials = 8;
    tcfg.threads = 1;
    Timer tt;
    const auto trials_ref = partition::partition_hierarchy(h, kParts, tcfg);
    const double trials_serial = tt.seconds();
    std::printf("\nmulti-trial root bisection (trials = %u)\n", tcfg.trials);
    std::printf("  %-10s %12s %10s %10s\n", "threads", "seconds", "speedup",
                "identical");
    std::printf("  %-10u %12.3f %10s %10s\n", 1u, trials_serial, "1.00x",
                "ref");
    std::fprintf(f, "      \"trials_pool\": {\n");
    std::fprintf(f, "        \"trials\": %u,\n", tcfg.trials);
    std::fprintf(f, "        \"finest_cut\": %lld,\n",
                 static_cast<long long>(trials_ref.finest_cut));
    std::fprintf(f, "        \"finest_cut_single_trial\": %lld,\n",
                 static_cast<long long>(reference.finest_cut));
    std::fprintf(f, "        \"serial_seconds\": %.6f,\n", trials_serial);
    std::fprintf(f, "        \"pool\": [\n");
    bool trials_identical = true;
    for (std::size_t w = 1; w < pool_widths.size(); ++w) {
      tcfg.threads = pool_widths[w];
      Timer tw;
      const auto pooled = partition::partition_hierarchy(h, kParts, tcfg);
      const double seconds = tw.seconds();
      const bool same = same_partitioning(trials_ref, pooled);
      trials_identical = trials_identical && same;
      std::printf("  %-10u %12.3f %9.2fx %10s\n", pool_widths[w], seconds,
                  trials_serial / seconds, same ? "yes" : "NO (BUG)");
      std::fprintf(f,
                   "          {\"threads\": %u, \"seconds\": %.6f, "
                   "\"speedup\": %.3f}%s\n",
                   pool_widths[w], seconds, trials_serial / seconds,
                   w + 1 < pool_widths.size() ? "," : "");
    }
    all_identical = all_identical && trials_identical;
    std::fprintf(f, "        ],\n");
    std::fprintf(f, "        \"identical_output\": %s,\n",
                 trials_identical ? "true" : "false");
    const double trials_total = modeled_makespan(trials_ref, 1, false);
    std::printf("  modeled (split model, total %.0f units)\n", trials_total);
    std::printf("  %-10s %10s\n", "threads", "speedup");
    std::fprintf(f, "        \"modeled\": [\n");
    for (std::size_t w = 0; w < pool_widths.size(); ++w) {
      const double speedup =
          trials_total / modeled_makespan(trials_ref, pool_widths[w], true);
      std::printf("  %-10u %9.2fx\n", pool_widths[w], speedup);
      std::fprintf(f, "          {\"threads\": %u, \"speedup\": %.3f}%s\n",
                   pool_widths[w], speedup,
                   w + 1 < pool_widths.size() ? "," : "");
    }
    std::fprintf(f, "        ]\n      }\n    }%s\n",
                 d + 1 < bundles.size() ? "," : "");
    std::printf("\n");
  }

  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::printf(
      "Expected shape (paper): speedup rises with ranks and levels off at "
      "~8-10\nbecause bisection offers 2^(log2 k - 1) = 8 concurrent tasks "
      "and k-way\nrefinement one task per graph level (~10 levels). The "
      "pool curves plateau\nnear 1.5x under the monolithic task model (the "
      "root bisection is one serial\ntask); the split model with trials = 8 "
      "feeds the pool inside the root\nbisection and lifts the plateau.\n");
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: pooled partitioning diverged from the serial "
                 "reference\n");
    return 1;
  }
  return 0;
}
