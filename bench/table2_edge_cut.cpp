// Table II — Edge cut for the overlap and hybrid graphs.
//
// Paper: for k in {8, 16, 32, 64} and each dataset, the edge cut of the
// hybrid-graph partitioning vs the overlap-graph (multilevel) partitioning;
// the hybrid cut wins in most (not all) cases, and no cut exceeds 0.43 % of
// the total overlap-graph edge weight.
//
// The hybrid partition's cut is evaluated on G0 by projecting it to reads
// (each read inherits its representative's part), making the two columns
// directly comparable, exactly like the paper's table.
#include "bench_common.hpp"

#include "partition/mlpart.hpp"
#include "partition/partition.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header("TABLE II — Edge cut: hybrid vs overlap (multilevel) partitioning");

  std::vector<DatasetBundle> bundles;
  for (int d = 1; d <= sim::dataset_count(); ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  const std::vector<int> widths{8, 10, 16, 16, 10, 14};
  print_row({"k", "Dataset", "Cut (hybrid)", "Cut (overlap)", "Winner",
             "% of total"},
            widths);

  int hybrid_wins = 0, total_cases = 0;
  for (const PartId k : {8, 16, 32, 64}) {
    for (auto& b : bundles) {
      partition::PartitionerConfig cfg;
      cfg.seed = 11;
      // Hybrid route: partition G'0 hierarchy, project to reads, evaluate
      // the cut on G0.
      const auto hybrid_run =
          partition::partition_hierarchy(b.hybrid.hierarchy, k, cfg);
      const auto read_parts = b.hybrid.project_to_reads(
          hybrid_run.finest(), b.reads.size());
      const Weight hybrid_cut =
          partition::edge_cut(b.overlap_graph, read_parts);
      // Naive route: partition the multilevel hierarchy (finest = G0).
      const auto multi_run = partition::partition_hierarchy(b.multilevel, k, cfg);
      const Weight overlap_cut = multi_run.finest_cut;

      ++total_cases;
      if (hybrid_cut <= overlap_cut) ++hybrid_wins;
      const double pct =
          100.0 * static_cast<double>(std::max(hybrid_cut, overlap_cut)) /
          static_cast<double>(b.overlap_graph.total_edge_weight());
      print_row({std::to_string(k), b.dataset.name, std::to_string(hybrid_cut),
                 std::to_string(overlap_cut),
                 hybrid_cut <= overlap_cut ? "hybrid" : "overlap",
                 fmt(pct, 3) + "%"},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Hybrid wins %d / %d cases. Expected shape (paper): hybrid wins the\n"
      "majority (10 of 12 there), and every cut stays a small fraction of "
      "the\ntotal edge weight (<= 0.43%% there).\n",
      hybrid_wins, total_cases);
  return 0;
}
