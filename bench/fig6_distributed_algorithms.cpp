// Fig. 6 — Distributed graph algorithms runtime.
//
//   $ ./fig6_distributed_algorithms [--smoke] [output.json]
//
// Paper: the distributed trimming pipeline (transitive reduction, dead-end
// trimming, bubble popping, containment removal) and the distributed graph
// traversal applied to the hybrid graphs of the three datasets under
// 8/16/32/64-way partitionings (one worker per partition). Trimming runtime
// falls steeply with more partitions; traversal is fast and roughly flat.
//
// Beyond the paper's table, the driver records a modeled_dist_scaling
// section: virtual-time makespans of the legacy master/worker protocol vs
// the symmetric owner-computes protocol (DESIGN.md §7b) at 1/2/4/8/16 mpr
// ranks over a fixed 32-way partitioning. Wall clocks on this single-core
// host are flat across rank counts by construction — the vtime task model is
// what exposes the scaling. At every sweep point the symmetric run is
// checked byte-identical to the master run (graph, stats, paths) before its
// timing is reported; exit status is nonzero if any check fails, so the
// smoke invocation doubles as a ctest (label: perf-smoke). Default output:
// BENCH_dist_scaling.json.
#include "bench_common.hpp"

#include <cstring>

#include "dist/parallel.hpp"
#include "partition/mlpart.hpp"

namespace {

using namespace focus;

bool same_asm_graph(const dist::AsmGraph& a, const dist::AsmGraph& b) {
  if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) {
    return false;
  }
  for (NodeId v = 0; v < a.node_count(); ++v) {
    if (a.node_live(v) != b.node_live(v)) return false;
  }
  for (dist::EdgeId e = 0; e < a.edge_count(); ++e) {
    if (a.edge(e).removed != b.edge(e).removed ||
        a.edge(e).verified != b.edge(e).verified ||
        a.edge(e).overlap != b.edge(e).overlap ||
        a.edge(e).identity != b.edge(e).identity) {
      return false;
    }
  }
  return true;
}

bool same_simplify_stats(const dist::SimplifyStats& a,
                         const dist::SimplifyStats& b) {
  return a.transitive_edges == b.transitive_edges &&
         a.false_edges == b.false_edges &&
         a.contained_nodes == b.contained_nodes &&
         a.verified_edges == b.verified_edges && a.tip_nodes == b.tip_nodes &&
         a.bubble_nodes == b.bubble_nodes;
}

struct ScalingPoint {
  int ranks = 0;
  double master_trim = 0.0;
  double master_traverse = 0.0;
  double sym_trim = 0.0;
  double sym_traverse = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace focus::bench;

  bool smoke = false;
  std::string out_path = "BENCH_dist_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }
  if (smoke) {
    // Tiny deterministic dataset so the perf-smoke ctest exercises every
    // code path (both protocols, all rank counts) in seconds.
    ::setenv("FOCUS_BENCH_SCALE", "0.15", 1);
    ::setenv("FOCUS_BENCH_COVERAGE", "6.0", 1);
  }

  print_header(
      "FIG. 6 — Distributed trimming and traversal runtime vs partition "
      "count (ranks = partitions)");

  std::vector<DatasetBundle> bundles;
  const int datasets = smoke ? 1 : sim::dataset_count();
  for (int d = 1; d <= datasets; ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  const std::vector<int> widths{8, 10, 18, 20, 14};
  print_row({"Parts", "Dataset", "Trim vtime (s)", "Traverse vtime (s)",
             "Live nodes"},
            widths);

  for (const PartId k : {8, 16, 32, 64}) {
    for (auto& b : bundles) {
      // Partition the hybrid graph into k parts.
      partition::PartitionerConfig pcfg;
      pcfg.seed = 13;
      const auto parts =
          partition::partition_hierarchy(b.hybrid.hierarchy, k, pcfg);

      // Fresh assembly graph per configuration (trimming mutates it).
      auto built = build_asm(b);
      dist::SimplifyConfig scfg;
      const auto trim = dist::simplify_parallel(
          built.graph, parts.finest(), k, scfg, /*nranks=*/k);
      const auto trav = dist::traverse_parallel(built.graph, parts.finest(),
                                                k, /*nranks=*/k);
      print_row({std::to_string(k), b.dataset.name,
                 fmt(trim.run.makespan, 5), fmt(trav.run.makespan, 5),
                 std::to_string(built.graph.live_node_count())},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): trimming runtime decreases steeply with more\n"
      "partitions (near-linear in workers); traversal needs very little time\n"
      "and stays roughly constant.\n");

  // --- modeled_dist_scaling: master vs symmetric protocol over mpr ranks ---
  const dist::DistConfig master_cfg{dist::DistProtocol::kMaster};
  const dist::DistConfig sym_cfg{dist::DistProtocol::kSymmetric};
  const PartId scaling_parts = 32;
  const std::vector<int> rank_sweep{1, 2, 4, 8, 16};
  bool all_identical = true;

  print_header(
      "Modeled protocol scaling — master vs symmetric owner-computes "
      "(32 partitions, vtime makespan)");
  const std::vector<int> swidths{10, 8, 13, 9, 13, 9, 14, 9, 14, 9};
  print_row({"Dataset", "Ranks", "M trim", "spdup", "S trim", "spdup",
             "M traverse", "spdup", "S traverse", "spdup"},
            swidths);

  std::vector<std::vector<ScalingPoint>> scaling(bundles.size());
  for (std::size_t d = 0; d < bundles.size(); ++d) {
    auto& b = bundles[d];
    partition::PartitionerConfig pcfg;
    pcfg.seed = 13;
    const auto parts =
        partition::partition_hierarchy(b.hybrid.hierarchy, scaling_parts, pcfg);
    for (const int nranks : rank_sweep) {
      ScalingPoint pt;
      pt.ranks = nranks;
      dist::SimplifyConfig scfg;

      auto m = build_asm(b);
      const auto m_trim =
          dist::simplify_parallel(m.graph, parts.finest(), scaling_parts, scfg,
                                  nranks, {}, 1, {}, {}, master_cfg);
      const auto m_trav =
          dist::traverse_parallel(m.graph, parts.finest(), scaling_parts,
                                  nranks, {}, 1, {}, {}, master_cfg);
      pt.master_trim = m_trim.run.makespan;
      pt.master_traverse = m_trav.run.makespan;

      auto s = build_asm(b);
      const auto s_trim =
          dist::simplify_parallel(s.graph, parts.finest(), scaling_parts, scfg,
                                  nranks, {}, 1, {}, {}, sym_cfg);
      const auto s_trav =
          dist::traverse_parallel(s.graph, parts.finest(), scaling_parts,
                                  nranks, {}, 1, {}, {}, sym_cfg);
      pt.sym_trim = s_trim.run.makespan;
      pt.sym_traverse = s_trav.run.makespan;

      // Identity gate: the symmetric protocol must reproduce the master
      // run's simplified graph, counters and traversal paths at this exact
      // rank count before its timing counts.
      all_identical &= same_asm_graph(s.graph, m.graph);
      all_identical &= same_simplify_stats(s_trim.stats, m_trim.stats);
      all_identical &= s_trav.paths == m_trav.paths;

      const auto& base = scaling[d].empty() ? pt : scaling[d].front();
      print_row({b.dataset.name, std::to_string(nranks),
                 fmt(pt.master_trim, 5), fmt(base.master_trim / pt.master_trim, 2) + "x",
                 fmt(pt.sym_trim, 5), fmt(base.sym_trim / pt.sym_trim, 2) + "x",
                 fmt(pt.master_traverse, 5),
                 fmt(base.master_traverse / pt.master_traverse, 2) + "x",
                 fmt(pt.sym_traverse, 5),
                 fmt(base.sym_traverse / pt.sym_traverse, 2) + "x"},
                swidths);
      scaling[d].push_back(pt);
    }
    std::printf("\n");
  }
  std::printf("symmetric output identical to master at every sweep point: %s\n",
              all_identical ? "yes" : "NO (BUG)");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[fig6] cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"dist_scaling\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"scale\": %.3f,\n", bench_scale());
  std::fprintf(f, "  \"coverage\": %.3f,\n", bench_coverage());
  std::fprintf(f, "  \"partitions\": %d,\n", static_cast<int>(scaling_parts));
  std::fprintf(f, "  \"identical_output\": %s,\n",
               all_identical ? "true" : "false");
  std::fprintf(f, "  \"modeled_dist_scaling\": [\n");
  for (std::size_t d = 0; d < scaling.size(); ++d) {
    std::fprintf(f, "    {\"dataset\": \"%s\", \"points\": [\n",
                 bundles[d].dataset.name.c_str());
    for (std::size_t i = 0; i < scaling[d].size(); ++i) {
      const auto& pt = scaling[d][i];
      const auto& base = scaling[d].front();
      std::fprintf(
          f,
          "      {\"ranks\": %d, \"master_trim_makespan\": %.9f, "
          "\"master_trim_speedup\": %.3f, \"sym_trim_makespan\": %.9f, "
          "\"sym_trim_speedup\": %.3f, \"master_traverse_makespan\": %.9f, "
          "\"master_traverse_speedup\": %.3f, "
          "\"sym_traverse_makespan\": %.9f, "
          "\"sym_traverse_speedup\": %.3f}%s\n",
          pt.ranks, pt.master_trim, base.master_trim / pt.master_trim,
          pt.sym_trim, base.sym_trim / pt.sym_trim, pt.master_traverse,
          base.master_traverse / pt.master_traverse, pt.sym_traverse,
          base.sym_traverse / pt.sym_traverse,
          i + 1 < scaling[d].size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", d + 1 < scaling.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[fig6] wrote %s\n", out_path.c_str());

  return all_identical ? 0 : 1;
}
