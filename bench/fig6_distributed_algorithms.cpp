// Fig. 6 — Distributed graph algorithms runtime.
//
// Paper: the distributed trimming pipeline (transitive reduction, dead-end
// trimming, bubble popping, containment removal) and the distributed graph
// traversal applied to the hybrid graphs of the three datasets under
// 8/16/32/64-way partitionings (one worker per partition). Trimming runtime
// falls steeply with more partitions; traversal is fast and roughly flat.
#include "bench_common.hpp"

#include "dist/parallel.hpp"
#include "partition/mlpart.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header(
      "FIG. 6 — Distributed trimming and traversal runtime vs partition "
      "count (ranks = partitions)");

  std::vector<DatasetBundle> bundles;
  for (int d = 1; d <= sim::dataset_count(); ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  const std::vector<int> widths{8, 10, 18, 20, 14};
  print_row({"Parts", "Dataset", "Trim vtime (s)", "Traverse vtime (s)",
             "Live nodes"},
            widths);

  for (const PartId k : {8, 16, 32, 64}) {
    for (auto& b : bundles) {
      // Partition the hybrid graph into k parts.
      partition::PartitionerConfig pcfg;
      pcfg.seed = 13;
      const auto parts =
          partition::partition_hierarchy(b.hybrid.hierarchy, k, pcfg);

      // Fresh assembly graph per configuration (trimming mutates it).
      auto built = build_asm(b);
      dist::SimplifyConfig scfg;
      const auto trim = dist::simplify_parallel(
          built.graph, parts.finest(), k, scfg, /*nranks=*/k);
      const auto trav = dist::traverse_parallel(built.graph, parts.finest(),
                                                k, /*nranks=*/k);
      print_row({std::to_string(k), b.dataset.name,
                 fmt(trim.run.makespan, 5), fmt(trav.run.makespan, 5),
                 std::to_string(built.graph.live_node_count())},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): trimming runtime decreases steeply with more\n"
      "partitions (near-linear in workers); traversal needs very little time\n"
      "and stays roughly constant.\n");
  return 0;
}
