// Fig. 5 — Hybrid graph set vs multilevel graph set partitioning runtime.
//
// Paper: each hybrid and multilevel graph set partitioned into 8/16/32/64
// parts with 2^(log2 k − 1) processors; hybrid partitioning takes roughly
// half the time of the naïve multilevel (fully uncoarsened) partitioning.
//
// Here: identical sweep; runtime is virtual-time makespan. The hybrid set's
// advantage comes from its far smaller finest graph (G'0 vs G0).
#include "bench_common.hpp"

#include "partition/mlpart.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  print_header(
      "FIG. 5 — Partitioning runtime: hybrid graph set (paper) vs multilevel "
      "graph set (naive baseline)");

  std::vector<DatasetBundle> bundles;
  for (int d = 1; d <= sim::dataset_count(); ++d) {
    bundles.push_back(prepare_dataset(d));
  }

  const std::vector<int> widths{8, 10, 8, 18, 18, 10};
  print_row({"k", "Dataset", "Ranks", "Hybrid vtime (s)", "Multi vtime (s)",
             "Ratio"},
            widths);

  for (const PartId k : {8, 16, 32, 64}) {
    int ranks = 1;
    while (2 * ranks < k) ranks *= 2;  // 2^(log2 k - 1)
    for (auto& b : bundles) {
      partition::PartitionerConfig cfg;
      cfg.seed = 7;
      const auto hybrid_run = partition::partition_hierarchy_parallel(
          b.hybrid.hierarchy, k, cfg, ranks);
      const auto multi_run = partition::partition_hierarchy_parallel(
          b.multilevel, k, cfg, ranks);
      const double th = hybrid_run.stats.makespan;
      const double tm = multi_run.stats.makespan;
      print_row({std::to_string(k), b.dataset.name, std::to_string(ranks),
                 fmt(th, 4), fmt(tm, 4), fmt(tm / th, 2)},
                widths);
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (paper): hybrid partitioning roughly 2x faster "
      "(ratio ~2)\nfor every dataset and partition count.\n");
  return 0;
}
