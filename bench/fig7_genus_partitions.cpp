// Fig. 7 — Distribution of major genera across partitions.
//
// Paper: reads classified by genus (BWA vs the HMP gut reference database);
// for each dataset, the fraction of each major genus's reads per partition
// of a 16-way hybrid-graph partitioning, shown as a heat map. Genera
// concentrate in few partitions, and phylogenetically related genera
// (notably Firmicutes: Roseburia / Clostridium / Eubacterium) co-locate.
//
// Here: reads are classified two ways — by simulation ground truth and by
// the k-mer classifier (the BWA stand-in) — and both matrices are reported,
// plus concentration and phylum co-clustering summaries.
#include "bench_common.hpp"

#include "core/classify.hpp"
#include "core/community.hpp"
#include "partition/mlpart.hpp"

int main() {
  using namespace focus;
  using namespace focus::bench;

  constexpr PartId kParts = 16;
  print_header("FIG. 7 — Genus distribution across a 16-way partitioning");

  for (int d = 1; d <= sim::dataset_count(); ++d) {
    auto b = prepare_dataset(d);

    partition::PartitionerConfig pcfg;
    pcfg.seed = 17;
    const auto parts =
        partition::partition_hierarchy(b.hybrid.hierarchy, kParts, pcfg);
    const auto read_parts =
        b.hybrid.project_to_reads(parts.finest(), b.reads.size());

    // Genus labels for the preprocessed reads. Ground truth comes from the
    // simulator via each read's origin; the classifier label comes from the
    // k-mer voter (BWA stand-in).
    std::vector<std::uint32_t> truth(b.reads.size(), core::kUnclassified);
    for (ReadId i = 0; i < b.reads.size(); ++i) {
      const ReadId origin = b.reads[i].origin;
      if (origin != kInvalidRead) {
        truth[i] = b.dataset.data.provenance[origin].genus;
      }
    }
    const core::KmerClassifier classifier(b.dataset.community, 21);
    const auto classified = classifier.classify_reads(b.reads);

    std::vector<std::string> names, phyla;
    for (const auto& g : b.dataset.community.genera) {
      names.push_back(g.name);
      phyla.push_back(g.phylum);
    }

    const auto m_truth = core::genus_partition_distribution(
        truth, read_parts, names, kParts);
    const auto m_class = core::genus_partition_distribution(
        classified, read_parts, names, kParts);

    std::printf("\n--- %s (stand-in for %s) ---\n", b.dataset.name.c_str(),
                b.dataset.sra_analog.c_str());
    std::printf("Heat map (ground-truth labels):\n%s",
                core::render_heatmap(m_truth).c_str());
    std::printf("Heat map (k-mer classifier labels):\n%s",
                core::render_heatmap(m_class).c_str());

    const auto conc = core::concentration(m_truth);
    double mean_conc = 0.0;
    for (const double c : conc) mean_conc += c;
    mean_conc /= static_cast<double>(conc.size());
    const auto cc = core::phylum_coclustering(m_truth, phyla);
    std::printf(
        "Mean genus concentration (max partition fraction): %.3f "
        "(uniform would be %.3f)\n",
        mean_conc, 1.0 / kParts);
    std::printf(
        "Phylum co-clustering (mean Pearson r of partition profiles): "
        "within=%.3f between=%.3f\n",
        cc.within_phylum, cc.between_phyla);
  }

  std::printf(
      "\nExpected shape (paper): genera concentrate in few partitions "
      "(concentration\nfar above uniform); same-phylum genera correlate more "
      "than cross-phylum pairs.\n");
  return 0;
}
