// Serial vs work-stealing-pool wall-clock for the alignment and coarsening
// hot paths, recorded as a BENCH json.
//
//   $ ./bench_threads [output.json]
//
// Measures find_overlaps_serial() against find_overlaps() at 1/2/4/8 pool
// threads, and serial vs pooled heavy-edge-matching coarsening, on the D1
// simulated benchmark dataset (FOCUS_BENCH_SCALE / FOCUS_BENCH_COVERAGE
// apply). Every pooled run is checked byte-identical against the serial
// reference before its timing is reported, so the json never records a
// speedup bought with a wrong answer. Default output: bench_threads.json.
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"
#include "graph/coarsen.hpp"

namespace {

using namespace focus;

constexpr unsigned kWidths[] = {1, 2, 4, 8};
constexpr int kRepeats = 3;  // best-of; absorbs allocator/cache warmup noise

double best_of(int repeats, const std::function<double()>& run_once) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const double t = run_once();
    if (r == 0 || t < best) best = t;
  }
  return best;
}

bool same_overlaps(const std::vector<align::Overlap>& a,
                   const std::vector<align::Overlap>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].query != b[i].query || a[i].ref != b[i].ref ||
        a[i].length != b[i].length || a[i].identity != b[i].identity ||
        a[i].kind != b[i].kind) {
      return false;
    }
  }
  return true;
}

struct Series {
  double serial_seconds = 0.0;
  std::vector<double> pool_seconds;  // parallel to kWidths
  bool identical = true;
};

void print_series(const char* name, const Series& s) {
  std::printf("\n%s\n", name);
  std::printf("  %-10s %12s %10s\n", "threads", "seconds", "speedup");
  std::printf("  %-10s %12.3f %10s\n", "serial", s.serial_seconds, "1.00x");
  for (std::size_t w = 0; w < s.pool_seconds.size(); ++w) {
    std::printf("  %-10u %12.3f %9.2fx\n", kWidths[w], s.pool_seconds[w],
                s.serial_seconds / s.pool_seconds[w]);
  }
  std::printf("  output identical to serial: %s\n",
              s.identical ? "yes" : "NO (BUG)");
}

void json_series(std::FILE* f, const char* name, const Series& s,
                 bool trailing_comma) {
  std::fprintf(f, "  \"%s\": {\n", name);
  std::fprintf(f, "    \"serial_seconds\": %.6f,\n", s.serial_seconds);
  std::fprintf(f, "    \"identical_output\": %s,\n",
               s.identical ? "true" : "false");
  std::fprintf(f, "    \"pool\": [\n");
  for (std::size_t w = 0; w < s.pool_seconds.size(); ++w) {
    std::fprintf(f,
                 "      {\"threads\": %u, \"seconds\": %.6f, "
                 "\"speedup\": %.3f}%s\n",
                 kWidths[w], s.pool_seconds[w],
                 s.serial_seconds / s.pool_seconds[w],
                 w + 1 < s.pool_seconds.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }%s\n", trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "bench_threads.json";

  bench::print_header(
      "bench_threads — serial vs work-stealing pool (alignment & coarsening)");
  std::printf("hardware threads: %u   FOCUS_THREADS default: %u\n",
              std::thread::hardware_concurrency(), default_thread_count());

  // Dataset D1, same preprocessing as every other bench driver.
  sim::Dataset dataset =
      sim::make_dataset(1, bench::bench_scale(), bench::bench_coverage());
  const core::FocusConfig cfg = bench::bench_config();
  const io::ReadSet reads = io::preprocess(dataset.data.reads, cfg.preprocess);
  std::fprintf(stderr, "[bench_threads] %zu preprocessed reads\n",
               reads.size());

  // --- Overlap stage -------------------------------------------------------
  Series overlap;
  align::OverlapperConfig ocfg = cfg.overlap;
  std::vector<align::Overlap> reference;
  overlap.serial_seconds = best_of(kRepeats, [&] {
    Timer t;
    reference = align::find_overlaps_serial(reads, ocfg);
    return t.seconds();
  });
  for (const unsigned width : kWidths) {
    ocfg.threads = width;
    std::vector<align::Overlap> pooled;
    overlap.pool_seconds.push_back(best_of(kRepeats, [&] {
      Timer t;
      pooled = align::find_overlaps(reads, ocfg);
      return t.seconds();
    }));
    overlap.identical = overlap.identical && same_overlaps(reference, pooled);
  }
  print_series("overlap stage (find_overlaps, §II-B)", overlap);

  // --- Coarsening stage ----------------------------------------------------
  Series coarsen;
  const graph::Graph g0 = graph::build_overlap_graph(reads.size(), reference);
  graph::CoarsenConfig ccfg = cfg.coarsen;
  ccfg.threads = 1;
  graph::GraphHierarchy ref_hierarchy;
  coarsen.serial_seconds = best_of(kRepeats, [&] {
    Timer t;
    ref_hierarchy = graph::build_multilevel(g0, ccfg);
    return t.seconds();
  });
  for (const unsigned width : kWidths) {
    ccfg.threads = width;
    graph::GraphHierarchy pooled;
    coarsen.pool_seconds.push_back(best_of(kRepeats, [&] {
      Timer t;
      pooled = graph::build_multilevel(g0, ccfg);
      return t.seconds();
    }));
    coarsen.identical = coarsen.identical &&
                        pooled.parent == ref_hierarchy.parent &&
                        pooled.depth() == ref_hierarchy.depth();
  }
  print_series("coarsening stage (build_multilevel, §II-C)", coarsen);

  // --- BENCH json ----------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"threads\",\n");
  std::fprintf(f, "  \"dataset\": \"%s\",\n", dataset.name.c_str());
  std::fprintf(f, "  \"reads\": %zu,\n", reads.size());
  std::fprintf(f, "  \"overlaps\": %zu,\n", reference.size());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  json_series(f, "overlap", overlap, /*trailing_comma=*/true);
  json_series(f, "coarsen", coarsen, /*trailing_comma=*/false);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  return (overlap.identical && coarsen.identical) ? 0 : 1;
}
