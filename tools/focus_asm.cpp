// focus_asm — command-line assembler over the Focus library.
//
//   focus_asm -i reads.fastq -o out_prefix [options]
//
// Reads FASTA/FASTQ, runs the full Focus pipeline, writes:
//   <prefix>.contigs.fasta   assembled contigs
//   <prefix>.stats.txt       assembly statistics + stage timings
//   <prefix>.partition.tsv   read id -> hybrid-graph partition
//   <prefix>.graph.gfa       the simplified assembly graph (GFA 1.0)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/assembler.hpp"
#include "dist/gfa.hpp"
#include "io/fastx.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -i <reads.fast[aq]> -o <prefix> [options]\n"
               "\n"
               "options:\n"
               "  -k <int>     graph partitions, power of two (default 16)\n"
               "  -r <int>     worker ranks (default 8)\n"
               "  --min-overlap <bp>      overlap length threshold (default 50)\n"
               "  --min-identity <frac>   overlap identity threshold (default 0.90)\n"
               "  --seed-k <int>          seeding k-mer length (default 14)\n"
               "  --subsets <int>         read subsets for parallel alignment (default 4)\n"
               "  --min-contig <bp>       shortest reported contig (default 100)\n"
               "  --trim-q <phred>        3' quality-trim threshold (default 20)\n"
               "  --multilevel            use the naive multilevel partitioning\n"
               "                          instead of the hybrid graph set\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace focus;

  std::string input, prefix;
  try {
    core::FocusConfig config;
    config.partitions = 16;
    config.ranks = 8;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          usage(argv[0]);
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "-i") {
        input = next();
      } else if (arg == "-o") {
        prefix = next();
      } else if (arg == "-k") {
        config.partitions = std::atoi(next());
      } else if (arg == "-r") {
        config.ranks = std::atoi(next());
      } else if (arg == "--min-overlap") {
        config.overlap.min_overlap = static_cast<std::uint32_t>(std::atoi(next()));
      } else if (arg == "--min-identity") {
        config.overlap.min_identity = std::atof(next());
      } else if (arg == "--seed-k") {
        config.overlap.k = static_cast<unsigned>(std::atoi(next()));
      } else if (arg == "--subsets") {
        config.overlap.subsets = static_cast<std::size_t>(std::atoi(next()));
      } else if (arg == "--min-contig") {
        config.min_contig_length = static_cast<std::size_t>(std::atoi(next()));
      } else if (arg == "--trim-q") {
        config.preprocess.min_quality = std::atof(next());
      } else if (arg == "--multilevel") {
        config.use_hybrid_partitioning = false;
      } else if (arg == "-h" || arg == "--help") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        usage(argv[0]);
        return 2;
      }
    }
    if (input.empty() || prefix.empty()) {
      usage(argv[0]);
      return 2;
    }

    std::fprintf(stderr, "[focus_asm] loading %s\n", input.c_str());
    const io::ReadSet raw = io::load_fastx_file(input);
    std::fprintf(stderr, "[focus_asm] %zu reads, %llu bases\n", raw.size(),
                 static_cast<unsigned long long>(raw.total_bases()));

    std::fprintf(stderr, "[focus_asm] assembling (k=%d, ranks=%d, %s route)\n",
                 config.partitions, config.ranks,
                 config.use_hybrid_partitioning ? "hybrid" : "multilevel");
    const auto result = core::assemble_reads(raw, config);

    // Contigs.
    {
      io::ReadSet contigs;
      for (std::size_t c = 0; c < result.contigs.size(); ++c) {
        io::Read r;
        r.name = "contig_" + std::to_string(c) + " length=" +
                 std::to_string(result.contigs[c].size());
        r.seq = result.contigs[c];
        contigs.add(std::move(r));
      }
      std::ofstream out(prefix + ".contigs.fasta");
      io::write_fasta(out, contigs);
    }
    // Stats.
    {
      std::ofstream out(prefix + ".stats.txt");
      out << "input_reads\t" << raw.size() << "\n"
          << "preprocessed_reads\t" << result.reads.size() << "\n"
          << "overlaps\t" << result.overlaps.size() << "\n"
          << "overlap_graph_nodes\t" << result.overlap_graph.node_count() << "\n"
          << "overlap_graph_edges\t" << result.overlap_graph.edge_count() << "\n"
          << "hybrid_graph_nodes\t"
          << result.hybrid.hybrid_graph().node_count() << "\n"
          << "graph_levels\t" << result.multilevel.depth() << "\n"
          << "contigs\t" << result.stats.contig_count << "\n"
          << "total_bases\t" << result.stats.total_bases << "\n"
          << "n50\t" << result.stats.n50 << "\n"
          << "max_contig\t" << result.stats.max_contig << "\n";
      for (const auto& [stage, t] : result.timings) {
        out << "vtime_" << stage << "\t" << t.vtime << "\n";
        out << "wall_" << stage << "\t" << t.wall << "\n";
      }
    }
    // Assembly graph (GFA 1.0).
    dist::write_gfa_file(prefix + ".graph.gfa", result.assembly_graph);
    // Read partition.
    {
      std::ofstream out(prefix + ".partition.tsv");
      out << "read\tname\tpartition\n";
      for (ReadId i = 0; i < result.reads.size(); ++i) {
        out << i << '\t' << result.reads[i].name << '\t'
            << result.read_partition[i] << "\n";
      }
    }
    std::fprintf(stderr,
                 "[focus_asm] wrote %zu contigs (N50 %llu, max %llu) to "
                 "%s.contigs.fasta\n",
                 result.stats.contig_count,
                 static_cast<unsigned long long>(result.stats.n50),
                 static_cast<unsigned long long>(result.stats.max_contig),
                 prefix.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[focus_asm] error: %s\n", e.what());
    return 1;
  }
}
