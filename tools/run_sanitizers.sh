#!/usr/bin/env bash
# Runs the tier-1 ctest suite under ThreadSanitizer and combined
# AddressSanitizer+UndefinedBehaviorSanitizer — so the seed-backend
# equivalence suite (hashed k-mer index vs suffix-array oracle, packed-read
# bit manipulation, two-pass NW scratch reuse), the partitioner determinism
# suite (fork_join recursion, pooled KL/k-way scoring, concurrent
# multi-trial initial bisections, the chunked KL pair search, byte-identical
# partitions across thread widths), the distributed-index overlap suite
# (sharded k-mer index alltoall rounds across rank counts, per-subset repeat
# masking, the FT overlap driver's block replay), the protocol-equivalence
# suite (master vs symmetric owner-computes simplify/traverse across rank
# counts, the pointer-jumping sub-path stitch, the shared-WAL rotating
# coordinator), the graph-store equivalence suite (in-memory AsmGraph vs
# CSR-spill StoredAsmGraph byte-identity across threads × ranks × protocols
# under forced-spill budgets, the SpillManager's concurrent LRU fetch/evict
# paths, plus graph_store_fault_test's crash-at-every-op spill-write sweep
# and bench_graph_store's forked RSS smoke under label `perf-smoke`), the
# fault-injection suite (label `fault`: crash-at-every-op recovery sweeps
# over every FT driver — preprocess, distributed-index overlap, partition,
# simplify, traverse, variants, GFA, including symmetric-coordinator
# rotation — plus mixed-fault stress of the runtime's timeout/CRC detection
# paths and the FaultEnv malformed-knob tests), and the whole-pipeline
# chaos soak (label `soak`: 50-seed storms and crash sweeps through the
# full assembler across protocols and graph-store backends, with the spill
# manager's nth-write disk fault armed), the job-runtime suite (svc_test:
# EnvSnapshot capture/strict parsing, ArtifactCache LRU policy under
# concurrent lanes, JobScheduler admission + virtual-time fair share), the
# concurrent-assembler determinism suite (concurrent_jobs_test: two
# simultaneous in-process pipelines vs the serial oracle across protocols ×
# backends × pool widths — the TSan proof obligation for the EnvSnapshot
# sweep and the per-pool TLS slot fix), and bench_jobs's multi-tenant
# scheduler smoke (label `perf-smoke`) are exercised under both memory/UB
# and data-race checking.
#
# Review note: src/common/env.cpp must stay the only std::getenv call site
# (grep 'std::getenv' src/); scattered env reads were the original
# concurrent-assembler hazard.
#
#   tools/run_sanitizers.sh [thread|address|asan-ubsan] [ctest args...]
#
# With no argument TSan and ASan+UBSan both run. Builds land in build-tsan/
# and build-asan-ubsan/ (never in the plain build/ tree). Any extra
# arguments are passed to ctest, e.g.:
#
#   tools/run_sanitizers.sh thread -R Thread       # only pool tests, TSan
#   tools/run_sanitizers.sh asan-ubsan -R Seed     # equivalence, ASan+UBSan
#   tools/run_sanitizers.sh thread -L fault        # fault suite under TSan
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=()
case "${1:-all}" in
  thread|tsan)           sanitizers=(thread)                     ;;
  address|asan)          sanitizers=(address)                    ;;
  asan-ubsan|address+undefined) sanitizers=(address+undefined)   ;;
  all)                   sanitizers=(thread address+undefined)   ;;
  *) echo "usage: $0 [thread|address|asan-ubsan] [ctest args...]" >&2
     exit 2 ;;
esac
[ $# -gt 0 ] && shift || true

jobs="$(nproc 2>/dev/null || echo 2)"
status=0

for san in "${sanitizers[@]}"; do
  dir="build-tsan"
  [ "$san" = "address" ] && dir="build-asan"
  [ "$san" = "address+undefined" ] && dir="build-asan-ubsan"
  echo "=== ${san} sanitizer -> ${dir} ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFOCUS_SANITIZE="$san"
  cmake --build "$dir" -j "$jobs"
  if ! ctest --test-dir "$dir" --output-on-failure -j "$jobs" "$@"; then
    echo "!!! ${san} sanitizer run FAILED" >&2
    status=1
  fi
done

exit $status
