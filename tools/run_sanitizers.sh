#!/usr/bin/env bash
# Runs the tier-1 ctest suite under ThreadSanitizer and AddressSanitizer.
#
#   tools/run_sanitizers.sh [thread|address] [ctest args...]
#
# With no argument both sanitizers run. Builds land in build-tsan/ and
# build-asan/ (never in the plain build/ tree). Any extra arguments are
# passed to ctest, e.g.:
#
#   tools/run_sanitizers.sh thread -R Thread   # only the pool tests, TSan
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=()
case "${1:-all}" in
  thread|tsan)   sanitizers=(thread)         ;;
  address|asan)  sanitizers=(address)        ;;
  all)           sanitizers=(thread address) ;;
  *) echo "usage: $0 [thread|address] [ctest args...]" >&2; exit 2 ;;
esac
[ $# -gt 0 ] && shift || true

jobs="$(nproc 2>/dev/null || echo 2)"
status=0

for san in "${sanitizers[@]}"; do
  dir="build-tsan"
  [ "$san" = "address" ] && dir="build-asan"
  echo "=== ${san} sanitizer -> ${dir} ==="
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFOCUS_SANITIZE="$san"
  cmake --build "$dir" -j "$jobs"
  if ! ctest --test-dir "$dir" --output-on-failure -j "$jobs" "$@"; then
    echo "!!! ${san} sanitizer run FAILED" >&2
    status=1
  fi
done

exit $status
