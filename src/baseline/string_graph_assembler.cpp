#include "baseline/string_graph_assembler.hpp"

#include <numeric>

#include "core/stats.hpp"
#include "dist/asm_graph.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "graph/digraph.hpp"

namespace focus::baseline {

StringGraphResult assemble_string_graph(
    const io::ReadSet& reads, const std::vector<align::Overlap>& overlaps,
    const StringGraphConfig& config) {
  StringGraphResult result;

  // Read-level directed graph; containment marks come with it.
  const graph::Digraph read_graph =
      graph::build_read_digraph(reads.size(), overlaps);
  result.work += static_cast<double>(overlaps.size());

  // Materialize as an AsmGraph (one node per read, the read IS its contig)
  // so the shared reduction/traversal machinery applies.
  dist::AsmGraph g;
  for (ReadId r = 0; r < reads.size(); ++r) {
    g.add_node(reads[r].seq, 1);
  }
  for (NodeId v = 0; v < read_graph.node_count(); ++v) {
    for (const graph::DiEdge& e : read_graph.out_edges(v)) {
      if (read_graph.is_contained(v) || read_graph.is_contained(e.to)) {
        continue;  // contained reads add no layout information
      }
      g.add_edge(v, e.to, static_cast<std::uint32_t>(e.overlap));
    }
  }
  for (ReadId r = 0; r < reads.size(); ++r) {
    if (read_graph.is_contained(r)) {
      g.remove_node(r);
      ++result.contained_reads;
    }
  }
  result.graph_nodes = g.live_node_count();
  result.graph_edges = g.live_edge_count();

  // Myers-style transitive reduction over the whole read graph.
  std::vector<NodeId> all(g.node_count());
  std::iota(all.begin(), all.end(), 0u);
  auto transitive = dist::find_transitive_edges(g, all, &result.work);
  result.transitive_removed = dist::apply_edge_removals(g, std::move(transitive));

  // Unambiguous path compaction = contigs.
  const auto paths = dist::traverse_serial(g, &result.work);
  std::vector<std::string> contigs;
  contigs.reserve(paths.size());
  for (const auto& path : paths) {
    contigs.push_back(g.merge_path_contigs(path));
    result.work += static_cast<double>(contigs.back().size());
  }
  result.contigs =
      config.dedupe
          ? core::dedupe_contigs(std::move(contigs), config.min_contig_length)
          : std::move(contigs);
  return result;
}

}  // namespace focus::baseline
