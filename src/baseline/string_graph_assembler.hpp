// Baseline: a serial string-graph assembler (Myers [4], the model most
// overlap-based assemblers build on and the conceptual baseline the paper's
// hybrid-graph approach improves upon).
//
// Pipeline: directed read overlap graph → drop contained reads → transitive
// reduction → unambiguous path compaction → contigs. No coarsening, no
// hybrid graph, no partitioning — every step touches the full read-level
// graph, which is exactly the cost the Focus design avoids.
#pragma once

#include <string>
#include <vector>

#include "align/overlap.hpp"
#include "io/read.hpp"

namespace focus::baseline {

struct StringGraphConfig {
  /// Contigs shorter than this are dropped from the report.
  std::size_t min_contig_length = 100;
  /// Collapse reverse-complement contig twins.
  bool dedupe = true;
};

struct StringGraphResult {
  std::vector<std::string> contigs;
  /// Read-level graph sizes before/after reduction (for reporting).
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  std::size_t transitive_removed = 0;
  std::size_t contained_reads = 0;
  /// Deterministic work units spent (comparable with the Focus pipeline's).
  double work = 0.0;
};

/// Assembles preprocessed reads from verified overlaps via the string-graph
/// route. The overlaps are the same records the Focus pipeline consumes, so
/// head-to-head comparisons isolate the graph strategy.
StringGraphResult assemble_string_graph(
    const io::ReadSet& reads, const std::vector<align::Overlap>& overlaps,
    const StringGraphConfig& config = {});

}  // namespace focus::baseline
