#include "sim/sequencer.hpp"

#include <algorithm>
#include <cmath>

#include "common/dna.hpp"
#include "common/error.hpp"

namespace focus::sim {

namespace {

char phred33(double q) {
  const double clamped = std::clamp(q, 2.0, 41.0);
  return static_cast<char>('!' + static_cast<int>(std::lround(clamped)));
}

}  // namespace

SimulatedReads shotgun_sequence(const Community& community,
                                const SequencerConfig& config, Rng& rng) {
  FOCUS_CHECK(config.read_length >= 20, "read length must be at least 20");
  FOCUS_CHECK(config.coverage > 0.0, "coverage must be positive");
  for (const auto& g : community.genera) {
    FOCUS_CHECK(g.genome.size() >= config.read_length,
                "genome shorter than read length: " + g.name);
  }

  const std::uint64_t total_bases = community.total_genome_bases();
  const auto read_count = static_cast<std::size_t>(
      config.coverage * static_cast<double>(total_bases) /
      static_cast<double>(config.read_length));
  const std::vector<double> abundance = community.normalized_abundance();

  // Cumulative abundance for genus sampling.
  std::vector<double> cumulative(abundance.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < abundance.size(); ++i) {
    acc += abundance[i];
    cumulative[i] = acc;
  }
  cumulative.back() = 1.0;

  SimulatedReads out;
  out.reads.reserve(read_count);
  out.provenance.reserve(read_count);

  const std::size_t L = config.read_length;
  for (std::size_t n = 0; n < read_count; ++n) {
    // Genus by abundance.
    const double u = rng.next_real();
    const std::size_t genus = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::string& genome = community.genera[genus].genome;

    const auto pos =
        static_cast<std::uint64_t>(rng.next_below(genome.size() - L + 1));
    const bool reverse = rng.next_bool(0.5);

    std::string fragment = genome.substr(pos, L);
    if (reverse) fragment = dna::reverse_complement(fragment);

    const bool bad_tail = rng.next_bool(config.bad_tail_fraction);
    const std::size_t tail_start =
        bad_tail && L > config.bad_tail_length ? L - config.bad_tail_length : L;

    std::string qual(L, '!');
    for (std::size_t i = 0; i < L; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(L - 1);
      double err = config.error_rate_5p +
                   t * (config.error_rate_3p - config.error_rate_5p);
      double q = config.quality_5p + t * (config.quality_3p - config.quality_5p);
      if (i >= tail_start) {
        err = 0.25;  // effectively random base calls in a degraded tail
        q = 4.0;
      }
      // Quality jitter of +-2.
      q += static_cast<double>(rng.next_in(-2, 2));
      qual[i] = phred33(q);
      if (rng.next_bool(err)) {
        const auto cur = dna::encode_base(fragment[i]);
        const auto alt = (cur + 1 + rng.next_below(3)) % 4;
        fragment[i] = dna::decode_base(static_cast<std::uint8_t>(alt));
      }
    }

    io::Read read;
    read.name = "r" + std::to_string(n);
    read.seq = std::move(fragment);
    read.qual = std::move(qual);
    out.reads.add(std::move(read));
    out.provenance.push_back(ReadProvenance{
        static_cast<std::uint32_t>(genus), pos, reverse});
  }
  return out;
}

}  // namespace focus::sim
