// Registry of the three benchmark datasets standing in for the paper's three
// SRA gut-microbiome samples (Table I: SRR513170, SRR513441, SRR061581 —
// ~5 Gbases each, 100 bp reads).
//
// Each dataset is a distinct community composition over the same ten genera
// the paper analyzes in Fig. 7 (Acinetobacter, Alistipes, Bacteroides,
// Clostridium, Escherichia, Eubacterium, Faecalibacterium, Parabacteroides,
// Prevotella, Roseburia), grouped into their real phyla (Bacteroidetes,
// Firmicutes, Proteobacteria). Sizes are scaled to single-machine budgets;
// `scale` multiplies genome length.
#pragma once

#include <cstdint>
#include <string>

#include "sim/community.hpp"
#include "sim/sequencer.hpp"

namespace focus::sim {

struct Dataset {
  std::string name;      // "D1", "D2", "D3"
  std::string sra_analog; // the paper dataset this one stands in for
  Community community;
  SimulatedReads data;

  std::uint64_t total_read_bases() const { return data.reads.total_bases(); }
  std::size_t read_length() const;
};

/// Number of registered datasets (3, matching the paper).
int dataset_count();

/// Builds dataset `index` (1-based, 1..3). `scale` multiplies the default
/// per-genus genome length (default 8 kbp at scale 1); `coverage` is the mean
/// read depth. Fully deterministic per (index, scale, coverage).
Dataset make_dataset(int index, double scale = 1.0, double coverage = 15.0);

/// The ten Fig. 7 genera with their phylum assignments.
const std::vector<std::pair<std::string, std::string>>& genus_phylum_table();

}  // namespace focus::sim
