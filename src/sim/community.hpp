// Microbial community model: a phylogeny of synthetic genera grouped into
// phyla, with per-genus genomes and abundances.
//
// Divergence structure (chosen so the paper's Fig. 7 behaviour can emerge):
//   * bulk sequence diverges enough between genera (~15 % substitutions by
//     default) that 100 bp cross-genus overlaps fall below the assembler's
//     90 % identity gate — genera assemble separately;
//   * each phylum ancestor carries a handful of *conserved segments*
//     (16S-rRNA-like) that are copied into every genus of the phylum nearly
//     verbatim. These create genuine cross-genus overlap edges preferentially
//     between phylogenetically related genera, which is exactly the signal
//     that makes related genera co-cluster within graph partitions
//     (paper §VI-E).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"

namespace focus::sim {

struct Genus {
  std::string name;
  std::string phylum;
  std::string genome;
  /// Relative abundance (need not be normalized).
  double abundance = 1.0;
};

struct Community {
  std::vector<Genus> genera;

  std::size_t size() const { return genera.size(); }
  std::uint64_t total_genome_bases() const;
  /// Abundances normalized to sum to 1.
  std::vector<double> normalized_abundance() const;
  /// Index of a genus by name; throws if absent.
  std::size_t index_of(const std::string& name) const;
  /// Distinct phylum names in first-appearance order.
  std::vector<std::string> phyla() const;
};

struct PhylogenyConfig {
  /// Genome length of every genus (approximately preserved through indels).
  std::size_t genome_length = 20000;
  /// Substitution divergence between a phylum ancestor and the root ancestor.
  double phylum_divergence = 0.30;
  /// Substitution divergence of a genus's bulk (non-conserved) sequence from
  /// its phylum ancestor. Default keeps 100 bp cross-genus identity well
  /// below a 90 % overlap-identity threshold.
  double genus_divergence = 0.15;
  /// Number and length of conserved segments shared within a phylum.
  std::size_t conserved_segments = 3;
  std::size_t conserved_length = 400;
  /// Residual divergence inside conserved segments.
  double conserved_divergence = 0.01;
  /// Small indel rate in bulk sequence at each derivation step.
  double indel_rate = 0.0005;
  /// Repeat injection per genus genome.
  std::size_t repeat_copies = 2;
  std::size_t repeat_length = 300;
};

/// Builds a community from (genus, phylum, abundance) triples: one ancestral
/// genome per phylum derived from a common root, then one genome per genus
/// derived from its phylum ancestor with conserved segments kept near-intact.
Community build_community(
    const std::vector<std::tuple<std::string, std::string, double>>& members,
    const PhylogenyConfig& config, Rng& rng);

}  // namespace focus::sim
