// Synthetic genome generation: random sequences, repeat injection, and
// phylogeny-style mutation. These provide the ground-truth substrate that the
// paper obtained from real gut-microbiome samples.
#pragma once

#include <string>

#include "common/rng.hpp"

namespace focus::sim {

/// Uniform random ACGT sequence of the given length.
std::string random_genome(std::size_t length, Rng& rng);

/// Copies `copies` instances of a randomly chosen segment of length
/// `repeat_len` to random positions (overwriting), creating the repetitive
/// regions that stress assembly graphs (paper §II-D motivates these).
void inject_repeats(std::string& genome, std::size_t repeat_len,
                    std::size_t copies, Rng& rng);

struct MutationConfig {
  /// Per-base substitution probability.
  double substitution_rate = 0.0;
  /// Per-base probability of starting a short insertion.
  double insertion_rate = 0.0;
  /// Per-base probability of deleting the base.
  double deletion_rate = 0.0;
  /// Maximum length of a single insertion event.
  std::size_t max_indel_len = 3;
};

/// Derives a mutated copy of `genome` (used to create related genera whose
/// shared sequence makes their reads co-cluster, paper §VI-E).
std::string mutate_genome(const std::string& genome,
                          const MutationConfig& config, Rng& rng);

/// Hamming-style identity between two sequences compared over the shorter
/// length (cheap relatedness probe for tests).
double approximate_identity(const std::string& a, const std::string& b);

}  // namespace focus::sim
