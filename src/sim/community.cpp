#include "sim/community.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "sim/genome.hpp"

namespace focus::sim {

std::uint64_t Community::total_genome_bases() const {
  std::uint64_t total = 0;
  for (const auto& g : genera) total += g.genome.size();
  return total;
}

std::vector<double> Community::normalized_abundance() const {
  double sum = 0.0;
  for (const auto& g : genera) sum += g.abundance;
  FOCUS_CHECK(sum > 0.0, "community has zero total abundance");
  std::vector<double> out;
  out.reserve(genera.size());
  for (const auto& g : genera) out.push_back(g.abundance / sum);
  return out;
}

std::size_t Community::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < genera.size(); ++i) {
    if (genera[i].name == name) return i;
  }
  FOCUS_THROW("unknown genus: " + name);
}

std::vector<std::string> Community::phyla() const {
  std::vector<std::string> out;
  for (const auto& g : genera) {
    if (std::find(out.begin(), out.end(), g.phylum) == out.end()) {
      out.push_back(g.phylum);
    }
  }
  return out;
}

namespace {

struct PhylumAncestor {
  std::string genome;
  // Non-overlapping [begin, end) conserved windows, sorted by begin.
  std::vector<std::pair<std::size_t, std::size_t>> conserved;
};

// Evenly spaced, non-overlapping conserved windows.
std::vector<std::pair<std::size_t, std::size_t>> place_conserved(
    std::size_t genome_len, std::size_t count, std::size_t seg_len) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (count == 0 || seg_len == 0 || genome_len < count * seg_len) return out;
  const std::size_t stride = genome_len / count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin = i * stride + (stride - seg_len) / 2;
    out.emplace_back(begin, begin + seg_len);
  }
  return out;
}

// Derives a genus genome from a phylum ancestor: conserved windows mutate at
// the (low) conserved rate with no indels; bulk sequence mutates at the genus
// rate with small indels.
std::string derive_genus_genome(const PhylumAncestor& ancestor,
                                const PhylogenyConfig& config, Rng& rng) {
  MutationConfig bulk;
  bulk.substitution_rate = config.genus_divergence;
  bulk.insertion_rate = config.indel_rate;
  bulk.deletion_rate = config.indel_rate;

  MutationConfig conserved;
  conserved.substitution_rate = config.conserved_divergence;

  std::string out;
  out.reserve(ancestor.genome.size());
  std::size_t cursor = 0;
  for (const auto& [begin, end] : ancestor.conserved) {
    if (cursor < begin) {
      out += mutate_genome(ancestor.genome.substr(cursor, begin - cursor),
                           bulk, rng);
    }
    out += mutate_genome(ancestor.genome.substr(begin, end - begin),
                         conserved, rng);
    cursor = end;
  }
  if (cursor < ancestor.genome.size()) {
    out += mutate_genome(ancestor.genome.substr(cursor), bulk, rng);
  }
  return out;
}

}  // namespace

Community build_community(
    const std::vector<std::tuple<std::string, std::string, double>>& members,
    const PhylogenyConfig& config, Rng& rng) {
  FOCUS_CHECK(!members.empty(), "community needs at least one genus");
  FOCUS_CHECK(config.genome_length >= 1000,
              "genome length must be at least 1 kbp");

  const std::string root = random_genome(config.genome_length, rng);

  // One ancestor per phylum, in first-appearance order for determinism.
  std::map<std::string, PhylumAncestor> ancestors;
  for (const auto& [genus, phylum, abundance] : members) {
    (void)genus;
    (void)abundance;
    if (ancestors.contains(phylum)) continue;
    MutationConfig mc;
    mc.substitution_rate = config.phylum_divergence;
    mc.insertion_rate = config.indel_rate;
    mc.deletion_rate = config.indel_rate;
    PhylumAncestor anc;
    anc.genome = mutate_genome(root, mc, rng);
    anc.conserved = place_conserved(anc.genome.size(),
                                    config.conserved_segments,
                                    config.conserved_length);
    ancestors.emplace(phylum, std::move(anc));
  }

  Community community;
  community.genera.reserve(members.size());
  for (const auto& [genus, phylum, abundance] : members) {
    FOCUS_CHECK(abundance > 0.0, "genus abundance must be positive: " + genus);
    Genus g;
    g.name = genus;
    g.phylum = phylum;
    g.genome = derive_genus_genome(ancestors.at(phylum), config, rng);
    if (config.repeat_copies > 0) {
      inject_repeats(g.genome, config.repeat_length, config.repeat_copies, rng);
    }
    g.abundance = abundance;
    community.genera.push_back(std::move(g));
  }
  return community;
}

}  // namespace focus::sim
