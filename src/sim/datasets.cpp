#include "sim/datasets.hpp"

#include <tuple>

#include "common/error.hpp"

namespace focus::sim {

namespace {

// Genus -> phylum, as in the paper's Fig. 7 discussion. (Acinetobacter is
// Proteobacteria; the Firmicutes co-clustering of Roseburia / Clostridium /
// Eubacterium is the paper's worked example.)
const std::vector<std::pair<std::string, std::string>> kGenera = {
    {"Alistipes", "Bacteroidetes"},
    {"Bacteroides", "Bacteroidetes"},
    {"Prevotella", "Bacteroidetes"},
    {"Parabacteroides", "Bacteroidetes"},
    {"Clostridium", "Firmicutes"},
    {"Eubacterium", "Firmicutes"},
    {"Faecalibacterium", "Firmicutes"},
    {"Roseburia", "Firmicutes"},
    {"Escherichia", "Proteobacteria"},
    {"Acinetobacter", "Proteobacteria"},
};

// Per-dataset abundance profiles: three "individuals" with different
// community structure, echoing the inter-sample variation of the paper's
// three gut microbiomes (e.g. Bacteroides-dominant vs Prevotella-dominant
// enterotypes).
const double kAbundance[3][10] = {
    // D1: Bacteroides-dominant enterotype.
    {0.8, 3.0, 0.4, 0.9, 1.2, 0.8, 1.5, 1.0, 0.3, 0.1},
    // D2: Prevotella-dominant enterotype.
    {0.5, 0.8, 3.2, 0.6, 1.4, 1.1, 1.8, 1.3, 0.2, 0.1},
    // D3: Firmicutes-rich profile.
    {0.6, 1.2, 0.5, 0.5, 2.2, 1.6, 2.4, 1.9, 0.4, 0.2},
};

const char* kSraAnalog[3] = {"SRR513170", "SRR513441", "SRR061581"};

}  // namespace

const std::vector<std::pair<std::string, std::string>>& genus_phylum_table() {
  return kGenera;
}

int dataset_count() { return 3; }

std::size_t Dataset::read_length() const {
  return data.reads.empty() ? 0 : data.reads[0].length();
}

Dataset make_dataset(int index, double scale, double coverage) {
  FOCUS_CHECK(index >= 1 && index <= dataset_count(),
              "dataset index must be 1..3");
  FOCUS_CHECK(scale > 0.0, "scale must be positive");

  PhylogenyConfig phylo;
  phylo.genome_length =
      static_cast<std::size_t>(8000.0 * scale);

  std::vector<std::tuple<std::string, std::string, double>> members;
  members.reserve(kGenera.size());
  for (std::size_t g = 0; g < kGenera.size(); ++g) {
    members.emplace_back(kGenera[g].first, kGenera[g].second,
                         kAbundance[index - 1][g]);
  }

  // Seeds differ per dataset so the three communities have unrelated root
  // genomes, like three unrelated human subjects.
  Rng rng(0xf0c05u + static_cast<std::uint64_t>(index) * 0x9e3779b97f4a7c15ULL);

  Dataset ds;
  ds.name = "D" + std::to_string(index);
  ds.sra_analog = kSraAnalog[index - 1];
  ds.community = build_community(members, phylo, rng);

  SequencerConfig seq;
  seq.coverage = coverage;
  ds.data = shotgun_sequence(ds.community, seq, rng);
  return ds;
}

}  // namespace focus::sim
