// Shotgun read simulator: Illumina-style fixed-length reads with a 3'-degrading
// quality profile and substitution errors, sampled from a Community with
// exact provenance tracking (genus, genome position, strand).
//
// Provenance is what the paper had to reconstruct with BWA against a
// reference database (§VI-E); the simulator provides it as ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "io/read.hpp"
#include "sim/community.hpp"

namespace focus::sim {

struct SequencerConfig {
  /// Read length before any low-quality tail (bases).
  std::size_t read_length = 100;
  /// Mean sequencing depth over the community's genomes.
  double coverage = 15.0;
  /// Baseline per-base substitution error probability at the 5' end.
  double error_rate_5p = 0.002;
  /// Per-base substitution error probability at the 3' end (errors grow
  /// linearly along the read, as on real Illumina machines).
  double error_rate_3p = 0.02;
  /// Phred quality at the 5' end and at the 3' end (linear decline + noise).
  double quality_5p = 38.0;
  double quality_3p = 22.0;
  /// Fraction of reads given a severely degraded 3' tail (exercises the
  /// quality trimmer).
  double bad_tail_fraction = 0.05;
  std::size_t bad_tail_length = 20;
};

/// Where a simulated read truly came from.
struct ReadProvenance {
  std::uint32_t genus = 0;
  std::uint64_t position = 0;  // 0-based offset of the read's 5'-most base
                               // on the forward genome strand
  bool reverse_strand = false; // read sampled from the reverse strand
};

struct SimulatedReads {
  io::ReadSet reads;
  std::vector<ReadProvenance> provenance;  // parallel to `reads`

  std::size_t size() const { return reads.size(); }
};

/// Samples shotgun reads from the community: the source genus is drawn by
/// abundance, position uniformly, strand uniformly. Read names encode an
/// index ("r<N>"); provenance is returned separately.
SimulatedReads shotgun_sequence(const Community& community,
                                const SequencerConfig& config, Rng& rng);

}  // namespace focus::sim
