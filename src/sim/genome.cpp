#include "sim/genome.hpp"

#include <algorithm>

#include "common/dna.hpp"
#include "common/error.hpp"

namespace focus::sim {

std::string random_genome(std::size_t length, Rng& rng) {
  std::string g(length, 'A');
  for (auto& c : g) {
    c = dna::decode_base(static_cast<std::uint8_t>(rng.next_below(4)));
  }
  return g;
}

void inject_repeats(std::string& genome, std::size_t repeat_len,
                    std::size_t copies, Rng& rng) {
  FOCUS_CHECK(repeat_len > 0, "repeat length must be positive");
  if (genome.size() < 2 * repeat_len || copies == 0) return;
  const auto src =
      static_cast<std::size_t>(rng.next_below(genome.size() - repeat_len + 1));
  const std::string repeat = genome.substr(src, repeat_len);
  for (std::size_t i = 0; i < copies; ++i) {
    const auto dst = static_cast<std::size_t>(
        rng.next_below(genome.size() - repeat_len + 1));
    std::copy(repeat.begin(), repeat.end(), genome.begin() + static_cast<std::ptrdiff_t>(dst));
  }
}

std::string mutate_genome(const std::string& genome,
                          const MutationConfig& config, Rng& rng) {
  std::string out;
  out.reserve(genome.size() + genome.size() / 16);
  for (char c : genome) {
    if (config.deletion_rate > 0.0 && rng.next_bool(config.deletion_rate)) {
      continue;
    }
    if (config.substitution_rate > 0.0 &&
        rng.next_bool(config.substitution_rate)) {
      // Substitute with one of the three other bases.
      const auto cur = dna::encode_base(c);
      const auto alt = (cur + 1 + rng.next_below(3)) % 4;
      out.push_back(dna::decode_base(static_cast<std::uint8_t>(alt)));
    } else {
      out.push_back(c);
    }
    if (config.insertion_rate > 0.0 && rng.next_bool(config.insertion_rate)) {
      const auto len = 1 + rng.next_below(config.max_indel_len);
      for (std::uint64_t i = 0; i < len; ++i) {
        out.push_back(dna::decode_base(static_cast<std::uint8_t>(rng.next_below(4))));
      }
    }
  }
  return out;
}

double approximate_identity(const std::string& a, const std::string& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return a.size() == b.size() ? 1.0 : 0.0;
  std::size_t match = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(n);
}

}  // namespace focus::sim
