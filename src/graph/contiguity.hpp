// Contiguity test for read clusters (paper §II-D).
//
// A "best representative" node must come from the most reduced graph level
// possible "whose corresponding read cluster assembles into a contiguous
// contig". This tester decides that property on the directed read graph:
// the cluster's induced subgraph (containment reads excluded), after local
// transitive reduction, must form a single simple path. When it does, the
// path *is* the layout of the cluster's contig.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/digraph.hpp"

namespace focus::graph {

/// One read in a contig layout and its overlap with the next read in the
/// path (0 for the last read).
struct LayoutStep {
  NodeId read = kInvalidNode;
  Weight overlap_to_next = 0;
};

class ContiguityTester {
 public:
  /// `reads` is the directed read graph; `read_lengths[v]` the sequence
  /// length of read v (used to pick a representative when a cluster consists
  /// solely of contained reads).
  ContiguityTester(const Digraph& reads,
                   std::vector<std::uint32_t> read_lengths);

  /// True iff the cluster assembles into one contiguous contig. On success,
  /// if `layout` is non-null it receives the reads in left-to-right path
  /// order with their chaining overlaps.
  bool contiguous(std::span<const NodeId> cluster,
                  std::vector<LayoutStep>* layout = nullptr) const;

  /// Work units consumed since construction (for virtual-time accounting).
  double work() const { return work_; }

 private:
  const Digraph* reads_;
  std::vector<std::uint32_t> read_lengths_;

  // Stamp-based cluster membership (avoids clearing a bitset per query).
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t current_stamp_ = 0;
  mutable double work_ = 0.0;
};

}  // namespace focus::graph
