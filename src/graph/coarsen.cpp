#include "graph/coarsen.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/error.hpp"

namespace focus::graph {

std::vector<std::vector<NodeId>> GraphHierarchy::expand_clusters(
    std::size_t level) const {
  FOCUS_CHECK(level < levels.size(), "level out of range");
  const std::size_t n0 = levels[0].node_count();
  // map[v] = ancestor of finest node v at `level`.
  std::vector<NodeId> map(n0);
  std::iota(map.begin(), map.end(), 0u);
  for (std::size_t l = 0; l < level; ++l) {
    for (auto& m : map) m = parent[l][m];
  }
  std::vector<std::vector<NodeId>> clusters(levels[level].node_count());
  for (NodeId v = 0; v < n0; ++v) {
    clusters[map[v]].push_back(v);
  }
  return clusters;
}

NodeId GraphHierarchy::ancestor_at(NodeId v, std::size_t level) const {
  FOCUS_CHECK(level < levels.size(), "level out of range");
  NodeId cur = v;
  for (std::size_t l = 0; l < level; ++l) cur = parent[l][cur];
  return cur;
}

namespace {

/// Heaviest eligible neighbor of v among those for which `eligible` holds,
/// with the serial HEM tie-break (weight descending, then id ascending).
template <typename Eligible>
NodeId best_neighbor(const Graph& g, NodeId v, Weight max_node_weight,
                     Eligible&& eligible) {
  NodeId best = kInvalidNode;
  Weight best_weight = 0;
  for (const Edge& e : g.neighbors(v)) {
    if (!eligible(e.to)) continue;
    if (max_node_weight > 0 &&
        g.node_weight(v) + g.node_weight(e.to) > max_node_weight) {
      continue;
    }
    if (e.weight > best_weight ||
        (e.weight == best_weight && (best == kInvalidNode || e.to < best))) {
      best = e.to;
      best_weight = e.weight;
    }
  }
  return best;
}

/// Below this the scoring pass is cheaper than waking the pool.
constexpr std::size_t kParallelHemMinNodes = 512;

}  // namespace

std::vector<NodeId> heavy_edge_matching(const Graph& g, Rng& rng,
                                        Weight max_node_weight,
                                        ThreadPool* pool) {
  const std::size_t n = g.node_count();
  std::vector<NodeId> match(n);
  std::iota(match.begin(), match.end(), 0u);

  const auto order = rng.permutation(static_cast<std::uint32_t>(n));
  std::vector<bool> matched(n, false);

  // Parallel scoring pass: each node's heaviest cap-eligible neighbor,
  // ignoring matched state (which does not exist yet). The commit pass
  // below can use candidate[v] verbatim whenever it is still unmatched —
  // the best over all eligible neighbors is also the best over the
  // unmatched ones — and rescans otherwise, so the matching is
  // byte-identical to the serial one.
  std::vector<NodeId> candidate;
  if (pool != nullptr && pool->thread_count() > 1 &&
      n >= kParallelHemMinNodes) {
    candidate.assign(n, kInvalidNode);
    pool->parallel_for(n, 256, [&](std::size_t b, std::size_t e) {
      for (std::size_t v = b; v < e; ++v) {
        candidate[v] = best_neighbor(g, static_cast<NodeId>(v),
                                     max_node_weight,
                                     [](NodeId) { return true; });
      }
    });
  }

  // Sequential deterministic commit in rng order.
  const auto unmatched = [&](NodeId u) { return !matched[u]; };
  for (const NodeId v : order) {
    if (matched[v]) continue;
    NodeId best;
    if (!candidate.empty()) {
      const NodeId c = candidate[v];
      if (c == kInvalidNode) continue;  // no eligible neighbor at all
      best = !matched[c]
                 ? c
                 : best_neighbor(g, v, max_node_weight, unmatched);
    } else {
      best = best_neighbor(g, v, max_node_weight, unmatched);
    }
    if (best != kInvalidNode) {
      match[v] = best;
      match[best] = v;
      matched[v] = true;
      matched[best] = true;
    }
  }
  return match;
}

Graph contract(const Graph& g, const std::vector<NodeId>& matching,
               std::vector<NodeId>& parent) {
  const std::size_t n = g.node_count();
  FOCUS_CHECK(matching.size() == n, "matching size mismatch");

  parent.assign(n, kInvalidNode);
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] != kInvalidNode) continue;
    const NodeId partner = matching[v];
    FOCUS_ASSERT(matching[partner] == v, "matching is not symmetric");
    parent[v] = next;
    parent[partner] = next;  // partner == v for unmatched nodes
    ++next;
  }

  GraphBuilder builder(next, /*default_node_weight=*/1);
  std::vector<Weight> coarse_weight(next, 0);
  for (NodeId v = 0; v < n; ++v) coarse_weight[parent[v]] += g.node_weight(v);
  for (NodeId c = 0; c < next; ++c) builder.set_node_weight(c, coarse_weight[c]);

  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.neighbors(v)) {
      if (e.to < v) continue;  // each undirected edge once
      const NodeId cu = parent[v];
      const NodeId cv = parent[e.to];
      if (cu == cv) continue;  // contracted edge disappears
      builder.add_edge(cu, cv, e.weight);
    }
  }
  return builder.build();
}

GraphHierarchy build_multilevel(const Graph& g0, const CoarsenConfig& config) {
  FOCUS_CHECK(config.max_levels >= 1, "need at least one level");
  GraphHierarchy h;
  h.levels.push_back(g0);

  Rng rng(config.seed);
  const unsigned threads = resolve_thread_count(config.threads);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1 && g0.node_count() >= kParallelHemMinNodes) {
    pool = std::make_unique<ThreadPool>(threads);
  }
  while (h.levels.size() <= config.max_levels) {
    const Graph& fine = h.levels.back();
    if (fine.node_count() <= config.min_nodes) break;
    const auto matching =
        heavy_edge_matching(fine, rng, config.max_node_weight, pool.get());
    std::vector<NodeId> parent;
    Graph coarse = contract(fine, matching, parent);
    if (static_cast<double>(coarse.node_count()) >
        config.min_reduction * static_cast<double>(fine.node_count())) {
      break;  // stalled: nearly nothing matched
    }
    h.parent.push_back(std::move(parent));
    h.levels.push_back(std::move(coarse));
  }
  return h;
}

}  // namespace focus::graph
