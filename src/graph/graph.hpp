// Undirected weighted graph — the representation used for coarsening and
// partitioning (paper §II-C, §III, §IV).
//
// Nodes carry weights (the number of reads a node represents; 1 in G0) and
// edges carry weights (the overlap alignment length, summed when coarsening
// merges parallel edges). Adjacency is stored sorted by neighbor id, so
// iteration order — and therefore every algorithm built on top — is
// deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "align/overlap.hpp"
#include "common/types.hpp"

namespace focus::graph {

struct Edge {
  NodeId to = kInvalidNode;
  Weight weight = 0;
};

class Graph {
 public:
  Graph() = default;

  std::size_t node_count() const { return node_weight_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  Weight node_weight(NodeId v) const { return node_weight_[v]; }
  /// Sum of node weights over the whole graph.
  Weight total_node_weight() const { return total_node_weight_; }
  /// Sum of edge weights over undirected edges (each counted once).
  Weight total_edge_weight() const { return total_edge_weight_; }

  std::span<const Edge> neighbors(NodeId v) const {
    const std::size_t begin = offsets_[v];
    const std::size_t end = offsets_[v + 1];
    return {adjacency_.data() + begin, end - begin};
  }

  std::size_t degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sum of incident edge weights of v.
  Weight weighted_degree(NodeId v) const;

  /// Weight of edge (u, v), or 0 if absent. O(log deg(u)).
  Weight edge_weight(NodeId u, NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const { return edge_weight(u, v) > 0; }

 private:
  friend class GraphBuilder;

  std::vector<Weight> node_weight_;
  std::vector<std::size_t> offsets_;  // CSR offsets, size node_count()+1
  std::vector<Edge> adjacency_;       // sorted by `to` within each node
  std::size_t edge_count_ = 0;
  Weight total_node_weight_ = 0;
  Weight total_edge_weight_ = 0;
};

/// Accumulates nodes and edges, merging parallel edges by summing weights,
/// then produces an immutable CSR Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t node_count, Weight default_node_weight = 1);

  void set_node_weight(NodeId v, Weight w);

  /// Adds undirected edge (u, v). Self-loops are rejected. Parallel adds are
  /// merged with `combine` semantics at build time (weights summed).
  void add_edge(NodeId u, NodeId v, Weight weight);

  Graph build();

 private:
  std::size_t node_count_;
  std::vector<Weight> node_weight_;
  struct RawEdge {
    NodeId u, v;
    Weight weight;
  };
  std::vector<RawEdge> edges_;
};

/// Builds the overlap graph G0 from verified overlaps: one node per read
/// (weight 1), one undirected edge per overlapping read pair, weighted by the
/// overlap alignment length (paper §II-C). Duplicate pair records keep the
/// maximum length.
Graph build_overlap_graph(std::size_t read_count,
                          const std::vector<align::Overlap>& overlaps);

}  // namespace focus::graph
