#include "graph/hybrid.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace focus::graph {

std::vector<PartId> HybridGraphSet::project_to_reads(
    const std::vector<PartId>& hybrid_parts, std::size_t read_count) const {
  FOCUS_CHECK(hybrid_parts.size() == hybrid_graph().node_count(),
              "partition size does not match hybrid graph");
  std::vector<PartId> read_parts(read_count, kNoPart);
  for (NodeId h = 0; h < cluster_reads.size(); ++h) {
    for (const NodeId read : cluster_reads[h]) {
      FOCUS_ASSERT(read < read_count, "cluster read out of range");
      read_parts[read] = hybrid_parts[h];
    }
  }
  return read_parts;
}

namespace {

// Per-multilevel-level representative marks and stored layouts.
struct Selection {
  // is_rep[l][v]
  std::vector<std::vector<bool>> is_rep;
  // layouts keyed per level, only for representatives.
  std::vector<std::map<NodeId, std::vector<LayoutStep>>> layouts;
  std::vector<std::size_t> reps_per_level;
};

Selection select_representatives(const GraphHierarchy& ml,
                                 const ContiguityTester& tester) {
  const std::size_t depth = ml.depth();
  Selection sel;
  sel.is_rep.resize(depth);
  sel.layouts.resize(depth);
  sel.reps_per_level.assign(depth, 0);
  for (std::size_t l = 0; l < depth; ++l) {
    sel.is_rep[l].assign(ml.levels[l].node_count(), false);
  }

  // children[l][v] = level-l nodes whose parent (level l+1) is v.
  std::vector<std::vector<std::vector<NodeId>>> children(depth);
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    children[l + 1].resize(ml.levels[l + 1].node_count());
    for (NodeId v = 0; v < ml.levels[l].node_count(); ++v) {
      children[l + 1][ml.parent[l][v]].push_back(v);
    }
  }

  // Per-level cluster expansion (reads of each node).
  std::vector<std::vector<std::vector<NodeId>>> clusters(depth);
  for (std::size_t l = 0; l < depth; ++l) {
    clusters[l] = ml.expand_clusters(l);
  }

  // Top-down selection, iterative (explicit stack).
  std::vector<std::pair<std::size_t, NodeId>> stack;
  const std::size_t top = depth - 1;
  for (NodeId v = 0; v < ml.levels[top].node_count(); ++v) {
    stack.emplace_back(top, v);
  }
  while (!stack.empty()) {
    const auto [l, v] = stack.back();
    stack.pop_back();
    std::vector<LayoutStep> layout;
    if (l == 0 || tester.contiguous(clusters[l][v], &layout)) {
      if (l == 0) {
        // Single-read cluster: trivially contiguous.
        const bool ok = tester.contiguous(clusters[l][v], &layout);
        FOCUS_ASSERT(ok, "single-read cluster must be contiguous");
      }
      sel.is_rep[l][v] = true;
      sel.layouts[l].emplace(v, std::move(layout));
      ++sel.reps_per_level[l];
    } else {
      for (const NodeId c : children[l][v]) stack.emplace_back(l - 1, c);
    }
  }
  return sel;
}

}  // namespace

HybridGraphSet build_hybrid(const GraphHierarchy& ml,
                            const Digraph& read_graph,
                            std::vector<std::uint32_t> read_lengths) {
  FOCUS_CHECK(ml.depth() >= 1, "multilevel set is empty");
  const std::size_t depth = ml.depth();

  ContiguityTester tester(read_graph, std::move(read_lengths));
  Selection sel = select_representatives(ml, tester);

  HybridGraphSet out;
  out.reps_per_level = sel.reps_per_level;
  out.origin.resize(depth);
  out.hierarchy.levels.resize(depth);
  out.hierarchy.parent.resize(depth - 1);

  // anchor[l][v] = (rep level, rep node) covering multilevel node (l, v) when
  // some ancestor-or-self at level >= l is a representative; otherwise (l, v)
  // itself. Computed per level by walking the ancestor chain.
  // hybrid_id[l]: map from anchor (level,node) to the hybrid node id at
  // hybrid level l.
  std::vector<std::map<std::pair<std::uint32_t, NodeId>, NodeId>> hybrid_id(
      depth);
  // ml_to_hybrid[l][v] = hybrid node id (at hybrid level l) of ml node (l,v).
  std::vector<std::vector<NodeId>> ml_to_hybrid(depth);

  for (std::size_t l = 0; l < depth; ++l) {
    const std::size_t n = ml.levels[l].node_count();
    ml_to_hybrid[l].assign(n, kInvalidNode);
    for (NodeId v = 0; v < n; ++v) {
      // Find the representative on the ancestor chain starting at (l, v).
      std::uint32_t rep_level = static_cast<std::uint32_t>(l);
      NodeId rep_node = v;
      bool found = false;
      {
        std::size_t cl = l;
        NodeId cv = v;
        for (;;) {
          if (sel.is_rep[cl][cv]) {
            rep_level = static_cast<std::uint32_t>(cl);
            rep_node = cv;
            found = true;
            break;
          }
          if (cl + 1 >= depth) break;
          cv = ml.parent[cl][cv];
          ++cl;
        }
      }
      const std::pair<std::uint32_t, NodeId> key =
          found ? std::make_pair(rep_level, rep_node)
                : std::make_pair(static_cast<std::uint32_t>(l), v);
      auto [it, inserted] = hybrid_id[l].try_emplace(
          key, static_cast<NodeId>(hybrid_id[l].size()));
      ml_to_hybrid[l][v] = it->second;
    }
  }

  // Build each hybrid level's graph and origin table.
  for (std::size_t l = 0; l < depth; ++l) {
    const Graph& mlg = ml.levels[l];
    const std::size_t hn = hybrid_id[l].size();
    out.origin[l].resize(hn);
    for (const auto& [key, hid] : hybrid_id[l]) {
      out.origin[l][hid] = HybridOrigin{key.first, key.second};
    }

    GraphBuilder builder(hn);
    std::vector<Weight> node_weight(hn, 0);
    for (NodeId v = 0; v < mlg.node_count(); ++v) {
      node_weight[ml_to_hybrid[l][v]] += mlg.node_weight(v);
    }
    for (NodeId h = 0; h < hn; ++h) builder.set_node_weight(h, node_weight[h]);
    for (NodeId v = 0; v < mlg.node_count(); ++v) {
      for (const Edge& e : mlg.neighbors(v)) {
        if (e.to < v) continue;
        const NodeId hu = ml_to_hybrid[l][v];
        const NodeId hv = ml_to_hybrid[l][e.to];
        if (hu == hv) continue;
        builder.add_edge(hu, hv, e.weight);
      }
    }
    out.hierarchy.levels[l] = builder.build();
  }

  // Hybrid parent maps. A hybrid node at level l with origin (j, u):
  //   j > l  : it persists at level l+1 with the same origin;
  //   j == l : its multilevel parent's hybrid node at level l+1 is its parent
  //            (for l+1 < depth).
  for (std::size_t l = 0; l + 1 < depth; ++l) {
    const std::size_t hn = out.hierarchy.levels[l].node_count();
    auto& parent = out.hierarchy.parent[l];
    parent.assign(hn, kInvalidNode);
    for (NodeId h = 0; h < hn; ++h) {
      const HybridOrigin o = out.origin[l][h];
      if (o.ml_level > l) {
        const auto it = hybrid_id[l + 1].find({o.ml_level, o.ml_node});
        FOCUS_ASSERT(it != hybrid_id[l + 1].end(),
                     "persistent representative missing at coarser level");
        parent[h] = it->second;
      } else {
        const NodeId ml_parent = ml.parent[l][o.ml_node];
        parent[h] = ml_to_hybrid[l + 1][ml_parent];
      }
    }
  }

  // G'0 clusters and layouts.
  const auto clusters0 = [&] {
    // At hybrid level 0, every node's origin is a representative; expand its
    // multilevel cluster to reads.
    std::vector<std::vector<std::vector<NodeId>>> ml_clusters(depth);
    for (std::size_t l = 0; l < depth; ++l) {
      ml_clusters[l] = ml.expand_clusters(l);
    }
    const std::size_t hn = out.hierarchy.levels[0].node_count();
    std::vector<std::vector<NodeId>> reads(hn);
    for (NodeId h = 0; h < hn; ++h) {
      const HybridOrigin o = out.origin[0][h];
      reads[h] = ml_clusters[o.ml_level][o.ml_node];
    }
    return reads;
  }();
  out.cluster_reads = clusters0;

  out.layouts.resize(out.cluster_reads.size());
  for (NodeId h = 0; h < out.cluster_reads.size(); ++h) {
    const HybridOrigin o = out.origin[0][h];
    const auto it = sel.layouts[o.ml_level].find(o.ml_node);
    FOCUS_ASSERT(it != sel.layouts[o.ml_level].end(),
                 "hybrid-graph node without a stored layout");
    out.layouts[h] = it->second;
  }

  out.selection_work = tester.work();
  return out;
}

}  // namespace focus::graph
