// Directed overlap (assembly) graph over reads.
//
// Because preprocessing adds the reverse complement of every read to the set
// (paper §II-A), all overlaps are forward-forward and a suffix→prefix overlap
// q→r means "r continues q to the right". Containments are kept out of the
// edge set and recorded separately — a contained read adds no layout
// information.
//
// This graph drives the contiguity test behind best-representative selection
// (§II-D) and contig sequence construction.
#pragma once

#include <span>
#include <vector>

#include "align/overlap.hpp"
#include "common/types.hpp"

namespace focus::graph {

struct DiEdge {
  NodeId to = kInvalidNode;
  /// Overlap alignment length between the two reads.
  Weight overlap = 0;
};

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count)
      : out_(node_count), in_(node_count), contained_(node_count, false) {}

  std::size_t node_count() const { return out_.size(); }

  void add_edge(NodeId from, NodeId to, Weight overlap);

  std::span<const DiEdge> out_edges(NodeId v) const { return out_[v]; }
  std::span<const DiEdge> in_edges(NodeId v) const { return in_[v]; }
  std::size_t out_degree(NodeId v) const { return out_[v].size(); }
  std::size_t in_degree(NodeId v) const { return in_[v].size(); }

  void mark_contained(NodeId v) { contained_[v] = true; }
  bool is_contained(NodeId v) const { return contained_[v]; }

  /// Sorts adjacency lists by (to, overlap) for deterministic iteration.
  /// Call once after all edges are added.
  void finalize();

  std::size_t edge_count() const { return edge_count_; }

 private:
  std::vector<std::vector<DiEdge>> out_;
  std::vector<std::vector<DiEdge>> in_;
  std::vector<bool> contained_;
  std::size_t edge_count_ = 0;
};

/// Builds the directed read graph from verified overlaps: suffix/prefix
/// overlaps become directed edges; containment overlaps mark the contained
/// read. Duplicate pair records are collapsed (maximum overlap wins).
Digraph build_read_digraph(std::size_t read_count,
                           const std::vector<align::Overlap>& overlaps);

}  // namespace focus::graph
