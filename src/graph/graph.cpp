#include "graph/graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace focus::graph {

Weight Graph::weighted_degree(NodeId v) const {
  Weight sum = 0;
  for (const Edge& e : neighbors(v)) sum += e.weight;
  return sum;
}

Weight Graph::edge_weight(NodeId u, NodeId v) const {
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Edge& e, NodeId target) { return e.to < target; });
  if (it != adj.end() && it->to == v) return it->weight;
  return 0;
}

GraphBuilder::GraphBuilder(std::size_t node_count, Weight default_node_weight)
    : node_count_(node_count),
      node_weight_(node_count, default_node_weight) {}

void GraphBuilder::set_node_weight(NodeId v, Weight w) {
  FOCUS_CHECK(v < node_count_, "node id out of range");
  FOCUS_CHECK(w > 0, "node weight must be positive");
  node_weight_[v] = w;
}

void GraphBuilder::add_edge(NodeId u, NodeId v, Weight weight) {
  FOCUS_CHECK(u < node_count_ && v < node_count_, "edge endpoint out of range");
  FOCUS_CHECK(u != v, "self-loops are not allowed");
  FOCUS_CHECK(weight > 0, "edge weight must be positive");
  edges_.push_back(RawEdge{u, v, weight});
}

Graph GraphBuilder::build() {
  // Canonicalize, sort, and merge parallel edges.
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(), [](const RawEdge& a, const RawEdge& b) {
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  std::vector<RawEdge> merged;
  merged.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!merged.empty() && merged.back().u == e.u && merged.back().v == e.v) {
      merged.back().weight += e.weight;
    } else {
      merged.push_back(e);
    }
  }

  Graph g;
  g.node_weight_ = node_weight_;
  g.total_node_weight_ = 0;
  for (const Weight w : g.node_weight_) g.total_node_weight_ += w;
  g.edge_count_ = merged.size();
  g.total_edge_weight_ = 0;

  // Degree counting for CSR layout (each undirected edge appears twice).
  std::vector<std::size_t> degree(node_count_, 0);
  for (const auto& e : merged) {
    ++degree[e.u];
    ++degree[e.v];
    g.total_edge_weight_ += e.weight;
  }
  g.offsets_.assign(node_count_ + 1, 0);
  for (std::size_t v = 0; v < node_count_; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.adjacency_.resize(g.offsets_.back());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : merged) {
    g.adjacency_[cursor[e.u]++] = Edge{e.v, e.weight};
    g.adjacency_[cursor[e.v]++] = Edge{e.u, e.weight};
  }
  // Merged edges were emitted in sorted (u, v) order, so each node's
  // adjacency is already sorted by neighbor id — except contributions from
  // the reverse direction interleave; sort each range to guarantee order.
  for (std::size_t v = 0; v < node_count_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]),
              [](const Edge& a, const Edge& b) { return a.to < b.to; });
  }
  return g;
}

Graph build_overlap_graph(std::size_t read_count,
                          const std::vector<align::Overlap>& overlaps) {
  GraphBuilder builder(read_count, /*default_node_weight=*/1);
  // Deduplicate by canonical pair, keeping the maximum alignment length; the
  // aligner already dedupes, but the graph layer re-checks so it can be fed
  // from any overlap source.
  std::vector<align::Overlap> canon;
  canon.reserve(overlaps.size());
  for (const auto& o : overlaps) canon.push_back(align::canonicalized(o));
  std::sort(canon.begin(), canon.end(),
            [](const align::Overlap& a, const align::Overlap& b) {
              if (a.query != b.query) return a.query < b.query;
              if (a.ref != b.ref) return a.ref < b.ref;
              return a.length > b.length;
            });
  const align::Overlap* prev = nullptr;
  for (const auto& o : canon) {
    FOCUS_CHECK(o.query < read_count && o.ref < read_count,
                "overlap references an unknown read");
    if (prev != nullptr && prev->query == o.query && prev->ref == o.ref) {
      continue;
    }
    builder.add_edge(o.query, o.ref, static_cast<Weight>(o.length));
    prev = &o;
  }
  return builder.build();
}

}  // namespace focus::graph
