// Hybrid graph set construction (paper §II-D, §III; Fig. 1B).
//
// Starting from the most reduced multilevel graph, each node's read cluster
// is tested for contiguity. Contiguous clusters become *best representative*
// nodes; non-contiguous nodes are expanded into their children and the test
// recurses. Level-0 nodes (single reads) are trivially contiguous, so every
// read ends up covered by exactly one representative.
//
// The hybrid graph set G' = {G'0 … G'n} mirrors the multilevel set with each
// representative frozen as a single node from its selection level downward:
// G'i contains every representative chosen at multilevel levels >= i plus the
// still-uncovered nodes of level i. G'0 — the *hybrid graph* — consists of
// exactly the representatives. Partitioning G' instead of the full
// multilevel set is the paper's "biological knowledge" shortcut: reads whose
// cluster is known to form one contig never need to be uncoarsened apart.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/coarsen.hpp"
#include "graph/contiguity.hpp"

namespace focus::graph {

/// Which multilevel node a hybrid node came from.
struct HybridOrigin {
  std::uint32_t ml_level = 0;
  NodeId ml_node = kInvalidNode;
};

struct HybridGraphSet {
  /// levels[0] = the hybrid graph G'0; same depth as the multilevel set.
  GraphHierarchy hierarchy;
  /// origin[l][h]: multilevel provenance of hybrid node h at hybrid level l.
  std::vector<std::vector<HybridOrigin>> origin;
  /// For each G'0 node: the finest-level (read) node ids it represents.
  std::vector<std::vector<NodeId>> cluster_reads;
  /// For each G'0 node: the contig layout of its cluster (path order).
  std::vector<std::vector<LayoutStep>> layouts;
  /// reps_per_level[j] = number of representatives selected at ml level j.
  std::vector<std::size_t> reps_per_level;
  /// Work units spent on contiguity testing during construction.
  double selection_work = 0.0;

  const Graph& hybrid_graph() const { return hierarchy.levels.front(); }

  /// Maps a partition of the hybrid graph G'0 to the overlap graph G0:
  /// every read inherits the partition of its representative.
  std::vector<PartId> project_to_reads(const std::vector<PartId>& hybrid_parts,
                                       std::size_t read_count) const;
};

/// Builds the hybrid graph set from the multilevel set and the directed read
/// graph (used by the contiguity test).
HybridGraphSet build_hybrid(const GraphHierarchy& multilevel,
                            const Digraph& read_graph,
                            std::vector<std::uint32_t> read_lengths);

}  // namespace focus::graph
