#include "graph/graph_store.hpp"

#include <atomic>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/checksum.hpp"
#include "common/env.hpp"
#include "common/error.hpp"

namespace focus::graph {

namespace {

constexpr std::uint32_t kSliceMagic = 0x434c5346u;  // "FSLC" little-endian
constexpr std::uint32_t kSliceVersion = 1;
constexpr std::size_t kSliceHeaderBytes = 20;  // magic, version, size, crc

void put_le_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_le_u64(std::uint8_t* out, std::uint64_t v) {
  put_le_u32(out, static_cast<std::uint32_t>(v));
  put_le_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_le_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_le_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_le_u32(in)) |
         (static_cast<std::uint64_t>(get_le_u32(in + 4)) << 32);
}

std::atomic<std::uint64_t> g_spill_dir_counter{0};

}  // namespace

GraphStoreConfig GraphStoreConfig::from_env() {
  return from_env(EnvSnapshot::capture());
}

GraphStoreConfig GraphStoreConfig::from_env(const EnvSnapshot& env) {
  GraphStoreConfig config;
  if (env.graph_backend.has_value() && !env.graph_backend->empty()) {
    const std::string& name = *env.graph_backend;
    if (name == "memory") {
      config.backend = GraphStoreBackend::kInMemory;
    } else if (name == "csr-spill" || name == "csr_spill") {
      config.backend = GraphStoreBackend::kCsrSpill;
    } else {
      FOCUS_THROW("FOCUS_GRAPH_BACKEND: unknown backend '" + name +
                  "' (expected 'memory' or 'csr-spill')");
    }
  }
  if (env.graph_mem_budget.has_value() && !env.graph_mem_budget->empty()) {
    config.mem_budget_bytes = parse_mem_size(*env.graph_mem_budget);
  }
  if (env.graph_spill_dir.has_value() && !env.graph_spill_dir->empty()) {
    config.spill_dir = *env.graph_spill_dir;
  }
  if (env.graph_write_fault.has_value() && !env.graph_write_fault->empty()) {
    // focus::env::parse_u64 rejects signs, trailing junk and overflow with a
    // typed error naming the value — a raw std::stoull would let a malformed
    // knob escape as std::invalid_argument / std::out_of_range.
    config.write_fault_nth =
        focus::env::parse_u64("FOCUS_GRAPH_WRITE_FAULT",
                              *env.graph_write_fault);
  }
  return config;
}

std::size_t parse_mem_size(const std::string& text) {
  FOCUS_CHECK(!text.empty(), "memory size: empty string");
  // Digits only before the optional unit suffix: std::stoull would accept a
  // leading sign ("-5M" wraps to a huge budget) and whitespace.
  std::size_t pos = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
  FOCUS_CHECK(pos > 0, "memory size: cannot parse '" + text + "'");
  unsigned long long value = 0;
  try {
    value = std::stoull(text.substr(0, pos));
  } catch (const std::exception&) {
    FOCUS_THROW("memory size: out of range '" + text + "'");
  }
  std::size_t factor = 1;
  if (pos < text.size()) {
    FOCUS_CHECK(pos + 1 == text.size(),
                "memory size: trailing garbage in '" + text + "'");
    switch (text[pos]) {
      case 'k': case 'K': factor = std::size_t{1} << 10; break;
      case 'm': case 'M': factor = std::size_t{1} << 20; break;
      case 'g': case 'G': factor = std::size_t{1} << 30; break;
      default:
        FOCUS_THROW("memory size: unknown suffix in '" + text +
                    "' (expected K, M or G)");
    }
  }
  FOCUS_CHECK(factor == 1 ||
                  value <= std::numeric_limits<std::size_t>::max() / factor,
              "memory size: out of range '" + text + "'");
  return static_cast<std::size_t>(value) * factor;
}

SpillManager::SpillManager(const GraphStoreConfig& config)
    : budget_(config.mem_budget_bytes),
      write_fault_at_(config.write_fault_nth) {
  std::filesystem::path base = config.spill_dir.empty()
                                   ? std::filesystem::temp_directory_path()
                                   : std::filesystem::path(config.spill_dir);
  const std::uint64_t tag =
      g_spill_dir_counter.fetch_add(1, std::memory_order_relaxed);
  dir_ = base / ("focus-graph-store-" + std::to_string(tag) + "-" +
                 std::to_string(reinterpret_cast<std::uintptr_t>(this)));
  std::filesystem::create_directories(dir_);
  owns_dir_ = true;
}

SpillManager::~SpillManager() {
  if (owns_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort
  }
}

std::filesystem::path SpillManager::slice_path(std::uint32_t id) const {
  return dir_ / ("slice_" + std::to_string(id) + ".fsl");
}

void SpillManager::insert(std::uint32_t id, std::vector<std::uint8_t> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  FOCUS_ASSERT(entries_.find(id) == entries_.end(),
               "graph store: duplicate slice id");
  Entry entry;
  entry.bytes = payload.size();
  entry.payload =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(payload));
  lru_.push_front(id);
  entry.lru = lru_.begin();
  stats_.slices += 1;
  stats_.bytes_total += entry.bytes;
  stats_.resident_bytes += entry.bytes;
  if (stats_.resident_bytes > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = stats_.resident_bytes;
  }
  entries_.emplace(id, std::move(entry));
  make_resident_room_locked(0);
}

SpillManager::Blob SpillManager::fetch(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  FOCUS_ASSERT(it != entries_.end(), "graph store: unknown slice id");
  Entry& entry = it->second;
  if (entry.payload != nullptr) {
    lru_.erase(entry.lru);
    lru_.push_front(id);
    entry.lru = lru_.begin();
    return entry.payload;
  }
  Blob blob = load_slice_locked(id, entry);
  entry.payload = blob;
  lru_.push_front(id);
  entry.lru = lru_.begin();
  stats_.loads += 1;
  stats_.resident_bytes += entry.bytes;
  if (stats_.resident_bytes > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = stats_.resident_bytes;
  }
  make_resident_room_locked(0);
  return blob;
}

void SpillManager::evict_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  while (!lru_.empty()) evict_one_locked();
}

void SpillManager::set_write_fault(std::uint64_t nth_write) {
  std::lock_guard<std::mutex> lock(mu_);
  write_fault_at_ = nth_write;
}

SpillStats SpillManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SpillManager::make_resident_room_locked(std::size_t incoming) const {
  if (budget_ == 0) return;  // unlimited
  while (stats_.resident_bytes + incoming > budget_ && !lru_.empty()) {
    evict_one_locked();
  }
}

void SpillManager::evict_one_locked() const {
  FOCUS_ASSERT(!lru_.empty(), "graph store: eviction with no resident slice");
  const std::uint32_t victim = lru_.back();
  Entry& entry = entries_.at(victim);
  if (!entry.on_disk) write_slice_locked(victim, entry);
  entry.payload.reset();
  lru_.pop_back();
  stats_.evictions += 1;
  stats_.resident_bytes -= entry.bytes;
}

void SpillManager::write_slice_locked(std::uint32_t id, Entry& entry) const {
  FOCUS_ASSERT(entry.payload != nullptr,
               "graph store: writing an evicted slice");
  const std::vector<std::uint8_t>& payload = *entry.payload;
  std::uint8_t header[kSliceHeaderBytes];
  put_le_u32(header + 0, kSliceMagic);
  put_le_u32(header + 4, kSliceVersion);
  put_le_u64(header + 8, payload.size());
  put_le_u32(header + 16, common::crc32(payload.data(), payload.size()));

  const std::filesystem::path final_path = slice_path(id);
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";
  for (int attempt = 0;; ++attempt) {
    stats_.writes += 1;
    const bool inject_fault =
        write_fault_at_ != 0 && stats_.writes == write_fault_at_;
    {
      std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
      FOCUS_CHECK(out.good(), "graph store: cannot open slice file " +
                                  tmp_path.string());
      out.write(reinterpret_cast<const char*>(header), kSliceHeaderBytes);
      // An injected fault models a crash mid-write: only part of the payload
      // reaches the temp file, which is then discarded and the write retried
      // — the atomic rename below never sees the partial file.
      const std::size_t n = inject_fault ? payload.size() / 2 : payload.size();
      out.write(reinterpret_cast<const char*>(payload.data()),
                static_cast<std::streamsize>(n));
      out.flush();
      FOCUS_CHECK(out.good(), "graph store: short write to slice file " +
                                  tmp_path.string());
    }
    if (!inject_fault) break;
    std::error_code ec;
    std::filesystem::remove(tmp_path, ec);
    stats_.write_retries += 1;
    FOCUS_CHECK(attempt == 0, "graph store: repeated write faults on slice " +
                                  final_path.string());
  }
  std::filesystem::rename(tmp_path, final_path);
  entry.on_disk = true;
}

SpillManager::Blob SpillManager::load_slice_locked(std::uint32_t id,
                                                   Entry& entry) const {
  const std::filesystem::path path = slice_path(id);
  std::ifstream in(path, std::ios::binary);
  FOCUS_CHECK(in.good(),
              "graph store: cannot open slice file " + path.string());
  std::uint8_t header[kSliceHeaderBytes];
  in.read(reinterpret_cast<char*>(header), kSliceHeaderBytes);
  FOCUS_CHECK(in.gcount() == static_cast<std::streamsize>(kSliceHeaderBytes),
              "graph store: truncated slice header in " + path.string());
  FOCUS_CHECK(get_le_u32(header + 0) == kSliceMagic,
              "graph store: bad slice magic in " + path.string());
  FOCUS_CHECK(get_le_u32(header + 4) == kSliceVersion,
              "graph store: unsupported slice version in " + path.string());
  const std::uint64_t payload_size = get_le_u64(header + 8);
  const std::uint32_t expected_crc = get_le_u32(header + 16);
  FOCUS_CHECK(payload_size == entry.bytes,
              "graph store: slice size mismatch in " + path.string());
  auto payload = std::make_shared<std::vector<std::uint8_t>>(payload_size);
  in.read(reinterpret_cast<char*>(payload->data()),
          static_cast<std::streamsize>(payload_size));
  FOCUS_CHECK(in.gcount() == static_cast<std::streamsize>(payload_size),
              "graph store: truncated slice payload in " + path.string());
  const std::uint32_t crc = common::crc32(payload->data(), payload->size());
  FOCUS_CHECK(crc == expected_crc,
              "graph store: slice checksum mismatch in " + path.string());
  return payload;
}

void SliceWriter::put_u32(std::uint32_t v) {
  const std::size_t off = bytes_.size();
  bytes_.resize(off + 4);
  put_le_u32(bytes_.data() + off, v);
}

void SliceWriter::put_u64(std::uint64_t v) {
  const std::size_t off = bytes_.size();
  bytes_.resize(off + 8);
  put_le_u64(bytes_.data() + off, v);
}

std::uint8_t slice_u8(const std::vector<std::uint8_t>& blob, std::size_t off) {
  FOCUS_ASSERT(off < blob.size(), "graph store: slice read out of bounds");
  return blob[off];
}

std::uint32_t slice_u32(const std::vector<std::uint8_t>& blob,
                        std::size_t off) {
  FOCUS_ASSERT(off + 4 <= blob.size(),
               "graph store: slice read out of bounds");
  return get_le_u32(blob.data() + off);
}

std::uint64_t slice_u64(const std::vector<std::uint8_t>& blob,
                        std::size_t off) {
  FOCUS_ASSERT(off + 8 <= blob.size(),
               "graph store: slice read out of bounds");
  return get_le_u64(blob.data() + off);
}

void HierarchySpill::spill_level(std::size_t level, const Graph& g) {
  FOCUS_ASSERT(level == levels_, "hierarchy spill: levels must be sequential");
  SliceWriter w;
  const std::size_t n = g.node_count();
  w.put_u32(static_cast<std::uint32_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    w.put_i64(g.node_weight(v));
  }
  // Each undirected edge appears in both endpoints' adjacency; serialize the
  // u < v direction only so GraphBuilder's merge-by-sum does not double it.
  std::uint64_t m = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.neighbors(v)) {
      if (v < e.to) ++m;
    }
  }
  w.put_u64(m);
  for (NodeId v = 0; v < n; ++v) {
    for (const Edge& e : g.neighbors(v)) {
      if (v < e.to) {
        w.put_u32(v);
        w.put_u32(e.to);
        w.put_i64(e.weight);
      }
    }
  }
  manager_->insert(id_base_ + static_cast<std::uint32_t>(level), w.take());
  levels_ += 1;
}

Graph HierarchySpill::load_level(std::size_t level) const {
  FOCUS_ASSERT(level < levels_, "hierarchy spill: unknown level");
  SpillManager::Blob blob =
      manager_->fetch(id_base_ + static_cast<std::uint32_t>(level));
  const std::vector<std::uint8_t>& b = *blob;
  std::size_t off = 0;
  const std::uint32_t n = slice_u32(b, off);
  off += 4;
  GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    builder.set_node_weight(v, static_cast<Weight>(slice_u64(b, off)));
    off += 8;
  }
  const std::uint64_t m = slice_u64(b, off);
  off += 8;
  for (std::uint64_t i = 0; i < m; ++i) {
    const NodeId u = slice_u32(b, off);
    const NodeId v = slice_u32(b, off + 4);
    const Weight weight = static_cast<Weight>(slice_u64(b, off + 8));
    off += 16;
    builder.add_edge(u, v, weight);
  }
  return builder.build();
}

}  // namespace focus::graph
