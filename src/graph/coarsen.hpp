// Graph coarsening by heavy-edge matching (paper §II-C, §III; Karypis &
// Kumar [15]).
//
// One coarsening step finds a matching M on G by visiting nodes in random
// order and matching each unmatched node with its unmatched neighbor of
// maximum edge weight ("heavy edge matching"), then contracts matched pairs:
// node weights add, parallel edges merge with summed weights. Iterating
// produces the multilevel graph set G = {G0, G1, …, Gn} with
// |V(Gn)| <= … <= |V(G0)|.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::graph {

/// A hierarchy of graphs: levels[0] is the finest; parent[l][v] gives the
/// level-(l+1) node that level-l node v was merged into (parent.size() ==
/// levels.size() - 1). Both the multilevel and the hybrid graph set take
/// this shape, so the partitioner works on either.
struct GraphHierarchy {
  std::vector<Graph> levels;
  std::vector<std::vector<NodeId>> parent;

  std::size_t depth() const { return levels.size(); }
  const Graph& finest() const { return levels.front(); }
  const Graph& coarsest() const { return levels.back(); }

  /// Maps every level-`level` node to its constituent finest-level nodes.
  std::vector<std::vector<NodeId>> expand_clusters(std::size_t level) const;

  /// Ancestor of finest-level node v at `level`.
  NodeId ancestor_at(NodeId v, std::size_t level) const;
};

struct CoarsenConfig {
  /// Stop when the coarsest graph has at most this many nodes…
  std::size_t min_nodes = 64;
  /// …or after this many coarsening steps (paper's runs had ~10 levels)…
  std::size_t max_levels = 10;
  /// …or when a step shrinks the node count by less than this factor
  /// (coarsening has stalled, e.g. on a star graph).
  double min_reduction = 0.95;
  /// When positive, a match is rejected if the merged node would exceed this
  /// weight (Karypis & Kumar's maxvwgt: prevents coarse nodes so heavy that
  /// no balanced partition of the coarsest graph exists). The assembly
  /// pipeline leaves this unlimited — growing clusters is the point of the
  /// hybrid graph — while the partitioner's internal re-coarsening caps it.
  Weight max_node_weight = 0;
  std::uint64_t seed = 1;
  /// Real host threads for candidate scoring inside heavy-edge matching:
  /// 1 = serial (the default — coarsening also runs inside mpr rank threads
  /// and inside the partitioner's per-region re-coarsening, where extra
  /// pools would oversubscribe), 0 = auto (FOCUS_THREADS env var, else
  /// hardware concurrency). The matching is byte-identical for every value.
  unsigned threads = 1;
};

/// Heavy-edge matching: returns match[v] = partner (or v itself when
/// unmatched). Deterministic given the rng state. `max_node_weight`
/// (positive) rejects matches whose merged weight would exceed the cap.
/// When `pool` is non-null (and wider than one thread), the heavy
/// best-neighbor scoring pass runs on the pool and the commit pass stays
/// sequential in rng order, so the result is byte-identical to the serial
/// matching.
std::vector<NodeId> heavy_edge_matching(const Graph& g, Rng& rng,
                                        Weight max_node_weight = 0,
                                        ThreadPool* pool = nullptr);

/// Contracts a matching: fills `parent` (fine -> coarse id) and returns the
/// coarse graph.
Graph contract(const Graph& g, const std::vector<NodeId>& matching,
               std::vector<NodeId>& parent);

/// Builds the multilevel graph set by repeated HEM + contraction.
GraphHierarchy build_multilevel(const Graph& g0, const CoarsenConfig& config);

}  // namespace focus::graph
