// Out-of-core graph storage: partition-granular slices spilled to CRC-checked
// files under an LRU residency budget (ROADMAP item 2, DESIGN.md §8).
//
// A "slice" is an immutable byte blob — the CSR adjacency plus 2-bit packed
// contig payload of one assembly-graph partition (dist/stored_graph.*), or one
// serialized level of a coarsening hierarchy (HierarchySpill below). The
// SpillManager owns residency: a slice enters resident, the LRU walk evicts
// the coldest slices to disk once the byte budget is exceeded, and a fetch
// transparently reloads and CRC-verifies the file. Slices are immutable after
// sealing, so a slice file is written at most once (first eviction) and later
// evictions just drop the resident copy; all mutation state — removed flags,
// verified overlaps — lives in small resident overlays owned by the stored
// graph, never in the slice.
//
// File format (one slice per file): a fixed header of four little-endian
// fields — magic "FSLC", format version, payload byte count, CRC-32 of the
// payload (the same IEEE CRC-32 the mpr message frames use,
// common/checksum.hpp) — followed by the raw payload bytes. A truncated file
// or a CRC mismatch raises focus::Error naming the file; writes go through a
// temp file + atomic rename so a crash mid-write never leaves a plausible
// half slice behind.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus {
struct EnvSnapshot;
}

namespace focus::graph {

/// Storage backend of the assembly-graph phases (FocusConfig::graph_store).
/// kInMemory is the historical dist::AsmGraph path; kCsrSpill routes the
/// graph phases through dist::StoredAsmGraph, whose partition slices live
/// under a SpillManager. Both produce byte-identical assemblies
/// (tests/graph_store_test.cpp).
enum class GraphStoreBackend {
  kInMemory,
  kCsrSpill,
};

struct GraphStoreConfig {
  GraphStoreBackend backend = GraphStoreBackend::kInMemory;
  /// Resident-slice byte budget for kCsrSpill; 0 = unlimited (slices are
  /// still CRC-framed but never evicted).
  std::size_t mem_budget_bytes = 0;
  /// Directory for slice files; empty = the system temp directory. Each
  /// SpillManager creates (and removes on destruction) a unique subdirectory.
  std::string spill_dir;
  /// Inject one simulated mid-write crash on the nth slice write of every
  /// SpillManager built from this config (1-based; 0 = off). The partial
  /// temp file is discarded and the write retried — outputs are unchanged,
  /// stats().write_retries counts the injection. Lets fault soaks exercise
  /// the disk-fault recovery path through drivers that construct their
  /// SpillManagers internally (the assembler's kCsrSpill stages).
  std::uint64_t write_fault_nth = 0;

  /// Reads FOCUS_GRAPH_BACKEND ('memory' | 'csr-spill'; unset/empty =
  /// memory), FOCUS_GRAPH_MEM_BUDGET (bytes, optional K/M/G suffix),
  /// FOCUS_GRAPH_SPILL_DIR and FOCUS_GRAPH_WRITE_FAULT (nth-write crash
  /// injection, a non-negative integer). Unknown backend names and
  /// malformed numbers throw.
  static GraphStoreConfig from_env();
  /// Same, resolved against an already-captured snapshot (FocusConfig takes
  /// one snapshot and derives every env default from it).
  static GraphStoreConfig from_env(const EnvSnapshot& env);
};

/// Parses a byte size with an optional K/M/G suffix (power-of-two units):
/// "65536", "64K", "48M", "2G". Malformed input throws.
std::size_t parse_mem_size(const std::string& text);

struct SpillStats {
  std::uint64_t slices = 0;        ///< slices ever inserted
  std::uint64_t bytes_total = 0;   ///< sum of all slice payload sizes
  std::uint64_t writes = 0;        ///< slice files written (write-once)
  std::uint64_t write_retries = 0; ///< injected write faults retried
  std::uint64_t evictions = 0;     ///< resident payloads dropped
  std::uint64_t loads = 0;         ///< reloads from disk (CRC-verified)
  std::uint64_t resident_bytes = 0;
  std::uint64_t peak_resident_bytes = 0;
};

/// Thread-safe LRU residency manager for immutable slices. Keys are caller
/// chosen (the stored graph uses partition ids; HierarchySpill offsets level
/// numbers). All methods are safe to call concurrently from mpr rank threads.
class SpillManager {
 public:
  using Blob = std::shared_ptr<const std::vector<std::uint8_t>>;

  explicit SpillManager(const GraphStoreConfig& config);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Seals `payload` as slice `id` (must be fresh). The slice starts
  /// resident; inserting may evict colder slices past the budget. A slice
  /// larger than the whole budget is written out and dropped immediately.
  void insert(std::uint32_t id, std::vector<std::uint8_t> payload);

  /// Returns the payload of slice `id`, reloading and CRC-verifying its file
  /// if it was evicted. The returned shared_ptr keeps the payload alive even
  /// if the slice is evicted again while the caller holds it.
  Blob fetch(std::uint32_t id) const;

  /// Path of the slice file `id` would occupy on disk (exists only once the
  /// slice has been evicted at least once). Exposed for the fault tests.
  std::filesystem::path slice_path(std::uint32_t id) const;

  /// Drops every resident payload (writing files first where needed),
  /// regardless of budget. Exposed for the fault tests.
  void evict_all() const;

  /// Test hook: the n-th upcoming slice-file write (1-based) fails once,
  /// leaving a partial temp file behind; the manager must clean up and
  /// retry. 0 disables.
  void set_write_fault(std::uint64_t nth_write);

  SpillStats stats() const;
  std::size_t budget_bytes() const { return budget_; }

 private:
  struct Entry {
    Blob payload;        // null when evicted
    bool on_disk = false;
    std::size_t bytes = 0;
    std::list<std::uint32_t>::iterator lru;  // valid only while resident
  };

  void make_resident_room_locked(std::size_t incoming) const;
  void evict_one_locked() const;
  void write_slice_locked(std::uint32_t id, Entry& entry) const;
  Blob load_slice_locked(std::uint32_t id, Entry& entry) const;

  std::size_t budget_;
  std::filesystem::path dir_;
  bool owns_dir_ = false;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint32_t, Entry> entries_;
  mutable std::list<std::uint32_t> lru_;  // front = most recently used
  mutable SpillStats stats_;
  mutable std::uint64_t write_fault_at_ = 0;  // 1-based write index; 0 = off
};

/// Append-only little-endian payload builder for slice blobs.
class SliceWriter {
 public:
  std::vector<std::uint8_t>& bytes() { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked random-access reads over a slice payload.
std::uint8_t slice_u8(const std::vector<std::uint8_t>& blob, std::size_t off);
std::uint32_t slice_u32(const std::vector<std::uint8_t>& blob,
                        std::size_t off);
std::uint64_t slice_u64(const std::vector<std::uint8_t>& blob,
                        std::size_t off);

/// Level-granular spill for a coarsening hierarchy: levels of a
/// graph::GraphHierarchy are serialized (node weights + undirected edges)
/// into slices of a shared SpillManager, so a pipeline that has finished
/// with a level — coarsening and partitioning touch levels strictly in
/// sequence — can drop it from RAM and reload it on demand. `id_base`
/// namespaces the level keys so several hierarchies (and the assembly-graph
/// partitions) can share one manager.
class HierarchySpill {
 public:
  HierarchySpill(SpillManager& manager, std::uint32_t id_base)
      : manager_(&manager), id_base_(id_base) {}

  /// Serializes `g` as level `level` and seals it. The caller drops its
  /// in-RAM copy afterwards.
  void spill_level(std::size_t level, const Graph& g);

  /// Reloads level `level`; byte-identical reconstruction of the spilled
  /// graph (CSR adjacency is rebuilt through GraphBuilder, whose output is
  /// deterministic).
  Graph load_level(std::size_t level) const;

  std::size_t levels() const { return levels_; }

 private:
  SpillManager* manager_;
  std::uint32_t id_base_;
  std::size_t levels_ = 0;
};

}  // namespace focus::graph
