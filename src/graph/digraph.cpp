#include "graph/digraph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace focus::graph {

void Digraph::add_edge(NodeId from, NodeId to, Weight overlap) {
  FOCUS_CHECK(from < out_.size() && to < out_.size(),
              "digraph edge endpoint out of range");
  FOCUS_CHECK(from != to, "digraph self-loops are not allowed");
  out_[from].push_back(DiEdge{to, overlap});
  in_[to].push_back(DiEdge{from, overlap});
  ++edge_count_;
}

void Digraph::finalize() {
  auto by_target = [](const DiEdge& a, const DiEdge& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.overlap > b.overlap;
  };
  for (auto& edges : out_) std::sort(edges.begin(), edges.end(), by_target);
  for (auto& edges : in_) std::sort(edges.begin(), edges.end(), by_target);
}

Digraph build_read_digraph(std::size_t read_count,
                           const std::vector<align::Overlap>& overlaps) {
  Digraph g(read_count);
  // Collapse duplicates on canonical orientation first.
  std::vector<align::Overlap> canon;
  canon.reserve(overlaps.size());
  for (const auto& o : overlaps) canon.push_back(align::canonicalized(o));
  std::sort(canon.begin(), canon.end(),
            [](const align::Overlap& a, const align::Overlap& b) {
              if (a.query != b.query) return a.query < b.query;
              if (a.ref != b.ref) return a.ref < b.ref;
              return a.length > b.length;
            });
  const align::Overlap* prev = nullptr;
  for (const auto& o : canon) {
    if (prev != nullptr && prev->query == o.query && prev->ref == o.ref) {
      continue;
    }
    prev = &o;
    switch (o.kind) {
      case align::OverlapKind::kSuffixPrefix:
        g.add_edge(o.query, o.ref, static_cast<Weight>(o.length));
        break;
      case align::OverlapKind::kPrefixSuffix:
        g.add_edge(o.ref, o.query, static_cast<Weight>(o.length));
        break;
      case align::OverlapKind::kQueryContained:
        g.mark_contained(o.query);
        break;
      case align::OverlapKind::kRefContained:
        g.mark_contained(o.ref);
        break;
    }
  }
  g.finalize();
  return g;
}

}  // namespace focus::graph
