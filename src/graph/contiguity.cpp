#include "graph/contiguity.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace focus::graph {

ContiguityTester::ContiguityTester(const Digraph& reads,
                                   std::vector<std::uint32_t> read_lengths)
    : reads_(&reads),
      read_lengths_(std::move(read_lengths)),
      stamp_(reads.node_count(), 0) {
  FOCUS_CHECK(read_lengths_.size() == reads.node_count(),
              "read length table size mismatch");
}

bool ContiguityTester::contiguous(std::span<const NodeId> cluster,
                                  std::vector<LayoutStep>* layout) const {
  if (cluster.empty()) return false;

  ++current_stamp_;
  const std::uint32_t mark = current_stamp_;
  for (const NodeId v : cluster) stamp_[v] = mark;

  // Active members: cluster reads that are not contained in another read.
  std::vector<NodeId> active;
  active.reserve(cluster.size());
  for (const NodeId v : cluster) {
    if (!reads_->is_contained(v)) active.push_back(v);
  }
  work_ += static_cast<double>(cluster.size());

  if (active.size() <= 1) {
    if (layout != nullptr) {
      layout->clear();
      NodeId rep = kInvalidNode;
      if (!active.empty()) {
        rep = active.front();
      } else {
        // All reads contained: the longest read carries the cluster sequence.
        rep = *std::max_element(
            cluster.begin(), cluster.end(), [&](NodeId a, NodeId b) {
              if (read_lengths_[a] != read_lengths_[b]) {
                return read_lengths_[a] < read_lengths_[b];
              }
              return a < b;
            });
      }
      layout->push_back(LayoutStep{rep, 0});
    }
    return true;
  }

  // Induced out-adjacency among active nodes. Contained reads are excluded
  // from the path; edges through them carry no extra layout information.
  std::unordered_map<NodeId, std::vector<DiEdge>> out;
  out.reserve(active.size());
  auto in_cluster_active = [&](NodeId v) {
    return stamp_[v] == mark && !reads_->is_contained(v);
  };
  for (const NodeId u : active) {
    auto& edges = out[u];
    for (const DiEdge& e : reads_->out_edges(u)) {
      if (in_cluster_active(e.to)) edges.push_back(e);
      work_ += 1.0;
    }
  }

  // Local transitive reduction: u->w is redundant if some active v gives
  // u->v and v->w.
  std::unordered_set<NodeId> direct;
  std::unordered_map<NodeId, std::vector<DiEdge>> reduced;
  reduced.reserve(active.size());
  for (const NodeId u : active) {
    const auto& edges = out[u];
    direct.clear();
    for (const DiEdge& e : edges) direct.insert(e.to);
    std::unordered_set<NodeId> transitive;
    for (const DiEdge& mid : edges) {
      for (const DiEdge& far : out[mid.to]) {
        work_ += 1.0;
        if (far.to != u && direct.contains(far.to)) transitive.insert(far.to);
      }
    }
    auto& keep = reduced[u];
    for (const DiEdge& e : edges) {
      if (!transitive.contains(e.to)) keep.push_back(e);
    }
  }

  // Path test: after reduction every node has in/out degree <= 1, there are
  // exactly |active|-1 edges, and the structure is connected (which, with
  // the degree bound and edge count, a unique zero-in-degree start implies).
  std::unordered_map<NodeId, std::size_t> in_degree;
  std::size_t edge_total = 0;
  for (const NodeId u : active) {
    const auto& edges = reduced[u];
    if (edges.size() > 1) return false;
    edge_total += edges.size();
    for (const DiEdge& e : edges) {
      if (++in_degree[e.to] > 1) return false;
    }
  }
  if (edge_total != active.size() - 1) return false;

  NodeId start = kInvalidNode;
  for (const NodeId u : active) {
    if (in_degree.find(u) == in_degree.end()) {
      if (start != kInvalidNode) return false;  // two path starts: disconnected
      start = u;
    }
  }
  if (start == kInvalidNode) return false;  // cycle

  // Walk the path; must visit every active node exactly once.
  std::vector<LayoutStep> steps;
  steps.reserve(active.size());
  NodeId cur = start;
  for (;;) {
    const auto& edges = reduced[cur];
    if (edges.empty()) {
      steps.push_back(LayoutStep{cur, 0});
      break;
    }
    steps.push_back(LayoutStep{cur, edges.front().overlap});
    cur = edges.front().to;
  }
  if (steps.size() != active.size()) return false;

  if (layout != nullptr) *layout = std::move(steps);
  return true;
}

}  // namespace focus::graph
