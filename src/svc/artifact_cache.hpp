// LRU stage-artifact cache for the multi-tenant job runtime.
//
// Implements core::StageCache (the interface the assembler consults) with the
// policy the service layer wants: shared immutable artifacts retained under a
// byte budget, least-recently-used eviction, and counters for the operator.
// One cache is shared by every lane of a JobScheduler, so all operations are
// mutex-serialized; the artifacts themselves are immutable shared_ptrs, so a
// hit handed to one job stays valid even if the entry is evicted while the
// job still reads it.
//
// Sizing is approximate by design: artifact_bytes() counts the dominant heap
// blocks (read strings, overlap vectors, CSR arrays) and ignores allocator
// slack. The budget is a *target* for resident artifact bytes, not an exact
// RSS bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "core/stage_cache.hpp"

namespace focus::svc {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// put() calls refused because the artifact alone exceeds the budget.
  std::uint64_t declined = 0;
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;
};

/// Approximate retained heap bytes of each artifact kind (budget accounting).
std::size_t artifact_bytes(const core::PreprocessArtifact& artifact);
std::size_t artifact_bytes(const core::OverlapArtifact& artifact);
std::size_t artifact_bytes(const core::CoarsenArtifact& artifact);

class ArtifactCache final : public core::StageCache {
 public:
  /// `budget_bytes` bounds the resident artifact bytes; 0 means unlimited.
  explicit ArtifactCache(std::size_t budget_bytes = 0)
      : budget_(budget_bytes) {}

  std::shared_ptr<const core::PreprocessArtifact> get_preprocess(
      const common::Digest& key) override;
  void put_preprocess(
      const common::Digest& key,
      std::shared_ptr<const core::PreprocessArtifact> artifact) override;

  std::shared_ptr<const core::OverlapArtifact> get_overlaps(
      const common::Digest& key) override;
  void put_overlaps(
      const common::Digest& key,
      std::shared_ptr<const core::OverlapArtifact> artifact) override;

  std::shared_ptr<const core::CoarsenArtifact> get_coarsen(
      const common::Digest& key) override;
  void put_coarsen(
      const common::Digest& key,
      std::shared_ptr<const core::CoarsenArtifact> artifact) override;

  std::size_t budget_bytes() const { return budget_; }
  CacheStats stats() const;

 private:
  // The three stage keys are already domain-separated by their hash tags;
  // the kind byte keeps the map partitions disjoint even so.
  enum class Kind : std::uint8_t { kPreprocess = 1, kOverlaps = 2, kCoarsen = 3 };
  struct Key {
    Kind kind;
    common::Digest digest;
    bool operator<(const Key& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (digest.hi != o.digest.hi) return digest.hi < o.digest.hi;
      return digest.lo < o.digest.lo;
    }
  };
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru_it;  // position in lru_ (front = most recent)
  };

  std::shared_ptr<const void> get_any(Kind kind, const common::Digest& key);
  void put_any(Kind kind, const common::Digest& key,
               std::shared_ptr<const void> value, std::size_t bytes);

  const std::size_t budget_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;
  CacheStats stats_;
};

}  // namespace focus::svc
