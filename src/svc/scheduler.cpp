#include "svc/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "align/align_scratch.hpp"

namespace focus::svc {

JobScheduler::JobScheduler(SchedulerConfig config)
    : config_(std::move(config)) {
  FOCUS_CHECK(config_.max_in_flight >= 1,
              "SchedulerConfig.max_in_flight must be >= 1");
  FOCUS_CHECK(config_.max_queued >= 1,
              "SchedulerConfig.max_queued must be >= 1");
  if (config_.enable_cache) {
    cache_ = std::make_unique<ArtifactCache>(config_.cache_budget_bytes);
  }
  lanes_.reserve(config_.max_in_flight);
  for (unsigned i = 0; i < config_.max_in_flight; ++i) {
    lanes_.emplace_back([this] { lane_main(); });
  }
}

JobScheduler::~JobScheduler() { shutdown(); }

std::future<JobResult> JobScheduler::submit(std::string tenant,
                                            io::ReadSet reads,
                                            core::FocusConfig config) {
  std::future<JobResult> future;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shutdown_) {
      throw Rejected(Rejected::Reason::kShuttingDown,
                     "job rejected: scheduler is shutting down");
    }
    if (pending_.size() >= config_.max_queued) {
      throw Rejected(Rejected::Reason::kQueueFull,
                     "job rejected: pending queue is full (max_queued=" +
                         std::to_string(config_.max_queued) + ")");
    }
    Pending job;
    job.id = next_id_++;
    job.tenant = std::move(tenant);
    job.reads = std::move(reads);
    job.config = std::move(config);
    future = job.promise.get_future();
    pending_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

void JobScheduler::shutdown() {
  std::vector<std::thread> lanes;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
    lanes.swap(lanes_);  // claim the joins; makes concurrent shutdown safe
  }
  cv_.notify_all();
  for (std::thread& lane : lanes) {
    if (lane.joinable()) lane.join();
  }
}

std::vector<JobStats> JobScheduler::completed_stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return completed_;
}

double JobScheduler::tenant_vtime(const std::string& tenant) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = tenant_vtime_.find(tenant);
  return it == tenant_vtime_.end() ? 0.0 : it->second;
}

// Fair share: the pending job whose tenant has the least accumulated
// virtual-time charge; ties (including the all-zero cold start) fall back to
// submission order. Caller holds mu_.
std::size_t JobScheduler::pick_next_locked() const {
  std::size_t best = 0;
  double best_vtime = 0.0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    auto it = tenant_vtime_.find(pending_[i].tenant);
    const double v = it == tenant_vtime_.end() ? 0.0 : it->second;
    if (i == 0 || v < best_vtime ||
        (v == best_vtime && pending_[i].id < pending_[best].id)) {
      best = i;
      best_vtime = v;
    }
  }
  return best;
}

void JobScheduler::lane_main() {
  for (;;) {
    Pending job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return shutdown_ || !pending_.empty(); });
      if (pending_.empty()) return;  // shutdown with a drained queue
      const std::size_t slot = pick_next_locked();
      job = std::move(pending_[slot]);
      pending_.erase(pending_.begin() +
                     static_cast<std::ptrdiff_t>(slot));
    }
    if (config_.before_execute) config_.before_execute(job.tenant, job.id);

    JobStats stats;
    stats.job_id = job.id;
    stats.tenant = job.tenant;
    stats.queue_wall = job.queued.seconds();
    Timer exec;
    try {
      core::FocusAssembler assembler(std::move(job.config));
      core::AssemblyResult assembly =
          assembler.assemble(job.reads, cache_.get());
      stats.exec_wall = exec.seconds();
      stats.vtime = assembly.total_vtime();
      stats.cache_hits = assembly.cache_hits;
      {
        std::lock_guard<std::mutex> lk(mu_);
        tenant_vtime_[stats.tenant] += stats.vtime;
        completed_.push_back(stats);
      }
      job.promise.set_value(JobResult{std::move(assembly), stats});
    } catch (...) {
      // The tenant is not charged for a failed job; the exception travels
      // through the future.
      job.promise.set_exception(std::current_exception());
    }
    // Job-boundary hygiene on the lane thread (see align_scratch.hpp).
    align::tls_align_scratch().reset(config_.scratch_soft_cap_bytes);
  }
}

}  // namespace focus::svc
