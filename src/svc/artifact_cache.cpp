#include "svc/artifact_cache.hpp"

namespace focus::svc {

namespace {

std::size_t graph_bytes(const graph::Graph& g) {
  // CSR arrays: per-node weight + offset, two directed Edge entries per
  // undirected edge.
  return g.node_count() * (sizeof(Weight) + sizeof(std::size_t)) +
         2 * g.edge_count() * sizeof(graph::Edge) + sizeof(graph::Graph);
}

std::size_t hierarchy_bytes(const graph::GraphHierarchy& h) {
  std::size_t total = sizeof(graph::GraphHierarchy);
  for (const graph::Graph& level : h.levels) total += graph_bytes(level);
  total += h.parent.capacity() * sizeof(std::vector<NodeId>);
  for (const auto& level : h.parent) total += level.capacity() * sizeof(NodeId);
  return total;
}

}  // namespace

std::size_t artifact_bytes(const core::PreprocessArtifact& artifact) {
  std::size_t total = sizeof(core::PreprocessArtifact);
  total += artifact.reads.size() * sizeof(io::Read);
  for (const io::Read& r : artifact.reads) {
    total += r.name.capacity() + r.seq.capacity() + r.qual.capacity();
  }
  return total;
}

std::size_t artifact_bytes(const core::OverlapArtifact& artifact) {
  return sizeof(core::OverlapArtifact) +
         artifact.overlaps.capacity() * sizeof(align::Overlap);
}

std::size_t artifact_bytes(const core::CoarsenArtifact& artifact) {
  return sizeof(core::CoarsenArtifact) + graph_bytes(artifact.overlap_graph) +
         hierarchy_bytes(artifact.multilevel);
}

std::shared_ptr<const void> ArtifactCache::get_any(Kind kind,
                                                   const common::Digest& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(Key{kind, key});
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
  return it->second.value;
}

void ArtifactCache::put_any(Kind kind, const common::Digest& key,
                            std::shared_ptr<const void> value,
                            std::size_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (budget_ > 0 && bytes > budget_) {
    ++stats_.declined;
    return;
  }
  const Key full_key{kind, key};
  auto it = entries_.find(full_key);
  if (it != entries_.end()) {
    // Refresh: a concurrent job rebuilt an artifact another job already
    // deposited. Keep the newer value (identical content by construction).
    stats_.resident_bytes -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    stats_.resident_bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  } else {
    lru_.push_front(full_key);
    entries_[full_key] = Entry{std::move(value), bytes, lru_.begin()};
    stats_.resident_bytes += bytes;
    stats_.entries = entries_.size();
  }
  while (budget_ > 0 && stats_.resident_bytes > budget_ && lru_.size() > 1) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto vit = entries_.find(victim);
    stats_.resident_bytes -= vit->second.bytes;
    entries_.erase(vit);
    ++stats_.evictions;
  }
  stats_.entries = entries_.size();
}

std::shared_ptr<const core::PreprocessArtifact> ArtifactCache::get_preprocess(
    const common::Digest& key) {
  return std::static_pointer_cast<const core::PreprocessArtifact>(
      get_any(Kind::kPreprocess, key));
}

void ArtifactCache::put_preprocess(
    const common::Digest& key,
    std::shared_ptr<const core::PreprocessArtifact> artifact) {
  const std::size_t bytes = artifact_bytes(*artifact);
  put_any(Kind::kPreprocess, key, std::move(artifact), bytes);
}

std::shared_ptr<const core::OverlapArtifact> ArtifactCache::get_overlaps(
    const common::Digest& key) {
  return std::static_pointer_cast<const core::OverlapArtifact>(
      get_any(Kind::kOverlaps, key));
}

void ArtifactCache::put_overlaps(
    const common::Digest& key,
    std::shared_ptr<const core::OverlapArtifact> artifact) {
  const std::size_t bytes = artifact_bytes(*artifact);
  put_any(Kind::kOverlaps, key, std::move(artifact), bytes);
}

std::shared_ptr<const core::CoarsenArtifact> ArtifactCache::get_coarsen(
    const common::Digest& key) {
  return std::static_pointer_cast<const core::CoarsenArtifact>(
      get_any(Kind::kCoarsen, key));
}

void ArtifactCache::put_coarsen(
    const common::Digest& key,
    std::shared_ptr<const core::CoarsenArtifact> artifact) {
  const std::size_t bytes = artifact_bytes(*artifact);
  put_any(Kind::kCoarsen, key, std::move(artifact), bytes);
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace focus::svc
