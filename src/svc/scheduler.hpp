// Multi-tenant job runtime: admission control, fair-share dispatch, and
// stage-artifact reuse for concurrent in-process assemblies.
//
// A JobScheduler owns `max_in_flight` lane threads. submit() performs
// admission control — at most `max_queued` jobs may wait beyond the ones
// executing — and returns a future; over-admission throws the typed Rejected
// error instead of blocking or silently dropping. Each lane runs one
// FocusAssembler at a time against the shared ArtifactCache, so repeat and
// incremental submissions skip the cached early stages.
//
// Fair share uses the pipeline's own deterministic currency: every completed
// job charges its tenant the job's total *virtual* time (the simulated
// cluster makespan, identical across hosts and thread widths), and dispatch
// picks the pending job whose tenant has the smallest accumulated charge,
// breaking ties by submission order. A tenant that has consumed little
// cluster time therefore overtakes a backlogged heavy tenant, but within one
// tenant jobs stay FIFO. Failed jobs charge nothing (their future carries the
// exception).
//
// Job-boundary hygiene: after each job a lane resets its thread-local
// alignment arena under `scratch_soft_cap_bytes` (see align_scratch.hpp), so
// one huge tenant cannot pin high-water scratch buffers on every lane
// forever. Stage-internal pool workers and mpr rank threads are per-call and
// release their arenas when they exit.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/assembler.hpp"
#include "io/read.hpp"
#include "svc/artifact_cache.hpp"

namespace focus::svc {

struct SchedulerConfig {
  /// Lane threads: jobs executing concurrently. Must be >= 1.
  unsigned max_in_flight = 2;
  /// Jobs allowed to wait beyond the executing ones. Must be >= 1.
  std::size_t max_queued = 64;
  /// Shared ArtifactCache budget; 0 = unlimited residency.
  std::size_t cache_budget_bytes = std::size_t{512} << 20;
  /// Disable to run every job cold (no artifact reuse).
  bool enable_cache = true;
  /// Per-lane AlignScratch soft cap applied after each job; 0 = always
  /// release the arena.
  std::size_t scratch_soft_cap_bytes = std::size_t{32} << 20;
  /// Test hook: runs on the lane thread after dispatch, before the job body.
  std::function<void(const std::string& tenant, std::uint64_t job_id)>
      before_execute;
};

/// Typed admission failure: the caller distinguishes backpressure
/// (kQueueFull — retry later / shed load) from teardown (kShuttingDown).
class Rejected : public Error {
 public:
  enum class Reason { kQueueFull, kShuttingDown };
  Rejected(Reason reason, const std::string& what)
      : Error(what), reason_(reason) {}
  Reason reason() const { return reason_; }

 private:
  Reason reason_;
};

struct JobStats {
  std::uint64_t job_id = 0;
  std::string tenant;
  double queue_wall = 0.0;  // seconds between admission and dispatch
  double exec_wall = 0.0;   // seconds executing on the lane
  double vtime = 0.0;       // simulated makespan charged to the tenant
  core::StageCacheHits cache_hits;
};

struct JobResult {
  core::AssemblyResult assembly;
  JobStats stats;
};

class JobScheduler {
 public:
  explicit JobScheduler(SchedulerConfig config = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Admits one assembly job for `tenant`. Throws Rejected when the pending
  /// queue is full or the scheduler is shutting down; otherwise the returned
  /// future yields the result (or the job's exception).
  std::future<JobResult> submit(std::string tenant, io::ReadSet reads,
                                core::FocusConfig config);

  /// Stops admitting, drains every already-admitted job, joins the lanes.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Snapshot of per-job statistics, in completion order.
  std::vector<JobStats> completed_stats() const;

  /// Accumulated virtual-time charge of one tenant (0 if unknown).
  double tenant_vtime(const std::string& tenant) const;

  /// Shared artifact cache, or nullptr when disabled.
  const ArtifactCache* cache() const { return cache_.get(); }

  CacheStats cache_stats() const {
    return cache_ ? cache_->stats() : CacheStats{};
  }

 private:
  struct Pending {
    std::uint64_t id = 0;
    std::string tenant;
    io::ReadSet reads;
    core::FocusConfig config;
    std::promise<JobResult> promise;
    Timer queued;
  };

  void lane_main();
  std::size_t pick_next_locked() const;

  SchedulerConfig config_;
  std::unique_ptr<ArtifactCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  std::map<std::string, double> tenant_vtime_;
  std::vector<JobStats> completed_;
  std::uint64_t next_id_ = 1;
  bool shutdown_ = false;

  std::vector<std::thread> lanes_;
};

}  // namespace focus::svc
