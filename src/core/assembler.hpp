// FocusAssembler: the end-to-end pipeline of paper §II —
//   preprocess → parallel read alignment → overlap graph → multilevel graph
//   set → hybrid graph set → graph partitioning → distributed simplification
//   → distributed traversal → contig construction.
//
// The façade exposes both one-call assembly and the intermediate products
// (hierarchies, partitionings, assembly graph), because the paper's
// experiments measure the stages individually.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "align/overlapper.hpp"
#include "common/env.hpp"
#include "core/asm_build.hpp"
#include "core/stage_cache.hpp"
#include "core/stats.hpp"
#include "dist/parallel.hpp"
#include "graph/coarsen.hpp"
#include "graph/hybrid.hpp"
#include "io/preprocess.hpp"
#include "mpr/cost_model.hpp"
#include "partition/mlpart.hpp"

namespace focus::core {

struct FocusConfig {
  /// Captures ONE EnvSnapshot and derives every env-defaulted knob from it —
  /// the environment is read once per FocusConfig, never per call inside the
  /// pipeline (OPERATIONS.md, "Environment snapshot").
  FocusConfig() : FocusConfig(EnvSnapshot::capture()) {}

  /// Derives the env-defaulted knobs (overlap.strategy, dist.protocol,
  /// graph_store, fault_plan, fault, auto thread widths) from an
  /// already-captured snapshot. Pass a default-constructed-from-fields
  /// snapshot (EnvSnapshot{}) for a fully environment-independent config.
  explicit FocusConfig(const EnvSnapshot& env);

  io::PreprocessConfig preprocess;
  align::OverlapperConfig overlap;
  graph::CoarsenConfig coarsen;
  partition::PartitionerConfig partitioner;
  dist::SimplifyConfig simplify;
  /// Number of graph partitions k (power of two).
  PartId partitions = 16;
  /// Worker ranks for every parallel stage.
  int ranks = 4;
  mpr::CostModel cost;
  /// Partition the hybrid graph set (paper's contribution) instead of the
  /// fully-uncoarsened multilevel set (the naïve baseline).
  bool use_hybrid_partitioning = true;
  /// Collapse reverse-complement contig twins and drop short contigs.
  std::size_t min_contig_length = 100;
  /// Fault schedule for the parallel stages (preprocess, distributed
  /// overlap, partition, simplify, traverse). Defaults to the
  /// FOCUS_FAULT_SEED environment plan; empty means the fault-free fast path.
  mpr::FaultPlan fault_plan;
  /// Retry bound and receive deadline for fault recovery. Defaults honor
  /// FOCUS_FAULT_MAX_RETRIES / FOCUS_FAULT_RECV_TIMEOUT.
  mpr::FaultConfig fault;
  /// Wire protocol of the fault-tolerant stages (all of the above). Defaults
  /// to the FOCUS_DIST_PROTOCOL environment selection; see dist::DistProtocol.
  dist::DistConfig dist;
  /// Storage backend of the assembly-graph stages (6 and 7). Defaults to the
  /// FOCUS_GRAPH_BACKEND environment selection. kCsrSpill builds the
  /// assembly graph straight into a spill-backed StoredAsmGraph (DESIGN.md
  /// §8) and parks the multilevel hierarchy on disk while the graph stages
  /// run; outputs are byte-identical to the in-memory backend.
  graph::GraphStoreConfig graph_store;
};

/// Virtual + wall time of one pipeline stage.
struct StageTiming {
  double vtime = 0.0;  // simulated cluster makespan (seconds)
  double wall = 0.0;   // host wall clock (seconds)
};

/// Which stage artifacts were served from a StageCache (all false when no
/// cache was supplied or every stage ran fresh). Not part of the assembly
/// output proper: a cached run is byte-identical to a fresh one in every
/// other field.
struct StageCacheHits {
  bool preprocess = false;
  bool overlaps = false;
  bool coarsen = false;
};

struct AssemblyResult {
  io::ReadSet reads;                         // preprocessed (with rc twins)
  io::PreprocessStats preprocess_stats;
  std::vector<align::Overlap> overlaps;
  graph::Graph overlap_graph;                // G0
  graph::GraphHierarchy multilevel;          // {G0 … Gn}
  graph::HybridGraphSet hybrid;              // {G'0 … G'n}
  partition::HierarchyPartitioning partitioning;  // on the chosen hierarchy
  std::vector<PartId> read_partition;        // per preprocessed read
  /// The simplified assembly graph (post §V cleaning) — exportable as GFA.
  dist::AsmGraph assembly_graph;
  dist::SimplifyStats simplify_stats;
  /// Full runtime stats of the distributed stages, including fault-recovery
  /// counters (retries, ranks_failed, recovery_vtime). `align_run` is
  /// populated by the distributed-index strategy only.
  mpr::RunStats preprocess_run;
  mpr::RunStats align_run;
  mpr::RunStats partition_run;
  mpr::RunStats simplify_run;
  mpr::RunStats traverse_run;
  std::vector<std::vector<NodeId>> paths;    // maximal assembly paths
  std::vector<std::string> contigs;          // deduped final contigs
  AssemblyStats stats;
  std::map<std::string, StageTiming> timings;
  StageCacheHits cache_hits;

  /// Sum of stage virtual times (the simulated end-to-end makespan).
  double total_vtime() const;
};

class FocusAssembler {
 public:
  explicit FocusAssembler(FocusConfig config);

  const FocusConfig& config() const { return config_; }

  /// Runs the full pipeline on raw reads.
  AssemblyResult assemble(const io::ReadSet& raw_reads) const {
    return assemble(raw_reads, nullptr);
  }

  /// Runs the full pipeline, consulting `cache` (may be null) for the
  /// stage-1..3 artifacts and depositing freshly built ones. Byte-identical
  /// to the uncached overload apart from AssemblyResult::cache_hits and
  /// wall-clock timings.
  AssemblyResult assemble(const io::ReadSet& raw_reads,
                          StageCache* cache) const;

 private:
  FocusConfig config_;
};

/// One-call convenience.
AssemblyResult assemble_reads(const io::ReadSet& raw_reads,
                              const FocusConfig& config = {});

}  // namespace focus::core
