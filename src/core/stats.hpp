// Assembly statistics (paper Table III: N50, max contig, number of contigs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace focus::core {

struct AssemblyStats {
  std::size_t contig_count = 0;
  std::uint64_t total_bases = 0;
  std::uint64_t n50 = 0;
  std::uint64_t max_contig = 0;
  double mean_length = 0.0;
};

/// Computes statistics over contig sequences.
AssemblyStats assembly_stats(const std::vector<std::string>& contigs);

/// Collapses reverse-complement twins (every contig is assembled once per
/// strand because preprocessing adds reverse complements of all reads) and
/// drops contigs shorter than `min_length`. Output sorted by length
/// descending, ties lexicographic, for deterministic reporting.
std::vector<std::string> dedupe_contigs(std::vector<std::string> contigs,
                                        std::size_t min_length);

}  // namespace focus::core
