#include "core/classify.hpp"

#include <algorithm>

#include "common/dna.hpp"
#include "common/error.hpp"

namespace focus::core {

KmerClassifier::KmerClassifier(const sim::Community& community, unsigned k)
    : k_(k), genus_count_(community.size()) {
  FOCUS_CHECK(k >= 11 && k <= 32, "classifier k must be in [11, 32]");
  auto index_sequence = [&](const std::string& seq, std::uint32_t genus) {
    for (std::size_t pos = 0; pos + k_ <= seq.size(); ++pos) {
      std::uint64_t kmer = 0;
      if (!dna::pack_kmer(seq, pos, k_, kmer)) continue;
      auto [it, inserted] = index_.try_emplace(kmer, genus);
      if (!inserted && it->second != genus) it->second = kAmbiguous;
    }
  };
  for (std::uint32_t g = 0; g < community.size(); ++g) {
    index_sequence(community.genera[g].genome, g);
    index_sequence(dna::reverse_complement(community.genera[g].genome), g);
  }
}

std::uint32_t KmerClassifier::classify(const std::string& seq) const {
  std::vector<std::uint32_t> votes(genus_count_, 0);
  for (std::size_t pos = 0; pos + k_ <= seq.size(); ++pos) {
    std::uint64_t kmer = 0;
    if (!dna::pack_kmer(seq, pos, k_, kmer)) continue;
    const auto it = index_.find(kmer);
    if (it == index_.end() || it->second == kAmbiguous) continue;
    ++votes[it->second];
  }
  std::uint32_t best = kUnclassified;
  std::uint32_t best_votes = 0;
  for (std::uint32_t g = 0; g < votes.size(); ++g) {
    if (votes[g] > best_votes) {
      best = g;
      best_votes = votes[g];
    }
  }
  return best_votes == 0 ? kUnclassified : best;
}

std::vector<std::uint32_t> KmerClassifier::classify_reads(
    const io::ReadSet& reads) const {
  std::vector<std::uint32_t> out;
  out.reserve(reads.size());
  for (const auto& read : reads) out.push_back(classify(read.seq));
  return out;
}

}  // namespace focus::core
