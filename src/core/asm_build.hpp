// Builds the directed assembly graph over hybrid-graph nodes: contig
// sequences from cluster layouts, plus directed cluster-to-cluster edges with
// overlap estimates derived from read-level overlap geometry. This is the
// structure the distributed algorithms of paper §V operate on.
#pragma once

#include <span>
#include <vector>

#include "dist/asm_graph.hpp"
#include "dist/stored_graph.hpp"
#include "graph/digraph.hpp"
#include "graph/hybrid.hpp"
#include "io/read.hpp"

namespace focus::core {

struct AsmBuildResult {
  dist::AsmGraph graph;
  /// Hybrid node id == AsmGraph node id (identity mapping by construction).
  /// cluster_of[read] = assembly node owning the read, or kInvalidNode for
  /// reads absent from every layout (contained reads).
  std::vector<NodeId> cluster_of;
};

/// Constructs contigs by walking each hybrid node's layout (reads chained by
/// their overlap lengths) and derives inter-cluster edges: a read-level edge
/// a -> b with a, b laid out in different clusters implies the downstream
/// cluster continues the upstream one; the contig-overlap estimate follows
/// from the reads' offsets within their contigs. Parallel read edges between
/// the same cluster pair collapse to the largest estimate.
///
/// With `use_consensus` (default), contig sequences are called by
/// quality-weighted per-column consensus over the layout reads (error
/// correction); otherwise the first read wins at every overlap.
AsmBuildResult build_assembly_graph(const graph::HybridGraphSet& hybrid,
                                    const graph::Digraph& read_graph,
                                    const io::ReadSet& reads,
                                    bool use_consensus = true);

struct AsmStoreBuildResult {
  dist::StoredAsmGraph store;
  std::vector<NodeId> cluster_of;  // as in AsmBuildResult
};

/// Out-of-core twin of build_assembly_graph: same node ids, edge ids and
/// contig bytes, but built straight into a StoredAsmGraph so no full
/// AsmGraph ever exists in memory. Pass A walks every layout with cursor
/// arithmetic only (lengths and read offsets, no sequence bytes); pass B
/// derives the same edge estimates from those lengths, inserted in the same
/// sorted (from, to) order — so edge ids match AsmGraph's; pass C
/// materializes contigs one partition at a time while the builder seals
/// slices. `node_part` is the partition of each hybrid node (the same vector
/// later passed to the distributed drivers); it decides slice membership.
AsmStoreBuildResult build_assembly_graph_store(
    const graph::HybridGraphSet& hybrid, const graph::Digraph& read_graph,
    const io::ReadSet& reads, std::span<const PartId> node_part, PartId nparts,
    const graph::GraphStoreConfig& config, bool use_consensus = true);

}  // namespace focus::core
