// Builds the directed assembly graph over hybrid-graph nodes: contig
// sequences from cluster layouts, plus directed cluster-to-cluster edges with
// overlap estimates derived from read-level overlap geometry. This is the
// structure the distributed algorithms of paper §V operate on.
#pragma once

#include <vector>

#include "dist/asm_graph.hpp"
#include "graph/digraph.hpp"
#include "graph/hybrid.hpp"
#include "io/read.hpp"

namespace focus::core {

struct AsmBuildResult {
  dist::AsmGraph graph;
  /// Hybrid node id == AsmGraph node id (identity mapping by construction).
  /// cluster_of[read] = assembly node owning the read, or kInvalidNode for
  /// reads absent from every layout (contained reads).
  std::vector<NodeId> cluster_of;
};

/// Constructs contigs by walking each hybrid node's layout (reads chained by
/// their overlap lengths) and derives inter-cluster edges: a read-level edge
/// a -> b with a, b laid out in different clusters implies the downstream
/// cluster continues the upstream one; the contig-overlap estimate follows
/// from the reads' offsets within their contigs. Parallel read edges between
/// the same cluster pair collapse to the largest estimate.
///
/// With `use_consensus` (default), contig sequences are called by
/// quality-weighted per-column consensus over the layout reads (error
/// correction); otherwise the first read wins at every overlap.
AsmBuildResult build_assembly_graph(const graph::HybridGraphSet& hybrid,
                                    const graph::Digraph& read_graph,
                                    const io::ReadSet& reads,
                                    bool use_consensus = true);

}  // namespace focus::core
