#include "core/stage_cache.hpp"

#include "core/assembler.hpp"

namespace focus::core {

namespace {

// Domain tags keep the three key spaces (and the dataset digest) disjoint
// even if two stages ever absorbed identical field streams.
constexpr std::uint64_t kDatasetTag = 0x464f435553445331ull;   // "FOCUSDS1"
constexpr std::uint64_t kPreprocessTag = 0x464f435553503131ull;
constexpr std::uint64_t kOverlapTag = 0x464f435553503231ull;
constexpr std::uint64_t kCoarsenTag = 0x464f435553503331ull;

/// Everything about *how* a stage runs that leaks into its recorded stats:
/// rank count, cost-model constants, the fault schedule and recovery knobs,
/// and the wire protocol. Outputs are invariant to these (the determinism
/// tests prove it), but RunStats are not, and a hit must reproduce both.
void absorb_envelope(common::Hasher& h, const FocusConfig& c) {
  h.u64(static_cast<std::uint64_t>(c.ranks));
  h.f64(c.cost.alpha).f64(c.cost.beta).f64(c.cost.gamma);
  const mpr::FaultPlan& fp = c.fault_plan;
  h.u64(fp.seed)
      .f64(fp.p_crash)
      .f64(fp.p_drop)
      .f64(fp.p_duplicate)
      .f64(fp.p_corrupt)
      .f64(fp.p_delay)
      .f64(fp.delay_vtime);
  h.u64(fp.crashes.size());
  for (const mpr::CrashPoint& cp : fp.crashes) {
    h.u64(static_cast<std::uint64_t>(cp.rank)).u64(cp.op);
  }
  h.u64(static_cast<std::uint64_t>(c.fault.max_retries));
  h.f64(c.fault.recv_timeout_vtime);
  h.u64(static_cast<std::uint64_t>(c.dist.protocol));
}

}  // namespace

common::Digest dataset_digest(const io::ReadSet& reads) {
  common::Hasher h(kDatasetTag);
  h.u64(reads.size());
  for (const io::Read& r : reads) {
    h.str(r.name).str(r.seq).str(r.qual);
    h.u64(r.origin).boolean(r.reverse);
  }
  return h.finish();
}

common::Digest preprocess_key(const common::Digest& dataset,
                              const FocusConfig& config) {
  common::Hasher h(kPreprocessTag);
  h.digest(dataset);
  const io::PreprocessConfig& p = config.preprocess;
  h.u64(p.trim5).u64(p.trim3).u64(p.window_len).u64(p.window_step);
  h.f64(p.min_quality);
  h.u64(p.min_length).boolean(p.add_reverse_complements);
  absorb_envelope(h, config);
  return h.finish();
}

common::Digest overlap_key(const common::Digest& preprocess,
                           const FocusConfig& config) {
  common::Hasher h(kOverlapTag);
  h.digest(preprocess);
  const align::OverlapperConfig& o = config.overlap;
  h.u64(o.k).u64(o.min_kmer_hits);
  h.u64(static_cast<std::uint64_t>(o.diagonal_tolerance));
  h.u64(o.max_kmer_occurrences).u64(o.min_overlap);
  h.f64(o.min_identity);
  h.u64(o.band).u64(o.subsets).u64(o.threads);
  h.u64(static_cast<std::uint64_t>(o.seed_backend));
  h.u64(static_cast<std::uint64_t>(o.strategy));
  absorb_envelope(h, config);
  return h.finish();
}

common::Digest coarsen_key(const common::Digest& overlap,
                           const FocusConfig& config) {
  common::Hasher h(kCoarsenTag);
  h.digest(overlap);
  const graph::CoarsenConfig& g = config.coarsen;
  h.u64(g.min_nodes).u64(g.max_levels);
  h.f64(g.min_reduction);
  h.u64(static_cast<std::uint64_t>(g.max_node_weight));
  h.u64(g.seed).u64(g.threads);
  absorb_envelope(h, config);
  return h.finish();
}

}  // namespace focus::core
