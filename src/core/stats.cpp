#include "core/stats.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/dna.hpp"
#include "common/stats.hpp"

namespace focus::core {

AssemblyStats assembly_stats(const std::vector<std::string>& contigs) {
  AssemblyStats s;
  s.contig_count = contigs.size();
  std::vector<std::uint64_t> lengths;
  lengths.reserve(contigs.size());
  for (const auto& c : contigs) {
    lengths.push_back(c.size());
    s.total_bases += c.size();
    s.max_contig = std::max<std::uint64_t>(s.max_contig, c.size());
  }
  s.n50 = n50(lengths);
  s.mean_length = contigs.empty()
                      ? 0.0
                      : static_cast<double>(s.total_bases) /
                            static_cast<double>(contigs.size());
  return s;
}

std::vector<std::string> dedupe_contigs(std::vector<std::string> contigs,
                                        std::size_t min_length) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> out;
  for (auto& c : contigs) {
    if (c.size() < min_length) continue;
    std::string canonical = std::min(c, dna::reverse_complement(c));
    if (seen.insert(std::move(canonical)).second) {
      out.push_back(std::move(c));
    }
  }
  std::sort(out.begin(), out.end(), [](const std::string& a, const std::string& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });
  return out;
}

}  // namespace focus::core
