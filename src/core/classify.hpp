// k-mer voting read classifier — the stand-in for the paper's BWA-against-
// reference-database read classification (§VI-E). Each reference genome's
// k-mers (both strands) vote for their genus; a read is assigned the genus
// with the most k-mer votes, or left unclassified when nothing matches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/read.hpp"
#include "sim/community.hpp"

namespace focus::core {

inline constexpr std::uint32_t kUnclassified = 0xffffffffu;

class KmerClassifier {
 public:
  /// Indexes every genus genome of the community (forward and reverse
  /// strands) with k-mers of length k.
  KmerClassifier(const sim::Community& community, unsigned k = 21);

  /// Genus index with the most k-mer votes, or kUnclassified.
  std::uint32_t classify(const std::string& seq) const;

  /// Classifies every read of a set.
  std::vector<std::uint32_t> classify_reads(const io::ReadSet& reads) const;

  unsigned k() const { return k_; }
  std::size_t index_size() const { return index_.size(); }

 private:
  static constexpr std::uint32_t kAmbiguous = 0xfffffffeu;

  unsigned k_;
  std::size_t genus_count_;
  /// kmer -> genus index, or kAmbiguous when shared across genera.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
};

}  // namespace focus::core
