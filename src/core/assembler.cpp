#include "core/assembler.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace focus::core {

double AssemblyResult::total_vtime() const {
  double total = 0.0;
  for (const auto& [stage, timing] : timings) total += timing.vtime;
  return total;
}

FocusConfig::FocusConfig(const EnvSnapshot& env)
    // Designated/aggregate initializers bypass the members' own env-reading
    // defaults, so this constructor performs zero getenv calls: every
    // env-defaulted knob comes from the one snapshot.
    : overlap{.strategy = align::seed_strategy_from_env(env)},
      fault_plan(mpr::FaultPlan::from_env(env)),
      fault(mpr::FaultConfig::from_env(env)),
      dist{dist::dist_protocol_from_env(env)},
      graph_store(graph::GraphStoreConfig::from_env(env)) {
  // Bake the auto thread width now so no pipeline stage consults the
  // environment later: a mid-run setenv("FOCUS_THREADS") has no effect on an
  // already-constructed config.
  const unsigned width = default_thread_count(env);
  if (overlap.threads == 0) overlap.threads = width;
  if (partitioner.threads == 0) partitioner.threads = width;
}

FocusAssembler::FocusAssembler(FocusConfig config)
    : config_(std::move(config)) {
  FOCUS_CHECK(config_.partitions >= 1 &&
                  (config_.partitions & (config_.partitions - 1)) == 0,
              "partition count must be a power of two");
  FOCUS_CHECK(config_.ranks >= 1, "need at least one rank");
}

AssemblyResult FocusAssembler::assemble(const io::ReadSet& raw_reads,
                                        StageCache* cache) const {
  AssemblyResult result;
  Timer wall;

  // Digest-chained cache keys (stage_cache.hpp). Only computed when a cache
  // is wired in: the digest walks every read once.
  common::Digest pre_key, ov_key, co_key;
  if (cache != nullptr) {
    const common::Digest dataset = dataset_digest(raw_reads);
    pre_key = preprocess_key(dataset, config_);
    ov_key = overlap_key(pre_key, config_);
    co_key = coarsen_key(ov_key, config_);
  }

  // --- Stage 1: preprocessing (§II-A), parallel over read chunks. ---------
  {
    std::shared_ptr<const PreprocessArtifact> hit;
    if (cache != nullptr) hit = cache->get_preprocess(pre_key);
    if (hit != nullptr) {
      result.reads = hit->reads;
      result.preprocess_stats = hit->stats;
      result.preprocess_run = hit->run;
      result.cache_hits.preprocess = true;
    } else {
      auto preprocessed = io::preprocess_parallel(
          raw_reads, config_.preprocess, config_.ranks, config_.cost,
          config_.fault_plan, config_.fault,
          config_.dist.protocol == dist::DistProtocol::kSymmetric);
      result.reads = std::move(preprocessed.reads);
      result.preprocess_stats = preprocessed.stats;
      result.preprocess_run = preprocessed.run;
      if (cache != nullptr) {
        auto artifact = std::make_shared<PreprocessArtifact>();
        artifact->reads = result.reads;
        artifact->stats = result.preprocess_stats;
        artifact->run = result.preprocess_run;
        cache->put_preprocess(pre_key, std::move(artifact));
      }
    }
    FOCUS_CHECK(!result.reads.empty(),
                "no reads survive preprocessing; relax the trimming thresholds");
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = result.preprocess_run.makespan;
    result.timings["1-preprocess"] = t;
  }

  // --- Stage 2: parallel read alignment (§II-B). --------------------------
  wall.restart();
  {
    std::shared_ptr<const OverlapArtifact> hit;
    if (cache != nullptr) hit = cache->get_overlaps(ov_key);
    double align_vtime = 0.0;
    if (hit != nullptr) {
      result.overlaps = hit->overlaps;
      result.align_run = hit->run;
      align_vtime = hit->vtime;
      result.cache_hits.overlaps = true;
    } else if (config_.overlap.strategy ==
               align::SeedStrategy::kDistributedIndex) {
      // The distributed-index driver sits behind the fault envelope: an
      // active fault plan covers the overlap phase with the same replay
      // recovery as the graph stages.
      auto aligned = dist::overlap_parallel(
          result.reads, config_.overlap, config_.ranks, config_.cost,
          config_.fault_plan, config_.fault, config_.dist);
      result.overlaps = std::move(aligned.overlaps);
      result.align_run = aligned.run;
      align_vtime = aligned.run.makespan;
    } else {
      auto aligned = align::find_overlaps_parallel(
          result.reads, config_.overlap, config_.ranks, config_.cost);
      result.overlaps = std::move(aligned.overlaps);
      align_vtime = aligned.stats.makespan;
    }
    if (cache != nullptr && hit == nullptr) {
      auto artifact = std::make_shared<OverlapArtifact>();
      artifact->overlaps = result.overlaps;
      artifact->run = result.align_run;
      artifact->vtime = align_vtime;
      cache->put_overlaps(ov_key, std::move(artifact));
    }
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = align_vtime;
    result.timings["2-align"] = t;
  }

  // --- Stage 3: overlap graph + multilevel graph set (§II-C). -------------
  wall.restart();
  {
    std::shared_ptr<const CoarsenArtifact> hit;
    if (cache != nullptr) hit = cache->get_coarsen(co_key);
    double coarsen_vtime = 0.0;
    if (hit != nullptr) {
      result.overlap_graph = hit->overlap_graph;
      result.multilevel = hit->multilevel;
      coarsen_vtime = hit->vtime;
      result.cache_hits.coarsen = true;
    } else {
      result.overlap_graph =
          graph::build_overlap_graph(result.reads.size(), result.overlaps);
      result.multilevel =
          graph::build_multilevel(result.overlap_graph, config_.coarsen);
      double edges = 0.0;
      for (const auto& level : result.multilevel.levels) {
        edges += static_cast<double>(level.edge_count());
      }
      coarsen_vtime = config_.cost.compute_cost(edges);
      if (cache != nullptr) {
        auto artifact = std::make_shared<CoarsenArtifact>();
        artifact->overlap_graph = result.overlap_graph;
        artifact->multilevel = result.multilevel;
        artifact->vtime = coarsen_vtime;
        cache->put_coarsen(co_key, std::move(artifact));
      }
    }
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = coarsen_vtime;
    result.timings["3-coarsen"] = t;
  }

  // --- Stage 4: hybrid graph set (§II-D). ----------------------------------
  wall.restart();
  graph::Digraph read_graph =
      graph::build_read_digraph(result.reads.size(), result.overlaps);
  {
    std::vector<std::uint32_t> lengths;
    lengths.reserve(result.reads.size());
    for (const auto& r : result.reads) {
      lengths.push_back(static_cast<std::uint32_t>(r.seq.size()));
    }
    result.hybrid =
        graph::build_hybrid(result.multilevel, read_graph, std::move(lengths));
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = config_.cost.compute_cost(result.hybrid.selection_work);
    result.timings["4-hybrid"] = t;
  }

  // --- Stage 5: graph partitioning (§IV). ----------------------------------
  wall.restart();
  const graph::GraphHierarchy& hierarchy = config_.use_hybrid_partitioning
                                               ? result.hybrid.hierarchy
                                               : result.multilevel;
  {
    auto parted = partition::partition_hierarchy_parallel(
        hierarchy, config_.partitions, config_.partitioner, config_.ranks,
        config_.cost, config_.fault_plan, config_.fault,
        config_.dist.protocol == dist::DistProtocol::kSymmetric);
    result.partitioning = std::move(parted.partitioning);
    result.partition_run = parted.stats;
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = parted.stats.makespan;
    result.timings["5-partition"] = t;
  }

  // Per-read partition: project through the hybrid clusters, or use the
  // multilevel finest level (== reads) directly.
  if (config_.use_hybrid_partitioning) {
    result.read_partition = result.hybrid.project_to_reads(
        result.partitioning.finest(), result.reads.size());
  } else {
    result.read_partition = result.partitioning.finest();
  }

  // --- Stage 6: assembly graph + distributed simplification (§V-A/B/C). ---
  wall.restart();
  // Partition of each assembly node: hybrid partition if partitioning the
  // hybrid set; majority over cluster reads otherwise. Computed before the
  // graph build because the spill backend slices the graph by partition.
  std::vector<PartId> node_part(result.hybrid.cluster_reads.size(), 0);
  if (config_.use_hybrid_partitioning) {
    node_part = result.partitioning.finest();
  } else {
    for (NodeId h = 0; h < result.hybrid.cluster_reads.size(); ++h) {
      std::map<PartId, std::size_t> votes;
      for (const NodeId read : result.hybrid.cluster_reads[h]) {
        ++votes[result.read_partition[read]];
      }
      node_part[h] = std::max_element(votes.begin(), votes.end(),
                                      [](const auto& a, const auto& b) {
                                        return a.second < b.second;
                                      })
                         ->first;
    }
  }

  const bool use_store =
      config_.graph_store.backend == graph::GraphStoreBackend::kCsrSpill;

  // Under the spill backend, the multilevel hierarchy — finished since stage
  // 5 but part of the returned result — parks on disk while the graph stages
  // run, so peak RSS covers only the working assembly graph.
  std::unique_ptr<graph::SpillManager> hierarchy_store;
  std::optional<graph::HierarchySpill> hierarchy_spill;
  if (use_store) {
    hierarchy_store =
        std::make_unique<graph::SpillManager>(config_.graph_store);
    hierarchy_spill.emplace(*hierarchy_store, 0);
    for (std::size_t l = 0; l < result.multilevel.levels.size(); ++l) {
      hierarchy_spill->spill_level(l, result.multilevel.levels[l]);
      result.multilevel.levels[l] = graph::Graph();
    }
    hierarchy_store->evict_all();
  }

  AsmBuildResult built;
  AsmStoreBuildResult stored;
  if (use_store) {
    stored = build_assembly_graph_store(result.hybrid, read_graph,
                                        result.reads, node_part,
                                        config_.partitions,
                                        config_.graph_store);
  } else {
    built = build_assembly_graph(result.hybrid, read_graph, result.reads);
  }
  {
    auto simplified =
        use_store
            ? dist::simplify_parallel(
                  stored.store, node_part, config_.partitions,
                  config_.simplify, config_.ranks, config_.cost,
                  config_.partitioner.threads, config_.fault_plan,
                  config_.fault, config_.dist)
            : dist::simplify_parallel(
                  built.graph, node_part, config_.partitions,
                  config_.simplify, config_.ranks, config_.cost,
                  config_.partitioner.threads, config_.fault_plan,
                  config_.fault, config_.dist);
    result.simplify_stats = simplified.stats;
    result.simplify_run = simplified.run;
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = simplified.run.makespan;
    result.timings["6-simplify"] = t;
  }

  // --- Stage 7: distributed traversal + contig construction (§V-D). -------
  wall.restart();
  {
    auto traversed =
        use_store
            ? dist::traverse_parallel(
                  stored.store, node_part, config_.partitions, config_.ranks,
                  config_.cost, config_.partitioner.threads,
                  config_.fault_plan, config_.fault, config_.dist)
            : dist::traverse_parallel(
                  built.graph, node_part, config_.partitions, config_.ranks,
                  config_.cost, config_.partitioner.threads,
                  config_.fault_plan, config_.fault, config_.dist);
    result.paths = std::move(traversed.paths);
    result.traverse_run = traversed.run;
    std::vector<std::string> contigs;
    contigs.reserve(result.paths.size());
    for (const auto& path : result.paths) {
      contigs.push_back(use_store ? stored.store.merge_path_contigs(path)
                                  : built.graph.merge_path_contigs(path));
    }
    result.contigs =
        dedupe_contigs(std::move(contigs), config_.min_contig_length);
    result.stats = assembly_stats(result.contigs);
    StageTiming t;
    t.wall = wall.seconds();
    t.vtime = traversed.run.makespan;
    result.timings["7-traverse"] = t;
  }
  // The result surface stays AsmGraph-typed either way; to_asm_graph carries
  // ids, field values and removed flags over verbatim.
  result.assembly_graph =
      use_store ? stored.store.to_asm_graph() : std::move(built.graph);
  if (use_store) {
    for (std::size_t l = 0; l < hierarchy_spill->levels(); ++l) {
      result.multilevel.levels[l] = hierarchy_spill->load_level(l);
    }
  }

  return result;
}

AssemblyResult assemble_reads(const io::ReadSet& raw_reads,
                              const FocusConfig& config) {
  return FocusAssembler(config).assemble(raw_reads);
}

}  // namespace focus::core
