#include "core/community.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/classify.hpp"

namespace focus::core {

GenusPartitionMatrix genus_partition_distribution(
    const std::vector<std::uint32_t>& genus_of_read,
    const std::vector<PartId>& partition_of_read,
    const std::vector<std::string>& genus_names, PartId partitions) {
  FOCUS_CHECK(genus_of_read.size() == partition_of_read.size(),
              "genus/partition vectors must be parallel");
  FOCUS_CHECK(partitions >= 1, "need at least one partition");

  GenusPartitionMatrix m;
  m.genus_names = genus_names;
  m.partitions = partitions;
  m.fraction.assign(genus_names.size(),
                    std::vector<double>(static_cast<std::size_t>(partitions), 0.0));
  m.classified_reads.assign(genus_names.size(), 0);

  for (std::size_t i = 0; i < genus_of_read.size(); ++i) {
    const std::uint32_t g = genus_of_read[i];
    const PartId p = partition_of_read[i];
    if (g == kUnclassified || g >= genus_names.size()) continue;
    if (p == kNoPart || p >= partitions) continue;
    m.fraction[g][static_cast<std::size_t>(p)] += 1.0;
    ++m.classified_reads[g];
  }
  for (std::size_t g = 0; g < genus_names.size(); ++g) {
    if (m.classified_reads[g] == 0) continue;
    for (auto& f : m.fraction[g]) {
      f /= static_cast<double>(m.classified_reads[g]);
    }
  }
  return m;
}

std::string render_heatmap(const GenusPartitionMatrix& matrix) {
  static constexpr char kShades[] = {' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'};
  std::size_t name_width = 0;
  for (const auto& n : matrix.genus_names) {
    name_width = std::max(name_width, n.size());
  }
  std::string out;
  out += std::string(name_width + 2, ' ');
  for (PartId p = 0; p < matrix.partitions; ++p) {
    out += 'P';
    out += std::to_string(p % 10);
    out += ' ';
  }
  out += '\n';
  for (std::size_t g = 0; g < matrix.genus_names.size(); ++g) {
    out += matrix.genus_names[g];
    out += std::string(name_width + 2 - matrix.genus_names[g].size(), ' ');
    for (const double f : matrix.fraction[g]) {
      const auto shade = static_cast<std::size_t>(
          std::min(9.0, std::max(0.0, f * 20.0)));  // 0.45+ saturates
      out += kShades[shade];
      out += kShades[shade];
      out += ' ';
    }
    out += '\n';
  }
  return out;
}

std::vector<double> concentration(const GenusPartitionMatrix& matrix) {
  std::vector<double> out;
  out.reserve(matrix.genus_names.size());
  for (const auto& row : matrix.fraction) {
    out.push_back(row.empty() ? 0.0
                              : *std::max_element(row.begin(), row.end()));
  }
  return out;
}

PhylumCoclustering phylum_coclustering(
    const GenusPartitionMatrix& matrix,
    const std::vector<std::string>& genus_phylum) {
  FOCUS_CHECK(genus_phylum.size() == matrix.genus_names.size(),
              "phylum table must parallel genus rows");
  std::vector<double> within, between;
  for (std::size_t a = 0; a < matrix.fraction.size(); ++a) {
    if (matrix.classified_reads[a] == 0) continue;
    for (std::size_t b = a + 1; b < matrix.fraction.size(); ++b) {
      if (matrix.classified_reads[b] == 0) continue;
      const double r = pearson(matrix.fraction[a], matrix.fraction[b]);
      (genus_phylum[a] == genus_phylum[b] ? within : between).push_back(r);
    }
  }
  return PhylumCoclustering{mean(within), mean(between)};
}

}  // namespace focus::core
