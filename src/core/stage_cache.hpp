// Stage-artifact caching hooks for the assembly pipeline.
//
// The multi-tenant job runtime (src/svc) serves repeat and incremental
// submissions: the same dataset re-assembled with tweaked downstream knobs,
// or re-submitted verbatim. The expensive early stages — preprocessing
// (packed reads), overlap discovery (the product of the k-mer index), and
// multilevel coarsening (the graph hierarchy) — are pure functions of
// (dataset, config), so their results can be cached and re-used across jobs.
//
// This header defines the *mechanism* the assembler consults: immutable
// artifact value types, a digest-chained key schema, and an abstract
// StageCache interface. The *policy* (LRU under a byte budget, statistics)
// lives in svc::ArtifactCache, which implements the interface; the core
// library never depends on the service layer.
//
// Key schema (see stage_cache.cpp): every key chains the upstream artifact's
// key with this stage's config fingerprint AND the execution envelope
// (ranks, cost model, fault plan/config, wire protocol). Stage *outputs* are
// byte-identical across ranks and protocols, but the recorded RunStats
// (makespans, message counts, recovery counters) are not — and a cache hit
// must reproduce the exact AssemblyResult a fresh run would produce, stats
// included. Keying on the envelope keeps that property at the cost of some
// hit rate; determinism outranks reuse.
//
// Note on the k-mer index: the overlap stage's indices (per-subset hashed
// postings, or the mpr-sharded index) are transients of the stage — rebuilt
// per subset pair or per rank, never materialized whole. What the cache
// stores is the stage's deterministic product, the deduped overlap set,
// which is what every repeat submission actually needs.
#pragma once

#include <memory>
#include <vector>

#include "align/overlap.hpp"
#include "common/digest.hpp"
#include "graph/coarsen.hpp"
#include "graph/graph.hpp"
#include "io/preprocess.hpp"
#include "io/read.hpp"
#include "mpr/runtime.hpp"

namespace focus::core {

struct FocusConfig;

/// Stage-1 product: trimmed reads with reverse-complement twins, plus the
/// stats and runtime accounting a fresh run would have produced.
struct PreprocessArtifact {
  io::ReadSet reads;
  io::PreprocessStats stats;
  mpr::RunStats run;
};

/// Stage-2 product: the deduped overlap set. `run` is the distributed-index
/// strategy's RunStats (default for the all-pairs strategy, which reports no
/// align_run); `vtime` is the stage's virtual-time charge under either
/// strategy.
struct OverlapArtifact {
  std::vector<align::Overlap> overlaps;
  mpr::RunStats run;
  double vtime = 0.0;
};

/// Stage-3 product: the overlap graph and its multilevel coarsening
/// hierarchy, plus the stage's virtual-time charge.
struct CoarsenArtifact {
  graph::Graph overlap_graph;
  graph::GraphHierarchy multilevel;
  double vtime = 0.0;
};

/// Cache interface the assembler consults when one is supplied. Artifacts
/// are shared immutable values: get() returns a pointer the caller copies
/// from (the assembler's result owns its data), put() hands ownership of a
/// freshly built artifact to the cache. Implementations must be thread-safe
/// — concurrent jobs hit one cache. A get() miss returns nullptr; put() may
/// decline to retain (budget) without signalling.
class StageCache {
 public:
  virtual ~StageCache() = default;

  virtual std::shared_ptr<const PreprocessArtifact> get_preprocess(
      const common::Digest& key) = 0;
  virtual void put_preprocess(
      const common::Digest& key,
      std::shared_ptr<const PreprocessArtifact> artifact) = 0;

  virtual std::shared_ptr<const OverlapArtifact> get_overlaps(
      const common::Digest& key) = 0;
  virtual void put_overlaps(const common::Digest& key,
                            std::shared_ptr<const OverlapArtifact> artifact) = 0;

  virtual std::shared_ptr<const CoarsenArtifact> get_coarsen(
      const common::Digest& key) = 0;
  virtual void put_coarsen(const common::Digest& key,
                           std::shared_ptr<const CoarsenArtifact> artifact) = 0;
};

/// Content digest of a read set (names, sequences, qualities, provenance).
/// The dataset half of every cache key.
common::Digest dataset_digest(const io::ReadSet& reads);

/// Stage keys, each chaining the upstream key with the stage fingerprint and
/// the execution envelope (see file comment).
common::Digest preprocess_key(const common::Digest& dataset,
                              const FocusConfig& config);
common::Digest overlap_key(const common::Digest& preprocess,
                           const FocusConfig& config);
common::Digest coarsen_key(const common::Digest& overlap,
                           const FocusConfig& config);

}  // namespace focus::core
