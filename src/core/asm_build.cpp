#include "core/asm_build.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "core/consensus.hpp"

namespace focus::core {

AsmBuildResult build_assembly_graph(const graph::HybridGraphSet& hybrid,
                                    const graph::Digraph& read_graph,
                                    const io::ReadSet& reads,
                                    bool use_consensus) {
  const std::size_t cluster_count = hybrid.cluster_reads.size();
  AsmBuildResult out;
  out.cluster_of.assign(reads.size(), kInvalidNode);

  // offset_in_contig[read]: start position of the read within its cluster's
  // contig; only reads that appear in a layout get an offset.
  std::vector<std::int64_t> offset(reads.size(), -1);

  for (NodeId h = 0; h < cluster_count; ++h) {
    const auto& layout = hybrid.layouts[h];
    FOCUS_ASSERT(!layout.empty(), "cluster with empty layout");

    std::string contig;
    std::int64_t cursor = 0;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      const NodeId read = layout[i].read;
      FOCUS_ASSERT(read < reads.size(), "layout read out of range");
      const std::string& seq = reads[read].seq;
      if (i == 0) {
        contig = seq;
        offset[read] = 0;
        cursor = 0;
      } else {
        const auto ov =
            static_cast<std::int64_t>(layout[i - 1].overlap_to_next);
        cursor = static_cast<std::int64_t>(contig.size()) - ov;
        if (cursor < 0) cursor = 0;
        offset[read] = cursor;
        const auto keep = static_cast<std::size_t>(
            std::min<std::int64_t>(ov, static_cast<std::int64_t>(seq.size())));
        if (keep < seq.size()) contig += seq.substr(keep);
      }
    }
    if (use_consensus && layout.size() > 1) {
      // Replace the first-read-wins merge with the quality-weighted
      // consensus call; read offsets are unchanged (same coordinates).
      auto called = consensus_from_layout(reads, layout);
      FOCUS_ASSERT(called.sequence.size() == contig.size(),
                   "consensus length diverged from layout merge");
      contig = std::move(called.sequence);
    }
    // All cluster reads (including contained ones skipped by the layout)
    // belong to this assembly node.
    const NodeId node =
        out.graph.add_node(std::move(contig),
                           static_cast<Weight>(hybrid.cluster_reads[h].size()));
    FOCUS_ASSERT(node == h, "assembly node ids must mirror hybrid node ids");
    for (const NodeId read : hybrid.cluster_reads[h]) {
      out.cluster_of[read] = h;
    }
  }

  // Inter-cluster directed edges with contig-overlap estimates. Keyed by the
  // cluster pair; parallel read edges keep the estimate with the largest
  // overlap (most evidence of true adjacency).
  struct EdgeEstimate {
    std::int64_t overlap = 0;
    std::int64_t offset = 0;
  };
  std::map<std::pair<NodeId, NodeId>, EdgeEstimate> best_estimate;
  for (NodeId a = 0; a < read_graph.node_count(); ++a) {
    if (offset[a] < 0) continue;  // not laid out (contained)
    const NodeId ca = out.cluster_of[a];
    if (ca == kInvalidNode) continue;
    const auto la = static_cast<std::int64_t>(reads[a].seq.size());
    const auto len_ca =
        static_cast<std::int64_t>(out.graph.node(ca).contig.size());
    for (const graph::DiEdge& e : read_graph.out_edges(a)) {
      const NodeId b = e.to;
      if (offset[b] < 0) continue;
      const NodeId cb = out.cluster_of[b];
      if (cb == kInvalidNode || cb == ca) continue;
      const auto len_cb =
          static_cast<std::int64_t>(out.graph.node(cb).contig.size());
      // Read a ends at genome offset offset[a] + la within contig ca; read b
      // starts `overlap` bases before that point. In ca's coordinates, cb
      // starts at:
      const std::int64_t cb_start =
          offset[a] + la - static_cast<std::int64_t>(e.overlap) - offset[b];
      const std::int64_t est =
          std::min(len_ca, cb_start + len_cb) - std::max<std::int64_t>(0, cb_start);
      if (est <= 0) continue;
      if (cb_start <= 0) continue;  // cb would not extend ca to the right
      const std::int64_t clipped = std::min({est, len_ca, len_cb});
      auto [it, inserted] = best_estimate.try_emplace(
          {ca, cb}, EdgeEstimate{clipped, cb_start});
      if (!inserted && clipped > it->second.overlap) {
        it->second = EdgeEstimate{clipped, cb_start};
      }
    }
  }
  for (const auto& [key, est] : best_estimate) {
    out.graph.add_edge(key.first, key.second,
                       static_cast<std::uint32_t>(est.overlap),
                       static_cast<std::uint32_t>(est.offset));
  }
  return out;
}

AsmStoreBuildResult build_assembly_graph_store(
    const graph::HybridGraphSet& hybrid, const graph::Digraph& read_graph,
    const io::ReadSet& reads, std::span<const PartId> node_part, PartId nparts,
    const graph::GraphStoreConfig& config, bool use_consensus) {
  const std::size_t cluster_count = hybrid.cluster_reads.size();
  FOCUS_CHECK(node_part.size() == cluster_count,
              "node partition size mismatch");
  AsmStoreBuildResult out;
  out.cluster_of.assign(reads.size(), kInvalidNode);

  // Pass A: cursor arithmetic over every layout — contig lengths and read
  // offsets, no sequence bytes. Mirrors the merge loop of
  // build_assembly_graph exactly (consensus never changes the length).
  std::vector<std::int64_t> offset(reads.size(), -1);
  std::vector<std::int64_t> contig_len(cluster_count, 0);
  dist::StoredAsmGraphBuilder builder(config, node_part, nparts);
  for (NodeId h = 0; h < cluster_count; ++h) {
    const auto& layout = hybrid.layouts[h];
    FOCUS_ASSERT(!layout.empty(), "cluster with empty layout");
    std::int64_t len = 0;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      const NodeId read = layout[i].read;
      FOCUS_ASSERT(read < reads.size(), "layout read out of range");
      const auto seq_len =
          static_cast<std::int64_t>(reads[read].seq.size());
      if (i == 0) {
        len = seq_len;
        offset[read] = 0;
      } else {
        const auto ov =
            static_cast<std::int64_t>(layout[i - 1].overlap_to_next);
        std::int64_t cursor = len - ov;
        if (cursor < 0) cursor = 0;
        offset[read] = cursor;
        const std::int64_t keep = std::min(ov, seq_len);
        if (keep < seq_len) len += seq_len - keep;
      }
    }
    contig_len[h] = len;
    const NodeId node = builder.declare_node(
        static_cast<std::uint32_t>(len),
        static_cast<Weight>(hybrid.cluster_reads[h].size()));
    FOCUS_ASSERT(node == h, "assembly node ids must mirror hybrid node ids");
    for (const NodeId read : hybrid.cluster_reads[h]) {
      out.cluster_of[read] = h;
    }
  }

  // Pass B: identical estimate map — lengths come from pass A instead of
  // materialized contigs, and the sorted map iteration reproduces AsmGraph's
  // edge-id assignment order.
  struct EdgeEstimate {
    std::int64_t overlap = 0;
    std::int64_t offset = 0;
  };
  std::map<std::pair<NodeId, NodeId>, EdgeEstimate> best_estimate;
  for (NodeId a = 0; a < read_graph.node_count(); ++a) {
    if (offset[a] < 0) continue;
    const NodeId ca = out.cluster_of[a];
    if (ca == kInvalidNode) continue;
    const auto la = static_cast<std::int64_t>(reads[a].seq.size());
    const std::int64_t len_ca = contig_len[ca];
    for (const graph::DiEdge& e : read_graph.out_edges(a)) {
      const NodeId b = e.to;
      if (offset[b] < 0) continue;
      const NodeId cb = out.cluster_of[b];
      if (cb == kInvalidNode || cb == ca) continue;
      const std::int64_t len_cb = contig_len[cb];
      const std::int64_t cb_start =
          offset[a] + la - static_cast<std::int64_t>(e.overlap) - offset[b];
      const std::int64_t est = std::min(len_ca, cb_start + len_cb) -
                               std::max<std::int64_t>(0, cb_start);
      if (est <= 0) continue;
      if (cb_start <= 0) continue;
      const std::int64_t clipped = std::min({est, len_ca, len_cb});
      auto [it, inserted] = best_estimate.try_emplace(
          {ca, cb}, EdgeEstimate{clipped, cb_start});
      if (!inserted && clipped > it->second.overlap) {
        it->second = EdgeEstimate{clipped, cb_start};
      }
    }
  }
  for (const auto& [key, est] : best_estimate) {
    builder.add_edge(key.first, key.second,
                     static_cast<std::uint32_t>(est.overlap),
                     static_cast<std::uint32_t>(est.offset));
  }

  // Pass C: materialize contigs partition by partition while the builder
  // seals slices — the only point sequence bytes exist, and only one
  // partition's worth at a time.
  out.store = builder.finish([&](NodeId h) {
    const auto& layout = hybrid.layouts[h];
    std::string contig;
    for (std::size_t i = 0; i < layout.size(); ++i) {
      const std::string& seq = reads[layout[i].read].seq;
      if (i == 0) {
        contig = seq;
      } else {
        const auto ov =
            static_cast<std::int64_t>(layout[i - 1].overlap_to_next);
        const auto keep = static_cast<std::size_t>(std::min<std::int64_t>(
            ov, static_cast<std::int64_t>(seq.size())));
        if (keep < seq.size()) contig += seq.substr(keep);
      }
    }
    if (use_consensus && layout.size() > 1) {
      auto called = consensus_from_layout(reads, layout);
      FOCUS_ASSERT(called.sequence.size() == contig.size(),
                   "consensus length diverged from layout merge");
      contig = std::move(called.sequence);
    }
    FOCUS_ASSERT(contig.size() == static_cast<std::size_t>(contig_len[h]),
                 "pass-A contig length diverged from merge");
    return contig;
  });
  return out;
}

}  // namespace focus::core
