#include "core/consensus.hpp"

#include <algorithm>
#include <array>

#include "common/dna.hpp"
#include "common/error.hpp"

namespace focus::core {

namespace {

// Vote weight of a base call: its Phred score, or a moderate default when
// the read carries no qualities (FASTA input).
double call_weight(const io::Read& read, std::size_t pos) {
  if (read.qual.size() == read.seq.size()) {
    return static_cast<double>(read.qual[pos] - '!');
  }
  return 20.0;
}

// Offsets of each layout read within the contig coordinate system, using
// the same arithmetic as the chain merge in asm_build: the next read starts
// `overlap` bases before the current contig end, clamped at 0, and the
// contig never shrinks (an overlap longer than the read leaves the end
// unchanged).
std::vector<std::int64_t> layout_offsets(
    const io::ReadSet& reads, std::span<const graph::LayoutStep> layout) {
  std::vector<std::int64_t> offsets(layout.size());
  std::int64_t contig_len = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    const auto len =
        static_cast<std::int64_t>(reads[layout[i].read].seq.size());
    if (i == 0) {
      offsets[i] = 0;
      contig_len = len;
    } else {
      const auto ov =
          static_cast<std::int64_t>(layout[i - 1].overlap_to_next);
      offsets[i] = std::max<std::int64_t>(0, contig_len - ov);
      contig_len = std::max(contig_len, offsets[i] + len);
    }
  }
  return offsets;
}

}  // namespace

ConsensusResult consensus_from_layout(
    const io::ReadSet& reads, std::span<const graph::LayoutStep> layout) {
  FOCUS_CHECK(!layout.empty(), "consensus needs a non-empty layout");

  const auto offsets = layout_offsets(reads, layout);
  std::int64_t contig_len = 0;
  for (std::size_t i = 0; i < layout.size(); ++i) {
    contig_len = std::max(
        contig_len,
        offsets[i] + static_cast<std::int64_t>(reads[layout[i].read].length()));
  }

  ConsensusResult result;
  result.sequence.assign(static_cast<std::size_t>(contig_len), 'N');
  result.depth.assign(static_cast<std::size_t>(contig_len), 0);

  // Per-column weighted votes for A/C/G/T. Layouts are chains of reads, so a
  // column is covered by few reads; a dense column sweep with small fixed
  // vote arrays keeps this linear in total bases.
  std::vector<std::array<double, 4>> votes(
      static_cast<std::size_t>(contig_len), {0.0, 0.0, 0.0, 0.0});

  for (std::size_t i = 0; i < layout.size(); ++i) {
    const io::Read& read = reads[layout[i].read];
    for (std::size_t p = 0; p < read.seq.size(); ++p) {
      const char base = read.seq[p];
      if (!dna::is_base(base)) continue;  // N never votes
      const auto col = static_cast<std::size_t>(
          offsets[i] + static_cast<std::int64_t>(p));
      votes[col][dna::encode_base(base)] += call_weight(read, p);
      if (result.depth[col] < 0xffff) ++result.depth[col];
    }
  }

  std::uint64_t depth_total = 0;
  for (std::size_t col = 0; col < votes.size(); ++col) {
    depth_total += result.depth[col];
    const auto& v = votes[col];
    int best = 0;
    int voters = 0;
    for (int b = 0; b < 4; ++b) {
      if (v[b] > 0.0) ++voters;
      if (v[b] > v[best]) best = b;
    }
    if (v[best] > 0.0) {
      result.sequence[col] = dna::decode_base(static_cast<std::uint8_t>(best));
      if (voters > 1) ++result.corrected_columns;
    }
  }
  result.mean_depth = votes.empty()
                          ? 0.0
                          : static_cast<double>(depth_total) /
                                static_cast<double>(votes.size());
  return result;
}

double consensus_work(const io::ReadSet& reads,
                      std::span<const graph::LayoutStep> layout) {
  double bases = 0.0;
  for (const auto& step : layout) {
    bases += static_cast<double>(reads[step.read].seq.size());
  }
  return bases;
}

}  // namespace focus::core
