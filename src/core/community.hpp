// Community-structure analysis of graph partitionings (paper §VI-E, Fig. 7).
//
// For each genus, the fraction of its classified reads landing in each graph
// partition is computed; the paper's observation is that the distribution is
// far from uniform — a genus concentrates in few partitions, and genera of
// the same phylum co-locate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace focus::core {

struct GenusPartitionMatrix {
  std::vector<std::string> genus_names;          // rows
  /// fraction[g][p]: share of genus g's classified reads in partition p.
  std::vector<std::vector<double>> fraction;
  /// Total classified reads per genus.
  std::vector<std::size_t> classified_reads;
  PartId partitions = 0;
};

/// Builds the genus × partition fraction matrix. `genus_of_read[i]` is the
/// genus index of read i (kUnclassified entries are skipped);
/// `partition_of_read[i]` its partition (kNoPart entries are skipped).
GenusPartitionMatrix genus_partition_distribution(
    const std::vector<std::uint32_t>& genus_of_read,
    const std::vector<PartId>& partition_of_read,
    const std::vector<std::string>& genus_names, PartId partitions);

/// ASCII heat map (rows = genera, columns = partitions, shading by
/// fraction), the textual analogue of the paper's Fig. 7 panels.
std::string render_heatmap(const GenusPartitionMatrix& matrix);

/// Concentration of a genus's reads: max partition fraction (1/k means
/// uniform, 1.0 means fully concentrated).
std::vector<double> concentration(const GenusPartitionMatrix& matrix);

/// Mean Pearson correlation between partition distributions of genus pairs
/// within the same phylum vs in different phyla. The paper's Fig. 7
/// observation holds when within > between.
struct PhylumCoclustering {
  double within_phylum = 0.0;
  double between_phyla = 0.0;
};
PhylumCoclustering phylum_coclustering(
    const GenusPartitionMatrix& matrix,
    const std::vector<std::string>& genus_phylum);

}  // namespace focus::core
