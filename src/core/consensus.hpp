// Quality-weighted consensus calling — the "consensus" of
// overlap-layout-consensus. A cluster's layout places each read at an offset
// within the contig; every column is called by weighted vote of the reads
// covering it, with Phred qualities as weights. This corrects isolated
// sequencing errors that a first-read-wins merge would bake into the contig.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/contiguity.hpp"
#include "io/read.hpp"

namespace focus::core {

struct ConsensusResult {
  std::string sequence;
  /// Number of reads covering each consensus column.
  std::vector<std::uint16_t> depth;
  double mean_depth = 0.0;
  /// Columns where the vote was not unanimous (error-corrected sites).
  std::size_t corrected_columns = 0;
};

/// Calls the consensus of a cluster layout (reads chained by overlap
/// lengths, as produced by the contiguity tester). Reads without quality
/// strings vote with a fixed moderate weight. The layout must be non-empty.
ConsensusResult consensus_from_layout(
    const io::ReadSet& reads, std::span<const graph::LayoutStep> layout);

/// Work units of a consensus call (for virtual-time accounting): roughly the
/// total bases voted.
double consensus_work(const io::ReadSet& reads,
                      std::span<const graph::LayoutStep> layout);

}  // namespace focus::core
