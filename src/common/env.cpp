#include "common/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"

namespace focus {

namespace {

std::optional<std::string> read(const char* name) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — the process-wide single call
  // site; see the header's concurrency contract.
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

}  // namespace

EnvSnapshot EnvSnapshot::capture() {
  EnvSnapshot s;
  s.threads = read("FOCUS_THREADS");
  s.seed_strategy = read("FOCUS_SEED_STRATEGY");
  s.dist_protocol = read("FOCUS_DIST_PROTOCOL");
  s.graph_backend = read("FOCUS_GRAPH_BACKEND");
  s.graph_mem_budget = read("FOCUS_GRAPH_MEM_BUDGET");
  s.graph_spill_dir = read("FOCUS_GRAPH_SPILL_DIR");
  s.graph_write_fault = read("FOCUS_GRAPH_WRITE_FAULT");
  s.fault_seed = read("FOCUS_FAULT_SEED");
  s.fault_crash = read("FOCUS_FAULT_CRASH");
  s.fault_drop = read("FOCUS_FAULT_DROP");
  s.fault_dup = read("FOCUS_FAULT_DUP");
  s.fault_corrupt = read("FOCUS_FAULT_CORRUPT");
  s.fault_delay = read("FOCUS_FAULT_DELAY");
  s.fault_max_retries = read("FOCUS_FAULT_MAX_RETRIES");
  s.fault_recv_timeout = read("FOCUS_FAULT_RECV_TIMEOUT");
  s.bench_scale = read("FOCUS_BENCH_SCALE");
  s.bench_coverage = read("FOCUS_BENCH_COVERAGE");
  return s;
}

std::optional<unsigned> EnvSnapshot::thread_count() const {
  if (!threads.has_value() || threads->empty()) return std::nullopt;
  const std::uint64_t parsed = env::parse_u64("FOCUS_THREADS", *threads);
  if (parsed == 0) return std::nullopt;  // explicit "auto"
  if (parsed > 256) {
    FOCUS_THROW("FOCUS_THREADS must be in [0, 256] (0 = auto), got '" +
                *threads + "'");
  }
  return static_cast<unsigned>(parsed);
}

namespace env {

std::uint64_t parse_u64(const char* name, const std::string& value) {
  if (value.empty()) {
    FOCUS_THROW(std::string(name) + " must be an unsigned integer, got ''");
  }
  for (const char c : value) {
    if (c < '0' || c > '9') {
      FOCUS_THROW(std::string(name) + " must be an unsigned integer, got '" +
                  value + "'");
    }
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) {
    FOCUS_THROW(std::string(name) + " must be an unsigned integer, got '" +
                value + "'");
  }
  return parsed;
}

double parse_double(const char* name, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    FOCUS_THROW(std::string(name) + " must be a number, got '" + value + "'");
  }
  return parsed;
}

double parse_rate(const char* name, const std::string& value) {
  const double rate = parse_double(name, value);
  if (!(rate >= 0.0 && rate <= 1.0)) {
    FOCUS_THROW(std::string(name) + " must be a probability in [0, 1], got '" +
                value + "'");
  }
  return rate;
}

}  // namespace env

}  // namespace focus
