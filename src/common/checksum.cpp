#include "common/checksum.hpp"

#include <array>

namespace focus::common {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    state = kCrcTable[(state ^ data[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

}  // namespace focus::common
