// Wall-clock stopwatch used alongside the virtual-time cost model.
#pragma once

#include <chrono>

namespace focus {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace focus
