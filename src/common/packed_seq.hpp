// 2-bit packed DNA sequence with an ambiguity mask.
//
// A/C/G/T pack into 2 bits each (A=0, C=1, G=2, T=3, matching
// dna::encode_base), 32 bases per 64-bit word, base i in bits [2*(i%32),
// 2*(i%32)+2) of word i/32. Every position that is not an upper-case ACGT
// character (N, lowercase, separators, ...) is recorded in a parallel
// 1-bit-per-base ambiguity mask and decodes back to 'N'.
//
// The payoff on the alignment hot path (paper §II-B) is k-mer extraction:
// once a read is packed, any k <= 32 window that is free of ambiguous bases
// becomes a single uint64_t key in O(1) word operations — no per-character
// scanning, validation, or hashing of string data. The key orders bases
// LSB-first (base at `pos` in the low bits); keys are only compared for
// equality, so any injective encoding is equivalent.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace focus::dna {

class PackedSeq {
 public:
  PackedSeq() = default;
  explicit PackedSeq(std::string_view seq) { assign(seq); }

  /// Re-packs `seq` into this object, reusing existing buffer capacity
  /// (no heap allocation once grown to the largest sequence seen).
  void assign(std::string_view seq);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// 2-bit code of base i; meaningful only when !ambiguous_at(i).
  std::uint8_t code_at(std::size_t i) const {
    return static_cast<std::uint8_t>((words_[i >> 5] >> ((i & 31u) * 2)) & 3u);
  }

  /// True iff position i was not an upper-case ACGT character.
  bool ambiguous_at(std::size_t i) const {
    return ((mask_[i >> 6] >> (i & 63u)) & 1u) != 0;
  }

  /// Decoded character at i ('N' for ambiguous positions).
  char char_at(std::size_t i) const;

  /// Decodes the whole sequence (ambiguous positions become 'N').
  std::string unpack() const;

  /// Packs the k-mer window [pos, pos+k) into `out` (base `pos` in the low
  /// 2 bits). Returns false if the window is out of range or contains an
  /// ambiguous base. O(1): at most two words are touched. Requires k <= 32.
  bool kmer_at(std::size_t pos, unsigned k, std::uint64_t& out) const;

  /// True iff [pos, pos+len) is in range and free of ambiguous bases.
  bool clean_window(std::size_t pos, std::size_t len) const;

  /// Number of ambiguous positions.
  std::size_t ambiguous_count() const;

  const std::vector<std::uint64_t>& base_words() const { return words_; }
  const std::vector<std::uint64_t>& mask_words() const { return mask_; }

 private:
  std::vector<std::uint64_t> words_;  // 2-bit codes, 32 bases/word
  std::vector<std::uint64_t> mask_;   // 1 = ambiguous, 64 bases/word
  std::size_t size_ = 0;
};

}  // namespace focus::dna
