// Shared-memory work-stealing thread pool — the wall-clock execution layer.
//
// Focus has two parallelism layers (see DESIGN.md, "Execution model"):
// the mpr runtime simulates *cluster* ranks in deterministic virtual time,
// while this pool provides real *host* parallelism for the compute-bound
// loops (subset-pair overlap detection, per-query seed-and-verify,
// heavy-edge-matching candidate scoring).
//
// Design:
//  * One task deque per participant (the calling thread occupies slot 0,
//    spawned workers slots 1..threads-1). parallel_for() splits an index
//    range into chunks and scatters them round-robin; each participant pops
//    its own deque LIFO and steals FIFO from the others when it runs dry,
//    so imbalanced chunks (e.g. repeat-rich read subsets) migrate to idle
//    threads automatically.
//  * The calling thread is a full participant: it executes and steals tasks
//    while it waits, so nothing blocks on a pool smaller than the work.
//  * threads == 1 is an explicit serial fallback: no worker threads are
//    spawned and parallel_for() runs inline, chunk by chunk, in index order.
//  * Determinism: callers write results into per-index slots and merge them
//    in index order, so output never depends on the execution interleaving.
//    Every user of the pool in this codebase is byte-identical for any
//    thread count (enforced by tests/threads_test.cpp).
//
// Thread-count resolution: an explicit positive count wins; 0 means "auto" —
// the FOCUS_THREADS environment variable if set (strictly validated via
// EnvSnapshot: 0 = auto, 1..256 = width, anything else throws), else
// hardware concurrency.
//
// Multi-pool safety: several pools may coexist in one process (the job
// runtime runs one assembly — and therefore one transient pool per parallel
// stage — per in-flight job). The worker-slot thread_local is keyed by pool
// identity, so a thread entering a pool it does not work for participates as
// an external caller (slot 0) instead of indexing a foreign deque array.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace focus {

struct EnvSnapshot;

/// Pool width used when a config asks for "auto" (threads == 0):
/// FOCUS_THREADS if set to a positive integer, else hardware concurrency.
/// A set-but-malformed FOCUS_THREADS (garbage, trailing junk, negative,
/// overflow, > 256) throws focus::Error naming the offending value.
unsigned default_thread_count();

/// Same, resolved against an already-captured environment snapshot.
unsigned default_thread_count(const EnvSnapshot& env);

/// Resolves a configured thread count: positive values pass through,
/// 0 resolves via default_thread_count(). Always returns >= 1.
unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  /// `threads` is resolved with resolve_thread_count(); the pool spawns
  /// threads-1 workers (the caller participates as the remaining one).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Runs fn(begin, end) over a partition of [0, n) into chunks of at most
  /// `grain` indices. Blocks until every chunk has finished; the calling
  /// thread executes and steals chunks while waiting. The first exception
  /// thrown by any chunk is rethrown here (remaining chunks still run).
  /// The chunk decomposition depends only on (n, grain) — never on the
  /// thread count — so per-chunk accumulators merge identically everywhere.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Maps fn over [0, n) into a vector: out[i] = fn(i). Results land in
  /// index order regardless of which thread computed them. T must be
  /// default-constructible and movable.
  template <typename T, typename Fn>
  std::vector<T> parallel_transform(std::size_t n, std::size_t grain,
                                    Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
    });
    return out;
  }

  /// Deterministic chunked reduction: splits [0, n) into the same fixed
  /// chunks as parallel_for (chunk c covers [c*grain, min(n, (c+1)*grain))),
  /// computes fn(begin, end) -> T for every chunk, then folds the per-chunk
  /// values in ascending chunk order: acc = merge(acc, value). The chunk
  /// decomposition and the merge order depend only on (n, grain) — never on
  /// the thread count — so the result is identical at every pool width; the
  /// serial width-1 path runs the chunks inline in the same order.
  template <typename T, typename ChunkFn, typename MergeFn>
  T parallel_reduce(std::size_t n, std::size_t grain, T init,
                    const ChunkFn& fn, const MergeFn& merge) {
    if (n == 0) return init;
    grain = grain == 0 ? 1 : grain;
    const std::size_t chunks = (n + grain - 1) / grain;
    std::vector<T> slot(chunks);
    parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
      slot[begin / grain] = fn(begin, end);
    });
    T acc = std::move(init);
    for (std::size_t c = 0; c < chunks; ++c) {
      acc = merge(std::move(acc), std::move(slot[c]));
    }
    return acc;
  }

  /// Binary fork-join: runs `left` and `right`, potentially concurrently, and
  /// returns when both have finished. `right` is pushed onto the calling
  /// participant's deque (so an idle thread can steal it) while `left` runs
  /// inline; if `right` has not been stolen by then the caller pops it back
  /// (LIFO) and runs it too. Safe to call recursively from inside pool tasks:
  /// while waiting for a stolen `right`, the caller *helps* — it executes any
  /// other queued task instead of blocking, so a tree of nested fork_join
  /// calls (e.g. recursive bisection) can never deadlock on pool width.
  /// threads == 1 degrades to `left(); right();` inline. Exceptions from
  /// either side are rethrown here (left's first).
  void fork_join(const std::function<void()>& left,
                 const std::function<void()>& right);

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_main(unsigned self);
  bool try_acquire(unsigned self, std::function<void()>& task);

  unsigned threads_;
  std::vector<std::unique_ptr<Deque>> deques_;  // slot 0 = caller
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> unclaimed_{0};  // tasks sitting in deques
  bool stop_ = false;
};

}  // namespace focus
