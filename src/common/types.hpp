// Core scalar type aliases shared across the Focus library.
#pragma once

#include <cstdint>
#include <limits>

namespace focus {

/// Identifier of a read within a ReadSet (dense, 0-based).
using ReadId = std::uint32_t;

/// Identifier of a node within a graph level (dense, 0-based).
using NodeId = std::uint32_t;

/// Identifier of a graph partition (0-based; -1 = unassigned).
using PartId = std::int32_t;

/// Rank of a worker in the message-passing runtime.
using Rank = int;

/// Edge/node weights. Edge weights are alignment lengths (bp); node weights
/// are read-cluster sizes. 64-bit so that sums over whole graphs cannot
/// overflow.
using Weight = std::int64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ReadId kInvalidRead = std::numeric_limits<ReadId>::max();
inline constexpr PartId kNoPart = -1;

}  // namespace focus
