// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (greedy-graph-growing seed picks,
// heavy-edge-matching visit order, the read simulator) draw from Rng so that
// every experiment is reproducible from a single 64-bit seed. The generator
// is xoshiro256** seeded through SplitMix64, which is both fast and has no
// observable correlations at the scales used here.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace focus {

/// SplitMix64 step — used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedf0c5ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire rejection (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    FOCUS_ASSERT(bound > 0, "next_below requires positive bound");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    FOCUS_ASSERT(lo <= hi, "next_in requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform real in [0, 1).
  double next_real() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p) { return next_real() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, …, n-1}.
  std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> p(n);
    std::iota(p.begin(), p.end(), 0u);
    shuffle(p);
    return p;
  }

  /// Derive an independent child generator (for per-rank / per-subset streams).
  Rng fork() { return Rng(next_u64() ^ 0xa02f1c5d9b3e7461ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace focus
