// IndexedMaxHeap: a binary max-heap over dense integer keys with
// update-priority and remove-by-key, the workhorse behind every gain priority
// queue in the partitioner (greedy graph growing, Kernighan–Lin bisection,
// global k-way refinement).
//
// All operations are O(log n); contains()/priority() are O(1). Keys are dense
// indices in [0, capacity). Ties are broken by key for determinism.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace focus {

template <typename Priority>
class IndexedMaxHeap {
 public:
  using Key = std::uint32_t;

  explicit IndexedMaxHeap(std::size_t capacity = 0) { reset(capacity); }

  /// Clears the heap and resizes the key universe.
  void reset(std::size_t capacity) {
    heap_.clear();
    pos_.assign(capacity, kAbsent);
    prio_.assign(capacity, Priority{});
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t capacity() const { return pos_.size(); }

  bool contains(Key k) const {
    return k < pos_.size() && pos_[k] != kAbsent;
  }

  /// Priority of a contained key.
  Priority priority(Key k) const {
    FOCUS_ASSERT(contains(k), "priority() on absent key");
    return prio_[k];
  }

  /// Inserts key k (must be absent) with priority p.
  void push(Key k, Priority p) {
    FOCUS_ASSERT(k < pos_.size(), "heap key out of range");
    FOCUS_ASSERT(!contains(k), "push of key already in heap");
    prio_[k] = p;
    pos_[k] = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(k);
    sift_up(pos_[k]);
  }

  /// Inserts k or updates its priority if already present.
  void push_or_update(Key k, Priority p) {
    if (contains(k)) {
      update(k, p);
    } else {
      push(k, p);
    }
  }

  /// Changes the priority of a contained key.
  void update(Key k, Priority p) {
    FOCUS_ASSERT(contains(k), "update() on absent key");
    const Priority old = prio_[k];
    prio_[k] = p;
    if (less(k, p, k, old)) {
      sift_down(pos_[k]);
    } else {
      sift_up(pos_[k]);
    }
  }

  /// Key with the maximum priority (ties: smallest key).
  Key top() const {
    FOCUS_ASSERT(!empty(), "top() on empty heap");
    return heap_[0];
  }

  Priority top_priority() const { return prio_[top()]; }

  /// Removes and returns the max-priority key.
  Key pop() {
    const Key k = top();
    erase(k);
    return k;
  }

  /// Removes key k from the heap.
  void erase(Key k) {
    FOCUS_ASSERT(contains(k), "erase() on absent key");
    const std::uint32_t i = pos_[k];
    const Key last = heap_.back();
    heap_.pop_back();
    pos_[k] = kAbsent;
    if (last == k) return;
    heap_[i] = last;
    pos_[last] = i;
    // Re-establish heap order for the displaced element.
    if (i > 0 && higher(heap_[i], heap_[parent(i)])) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  static std::uint32_t parent(std::uint32_t i) { return (i - 1) / 2; }

  // Strict "a outranks b" with deterministic key tiebreak.
  bool less(Key ka, const Priority& pa, Key kb, const Priority& pb) const {
    if (pa != pb) return pa < pb;
    return ka > kb;
  }

  bool higher(Key a, Key b) const { return less(b, prio_[b], a, prio_[a]); }

  void sift_up(std::uint32_t i) {
    while (i > 0) {
      const std::uint32_t p = parent(i);
      if (!higher(heap_[i], heap_[p])) break;
      swap_at(i, p);
      i = p;
    }
  }

  void sift_down(std::uint32_t i) {
    const auto n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t best = i;
      const std::uint32_t l = 2 * i + 1;
      const std::uint32_t r = 2 * i + 2;
      if (l < n && higher(heap_[l], heap_[best])) best = l;
      if (r < n && higher(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      swap_at(i, best);
      i = best;
    }
  }

  void swap_at(std::uint32_t i, std::uint32_t j) {
    std::swap(heap_[i], heap_[j]);
    pos_[heap_[i]] = i;
    pos_[heap_[j]] = j;
  }

  std::vector<Key> heap_;        // heap order -> key
  std::vector<std::uint32_t> pos_;  // key -> heap position (kAbsent if out)
  std::vector<Priority> prio_;   // key -> priority
};

}  // namespace focus
