// Shared IEEE CRC-32 (reflected, polynomial 0xEDB88320) — the checksum used
// by both the mpr message frames (src/mpr/fault.*) and the graph-store slice
// files (src/graph/graph_store.*). One implementation so a frame checksum and
// a slice checksum can never drift apart.
#pragma once

#include <cstddef>
#include <cstdint>

namespace focus::common {

/// Incremental interface: seed with crc32_init(), feed byte runs through
/// crc32_update(), close with crc32_final(). Feeding a buffer in several
/// runs yields the same value as one run over the concatenation.
inline std::uint32_t crc32_init() { return 0xffffffffu; }
std::uint32_t crc32_update(std::uint32_t state, const std::uint8_t* data,
                           std::size_t n);
inline std::uint32_t crc32_final(std::uint32_t state) {
  return state ^ 0xffffffffu;
}

/// One-shot CRC-32 of a buffer.
std::uint32_t crc32(const std::uint8_t* data, std::size_t n);

}  // namespace focus::common
