// Small descriptive-statistics helpers used by the benchmark harness and the
// assembly-statistics reporters.
#pragma once

#include <cstdint>
#include <vector>

namespace focus {

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(const std::vector<double>& xs);

/// Nx statistic over a set of lengths: the largest L such that elements of
/// length >= L sum to at least `fraction` of the total. N50 = nx(lens, 0.50).
/// Returns 0 for an empty set.
std::uint64_t nx(std::vector<std::uint64_t> lengths, double fraction);

/// Convenience wrapper: N50 of a set of lengths.
std::uint64_t n50(const std::vector<std::uint64_t>& lengths);

/// Pearson correlation of two equal-length samples; 0 if either is constant.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace focus
