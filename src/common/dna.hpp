// DNA sequence primitives: validation, complementation, 2-bit packing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace focus::dna {

/// True iff c is one of A, C, G, T (upper case).
bool is_base(char c);

/// Complement of a single base; 'N' (or anything unrecognized) maps to 'N'.
char complement(char c);

/// Reverse complement of a sequence. Unknown characters become 'N'.
std::string reverse_complement(std::string_view seq);

/// Uppercases a sequence and replaces any non-ACGT character with 'N'.
std::string canonicalize(std::string_view seq);

/// True iff every character of seq is A, C, G, or T.
bool is_clean(std::string_view seq);

/// 2-bit encoding A=0, C=1, G=2, T=3. Precondition: is_base(c).
std::uint8_t encode_base(char c);

/// Inverse of encode_base.
char decode_base(std::uint8_t code);

/// Packs the k-mer starting at seq[pos] into the low 2k bits (k <= 32).
/// Returns false if any base in the window is not ACGT.
bool pack_kmer(std::string_view seq, std::size_t pos, unsigned k,
               std::uint64_t& out);

/// Fraction of positions at which a and b agree; sequences must be equal
/// length. Returns 1.0 for two empty sequences.
double identity(std::string_view a, std::string_view b);

}  // namespace focus::dna
