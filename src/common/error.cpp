#include "common/error.hpp"

#include <sstream>

namespace focus::detail {

[[noreturn]] void throw_error(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << msg << " [" << file << ':' << line << ']';
  throw Error(os.str());
}

[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") " << msg << " [" << file
     << ':' << line << ']';
  throw std::logic_error(os.str());
}

}  // namespace focus::detail
