#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace focus {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

std::uint64_t nx(std::vector<std::uint64_t> lengths, double fraction) {
  FOCUS_CHECK(fraction > 0.0 && fraction <= 1.0,
              "nx fraction must be in (0, 1]");
  if (lengths.empty()) return 0;
  std::sort(lengths.begin(), lengths.end(), std::greater<>());
  const auto total = std::accumulate(lengths.begin(), lengths.end(),
                                     std::uint64_t{0});
  const double target = fraction * static_cast<double>(total);
  std::uint64_t acc = 0;
  for (const auto len : lengths) {
    acc += len;
    if (static_cast<double>(acc) >= target) return len;
  }
  return lengths.back();
}

std::uint64_t n50(const std::vector<std::uint64_t>& lengths) {
  return nx(lengths, 0.5);
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  FOCUS_CHECK(a.size() == b.size(), "pearson requires equal-length samples");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace focus
