// EnvSnapshot — the single resolver of process-environment configuration.
//
// Every FOCUS_* knob the library honours is captured here, in one place, by
// EnvSnapshot::capture(); no other translation unit calls std::getenv. This
// is a concurrency contract as much as a style rule: getenv/setenv are not
// thread-safe against each other, and a pipeline that re-reads the
// environment mid-run can see two different values for the same knob. A
// snapshot is immutable after capture, so every consumer that derives its
// configuration from one snapshot sees one consistent environment.
//
// Granularity: capture() is cheap (a dozen getenv calls, no parsing) and is
// taken fresh by each `*_from_env()` compatibility wrapper, so tests that
// setenv/unsetenv between calls keep their semantics. FocusConfig's default
// constructor takes exactly ONE snapshot and derives every env-defaulted
// sub-config from it — the environment is read once per FocusConfig, never
// per call inside the pipeline (OPERATIONS.md, "Environment snapshot").
//
// Parsing: a set-but-malformed knob is an operator error, never a silent
// fallback. The typed parse helpers below throw focus::Error naming the
// variable and the offending value (the PR-9 contract); domain code supplies
// the domain knowledge (enum names, ranges) on top of them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace focus {

struct EnvSnapshot {
  // Raw captured values; nullopt = unset. Empty strings are preserved so
  // domains can keep their documented ""-means-default behaviour.
  std::optional<std::string> threads;             // FOCUS_THREADS
  std::optional<std::string> seed_strategy;       // FOCUS_SEED_STRATEGY
  std::optional<std::string> dist_protocol;       // FOCUS_DIST_PROTOCOL
  std::optional<std::string> graph_backend;       // FOCUS_GRAPH_BACKEND
  std::optional<std::string> graph_mem_budget;    // FOCUS_GRAPH_MEM_BUDGET
  std::optional<std::string> graph_spill_dir;     // FOCUS_GRAPH_SPILL_DIR
  std::optional<std::string> graph_write_fault;   // FOCUS_GRAPH_WRITE_FAULT
  std::optional<std::string> fault_seed;          // FOCUS_FAULT_SEED
  std::optional<std::string> fault_crash;         // FOCUS_FAULT_CRASH
  std::optional<std::string> fault_drop;          // FOCUS_FAULT_DROP
  std::optional<std::string> fault_dup;           // FOCUS_FAULT_DUP
  std::optional<std::string> fault_corrupt;       // FOCUS_FAULT_CORRUPT
  std::optional<std::string> fault_delay;         // FOCUS_FAULT_DELAY
  std::optional<std::string> fault_max_retries;   // FOCUS_FAULT_MAX_RETRIES
  std::optional<std::string> fault_recv_timeout;  // FOCUS_FAULT_RECV_TIMEOUT
  std::optional<std::string> bench_scale;         // FOCUS_BENCH_SCALE
  std::optional<std::string> bench_coverage;      // FOCUS_BENCH_COVERAGE

  /// Reads the process environment. The only std::getenv call site in the
  /// codebase (enforced by grep in tools/run_sanitizers.sh reviews).
  static EnvSnapshot capture();

  /// FOCUS_THREADS resolved to a pool width: unset or 0 -> nullopt ("auto",
  /// hardware concurrency); 1..256 -> that width. Anything else — garbage,
  /// trailing junk, negative, overflow, > 256 — throws focus::Error naming
  /// the offending value.
  std::optional<unsigned> thread_count() const;
};

namespace env {

/// Strict unsigned-integer parse of env var `name` holding `value`: digits
/// only, no sign, no trailing junk, no overflow. Throws focus::Error.
std::uint64_t parse_u64(const char* name, const std::string& value);

/// Strict floating-point parse (strtod, full consumption, no overflow).
double parse_double(const char* name, const std::string& value);

/// parse_double constrained to a probability in [0, 1].
double parse_rate(const char* name, const std::string& value);

}  // namespace env

}  // namespace focus
