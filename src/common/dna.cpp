#include "common/dna.hpp"

#include <array>

#include "common/error.hpp"

namespace focus::dna {

namespace {

constexpr std::array<char, 256> make_complement_table() {
  std::array<char, 256> t{};
  for (int i = 0; i < 256; ++i) t[static_cast<std::size_t>(i)] = 'N';
  t['A'] = 'T'; t['C'] = 'G'; t['G'] = 'C'; t['T'] = 'A';
  t['a'] = 'T'; t['c'] = 'G'; t['g'] = 'C'; t['t'] = 'A';
  t['N'] = 'N'; t['n'] = 'N';
  return t;
}

constexpr std::array<std::int8_t, 256> make_encode_table() {
  std::array<std::int8_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[static_cast<std::size_t>(i)] = -1;
  t['A'] = 0; t['C'] = 1; t['G'] = 2; t['T'] = 3;
  return t;
}

constexpr auto kComplement = make_complement_table();
constexpr auto kEncode = make_encode_table();
constexpr char kDecode[4] = {'A', 'C', 'G', 'T'};

}  // namespace

bool is_base(char c) { return kEncode[static_cast<unsigned char>(c)] >= 0; }

char complement(char c) { return kComplement[static_cast<unsigned char>(c)]; }

std::string reverse_complement(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    out[i] = complement(seq[seq.size() - 1 - i]);
  }
  return out;
}

std::string canonicalize(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (std::size_t i = 0; i < seq.size(); ++i) {
    char c = seq[i];
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    out[i] = is_base(c) ? c : 'N';
  }
  return out;
}

bool is_clean(std::string_view seq) {
  for (char c : seq) {
    if (!is_base(c)) return false;
  }
  return true;
}

std::uint8_t encode_base(char c) {
  const auto v = kEncode[static_cast<unsigned char>(c)];
  FOCUS_ASSERT(v >= 0, "encode_base on non-ACGT character");
  return static_cast<std::uint8_t>(v);
}

char decode_base(std::uint8_t code) {
  FOCUS_ASSERT(code < 4, "decode_base code out of range");
  return kDecode[code];
}

bool pack_kmer(std::string_view seq, std::size_t pos, unsigned k,
               std::uint64_t& out) {
  FOCUS_ASSERT(k >= 1 && k <= 32, "pack_kmer requires 1 <= k <= 32");
  if (pos + k > seq.size()) return false;
  std::uint64_t packed = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const auto v = kEncode[static_cast<unsigned char>(seq[pos + i])];
    if (v < 0) return false;
    packed = (packed << 2) | static_cast<std::uint64_t>(v);
  }
  out = packed;
  return true;
}

double identity(std::string_view a, std::string_view b) {
  FOCUS_CHECK(a.size() == b.size(), "identity requires equal-length sequences");
  if (a.empty()) return 1.0;
  std::size_t match = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++match;
  }
  return static_cast<double>(match) / static_cast<double>(a.size());
}

}  // namespace focus::dna
