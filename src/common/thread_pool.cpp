#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace focus {

unsigned default_thread_count() {
  if (const char* env = std::getenv("FOCUS_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return static_cast<unsigned>(std::min<long>(parsed, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

unsigned resolve_thread_count(unsigned requested) {
  return requested >= 1 ? requested : default_thread_count();
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(resolve_thread_count(threads)) {
  deques_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::try_acquire(unsigned self, std::function<void()>& task) {
  // Own deque first (LIFO: the freshest chunk is the one whose pages are
  // warm), then round-robin steals from the victims' FIFO end.
  for (unsigned k = 0; k < threads_; ++k) {
    const unsigned victim = (self + k) % threads_;
    Deque& d = *deques_[victim];
    std::lock_guard<std::mutex> lk(d.mu);
    if (d.tasks.empty()) continue;
    if (victim == self) {
      task = std::move(d.tasks.back());
      d.tasks.pop_back();
    } else {
      task = std::move(d.tasks.front());
      d.tasks.pop_front();
    }
    unclaimed_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(unsigned self) {
  std::function<void()> task;
  while (true) {
    if (try_acquire(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_ || unclaimed_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);

  if (threads_ == 1) {
    // Serial fallback: same chunk decomposition, executed in index order.
    for (std::size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex eptr_mu;
    std::exception_ptr eptr;
  } batch;
  const std::size_t chunks = (n + grain - 1) / grain;
  batch.remaining.store(chunks, std::memory_order_relaxed);

  std::size_t chunk_idx = 0;
  for (std::size_t begin = 0; begin < n; begin += grain, ++chunk_idx) {
    const std::size_t end = std::min(n, begin + grain);
    auto chunk = [&batch, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(batch.eptr_mu);
        if (!batch.eptr) batch.eptr = std::current_exception();
      }
      batch.remaining.fetch_sub(1, std::memory_order_release);
    };
    Deque& d = *deques_[chunk_idx % threads_];
    std::lock_guard<std::mutex> lk(d.mu);
    d.tasks.push_back(std::move(chunk));
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    unclaimed_.fetch_add(chunks, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();

  // The caller is participant 0: execute and steal until the batch drains.
  std::function<void()> task;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (try_acquire(0, task)) {
      task();
      task = nullptr;
    } else {
      std::this_thread::yield();
    }
  }
  if (batch.eptr) std::rethrow_exception(batch.eptr);
}

}  // namespace focus
