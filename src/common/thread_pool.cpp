#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/error.hpp"

namespace focus {

namespace {

/// Pool-affine slot of the current thread: workers record (their pool, their
/// slot id); every external caller — and any thread entering a *different*
/// pool than the one it works for — resolves to slot 0 of the entered pool.
/// Nested parallel_for/fork_join calls issued from inside a task of the same
/// pool then push and pop on the worker's own deque (LIFO), keeping
/// recursive spawns cache-local until someone steals them. Keying the slot
/// by pool identity is what makes several ThreadPools safe in one process
/// (the multi-tenant job runtime runs one pool per in-flight assembly): a
/// worker of pool A that enters pool B must not index B's deques with A's
/// slot id, which can exceed B's width.
struct SlotContext {
  const void* pool = nullptr;
  unsigned slot = 0;
};
thread_local SlotContext t_ctx;

}  // namespace

unsigned default_thread_count() {
  return default_thread_count(EnvSnapshot::capture());
}

unsigned default_thread_count(const EnvSnapshot& env) {
  if (const auto width = env.thread_count()) return *width;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

unsigned resolve_thread_count(unsigned requested) {
  return requested >= 1 ? requested : default_thread_count();
}

ThreadPool::ThreadPool(unsigned threads)
    : threads_(resolve_thread_count(threads)) {
  deques_.reserve(threads_);
  for (unsigned i = 0; i < threads_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::try_acquire(unsigned self, std::function<void()>& task) {
  // Own deque first (LIFO: the freshest chunk is the one whose pages are
  // warm), then round-robin steals from the victims' FIFO end.
  for (unsigned k = 0; k < threads_; ++k) {
    const unsigned victim = (self + k) % threads_;
    Deque& d = *deques_[victim];
    std::lock_guard<std::mutex> lk(d.mu);
    if (d.tasks.empty()) continue;
    if (victim == self) {
      task = std::move(d.tasks.back());
      d.tasks.pop_back();
    } else {
      task = std::move(d.tasks.front());
      d.tasks.pop_front();
    }
    unclaimed_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void ThreadPool::worker_main(unsigned self) {
  t_ctx = {this, self};
  std::function<void()> task;
  while (true) {
    if (try_acquire(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_ || unclaimed_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);

  if (threads_ == 1) {
    // Serial fallback: same chunk decomposition, executed in index order.
    for (std::size_t begin = 0; begin < n; begin += grain) {
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex eptr_mu;
    std::exception_ptr eptr;
  } batch;
  const std::size_t chunks = (n + grain - 1) / grain;
  batch.remaining.store(chunks, std::memory_order_relaxed);

  std::size_t chunk_idx = 0;
  for (std::size_t begin = 0; begin < n; begin += grain, ++chunk_idx) {
    const std::size_t end = std::min(n, begin + grain);
    auto chunk = [&batch, &fn, begin, end] {
      try {
        fn(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lk(batch.eptr_mu);
        if (!batch.eptr) batch.eptr = std::current_exception();
      }
      batch.remaining.fetch_sub(1, std::memory_order_release);
    };
    Deque& d = *deques_[chunk_idx % threads_];
    std::lock_guard<std::mutex> lk(d.mu);
    d.tasks.push_back(std::move(chunk));
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    unclaimed_.fetch_add(chunks, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();

  // The caller is a full participant: execute and steal until the batch
  // drains (starting from its own deque when called from inside a task of
  // *this* pool; threads foreign to this pool scan from slot 0).
  const unsigned self = t_ctx.pool == this ? t_ctx.slot : 0;
  std::function<void()> task;
  while (batch.remaining.load(std::memory_order_acquire) > 0) {
    if (try_acquire(self, task)) {
      task();
      task = nullptr;
    } else {
      std::this_thread::yield();
    }
  }
  if (batch.eptr) std::rethrow_exception(batch.eptr);
}

void ThreadPool::fork_join(const std::function<void()>& left,
                           const std::function<void()>& right) {
  if (threads_ == 1) {
    left();
    right();
    return;
  }

  struct Fork {
    std::atomic<bool> done{false};
    std::mutex eptr_mu;
    std::exception_ptr eptr;
  } fork;

  const unsigned self = t_ctx.pool == this ? t_ctx.slot : 0;
  {
    std::lock_guard<std::mutex> lk(deques_[self]->mu);
    deques_[self]->tasks.push_back([&fork, &right] {
      try {
        right();
      } catch (...) {
        std::lock_guard<std::mutex> lk(fork.eptr_mu);
        fork.eptr = std::current_exception();
      }
      fork.done.store(true, std::memory_order_release);
    });
  }
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    unclaimed_.fetch_add(1, std::memory_order_relaxed);
  }
  wake_cv_.notify_one();

  std::exception_ptr left_eptr;
  try {
    left();
  } catch (...) {
    left_eptr = std::current_exception();
  }

  // Help-first join: `right` is either still in a deque (our LIFO pop finds
  // it first), running elsewhere (we execute unrelated tasks meanwhile), or
  // done. The caller never sleeps while work it depends on is pending.
  std::function<void()> task;
  while (!fork.done.load(std::memory_order_acquire)) {
    if (try_acquire(self, task)) {
      task();
      task = nullptr;
    } else {
      std::this_thread::yield();
    }
  }
  if (left_eptr) std::rethrow_exception(left_eptr);
  if (fork.eptr) std::rethrow_exception(fork.eptr);
}

}  // namespace focus
