// 128-bit content digests for artifact-cache keys.
//
// The job runtime (src/svc) keys cached stage artifacts by
// (dataset digest, config fingerprint). The digest only has to be
// deterministic across runs and collision-resistant enough that two
// *accidentally* different inputs never share a key — it is not a
// cryptographic commitment. Two independently-seeded FNV-1a streams give
// 128 bits; every absorbed field is length- or tag-prefixed so field
// boundaries cannot alias ("ab","c" != "a","bc").
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace focus::common {

struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;

  /// 32 lowercase hex characters, hi then lo.
  std::string hex() const {
    static const char* kHex = "0123456789abcdef";
    std::string out(32, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = kHex[(hi >> (4 * i)) & 0xf];
      out[31 - i] = kHex[(lo >> (4 * i)) & 0xf];
    }
    return out;
  }
};

/// Streaming digest builder. Absorb order matters; callers fix a canonical
/// field order per key kind (see core/stage_cache.cpp).
class Hasher {
 public:
  Hasher() = default;
  /// Domain-separated: two Hashers seeded with different tags never collide
  /// on the same byte stream.
  explicit Hasher(std::uint64_t domain_tag) { u64(domain_tag); }

  Hasher& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ ^ p[i]) * kPrime;
      b_ = (b_ ^ p[i]) * kPrime2;
    }
    return *this;
  }

  Hasher& u64(std::uint64_t v) { return bytes(&v, sizeof v); }
  Hasher& u32(std::uint32_t v) { return u64(v); }
  Hasher& boolean(bool v) { return u64(v ? 1 : 2); }
  Hasher& f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

  Hasher& str(std::string_view s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  Hasher& digest(const Digest& d) { return u64(d.hi).u64(d.lo); }

  Digest finish() const {
    // One avalanche round (splitmix64 finalizer) per stream so short inputs
    // still diffuse into all 128 bits.
    return {mix(a_), mix(b_)};
  }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;   // FNV-1a
  static constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ull | 1ull;

  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  std::uint64_t a_ = 0xcbf29ce484222325ull;  // FNV offset basis
  std::uint64_t b_ = 0x6a09e667f3bcc909ull;  // sqrt(2) fraction
};

}  // namespace focus::common
