// Error handling: a library-wide exception type plus CHECK-style macros.
//
// Library code throws focus::Error for recoverable input problems (malformed
// FASTQ, inconsistent configuration). FOCUS_ASSERT guards internal invariants
// and is kept enabled in all build types: assembly-graph corruption must fail
// loudly, never silently produce wrong contigs.
#pragma once

#include <stdexcept>
#include <string>

namespace focus {

/// Exception thrown on invalid input or configuration.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* file, int line, const char* expr,
                              const std::string& msg);
}  // namespace detail

}  // namespace focus

/// Throw focus::Error with file/line context.
#define FOCUS_THROW(msg) ::focus::detail::throw_error(__FILE__, __LINE__, (msg))

/// Validate user-facing preconditions; throws focus::Error on failure.
#define FOCUS_CHECK(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) ::focus::detail::throw_error(__FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant check, enabled in every build type.
#define FOCUS_ASSERT(cond, msg)                                             \
  do {                                                                      \
    if (!(cond))                                                            \
      ::focus::detail::assert_fail(__FILE__, __LINE__, #cond, (msg));       \
  } while (false)
