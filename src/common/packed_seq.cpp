#include "common/packed_seq.hpp"

#include <bit>

#include "common/dna.hpp"
#include "common/error.hpp"

namespace focus::dna {

void PackedSeq::assign(std::string_view seq) {
  size_ = seq.size();
  const std::size_t n_base_words = (size_ + 31) / 32;
  const std::size_t n_mask_words = (size_ + 63) / 64;
  words_.assign(n_base_words, 0);
  mask_.assign(n_mask_words, 0);
  for (std::size_t i = 0; i < size_; ++i) {
    const char c = seq[i];
    if (is_base(c)) {
      words_[i >> 5] |= static_cast<std::uint64_t>(encode_base(c))
                        << ((i & 31u) * 2);
    } else {
      mask_[i >> 6] |= std::uint64_t{1} << (i & 63u);
    }
  }
}

char PackedSeq::char_at(std::size_t i) const {
  FOCUS_ASSERT(i < size_, "PackedSeq position out of range");
  return ambiguous_at(i) ? 'N' : decode_base(code_at(i));
}

std::string PackedSeq::unpack() const {
  std::string out(size_, 'N');
  for (std::size_t i = 0; i < size_; ++i) out[i] = char_at(i);
  return out;
}

bool PackedSeq::kmer_at(std::size_t pos, unsigned k,
                        std::uint64_t& out) const {
  FOCUS_ASSERT(k >= 1 && k <= 32, "kmer_at requires 1 <= k <= 32");
  if (pos + k > size_) return false;

  // Ambiguity test over the k mask bits starting at `pos` (spans <= 2 words
  // because k <= 32 < 64).
  const std::size_t mw = pos >> 6;
  const unsigned moff = pos & 63u;
  std::uint64_t mbits = mask_[mw] >> moff;
  if (moff + k > 64) mbits |= mask_[mw + 1] << (64 - moff);
  const std::uint64_t kmask =
      k == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
  if ((mbits & kmask) != 0) return false;

  // Extract the 2k base bits starting at bit 2*pos (spans <= 2 words because
  // 2k <= 64).
  const std::size_t bit = pos * 2;
  const std::size_t bw = bit >> 6;
  const unsigned boff = bit & 63u;
  std::uint64_t bits = words_[bw] >> boff;
  if (boff + 2 * k > 64) bits |= words_[bw + 1] << (64 - boff);
  const std::uint64_t bmask =
      k == 32 ? ~std::uint64_t{0} : (std::uint64_t{1} << (2 * k)) - 1;
  out = bits & bmask;
  return true;
}

bool PackedSeq::clean_window(std::size_t pos, std::size_t len) const {
  if (pos + len > size_ || pos + len < pos) return false;
  std::size_t i = pos;
  const std::size_t end = pos + len;
  while (i < end) {
    const std::size_t w = i >> 6;
    const unsigned off = i & 63u;
    const std::size_t span = std::min<std::size_t>(64 - off, end - i);
    const std::uint64_t window =
        span == 64 ? ~std::uint64_t{0}
                   : ((std::uint64_t{1} << span) - 1) << off;
    if ((mask_[w] & window) != 0) return false;
    i += span;
  }
  return true;
}

std::size_t PackedSeq::ambiguous_count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : mask_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

}  // namespace focus::dna
