#include "dist/variants.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "align/banded_nw.hpp"
#include "common/error.hpp"
#include "mpr/ft_phase.hpp"

namespace focus::dist {

namespace {

// A branch candidate: an unambiguous chain of interior nodes starting at
// the anchor's target. `merge` is the re-joining node, or kInvalidNode for
// an open branch (the chain dead-ends, forks, or hits the node limit).
struct Branch {
  std::vector<NodeId> nodes;
  NodeId merge = kInvalidNode;
  Weight coverage = 0;  // mean reads per interior node

  NodeId front() const { return nodes.front(); }
  bool closed() const { return merge != kInvalidNode; }
};

// Follows the unambiguous interior chain starting at `first`; returns true
// if the branch has at least one interior node (closed or open).
bool follow_branch(const AsmGraph& g, NodeId first, std::size_t max_nodes,
                   Branch& branch, double* work) {
  NodeId cur = first;
  Weight total_reads = 0;
  for (std::size_t steps = 0; steps <= max_nodes; ++steps) {
    if (work != nullptr) *work += 1.0;
    if (g.live_in_degree(cur) >= 2) {
      if (branch.nodes.empty()) return false;  // immediate re-entry: no allele
      branch.merge = cur;
      break;
    }
    if (branch.nodes.size() == max_nodes) break;  // open: truncated
    branch.nodes.push_back(cur);
    total_reads += g.node(cur).reads;
    const auto next = g.live_out(cur);
    if (next.size() != 1) break;  // open: dead end or fork
    cur = g.edge(next[0]).to;
  }
  if (branch.nodes.empty()) return false;
  branch.coverage = total_reads / static_cast<Weight>(branch.nodes.size());
  return true;
}

}  // namespace

std::vector<Variant> find_variants(const AsmGraph& g,
                                   std::span<const NodeId> scan,
                                   const VariantConfig& config, double* work) {
  std::vector<Variant> out;
  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    const auto edges = g.live_out(v);
    if (edges.size() < 2) continue;

    // Collect unambiguous branches that re-join the graph.
    std::vector<Branch> branches;
    for (const EdgeId e : edges) {
      Branch b;
      if (follow_branch(g, g.edge(e).to, config.max_branch_nodes, b, work)) {
        branches.push_back(std::move(b));
      }
    }
    if (branches.size() < 2) continue;

    // Branch pairs sharing a merge point are closed-bubble allele
    // candidates; pairs of open branches (merge == kInvalidNode groups last)
    // are open-bubble candidates compared over their common-length prefix.
    std::sort(branches.begin(), branches.end(),
              [](const Branch& a, const Branch& b) {
                if (a.merge != b.merge) return a.merge < b.merge;
                return a.front() < b.front();
              });
    for (std::size_t i = 0; i < branches.size(); ++i) {
      for (std::size_t j = i + 1;
           j < branches.size() && branches[j].merge == branches[i].merge;
           ++j) {
        const Branch& a = branches[i];
        const Branch& b = branches[j];
        const bool open = !a.closed();
        if (open && !config.allow_open_bubbles) continue;
        std::string ca = g.merge_path_contigs(a.nodes);
        std::string cb = g.merge_path_contigs(b.nodes);
        if (open) {
          const std::size_t prefix = std::min(ca.size(), cb.size());
          if (prefix < config.min_open_prefix) continue;
          ca.resize(prefix);
          cb.resize(prefix);
        } else {
          const double ratio =
              static_cast<double>(std::max(ca.size(), cb.size())) /
              static_cast<double>(std::min(ca.size(), cb.size()));
          if (ratio > config.max_length_ratio) continue;
        }
        if (work != nullptr) {
          *work += align::banded_align_work(ca.size(), cb.size(), config.band);
        }
        const auto aln = align::banded_global_align(ca, cb, config.band);
        if (!aln.valid || aln.identity() < config.min_identity) continue;

        Variant variant;
        variant.branch_point = v;
        variant.merge_point = a.merge;
        const bool a_major =
            a.coverage > b.coverage ||
            (a.coverage == b.coverage && a.front() < b.front());
        variant.major_allele = a_major ? a.front() : b.front();
        variant.minor_allele = a_major ? b.front() : a.front();
        variant.major_coverage = a_major ? a.coverage : b.coverage;
        variant.minor_coverage = a_major ? b.coverage : a.coverage;
        variant.major_nodes = static_cast<std::uint32_t>(
            (a_major ? a : b).nodes.size());
        variant.minor_nodes = static_cast<std::uint32_t>(
            (a_major ? b : a).nodes.size());
        variant.mismatch_sites = aln.mismatches;
        variant.indel_sites = aln.gaps;
        variant.identity = static_cast<float>(aln.identity());
        out.push_back(variant);
      }
    }
  }
  return out;
}

namespace {

// Deterministic order + dedupe by (branch, merge, allele pair).
std::vector<Variant> canonical_variants(std::vector<Variant> variants) {
  std::sort(variants.begin(), variants.end(),
            [](const Variant& a, const Variant& b) {
              if (a.branch_point != b.branch_point) {
                return a.branch_point < b.branch_point;
              }
              if (a.merge_point != b.merge_point) {
                return a.merge_point < b.merge_point;
              }
              if (a.major_allele != b.major_allele) {
                return a.major_allele < b.major_allele;
              }
              return a.minor_allele < b.minor_allele;
            });
  variants.erase(
      std::unique(variants.begin(), variants.end(),
                  [](const Variant& a, const Variant& b) {
                    return a.branch_point == b.branch_point &&
                           a.merge_point == b.merge_point &&
                           a.major_allele == b.major_allele &&
                           a.minor_allele == b.minor_allele;
                  }),
      variants.end());
  return variants;
}

// A variant record arriving off the wire must name nodes that exist —
// without this, a corrupted-but-CRC-colliding or hostile frame could smuggle
// out-of-range ids into downstream consumers (GFA emission indexes by node).
void validate_variant(const AsmGraph& g, const Variant& v) {
  const auto n = static_cast<NodeId>(g.node_count());
  FOCUS_CHECK(v.branch_point < n, "variant record names an invalid node");
  FOCUS_CHECK(v.merge_point == kInvalidNode || v.merge_point < n,
              "variant record names an invalid merge point");
  FOCUS_CHECK(v.major_allele < n && v.minor_allele < n,
              "variant record names an invalid allele node");
}

}  // namespace

std::vector<Variant> find_variants_serial(const AsmGraph& g,
                                          const VariantConfig& config,
                                          double* work) {
  std::vector<NodeId> all(g.node_count());
  std::iota(all.begin(), all.end(), 0u);
  return canonical_variants(find_variants(g, all, config, work));
}

namespace {

ParallelVariantResult find_variants_parallel_ft(
    const AsmGraph& g, const std::vector<std::vector<NodeId>>& nodes,
    PartId nparts, const VariantConfig& config, int nranks,
    mpr::CostModel cost, const mpr::FaultPlan& fault_plan,
    const mpr::FaultConfig& fault, const DistConfig& dist) {
  ParallelVariantResult out;
  using Rec = std::vector<Variant>;
  const auto scan_one = [&](std::uint32_t p, double* work) {
    return find_variants(g, nodes[p], config, work);
  };
  const auto unpack_one = [&](mpr::Message& m) {
    auto rec = m.unpack_vector<Variant>();
    for (const Variant& v : rec) validate_variant(g, v);
    return rec;
  };
  const auto scan_and_pack = [&](std::uint32_t phase, std::uint32_t p,
                                 mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown variants phase in scan command");
    frame.pack_vector(find_variants(g, nodes[p], config, work));
  };
  const auto merge = [&](mpr::Comm& comm, std::vector<Rec> recs) {
    std::vector<Variant> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    return canonical_variants(std::move(all));
  };

  if (dist.protocol == DistProtocol::kSymmetric) {
    mpr::SymWal wal;
    wal.live.assign(static_cast<std::size_t>(nranks), 1);
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          mpr::ft_sym_drive(
              comm, wal, fault, scan_and_pack,
              [&](std::uint32_t phase_start) {
                if (phase_start == 0) {
                  auto recs = mpr::sym_collect_phase<Rec>(
                      comm, wal, nparts, 0, fault, scan_one, unpack_one);
                  mpr::SymWal::Entry entry;
                  entry.payload.pack_vector(merge(comm, std::move(recs)));
                  mpr::sym_wal_commit(comm, wal, std::move(entry));
                }
                // Publish from the durable record — identical whether this
                // rank merged the records itself or inherited them.
                mpr::Message payload;
                {
                  std::lock_guard<std::mutex> lock(wal.mu);
                  payload = wal.entries.front().payload;
                }
                auto merged = payload.unpack_vector<Variant>();
                FOCUS_CHECK(payload.fully_consumed(),
                            "trailing bytes in variant log");
                out.variants = std::move(merged);
              });
        },
        cost, fault_plan);
    return out;
  }

  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        if (comm.rank() == 0) {
          mpr::FtMasterState st;
          st.live.assign(static_cast<std::size_t>(comm.size()), 1);
          auto recs = mpr::ft_collect_phase<Rec>(comm, st, nparts, 0, fault,
                                                 scan_one, unpack_one);
          out.variants = merge(comm, std::move(recs));
          mpr::ft_shutdown_workers(comm, st);
        } else {
          mpr::ft_worker_loop(comm, scan_and_pack);
        }
      },
      cost, fault_plan);
  return out;
}

}  // namespace

ParallelVariantResult find_variants_parallel(
    const AsmGraph& g, std::span<const PartId> part, PartId nparts,
    const VariantConfig& config, int nranks, mpr::CostModel cost,
    const mpr::FaultPlan& fault_plan, const mpr::FaultConfig& fault,
    const DistConfig& dist) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  std::vector<std::vector<NodeId>> nodes(static_cast<std::size_t>(nparts));
  for (NodeId v = 0; v < part.size(); ++v) {
    FOCUS_CHECK(part[v] >= 0 && part[v] < nparts, "invalid partition id");
    nodes[static_cast<std::size_t>(part[v])].push_back(v);
  }

  if (!fault_plan.empty()) {
    return find_variants_parallel_ft(g, nodes, nparts, config, nranks, cost,
                                     fault_plan, fault, dist);
  }

  ParallelVariantResult out;
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        std::vector<Variant> mine;
        double work = 0.0;
        for (std::size_t p = 0; p < nodes.size(); ++p) {
          if (static_cast<int>(p % static_cast<std::size_t>(comm.size())) !=
              comm.rank()) {
            continue;
          }
          auto found = find_variants(g, nodes[p], config, &work);
          mine.insert(mine.end(), found.begin(), found.end());
        }
        comm.charge(work);
        mpr::Message msg;
        msg.pack_vector(mine);
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          std::vector<Variant> all;
          for (auto& m : gathered) {
            auto v = m.unpack_vector<Variant>();
            FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
            for (const Variant& rec : v) validate_variant(g, rec);
            all.insert(all.end(), v.begin(), v.end());
          }
          comm.charge(static_cast<double>(all.size()));
          out.variants = canonical_variants(std::move(all));
        }
        comm.barrier();
      },
      cost);
  return out;
}

}  // namespace focus::dist
