// mpr-parallel drivers for the distributed graph algorithms (paper §V, §VI-D).
//
// The hybrid graph is partitioned; two wire protocols drive the scans
// (DistConfig::protocol). kMaster is the paper's protocol: partitions are
// assigned round-robin, workers scan and ship recorded changes to the master
// (rank 0), which applies them between phases. kSymmetric is the
// owner-computes protocol (DESIGN.md §7b): partitions are LPT-assigned by
// estimated scan cost, deltas travel peer-to-peer in batched alltoall
// rounds and every rank applies them in a canonical order, so no rank's
// clock serializes the apply. Both produce byte-identical output.
//
// Fault tolerance (DESIGN.md §7): when a non-empty FaultPlan is supplied the
// drivers switch to an explicitly commanded protocol. The master sends each
// live worker a scan command naming its partitions, collects one record frame
// per worker with a timed receive, and on a worker timeout reassigns the dead
// worker's partitions to the survivors and replays the phase (bounded by
// FaultConfig::max_retries). Records are absorbed in a canonical
// partition order that is independent of which rank scanned them, so a
// recovered run applies the exact change sequence of a fault-free run. With
// an empty plan the original barrier-synchronized fast path runs, bit
// identical to the pre-fault-tolerance driver.
#pragma once

#include <span>

#include "align/overlapper.hpp"
#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "mpr/runtime.hpp"

namespace focus {
struct EnvSnapshot;
}

namespace focus::dist {

/// Wire protocol of the distributed simplify/traverse drivers.
///
/// kMaster is the paper's protocol: workers scan and ship records to rank 0,
/// which applies them between phases — simple, but the master-side apply and
/// sub-path join serialize on rank 0's clock.
///
/// kSymmetric is the owner-computes protocol (DESIGN.md §7b): partitions are
/// LPT-assigned to ranks by estimated scan cost, every rank applies the
/// deltas for the nodes and edges it owns, cross-owner deltas travel in
/// batched mpr::exchange_deltas rounds, and cross-partition sub-paths are
/// stitched by distributed pointer jumping instead of a master merge. Both
/// protocols produce byte-identical graphs, stats and paths
/// (tests/dist_protocol_test.cpp).
enum class DistProtocol {
  kMaster,
  kSymmetric,
};

/// Reads FOCUS_DIST_PROTOCOL ('master' | 'symmetric'; unset/empty =
/// symmetric as of PR 9).
DistProtocol dist_protocol_from_env();

/// Same, resolved against an already-captured environment snapshot.
DistProtocol dist_protocol_from_env(const EnvSnapshot& env);

/// Knobs shared by the simplify/traverse drivers.
struct DistConfig {
  DistProtocol protocol = dist_protocol_from_env();
};

/// Nodes of each partition, in ascending node-id order. This is the host-side
/// gather both drivers below run before entering the mpr runtime. `threads`
/// follows the PartitionerConfig::threads convention (0 = auto via
/// FOCUS_THREADS; 1 = serial): with more than one thread, chunks of the part
/// vector are scattered in parallel into per-chunk lists that are merged in
/// chunk order, so the result is identical at every width.
std::vector<std::vector<NodeId>> partition_node_lists(
    std::span<const PartId> part, PartId nparts, unsigned threads = 1);

struct ParallelSimplifyResult {
  SimplifyStats stats;
  mpr::RunStats run;
};

/// Distributed graph trimming: transitive reduction, containment removal and
/// edge verification, dead-end trimming, bubble popping — each as a
/// worker-record / master-apply phase separated by barriers. `threads`
/// parallelizes the host-side partition gather only (see
/// partition_node_lists); the per-rank bodies stay single-threaded so the
/// virtual-time measurement is not confounded by host parallelism.
/// `fault_plan` selects the fault-tolerant protocol (see file comment);
/// `fault` bounds its retries and sets the receive deadline.
///
/// GraphT is dist::AsmGraph or dist::StoredAsmGraph (explicit instantiations
/// in parallel.cpp) — both protocols iterate partitions through either
/// backend and produce byte-identical results (tests/graph_store_test.cpp).
template <class GraphT>
ParallelSimplifyResult simplify_parallel(GraphT& g,
                                         std::span<const PartId> part,
                                         PartId nparts,
                                         const SimplifyConfig& config,
                                         int nranks, mpr::CostModel cost = {},
                                         unsigned threads = 1,
                                         const mpr::FaultPlan& fault_plan = {},
                                         const mpr::FaultConfig& fault = {},
                                         const DistConfig& dist = {});

struct ParallelTraverseResult {
  std::vector<std::vector<NodeId>> paths;
  mpr::RunStats run;
};

/// Distributed maximal-path traversal: workers grow partition-local
/// sub-paths; the master joins them across partition boundaries (symmetric
/// protocol: owners join their own groups and rank 0 only merges pre-sorted
/// runs). `threads`, `fault_plan`, `fault` and GraphT as in
/// simplify_parallel.
template <class GraphT>
ParallelTraverseResult traverse_parallel(const GraphT& g,
                                         std::span<const PartId> part,
                                         PartId nparts, int nranks,
                                         mpr::CostModel cost = {},
                                         unsigned threads = 1,
                                         const mpr::FaultPlan& fault_plan = {},
                                         const mpr::FaultConfig& fault = {},
                                         const DistConfig& dist = {});

struct ParallelOverlapResult {
  std::vector<align::Overlap> overlaps;
  mpr::RunStats run;
};

/// Distributed-index overlap discovery with the drivers' fault envelope.
/// With an empty plan this is align::find_overlaps_sharded verbatim (the
/// symmetric three-round protocol). With a plan, a recovery protocol runs
/// instead: every rank holds the full replicated k-mer index, query blocks
/// of kFtQueryBlock reads are the replayable partitions, and a block is
/// re-executed on whichever rank survives — blocks are pure functions of
/// (reads, config), so a recovered run reproduces the exact fault-free
/// overlap set (tests/mpr_fault_test.cpp). `dist` picks the recovery wire
/// protocol: master/worker (rank 0 immortal) or symmetric (WAL-replicated
/// coordination that survives any rank's death, including rank 0).
ParallelOverlapResult overlap_parallel(const io::ReadSet& reads,
                                       const align::OverlapperConfig& config,
                                       int nranks, mpr::CostModel cost = {},
                                       const mpr::FaultPlan& fault_plan = {},
                                       const mpr::FaultConfig& fault = {},
                                       const DistConfig& dist = {});

}  // namespace focus::dist
