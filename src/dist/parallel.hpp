// mpr-parallel drivers for the distributed graph algorithms (paper §V, §VI-D).
//
// The hybrid graph is partitioned; each partition is assigned to a worker
// rank (round-robin when there are more partitions than ranks). Workers scan
// only their partitions and ship recorded changes to the master (rank 0),
// which applies them between phases — the paper's master/worker protocol.
#pragma once

#include <span>

#include "dist/simplify.hpp"
#include "dist/traverse.hpp"
#include "mpr/runtime.hpp"

namespace focus::dist {

struct ParallelSimplifyResult {
  SimplifyStats stats;
  mpr::RunStats run;
};

/// Distributed graph trimming: transitive reduction, containment removal and
/// edge verification, dead-end trimming, bubble popping — each as a
/// worker-record / master-apply phase separated by barriers.
ParallelSimplifyResult simplify_parallel(AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts,
                                         const SimplifyConfig& config,
                                         int nranks, mpr::CostModel cost = {});

struct ParallelTraverseResult {
  std::vector<std::vector<NodeId>> paths;
  mpr::RunStats run;
};

/// Distributed maximal-path traversal: workers grow partition-local
/// sub-paths; the master joins them across partition boundaries.
ParallelTraverseResult traverse_parallel(const AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts, int nranks,
                                         mpr::CostModel cost = {});

}  // namespace focus::dist
