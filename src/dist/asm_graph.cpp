#include "dist/asm_graph.hpp"

namespace focus::dist {

NodeId AsmGraph::add_node(std::string contig, Weight reads) {
  FOCUS_CHECK(!contig.empty(), "assembly node needs a contig sequence");
  FOCUS_CHECK(reads >= 1, "assembly node needs at least one read");
  nodes_.push_back(AsmNode{std::move(contig), reads, false});
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

EdgeId AsmGraph::add_edge(NodeId from, NodeId to,
                          std::uint32_t overlap_estimate) {
  FOCUS_CHECK(from < nodes_.size(), "assembly edge endpoint out of range");
  const auto len = static_cast<std::uint32_t>(nodes_[from].contig.size());
  const std::uint32_t offset =
      overlap_estimate < len ? len - overlap_estimate : 0;
  return add_edge(from, to, overlap_estimate, offset);
}

EdgeId AsmGraph::add_edge(NodeId from, NodeId to,
                          std::uint32_t overlap_estimate,
                          std::uint32_t offset_estimate) {
  FOCUS_CHECK(from < nodes_.size() && to < nodes_.size(),
              "assembly edge endpoint out of range");
  FOCUS_CHECK(from != to, "assembly self-loops are not allowed");
  FOCUS_CHECK(offset_estimate < nodes_[from].contig.size(),
              "edge offset beyond the source contig");
  edges_.push_back(
      AsmEdge{from, to, overlap_estimate, offset_estimate, 1.0f, false, false});
  const auto id = static_cast<EdgeId>(edges_.size() - 1);
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

std::vector<EdgeId> AsmGraph::live_out(NodeId v) const {
  std::vector<EdgeId> out;
  for (const EdgeId e : out_[v]) {
    if (edge_live(e)) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> AsmGraph::live_in(NodeId v) const {
  std::vector<EdgeId> out;
  for (const EdgeId e : in_[v]) {
    if (edge_live(e)) out.push_back(e);
  }
  return out;
}

std::size_t AsmGraph::live_out_degree(NodeId v) const {
  std::size_t n = 0;
  for (const EdgeId e : out_[v]) {
    if (edge_live(e)) ++n;
  }
  return n;
}

std::size_t AsmGraph::live_in_degree(NodeId v) const {
  std::size_t n = 0;
  for (const EdgeId e : in_[v]) {
    if (edge_live(e)) ++n;
  }
  return n;
}

std::optional<EdgeId> AsmGraph::find_edge(NodeId u, NodeId v) const {
  for (const EdgeId e : out_[u]) {
    if (edge_live(e) && edges_[e].to == v) return e;
  }
  return std::nullopt;
}

std::size_t AsmGraph::live_node_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (!node.removed) ++n;
  }
  return n;
}

std::size_t AsmGraph::live_edge_count() const {
  std::size_t n = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live(e)) ++n;
  }
  return n;
}

std::string AsmGraph::merge_path_contigs(const std::vector<NodeId>& path) const {
  FOCUS_CHECK(!path.empty(), "cannot merge an empty path");
  std::string contig = nodes_[path[0]].contig;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto eid = find_edge(path[i - 1], path[i]);
    FOCUS_CHECK(eid.has_value(), "path without connecting edge");
    const std::uint32_t overlap = edges_[*eid].overlap;
    const std::string& next = nodes_[path[i]].contig;
    if (overlap < next.size()) {
      contig += next.substr(overlap);
    }
    // If the recorded overlap consumes the whole next contig, nothing to add.
  }
  return contig;
}

}  // namespace focus::dist
