// StoredAsmGraph: the out-of-core backend of the assembly-graph phases
// (DESIGN.md §8). Same read/mutate surface as dist::AsmGraph — the simplify
// and traverse kernels are templates over either — but the two big per-node
// payloads, contig sequence and CSR adjacency, live in immutable per-partition
// slices managed by a graph::SpillManager (LRU residency under
// FOCUS_GRAPH_MEM_BUDGET), while mutation state stays in small resident
// overlays:
//
//   resident, mutable    removed-node flags; the full AsmEdge array (each
//                        record carries its own removed/verified overlay —
//                        O(24 B) per edge, mutated at disjoint indices by the
//                        owner-computes protocol exactly as with AsmGraph)
//   resident, immutable  per-node partition id, local index, contig length,
//                        read count
//   sliced, immutable    per-partition CSR out/in edge-id lists + 2-bit
//                        packed contigs (packed_seq codes plus an exception
//                        list for non-ACGT characters, so decode is
//                        byte-exact)
//
// Accessors that touch sliced data return values, never references —
// live_out/live_in build their vectors (as AsmGraph's do) and contig()
// returns an owning string — so an eviction can never invalidate what a
// kernel holds. Kernels bind `decltype(auto) cv = g.contig(v)` to get a
// const& from AsmGraph and an owning string here.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dist/asm_graph.hpp"
#include "graph/graph_store.hpp"

namespace focus::dist {

class StoredAsmGraphBuilder;

class StoredAsmGraph {
 public:
  StoredAsmGraph() = default;
  StoredAsmGraph(StoredAsmGraph&&) = default;
  StoredAsmGraph& operator=(StoredAsmGraph&&) = default;

  /// Packs an existing in-memory graph into a store (tests, conversions).
  /// Node/edge ids, every AsmEdge field and the removed flags carry over
  /// verbatim.
  static StoredAsmGraph from_asm_graph(const AsmGraph& g,
                                       std::span<const PartId> part,
                                       PartId nparts,
                                       const graph::GraphStoreConfig& config);

  std::size_t node_count() const { return meta_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const AsmEdge& edge(EdgeId e) const { return edges_[e]; }

  bool node_live(NodeId v) const { return removed_[v] == 0; }
  bool edge_live(EdgeId e) const {
    const AsmEdge& edge = edges_[e];
    return !edge.removed && removed_[edge.from] == 0 &&
           removed_[edge.to] == 0;
  }

  /// Contig of v, decoded from its partition slice (owning string).
  std::string contig(NodeId v) const;
  std::size_t contig_size(NodeId v) const { return meta_[v].contig_len; }
  Weight node_reads(NodeId v) const { return reads_[v]; }

  std::vector<EdgeId> live_out(NodeId v) const;
  std::vector<EdgeId> live_in(NodeId v) const;
  std::size_t live_out_degree(NodeId v) const;
  std::size_t live_in_degree(NodeId v) const;
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  void remove_edge(EdgeId e) { edges_[e].removed = true; }
  void remove_node(NodeId v) { removed_[v] = 1; }
  void set_verified(EdgeId e, std::uint32_t overlap, float identity) {
    edges_[e].overlap = overlap;
    edges_[e].identity = identity;
    edges_[e].verified = true;
  }

  std::size_t live_node_count() const;
  std::size_t live_edge_count() const;

  std::string merge_path_contigs(const std::vector<NodeId>& path) const;

  PartId partition_of(NodeId v) const { return meta_[v].part; }
  PartId partition_count() const { return nparts_; }

  /// Pulls partition p's slice resident (a scan about to walk p can warm the
  /// cache in one load instead of faulting per accessor).
  void touch_partition(PartId p) const;

  /// Materializes the store as a plain AsmGraph — same ids, same field
  /// values, removed flags included. Used to hand a spill-backed assembly
  /// back through the AsmGraph-typed result/GFA surface.
  AsmGraph to_asm_graph() const;

  graph::SpillStats spill_stats() const { return manager_->stats(); }
  graph::SpillManager& spill_manager() { return *manager_; }
  const graph::SpillManager& spill_manager() const { return *manager_; }

  /// Bytes of the always-resident arrays (node metadata + edge records) —
  /// the part of the store the budget does not cover.
  std::size_t resident_metadata_bytes() const;

 private:
  friend class StoredAsmGraphBuilder;

  struct NodeMeta {
    PartId part = 0;
    std::uint32_t local = 0;  // index within the partition slice
    std::uint32_t contig_len = 0;
  };

  struct SliceView;
  SliceView slice(PartId p) const;
  std::string decode_contig(const SliceView& view, NodeId v) const;

  std::vector<NodeMeta> meta_;
  std::vector<Weight> reads_;
  std::vector<std::uint8_t> removed_;  // mutation overlay: 1 = removed
  std::vector<AsmEdge> edges_;         // resident; removed/verified overlay
  PartId nparts_ = 0;
  std::unique_ptr<graph::SpillManager> manager_;
};

/// Two-phase construction: declare every node (lengths and read counts only —
/// no sequence bytes), add every edge, then finish() with a contig callback
/// that is invoked partition by partition in ascending partition order, so at
/// most one partition's sequence data is in flight while the store is built.
/// Edge ids are assigned in add_edge call order, exactly as AsmGraph does.
class StoredAsmGraphBuilder {
 public:
  StoredAsmGraphBuilder(const graph::GraphStoreConfig& config,
                        std::span<const PartId> part, PartId nparts);

  NodeId declare_node(std::uint32_t contig_len, Weight reads);
  EdgeId add_edge(NodeId from, NodeId to, std::uint32_t overlap,
                  std::uint32_t offset);

  std::size_t node_count() const { return declared_; }

  /// Seals every partition slice (calling `contig_of` once per node, grouped
  /// by partition) and returns the finished store.
  StoredAsmGraph finish(const std::function<std::string(NodeId)>& contig_of);

 private:
  StoredAsmGraph g_;
  std::size_t declared_ = 0;
  std::vector<std::vector<EdgeId>> out_;  // transient; dropped by finish()
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace focus::dist
