#include "dist/parallel.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace focus::dist {

namespace {

/// Below this the chunked gather costs more than the serial scan.
constexpr std::size_t kParallelGatherMinNodes = 4096;
constexpr std::size_t kGatherGrain = 4096;

bool mine(std::size_t partition, const mpr::Comm& comm) {
  return static_cast<int>(partition %
                          static_cast<std::size_t>(comm.size())) ==
         comm.rank();
}

}  // namespace

std::vector<std::vector<NodeId>> partition_node_lists(
    std::span<const PartId> part, PartId nparts, unsigned threads) {
  std::vector<std::vector<NodeId>> nodes(static_cast<std::size_t>(nparts));
  const std::size_t n = part.size();
  const auto gather = [&](std::size_t begin, std::size_t end,
                          std::vector<std::vector<NodeId>>& out) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      FOCUS_CHECK(part[v] >= 0 && part[v] < nparts,
                  "node with invalid partition id");
      out[static_cast<std::size_t>(part[v])].push_back(v);
    }
  };
  const unsigned resolved = resolve_thread_count(threads);
  if (resolved <= 1 || n < kParallelGatherMinNodes) {
    gather(0, n, nodes);
    return nodes;
  }
  ThreadPool pool(resolved);
  const std::size_t chunks = (n + kGatherGrain - 1) / kGatherGrain;
  std::vector<std::vector<std::vector<NodeId>>> local(
      chunks, std::vector<std::vector<NodeId>>(static_cast<std::size_t>(nparts)));
  pool.parallel_for(n, kGatherGrain, [&](std::size_t b, std::size_t e) {
    gather(b, e, local[b / kGatherGrain]);
  });
  // Merge in chunk order: each per-part list stays in ascending node order,
  // so the result equals the serial scan at every width.
  for (auto& chunk : local) {
    for (std::size_t p = 0; p < nodes.size(); ++p) {
      nodes[p].insert(nodes[p].end(), chunk[p].begin(), chunk[p].end());
    }
  }
  return nodes;
}

ParallelSimplifyResult simplify_parallel(AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts,
                                         const SimplifyConfig& config,
                                         int nranks, mpr::CostModel cost,
                                         unsigned threads) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelSimplifyResult out;
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // --- Phase 1: transitive reduction (§V-A). -------------------------
        {
          std::vector<EdgeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_transitive_edges(g, nodes[p], &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<EdgeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<EdgeId>();
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.transitive_edges = apply_edge_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 2: containment removal + edge verification (§V-B). ------
        {
          ContainmentFindings records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_containments(g, nodes[p], config, &work);
            records.verified.insert(records.verified.end(),
                                    found.verified.begin(),
                                    found.verified.end());
            records.false_edges.insert(records.false_edges.end(),
                                       found.false_edges.begin(),
                                       found.false_edges.end());
            records.contained_nodes.insert(records.contained_nodes.end(),
                                           found.contained_nodes.begin(),
                                           found.contained_nodes.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records.verified);
          msg.pack_vector(records.false_edges);
          msg.pack_vector(records.contained_nodes);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            ContainmentFindings all;
            for (auto& m : gathered) {
              auto verified = m.unpack_vector<EdgeVerification>();
              auto false_edges = m.unpack_vector<EdgeId>();
              auto contained = m.unpack_vector<NodeId>();
              all.verified.insert(all.verified.end(), verified.begin(),
                                  verified.end());
              all.false_edges.insert(all.false_edges.end(),
                                     false_edges.begin(), false_edges.end());
              all.contained_nodes.insert(all.contained_nodes.end(),
                                         contained.begin(), contained.end());
            }
            comm.charge(static_cast<double>(
                all.verified.size() + all.false_edges.size() +
                all.contained_nodes.size()));
            out.stats.verified_edges = apply_verifications(g, all.verified);
            out.stats.false_edges =
                apply_edge_removals(g, std::move(all.false_edges));
            out.stats.contained_nodes =
                apply_node_removals(g, std::move(all.contained_nodes));
          }
          comm.barrier();
        }

        // --- Phase 3: dead-end trimming (§V-C). -----------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_tips(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.tip_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 4: bubble popping (§V-C). --------------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_bubbles(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.bubble_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }
      },
      cost);
  return out;
}

ParallelTraverseResult traverse_parallel(const AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts, int nranks,
                                         mpr::CostModel cost,
                                         unsigned threads) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelTraverseResult out;
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        std::vector<bool> visited(g.node_count(), false);
        std::vector<std::vector<NodeId>> subpaths;
        double work = 0.0;
        for (std::size_t p = 0; p < nodes.size(); ++p) {
          if (!mine(p, comm)) continue;
          auto found = extract_subpaths(g, nodes[p], part, visited, &work);
          for (auto& path : found) subpaths.push_back(std::move(path));
        }
        comm.charge(work);

        mpr::Message msg;
        msg.pack(static_cast<std::uint32_t>(subpaths.size()));
        for (const auto& path : subpaths) msg.pack_vector(path);
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          std::vector<std::vector<NodeId>> all;
          for (auto& m : gathered) {
            const auto count = m.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              all.push_back(m.unpack_vector<NodeId>());
            }
          }
          double join_work = 0.0;
          out.paths = join_subpaths(g, std::move(all), &join_work);
          comm.charge(join_work);
        }
        comm.barrier();
      },
      cost);
  return out;
}

}  // namespace focus::dist
