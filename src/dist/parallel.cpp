#include "dist/parallel.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "align/banded_nw.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dist/stored_graph.hpp"
#include "io/preprocess.hpp"
#include "mpr/ft_phase.hpp"
#include "mpr/rounds.hpp"

namespace focus::dist {

DistProtocol dist_protocol_from_env() {
  return dist_protocol_from_env(EnvSnapshot::capture());
}

DistProtocol dist_protocol_from_env(const EnvSnapshot& env) {
  // Symmetric is the default as of PR 9: it is makespan-balanced (LPT over
  // measured scan estimates) and survives coordinator death, at the price of
  // the WAL replication charge. `master` remains selectable as the §V paper
  // baseline and fallback.
  if (!env.dist_protocol.has_value() || env.dist_protocol->empty()) {
    return DistProtocol::kSymmetric;
  }
  const std::string_view v(*env.dist_protocol);
  if (v == "master") return DistProtocol::kMaster;
  if (v == "symmetric") return DistProtocol::kSymmetric;
  FOCUS_THROW("FOCUS_DIST_PROTOCOL must be 'master' or 'symmetric', got '" +
              std::string(v) + "'");
}

namespace {

/// Below this the chunked gather costs more than the serial scan.
constexpr std::size_t kParallelGatherMinNodes = 4096;
constexpr std::size_t kGatherGrain = 4096;

bool mine(std::size_t partition, const mpr::Comm& comm) {
  return static_cast<int>(partition %
                          static_cast<std::size_t>(comm.size())) ==
         comm.rank();
}

// ---------------------------------------------------------------------------
// Symmetric owner-computes protocol: partition ownership.
//
// The master protocol assigns partition p to rank p % nranks, which balances
// partition *counts* but not scan *work* — measured per-partition scan costs
// vary by an order of magnitude, so the makespan is set by whichever rank
// drew the heaviest partitions. The symmetric drivers instead LPT-schedule
// partitions onto ranks by an estimated scan cost: sort partitions by
// estimate descending and greedily give each to the least-loaded rank. The
// assignment only moves *scans*; record routing and apply order are keyed by
// node/edge ownership, so the outputs are placement-independent.
// ---------------------------------------------------------------------------

/// Host-side estimate of each partition's simplify scan cost, mirroring the
/// dominant work terms the kernels charge: the phase-0 (mid, far) pair count
/// and the phase-1 banded-alignment work per out-edge. Accumulates the
/// estimator's own cost into `estimator_work` (each rank is charged for it:
/// in a real deployment every rank computes the schedule redundantly from
/// replicated partition metadata).
template <class GraphT>
std::vector<double> simplify_scan_estimates(
    const GraphT& g, const std::vector<std::vector<NodeId>>& nodes,
    const SimplifyConfig& config, double* estimator_work) {
  std::vector<double> est(nodes.size(), 0.0);
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    for (const NodeId v : nodes[p]) {
      if (!g.node_live(v)) continue;
      const auto out = g.live_out(v);
      est[p] += 1.0;
      if (estimator_work != nullptr) {
        *estimator_work += 1.0 + static_cast<double>(out.size());
      }
      const std::size_t cv_size = g.contig_size(v);
      for (const EdgeId e : out) {
        if (out.size() >= 2) {
          est[p] += static_cast<double>(g.live_out_degree(g.edge(e).to));
        }
        const std::size_t offset = g.edge(e).offset;
        if (offset < cv_size) {
          const std::size_t window =
              std::min(cv_size - offset, g.contig_size(g.edge(e).to));
          est[p] += align::banded_align_work(window, window, config.band);
        }
      }
    }
  }
  return est;
}

/// Traverse scans charge ~1 unit per visited node, so node counts are the
/// right LPT weight there.
std::vector<double> traverse_scan_estimates(
    const std::vector<std::vector<NodeId>>& nodes) {
  std::vector<double> est(nodes.size(), 0.0);
  for (std::size_t p = 0; p < nodes.size(); ++p) {
    est[p] = 1.0 + static_cast<double>(nodes[p].size());
  }
  return est;
}

/// Longest-processing-time-first assignment: owner[p] = rank that scans
/// partition p. Deterministic: ties broken by (estimate, partition id) on the
/// job side and (load, rank) on the machine side.
std::vector<int> lpt_assign(const std::vector<double>& est, int nranks) {
  std::vector<std::size_t> order(est.size());
  for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (est[a] != est[b]) return est[a] > est[b];
    return a < b;
  });
  std::vector<double> load(static_cast<std::size_t>(nranks), 0.0);
  std::vector<int> owner(est.size(), 0);
  for (const std::size_t p : order) {
    int best = 0;
    for (int r = 1; r < nranks; ++r) {
      if (load[static_cast<std::size_t>(r)] <
          load[static_cast<std::size_t>(best)]) {
        best = r;
      }
    }
    owner[p] = best;
    load[static_cast<std::size_t>(best)] += est[p];
  }
  return owner;
}

/// Partitions owned by each rank, ascending — the symmetric scan order.
std::vector<std::vector<std::uint32_t>> owned_partitions(
    const std::vector<int>& owner, int nranks) {
  std::vector<std::vector<std::uint32_t>> owned(
      static_cast<std::size_t>(nranks));
  for (std::size_t p = 0; p < owner.size(); ++p) {
    owned[static_cast<std::size_t>(owner[p])].push_back(
        static_cast<std::uint32_t>(p));
  }
  return owned;
}

}  // namespace

std::vector<std::vector<NodeId>> partition_node_lists(
    std::span<const PartId> part, PartId nparts, unsigned threads) {
  std::vector<std::vector<NodeId>> nodes(static_cast<std::size_t>(nparts));
  const std::size_t n = part.size();
  const auto gather = [&](std::size_t begin, std::size_t end,
                          std::vector<std::vector<NodeId>>& out) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      FOCUS_CHECK(part[v] >= 0 && part[v] < nparts,
                  "node with invalid partition id");
      out[static_cast<std::size_t>(part[v])].push_back(v);
    }
  };
  const unsigned resolved = resolve_thread_count(threads);
  if (resolved <= 1 || n < kParallelGatherMinNodes) {
    gather(0, n, nodes);
    return nodes;
  }
  ThreadPool pool(resolved);
  // parallel_reduce merges the per-chunk buckets in chunk order, so each
  // per-part list stays in ascending node order and the result equals the
  // serial scan at every width.
  using Buckets = std::vector<std::vector<NodeId>>;
  nodes = pool.parallel_reduce(
      n, kGatherGrain, std::move(nodes),
      [&](std::size_t b, std::size_t e) {
        Buckets local(static_cast<std::size_t>(nparts));
        gather(b, e, local);
        return local;
      },
      [](Buckets acc, Buckets chunk) {
        for (std::size_t p = 0; p < acc.size(); ++p) {
          acc[p].insert(acc[p].end(), chunk[p].begin(), chunk[p].end());
        }
        return acc;
      });
  return nodes;
}

// ---------------------------------------------------------------------------
// Fault-tolerant master/worker protocol (DESIGN.md §7). The phase machinery
// — command/record framing, dead-rank reassignment, round replay, the
// symmetric rotating-coordinator WAL — lives in mpr/ft_phase.hpp, shared by
// every covered pipeline stage; the graph drivers here supply only the
// per-phase scan/unpack/apply bodies.
// ---------------------------------------------------------------------------

namespace {

using mpr::FtMasterState;
using mpr::SymWal;
using mpr::ft_collect_phase;
using mpr::ft_shutdown_workers;
using mpr::ft_sym_drive;
using mpr::ft_worker_loop;
using mpr::sym_collect_phase;
using mpr::sym_wal_commit;

template <class GraphT>
void ft_simplify_master(mpr::Comm& comm, GraphT& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        const SimplifyConfig& config, PartId nparts,
                        const mpr::FaultConfig& fault, SimplifyStats* stats) {
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  // Checkpoint between phases: the applied graph plus the stats so far.
  // Applies happen strictly after a round's records are complete, so a
  // replay restarts the current phase against exactly this state — no
  // partial mutation can leak into a retry.
  struct Checkpoint {
    std::uint32_t phases_done = 0;
    SimplifyStats stats;
  } ckpt;

  {  // Phase 0: transitive reduction (§V-A).
    TransitiveScratch scratch;
    auto recs = ft_collect_phase<std::vector<EdgeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_transitive_edges(g, nodes[p], scratch, work);
        },
        [](mpr::Message& m) { return m.unpack_vector<EdgeId>(); });
    std::vector<EdgeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.transitive_edges = apply_edge_removals(g, std::move(all));
    ckpt.phases_done = 1;
  }

  {  // Phase 1: containment removal + edge verification (§V-B).
    auto recs = ft_collect_phase<ContainmentFindings>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_containments(g, nodes[p], config, work);
        },
        [](mpr::Message& m) {
          ContainmentFindings f;
          f.verified = m.unpack_vector<EdgeVerification>();
          f.false_edges = m.unpack_vector<EdgeId>();
          f.contained_nodes = m.unpack_vector<NodeId>();
          return f;
        });
    ContainmentFindings all;
    for (auto& r : recs) {
      all.verified.insert(all.verified.end(), r.verified.begin(),
                          r.verified.end());
      all.false_edges.insert(all.false_edges.end(), r.false_edges.begin(),
                             r.false_edges.end());
      all.contained_nodes.insert(all.contained_nodes.end(),
                                 r.contained_nodes.begin(),
                                 r.contained_nodes.end());
    }
    comm.charge(static_cast<double>(all.verified.size() +
                                    all.false_edges.size() +
                                    all.contained_nodes.size()));
    ckpt.stats.verified_edges = apply_verifications(g, all.verified);
    ckpt.stats.false_edges =
        apply_edge_removals(g, std::move(all.false_edges));
    ckpt.stats.contained_nodes =
        apply_node_removals(g, std::move(all.contained_nodes));
    ckpt.phases_done = 2;
  }

  {  // Phase 2: dead-end trimming (§V-C).
    auto recs = ft_collect_phase<std::vector<NodeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_tips(g, nodes[p], config, work);
        },
        [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
    std::vector<NodeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.tip_nodes = apply_node_removals(g, std::move(all));
    ckpt.phases_done = 3;
  }

  {  // Phase 3: bubble popping (§V-C).
    auto recs = ft_collect_phase<std::vector<NodeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_bubbles(g, nodes[p], config, work);
        },
        [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
    std::vector<NodeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.bubble_nodes = apply_node_removals(g, std::move(all));
    ckpt.phases_done = 4;
  }

  ft_shutdown_workers(comm, st);
  *stats = ckpt.stats;
}

template <class GraphT>
void ft_simplify_worker(mpr::Comm& comm, const GraphT& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        const SimplifyConfig& config) {
  TransitiveScratch scratch;
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    switch (phase) {
      case 0:
        frame.pack_vector(find_transitive_edges(g, nodes[p], scratch, work));
        break;
      case 1: {
        const auto f = find_containments(g, nodes[p], config, work);
        frame.pack_vector(f.verified);
        frame.pack_vector(f.false_edges);
        frame.pack_vector(f.contained_nodes);
        break;
      }
      case 2:
        frame.pack_vector(find_tips(g, nodes[p], config, work));
        break;
      case 3:
        frame.pack_vector(find_bubbles(g, nodes[p], config, work));
        break;
      default:
        FOCUS_THROW("unknown simplify phase in scan command");
    }
  });
}

// ---------------------------------------------------------------------------
// Symmetric owner-computes protocol, fault-free fast path (DESIGN.md §7b).
//
// No rank is special: every rank scans the partitions LPT-assigned to it and
// applies deltas for the nodes and edges it *owns* (a node belongs to the
// owner of its partition; a recorded edge belongs to the rank that scanned
// its source node — partitions are disjoint, so each edge record has exactly
// one recorder). Cross-owner deltas — containment absorptions, tip and
// bubble node kills landing in another rank's partition — travel in one
// batched mpr::exchange_deltas round per phase and are applied by their
// owner in ascending source-rank order after a sort-unique, which is the
// same dedup the master performs globally: ownership classes are disjoint,
// so per-owner sorted-unique apply produces the identical graph and counts.
// ---------------------------------------------------------------------------

constexpr int kTagSymContained = 215;
constexpr int kTagSymTips = 216;
constexpr int kTagSymBubbles = 217;

template <class GraphT>
void simplify_symmetric_rank(mpr::Comm& comm, GraphT& g,
                             const std::vector<std::vector<NodeId>>& nodes,
                             std::span<const PartId> part,
                             const SimplifyConfig& config,
                             const std::vector<int>& owner,
                             const std::vector<std::vector<std::uint32_t>>& owned,
                             double estimator_work, SimplifyStats* stats) {
  const int size = comm.size();
  const auto& own = owned[static_cast<std::size_t>(comm.rank())];
  // Every rank computes the LPT schedule redundantly from replicated
  // partition metadata; charge that once up front.
  comm.charge(estimator_work);
  SimplifyStats my;

  const auto owner_of_node = [&](NodeId v) {
    return static_cast<std::size_t>(owner[static_cast<std::size_t>(part[v])]);
  };

  {  // Phase 0: transitive reduction. Every record's edge leaves a scanned
     // node, so deltas are self-owned and no exchange is needed — the
     // barrier pair orders all scans before any apply and all applies
     // before the next phase's scans.
    TransitiveScratch scratch;
    std::vector<EdgeId> records;
    double work = 0.0;
    for (const std::uint32_t p : own) {
      auto found = find_transitive_edges(g, nodes[p], scratch, &work);
      records.insert(records.end(), found.begin(), found.end());
    }
    comm.charge(work);
    comm.barrier();
    comm.charge(static_cast<double>(records.size()));
    my.transitive_edges = apply_edge_removals(g, std::move(records));
    comm.barrier();
  }

  {  // Phase 1: containment removal + edge verification. Verified and false
     // edges are self-owned (they leave a scanned node); contained nodes can
     // land in another rank's partition and are routed to their owner.
    ContainmentFindings records;
    double work = 0.0;
    for (const std::uint32_t p : own) {
      auto found = find_containments(g, nodes[p], config, &work);
      records.verified.insert(records.verified.end(), found.verified.begin(),
                              found.verified.end());
      records.false_edges.insert(records.false_edges.end(),
                                 found.false_edges.begin(),
                                 found.false_edges.end());
      records.contained_nodes.insert(records.contained_nodes.end(),
                                     found.contained_nodes.begin(),
                                     found.contained_nodes.end());
    }
    comm.charge(work);
    std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(size));
    for (const NodeId w : records.contained_nodes) {
      buckets[owner_of_node(w)].push_back(w);
    }
    auto contained =
        mpr::exchange_deltas<NodeId>(comm, buckets, kTagSymContained);
    comm.charge(static_cast<double>(records.verified.size() +
                                    records.false_edges.size() +
                                    contained.size()));
    my.verified_edges = apply_verifications(g, records.verified);
    my.false_edges = apply_edge_removals(g, std::move(records.false_edges));
    my.contained_nodes = apply_node_removals(g, std::move(contained));
    comm.barrier();
  }

  {  // Phase 2: dead-end trimming. Chains may cross partitions, so every
     // node kill is routed to its owner.
    std::vector<NodeId> records;
    double work = 0.0;
    for (const std::uint32_t p : own) {
      auto found = find_tips(g, nodes[p], config, &work);
      records.insert(records.end(), found.begin(), found.end());
    }
    comm.charge(work);
    std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(size));
    for (const NodeId v : records) buckets[owner_of_node(v)].push_back(v);
    auto arrived = mpr::exchange_deltas<NodeId>(comm, buckets, kTagSymTips);
    comm.charge(static_cast<double>(arrived.size()));
    my.tip_nodes = apply_node_removals(g, std::move(arrived));
    comm.barrier();
  }

  {  // Phase 3: bubble popping — same routing as tips.
    std::vector<NodeId> records;
    double work = 0.0;
    for (const std::uint32_t p : own) {
      auto found = find_bubbles(g, nodes[p], config, &work);
      records.insert(records.end(), found.begin(), found.end());
    }
    comm.charge(work);
    std::vector<std::vector<NodeId>> buckets(static_cast<std::size_t>(size));
    for (const NodeId v : records) buckets[owner_of_node(v)].push_back(v);
    auto arrived = mpr::exchange_deltas<NodeId>(comm, buckets, kTagSymBubbles);
    comm.charge(static_cast<double>(arrived.size()));
    my.bubble_nodes = apply_node_removals(g, std::move(arrived));
    comm.barrier();
  }

  // Counter reduction: ownership classes are disjoint, so the global counts
  // are the plain sums of the per-rank counts.
  mpr::Message msg;
  msg.pack(static_cast<std::uint64_t>(my.transitive_edges));
  msg.pack(static_cast<std::uint64_t>(my.false_edges));
  msg.pack(static_cast<std::uint64_t>(my.contained_nodes));
  msg.pack(static_cast<std::uint64_t>(my.verified_edges));
  msg.pack(static_cast<std::uint64_t>(my.tip_nodes));
  msg.pack(static_cast<std::uint64_t>(my.bubble_nodes));
  auto gathered = comm.gather(std::move(msg), 0);
  if (comm.rank() == 0) {
    SimplifyStats total;
    for (auto& m : gathered) {
      total.transitive_edges += m.unpack<std::uint64_t>();
      total.false_edges += m.unpack<std::uint64_t>();
      total.contained_nodes += m.unpack<std::uint64_t>();
      total.verified_edges += m.unpack<std::uint64_t>();
      total.tip_nodes += m.unpack<std::uint64_t>();
      total.bubble_nodes += m.unpack<std::uint64_t>();
      FOCUS_CHECK(m.fully_consumed(), "trailing bytes in stats frame");
    }
    *stats = total;
  }
  comm.barrier();
}

// ---------------------------------------------------------------------------
// Symmetric fault-tolerant protocol (DESIGN.md §7b): rotating coordinator
// over a replicated write-ahead log.
//
// The master protocol survives any worker death but rank 0 is irreplaceable.
// Here coordination is a *role*, not a rank: whichever live rank currently
// coordinates runs the same collect/apply loop the master would, but commits
// each completed phase — the canonical record payload plus the resulting
// counters — to a write-ahead log that models replicated stable storage
// (appends charge the writer one per-live-replica message). When the
// coordinator dies, every surviving rank walks the succession order
// (ascending rank, skipping ranks it has proven dead) and the lowest live
// rank takes over: it fast-forwards through the log's completed phases and
// resumes collection at the first uncommitted phase. Applies sit strictly
// between communication operations, so a crash can never leave a phase
// half-applied: the graph state always equals exactly the committed log.
// ---------------------------------------------------------------------------

/// Coordinator body of the fault-tolerant symmetric simplify: the
/// master-protocol phases, but each phase ends with a durable log commit and
/// the loop starts wherever the inherited log ends. The final counters are a
/// pure function of the log, so any coordinator — original, successor, or a
/// late orphan finding a complete log — reports the same stats.
template <class GraphT>
void sym_simplify_coordinate(mpr::Comm& comm, SymWal& wal, GraphT& g,
                             const std::vector<std::vector<NodeId>>& nodes,
                             const SimplifyConfig& config, PartId nparts,
                             const mpr::FaultConfig& fault,
                             std::uint32_t phase_start, SimplifyStats* stats) {
  TransitiveScratch scratch;
  for (std::uint32_t phase = phase_start; phase < 4; ++phase) {
    SymWal::Entry entry;
    entry.counts.assign(6, 0);  // SimplifyStats field order
    switch (phase) {
      case 0: {  // Transitive reduction (§V-A).
        auto recs = sym_collect_phase<std::vector<EdgeId>>(
            comm, wal, nparts, phase, fault,
            [&](std::uint32_t p, double* work) {
              return find_transitive_edges(g, nodes[p], scratch, work);
            },
            [](mpr::Message& m) { return m.unpack_vector<EdgeId>(); });
        std::vector<EdgeId> all;
        for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
        comm.charge(static_cast<double>(all.size()));
        entry.payload.pack_vector(all);
        entry.counts[0] = apply_edge_removals(g, std::move(all));
        break;
      }
      case 1: {  // Containment removal + edge verification (§V-B).
        auto recs = sym_collect_phase<ContainmentFindings>(
            comm, wal, nparts, phase, fault,
            [&](std::uint32_t p, double* work) {
              return find_containments(g, nodes[p], config, work);
            },
            [](mpr::Message& m) {
              ContainmentFindings f;
              f.verified = m.unpack_vector<EdgeVerification>();
              f.false_edges = m.unpack_vector<EdgeId>();
              f.contained_nodes = m.unpack_vector<NodeId>();
              return f;
            });
        ContainmentFindings all;
        for (auto& r : recs) {
          all.verified.insert(all.verified.end(), r.verified.begin(),
                              r.verified.end());
          all.false_edges.insert(all.false_edges.end(), r.false_edges.begin(),
                                 r.false_edges.end());
          all.contained_nodes.insert(all.contained_nodes.end(),
                                     r.contained_nodes.begin(),
                                     r.contained_nodes.end());
        }
        comm.charge(static_cast<double>(all.verified.size() +
                                        all.false_edges.size() +
                                        all.contained_nodes.size()));
        entry.payload.pack_vector(all.verified);
        entry.payload.pack_vector(all.false_edges);
        entry.payload.pack_vector(all.contained_nodes);
        entry.counts[3] = apply_verifications(g, all.verified);
        entry.counts[1] = apply_edge_removals(g, std::move(all.false_edges));
        entry.counts[2] =
            apply_node_removals(g, std::move(all.contained_nodes));
        break;
      }
      case 2: {  // Dead-end trimming (§V-C).
        auto recs = sym_collect_phase<std::vector<NodeId>>(
            comm, wal, nparts, phase, fault,
            [&](std::uint32_t p, double* work) {
              return find_tips(g, nodes[p], config, work);
            },
            [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
        std::vector<NodeId> all;
        for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
        comm.charge(static_cast<double>(all.size()));
        entry.payload.pack_vector(all);
        entry.counts[4] = apply_node_removals(g, std::move(all));
        break;
      }
      default: {  // Phase 3: bubble popping (§V-C).
        auto recs = sym_collect_phase<std::vector<NodeId>>(
            comm, wal, nparts, phase, fault,
            [&](std::uint32_t p, double* work) {
              return find_bubbles(g, nodes[p], config, work);
            },
            [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
        std::vector<NodeId> all;
        for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
        comm.charge(static_cast<double>(all.size()));
        entry.payload.pack_vector(all);
        entry.counts[5] = apply_node_removals(g, std::move(all));
        break;
      }
    }
    sym_wal_commit(comm, wal, std::move(entry));
  }

  SimplifyStats total;
  {
    std::lock_guard<std::mutex> lock(wal.mu);
    for (const auto& e : wal.entries) {
      total.transitive_edges += e.counts[0];
      total.false_edges += e.counts[1];
      total.contained_nodes += e.counts[2];
      total.verified_edges += e.counts[3];
      total.tip_nodes += e.counts[4];
      total.bubble_nodes += e.counts[5];
    }
  }
  *stats = total;
}

template <class GraphT>
ParallelSimplifyResult ft_sym_simplify(
    GraphT& g, const std::vector<std::vector<NodeId>>& nodes, PartId nparts,
    const SimplifyConfig& config, int nranks, mpr::CostModel cost,
    const mpr::FaultPlan& fault_plan, const mpr::FaultConfig& fault) {
  ParallelSimplifyResult out;
  SymWal wal;
  wal.live.assign(static_cast<std::size_t>(nranks), 1);
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        TransitiveScratch scratch;
        ft_sym_drive(
            comm, wal, fault,
            [&](std::uint32_t phase, std::uint32_t p, mpr::Message& frame,
                double* work) {
              switch (phase) {
                case 0:
                  frame.pack_vector(
                      find_transitive_edges(g, nodes[p], scratch, work));
                  break;
                case 1: {
                  const auto f = find_containments(g, nodes[p], config, work);
                  frame.pack_vector(f.verified);
                  frame.pack_vector(f.false_edges);
                  frame.pack_vector(f.contained_nodes);
                  break;
                }
                case 2:
                  frame.pack_vector(find_tips(g, nodes[p], config, work));
                  break;
                case 3:
                  frame.pack_vector(find_bubbles(g, nodes[p], config, work));
                  break;
                default:
                  FOCUS_THROW("unknown simplify phase in scan command");
              }
            },
            [&](std::uint32_t phase_start) {
              sym_simplify_coordinate(comm, wal, g, nodes, config, nparts,
                                      fault, phase_start, &out.stats);
            });
      },
      cost, fault_plan);
  return out;
}

}  // namespace

template <class GraphT>
ParallelSimplifyResult simplify_parallel(GraphT& g,
                                         std::span<const PartId> part,
                                         PartId nparts,
                                         const SimplifyConfig& config,
                                         int nranks, mpr::CostModel cost,
                                         unsigned threads,
                                         const mpr::FaultPlan& fault_plan,
                                         const mpr::FaultConfig& fault,
                                         const DistConfig& dist) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelSimplifyResult out;
  if (!fault_plan.empty()) {
    if (dist.protocol == DistProtocol::kSymmetric) {
      return ft_sym_simplify(g, nodes, nparts, config, nranks, cost,
                             fault_plan, fault);
    }
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          if (comm.rank() == 0) {
            ft_simplify_master(comm, g, nodes, config, nparts, fault,
                               &out.stats);
          } else {
            ft_simplify_worker(comm, g, nodes, config);
          }
        },
        cost, fault_plan);
    return out;
  }

  if (dist.protocol == DistProtocol::kSymmetric) {
    double estimator_work = 0.0;
    const auto est = simplify_scan_estimates(g, nodes, config, &estimator_work);
    const auto owner = lpt_assign(est, nranks);
    const auto owned = owned_partitions(owner, nranks);
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          simplify_symmetric_rank(comm, g, nodes, part, config, owner, owned,
                                  estimator_work, &out.stats);
        },
        cost);
    return out;
  }

  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // --- Phase 1: transitive reduction (§V-A). -------------------------
        {
          std::vector<EdgeId> records;
          TransitiveScratch scratch;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_transitive_edges(g, nodes[p], scratch, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<EdgeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<EdgeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.transitive_edges = apply_edge_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 2: containment removal + edge verification (§V-B). ------
        {
          ContainmentFindings records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_containments(g, nodes[p], config, &work);
            records.verified.insert(records.verified.end(),
                                    found.verified.begin(),
                                    found.verified.end());
            records.false_edges.insert(records.false_edges.end(),
                                       found.false_edges.begin(),
                                       found.false_edges.end());
            records.contained_nodes.insert(records.contained_nodes.end(),
                                           found.contained_nodes.begin(),
                                           found.contained_nodes.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records.verified);
          msg.pack_vector(records.false_edges);
          msg.pack_vector(records.contained_nodes);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            ContainmentFindings all;
            for (auto& m : gathered) {
              auto verified = m.unpack_vector<EdgeVerification>();
              auto false_edges = m.unpack_vector<EdgeId>();
              auto contained = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.verified.insert(all.verified.end(), verified.begin(),
                                  verified.end());
              all.false_edges.insert(all.false_edges.end(),
                                     false_edges.begin(), false_edges.end());
              all.contained_nodes.insert(all.contained_nodes.end(),
                                         contained.begin(), contained.end());
            }
            comm.charge(static_cast<double>(
                all.verified.size() + all.false_edges.size() +
                all.contained_nodes.size()));
            out.stats.verified_edges = apply_verifications(g, all.verified);
            out.stats.false_edges =
                apply_edge_removals(g, std::move(all.false_edges));
            out.stats.contained_nodes =
                apply_node_removals(g, std::move(all.contained_nodes));
          }
          comm.barrier();
        }

        // --- Phase 3: dead-end trimming (§V-C). -----------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_tips(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.tip_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 4: bubble popping (§V-C). --------------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_bubbles(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.bubble_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }
      },
      cost);
  return out;
}

namespace {

using Subpaths = std::vector<std::vector<NodeId>>;

template <class GraphT>
void ft_traverse_master(mpr::Comm& comm, const GraphT& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        std::span<const PartId> part, PartId nparts,
                        const mpr::FaultConfig& fault, Subpaths* paths) {
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  std::vector<bool> visited(g.node_count(), false);
  auto recs = ft_collect_phase<Subpaths>(
      comm, st, nparts, 0, fault,
      [&](std::uint32_t p, double* work) {
        // Partitions are disjoint and sub-paths never cross a partition
        // boundary, so clearing only the extracted nodes between partitions
        // extracts the same sub-paths as a fresh visited set per partition —
        // and keeps a replayed partition (fault recovery) starting clean
        // without re-zeroing node_count() bits each scan.
        auto found = extract_subpaths(g, nodes[p], part, visited, work);
        clear_visited(found, visited);
        return found;
      },
      [](mpr::Message& m) {
        Subpaths s(m.unpack<std::uint32_t>());
        for (auto& path : s) path = m.unpack_vector<NodeId>();
        return s;
      });
  Subpaths all;
  for (auto& r : recs) {
    for (auto& path : r) all.push_back(std::move(path));
  }
  double join_work = 0.0;
  *paths = join_subpaths(g, std::move(all), &join_work);
  comm.charge(join_work);
  ft_shutdown_workers(comm, st);
}

template <class GraphT>
void ft_traverse_worker(mpr::Comm& comm, const GraphT& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        std::span<const PartId> part) {
  std::vector<bool> visited(g.node_count(), false);
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown traverse phase in scan command");
    const auto found = extract_subpaths(g, nodes[p], part, visited, work);
    clear_visited(found, visited);
    frame.pack(static_cast<std::uint32_t>(found.size()));
    for (const auto& path : found) frame.pack_vector(path);
  });
}

// ---------------------------------------------------------------------------
// Symmetric traverse: distributed sub-path stitching by pointer jumping.
//
// Sub-paths are the vertices of a functional graph: next(i) = the sub-path
// that unambiguously continues i (join_subpaths' next[] scan, here computed
// by each sub-path's owner and routed to the successor, so every sub-path
// learns its unique *predecessor* instead). Components are chains — rooted
// at the sub-path with no predecessor (the head) — or cycles. Each owner
// then runs pointer jumping over the predecessor pointers: per round every
// unsettled sub-path asks the owner of its current ancestor for that
// ancestor's (pointer, exact distance, minimum sub-path id on the covered
// walk, distance to that minimum's first occurrence), and splices the answer
// onto its own state, doubling the covered distance — O(log S) rounds.
//
// A chain member settles when its walk reaches the head: its emission key is
// (0, head id, distance). A cycle member settles when its covered distance
// reaches the total sub-path count S (the walk provably wrapped): the
// minimum id m on the wrapped walk is the cycle's canonical break point and
// the distance to m's first occurrence along the *predecessor* walk equals
// the member's forward offset from m, so its key is (1, m, that distance).
// Sorting all keys reproduces join_subpaths' emission order exactly: chains
// in ascending head id — heads are precisely the non-continuations its first
// loop starts from — each in walk order, then cycles in ascending minimum id
// broken at the minimum, because canonical sub-path ids are assigned in the
// master protocol's gather order.
// ---------------------------------------------------------------------------

constexpr int kTagSymMeta = 220;
constexpr int kTagSymPred = 221;
constexpr int kTagSymJumpQuery = 222;
constexpr int kTagSymJumpReply = 223;
constexpr int kTagSymPieces = 224;

struct PredLink {
  std::uint32_t sub;   // the continuation sub-path (routed to its owner)
  std::uint32_t pred;  // the sub-path it continues
};

struct JumpQuery {
  std::uint32_t target;  // current ancestor (owned by the queried rank)
  std::uint32_t asker;
};

struct JumpReply {  // all-u32 so the frame has no padding bytes under CRC
  std::uint32_t asker;
  std::uint32_t anc;
  std::uint32_t dist;
  std::uint32_t min_id;
  std::uint32_t min_dist;
  std::uint32_t flags;  // bit 0: target settled; bit 1: target is a cycle
};

template <class GraphT>
void traverse_symmetric_rank(
    mpr::Comm& comm, const GraphT& g,
    const std::vector<std::vector<NodeId>>& nodes,
    std::span<const PartId> part, const std::vector<int>& owner,
    const std::vector<std::vector<std::uint32_t>>& owned, Subpaths* paths) {
  const int size = comm.size();
  const auto& own = owned[static_cast<std::size_t>(comm.rank())];
  const std::size_t nparts = nodes.size();
  // Every rank computes the LPT schedule redundantly from replicated
  // partition metadata.
  comm.charge(static_cast<double>(nparts));

  // Local extraction over owned partitions. One shared visited vector is
  // safe across partitions: extraction never marks outside the scanned
  // partition, so each partition's sub-paths are independent of scan
  // placement — the same lists a master-protocol worker would produce.
  std::vector<bool> visited(g.node_count(), false);
  std::vector<Subpaths> mine_subpaths;
  mine_subpaths.reserve(own.size());
  double work = 0.0;
  for (const std::uint32_t p : own) {
    mine_subpaths.push_back(
        extract_subpaths(g, nodes[p], part, visited, &work));
  }
  comm.charge(work);

  // Round 1: replicate per-partition left endpoints so every rank can build
  // the canonical sub-path id space — ids in the master protocol's gather
  // order, partitions sorted by (p % size, p), which keeps the two protocols
  // byte-identical at every rank count — plus the global left-endpoint index
  // and each sub-path's owner.
  mpr::Message meta;
  meta.pack(static_cast<std::uint32_t>(own.size()));
  for (std::size_t k = 0; k < own.size(); ++k) {
    meta.pack(own[k]);
    std::vector<NodeId> lefts;
    lefts.reserve(mine_subpaths[k].size());
    for (const auto& path : mine_subpaths[k]) lefts.push_back(path.front());
    meta.pack_vector(lefts);
  }
  std::vector<mpr::Message> outgoing(static_cast<std::size_t>(size), meta);
  auto frames = mpr::alltoall_round(comm, std::move(outgoing), kTagSymMeta);

  std::vector<std::vector<NodeId>> part_lefts(nparts);
  std::vector<std::uint8_t> seen(nparts, 0);
  for (auto& frame : frames) {
    const auto nowned = frame.unpack<std::uint32_t>();
    for (std::uint32_t k = 0; k < nowned; ++k) {
      const auto p = frame.unpack<std::uint32_t>();
      FOCUS_CHECK(p < nparts && !seen[p],
                  "partition metadata duplicated or invalid");
      seen[p] = 1;
      part_lefts[p] = frame.unpack_vector<NodeId>();
    }
    FOCUS_CHECK(frame.fully_consumed(), "trailing bytes in metadata frame");
  }
  for (std::size_t p = 0; p < nparts; ++p) {
    FOCUS_CHECK(seen[p], "partition missing from metadata round");
  }

  std::vector<std::uint32_t> base(nparts, 0);
  std::uint32_t total = 0;
  for (int r = 0; r < size; ++r) {
    for (std::size_t p = static_cast<std::size_t>(r); p < nparts;
         p += static_cast<std::size_t>(size)) {
      base[p] = total;
      total += static_cast<std::uint32_t>(part_lefts[p].size());
    }
  }
  const std::uint32_t S = total;

  std::vector<int> sub_owner(S, 0);
  std::unordered_map<NodeId, std::uint32_t> left_of;
  left_of.reserve(S);
  for (std::size_t p = 0; p < nparts; ++p) {
    for (std::size_t k = 0; k < part_lefts[p].size(); ++k) {
      const std::uint32_t id = base[p] + static_cast<std::uint32_t>(k);
      sub_owner[id] = owner[p];
      const auto [it, inserted] = left_of.emplace(part_lefts[p][k], id);
      FOCUS_CHECK(inserted, "two sub-paths share a left endpoint");
    }
  }
  comm.charge(static_cast<double>(S));  // replicated id-space build

  std::vector<std::uint32_t> ids;  // global ids of owned sub-paths
  std::vector<const std::vector<NodeId>*> path_of;
  for (std::size_t k = 0; k < own.size(); ++k) {
    for (std::size_t j = 0; j < mine_subpaths[k].size(); ++j) {
      ids.push_back(base[own[k]] + static_cast<std::uint32_t>(j));
      path_of.push_back(&mine_subpaths[k][j]);
    }
  }
  const auto n = static_cast<std::uint32_t>(ids.size());
  std::unordered_map<std::uint32_t, std::uint32_t> local_of;
  local_of.reserve(ids.size());
  for (std::uint32_t j = 0; j < n; ++j) local_of.emplace(ids[j], j);

  // Round 2: each owner computes its sub-paths' unambiguous continuations
  // and routes each link to the successor's owner, which records its unique
  // predecessor (in-degree 1 at the junction guarantees uniqueness).
  std::vector<std::vector<PredLink>> pbuckets(static_cast<std::size_t>(size));
  double next_work = 0.0;
  for (std::uint32_t j = 0; j < n; ++j) {
    const NodeId right = path_of[j]->back();
    const auto out = g.live_out(right);
    next_work += 1.0 + static_cast<double>(out.size());
    if (out.size() != 1) continue;
    const NodeId target = g.edge(out[0]).to;
    if (g.live_in_degree(target) != 1) continue;  // other in-edges: ambiguous
    const auto it = left_of.find(target);
    if (it == left_of.end() || it->second == ids[j]) continue;
    pbuckets[static_cast<std::size_t>(sub_owner[it->second])].push_back(
        {it->second, ids[j]});
  }
  comm.charge(next_work);
  const auto links = mpr::exchange_deltas<PredLink>(comm, pbuckets,
                                                    kTagSymPred);

  // Jump state per owned sub-path: anc = current ancestor on the predecessor
  // walk, dist = exact steps to anc, min_id/min_dist = minimum id on the
  // covered walk and the steps to its first occurrence. Sub-paths without a
  // predecessor are settled chain heads from the start.
  std::vector<std::uint32_t> anc(n), dist(n, 0), min_id(n), min_dist(n, 0);
  std::vector<std::uint8_t> done(n, 1), cyc(n, 0);
  for (std::uint32_t j = 0; j < n; ++j) {
    anc[j] = ids[j];
    min_id[j] = ids[j];
  }
  for (const auto& link : links) {
    const auto it = local_of.find(link.sub);
    FOCUS_CHECK(it != local_of.end(), "predecessor link routed to wrong owner");
    const std::uint32_t j = it->second;
    anc[j] = link.pred;
    dist[j] = 1;
    done[j] = 0;
    if (link.pred < min_id[j]) {
      min_id[j] = link.pred;
      min_dist[j] = 1;
    }
  }

  for (std::uint32_t round = 0;; ++round) {
    std::int64_t active = 0;
    for (std::uint32_t j = 0; j < n; ++j) active += done[j] ? 0 : 1;
    if (comm.allreduce_sum(active) == 0) break;
    // Covered distance at least doubles per round, so 32-bit ids bound the
    // round count long before this trips.
    FOCUS_CHECK(round < 40, "pointer jumping failed to converge");

    std::vector<std::vector<JumpQuery>> qbuckets(
        static_cast<std::size_t>(size));
    for (std::uint32_t j = 0; j < n; ++j) {
      if (done[j]) continue;
      qbuckets[static_cast<std::size_t>(sub_owner[anc[j]])].push_back(
          {anc[j], ids[j]});
    }
    const auto queries =
        mpr::exchange_deltas<JumpQuery>(comm, qbuckets, kTagSymJumpQuery);
    comm.charge(static_cast<double>(queries.size()));
    // Replies are served from this round's pre-update state on every rank:
    // updates happen only after the reply exchange below, and ranks read
    // each other's state through messages alone.
    std::vector<std::vector<JumpReply>> rbuckets(
        static_cast<std::size_t>(size));
    for (const auto& q : queries) {
      const auto it = local_of.find(q.target);
      FOCUS_CHECK(it != local_of.end(), "jump query routed to wrong owner");
      const std::uint32_t t = it->second;
      const std::uint32_t flags =
          (done[t] ? 1u : 0u) | (cyc[t] ? 2u : 0u);
      rbuckets[static_cast<std::size_t>(sub_owner[q.asker])].push_back(
          {q.asker, anc[t], dist[t], min_id[t], min_dist[t], flags});
    }
    const auto replies =
        mpr::exchange_deltas<JumpReply>(comm, rbuckets, kTagSymJumpReply);
    comm.charge(static_cast<double>(replies.size()));
    for (const auto& rep : replies) {
      const std::uint32_t j = local_of.at(rep.asker);
      // Splice the ancestor's covered segment onto ours. A strictly smaller
      // minimum cannot have occurred on our prefix, so its first occurrence
      // is our prefix length plus the ancestor's first-occurrence distance;
      // an equal minimum already occurred on our prefix, keep ours.
      if (rep.min_id < min_id[j]) {
        min_id[j] = rep.min_id;
        min_dist[j] = dist[j] + rep.min_dist;
      }
      dist[j] += rep.dist;
      anc[j] = rep.anc;
      if ((rep.flags & 1u) != 0u) {
        done[j] = 1;
        cyc[j] = (rep.flags & 2u) != 0u ? 1 : 0;
      } else if (dist[j] >= S) {
        // A chain walk never exceeds S - 1 exact steps, so the walk wrapped:
        // every cycle member is covered and min_id is the true minimum.
        done[j] = 1;
        cyc[j] = 1;
      }
    }
  }

  // Emission (fully symmetric — no rank ever sorts the global piece-key
  // set): each settled piece is routed to the owner of its group anchor —
  // the chain's head sub-path or the cycle's minimum-id sub-path — so a
  // group's pieces land wholly on one rank. That owner sorts only its own
  // pieces by (kind, group, pos) and concatenates each group's run into a
  // joined path; rank 0 then k-way merges the per-owner lists, which arrive
  // pre-sorted by (kind, group). The merged order — chains by ascending
  // head id, then cycles by ascending minimum id — is exactly the order the
  // old rank-0 global sort produced.
  std::vector<mpr::Message> route(static_cast<std::size_t>(size));
  {
    std::vector<std::uint32_t> counts(static_cast<std::size_t>(size), 0);
    for (std::uint32_t j = 0; j < n; ++j) {
      FOCUS_CHECK(done[j], "unsettled sub-path after pointer jumping");
      counts[static_cast<std::size_t>(
          sub_owner[cyc[j] ? min_id[j] : anc[j]])] += 1;
    }
    for (int r = 0; r < size; ++r) {
      route[static_cast<std::size_t>(r)].pack(
          counts[static_cast<std::size_t>(r)]);
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      const std::uint32_t group = cyc[j] ? min_id[j] : anc[j];
      mpr::Message& m = route[static_cast<std::size_t>(sub_owner[group])];
      m.pack(static_cast<std::uint32_t>(cyc[j]));
      m.pack(group);
      m.pack(cyc[j] ? min_dist[j] : dist[j]);
      m.pack_vector(*path_of[j]);
    }
  }
  auto piece_frames =
      mpr::alltoall_round(comm, std::move(route), kTagSymPieces);

  struct Piece {
    std::uint32_t kind, group, pos;
    std::vector<NodeId> nodes;
  };
  std::vector<Piece> pieces;
  for (auto& m : piece_frames) {
    const auto count = m.unpack<std::uint32_t>();
    for (std::uint32_t i = 0; i < count; ++i) {
      Piece piece;
      piece.kind = m.unpack<std::uint32_t>();
      piece.group = m.unpack<std::uint32_t>();
      piece.pos = m.unpack<std::uint32_t>();
      piece.nodes = m.unpack_vector<NodeId>();
      pieces.push_back(std::move(piece));
    }
    FOCUS_CHECK(m.fully_consumed(), "trailing bytes in sub-path frame");
  }
  std::int64_t piece_count = static_cast<std::int64_t>(pieces.size());
  FOCUS_CHECK(comm.allreduce_sum(piece_count) == static_cast<std::int64_t>(S),
              "sub-path lost in stitching");
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.group != b.group) return a.group < b.group;
              return a.pos < b.pos;
            });
  comm.charge(static_cast<double>(pieces.size()) *
              std::log2(static_cast<double>(pieces.size()) + 2.0));

  // Join each group's run. Positions are the exact distances pointer
  // jumping produced, so within a group they must tile 0..len-1 — a gap
  // means a piece was lost in routing.
  Subpaths joined_local;
  std::vector<std::uint64_t> joined_keys;  // kind << 32 | group
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i == 0 || pieces[i].kind != pieces[i - 1].kind ||
        pieces[i].group != pieces[i - 1].group) {
      FOCUS_CHECK(pieces[i].pos == 0, "sub-path group missing its anchor");
      joined_local.emplace_back();
      joined_keys.push_back(
          (static_cast<std::uint64_t>(pieces[i].kind) << 32) |
          pieces[i].group);
    } else {
      FOCUS_CHECK(pieces[i].pos == pieces[i - 1].pos + 1,
                  "sub-path group has a gap");
    }
    auto& path = joined_local.back();
    path.insert(path.end(), pieces[i].nodes.begin(), pieces[i].nodes.end());
  }

  // Final round: rank 0 merges the per-owner runs — O(J log size), not
  // O(S log S) — and never touches piece keys again.
  mpr::Message out_frame;
  out_frame.pack(static_cast<std::uint32_t>(joined_local.size()));
  for (std::size_t i = 0; i < joined_local.size(); ++i) {
    out_frame.pack(joined_keys[i]);
    out_frame.pack_vector(joined_local[i]);
  }
  auto gathered = comm.gather(std::move(out_frame), 0);
  if (comm.rank() == 0) {
    std::vector<std::vector<std::pair<std::uint64_t, std::vector<NodeId>>>>
        runs(gathered.size());
    std::size_t total_joined = 0;
    for (std::size_t r = 0; r < gathered.size(); ++r) {
      auto& m = gathered[r];
      const auto count = m.unpack<std::uint32_t>();
      runs[r].reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto key = m.unpack<std::uint64_t>();
        auto run_path = m.unpack_vector<NodeId>();
        FOCUS_CHECK(runs[r].empty() || runs[r].back().first < key,
                    "per-owner emission not sorted");
        runs[r].emplace_back(key, std::move(run_path));
      }
      FOCUS_CHECK(m.fully_consumed(), "trailing bytes in emission frame");
      total_joined += runs[r].size();
    }
    Subpaths joined;
    joined.reserve(total_joined);
    std::vector<std::size_t> head(runs.size(), 0);
    for (;;) {
      std::size_t best = runs.size();
      for (std::size_t r = 0; r < runs.size(); ++r) {
        if (head[r] >= runs[r].size()) continue;
        if (best == runs.size() ||
            runs[r][head[r]].first < runs[best][head[best]].first) {
          best = r;
        }
      }
      if (best == runs.size()) break;
      joined.push_back(std::move(runs[best][head[best]].second));
      ++head[best];
    }
    comm.charge(static_cast<double>(total_joined) *
                std::log2(static_cast<double>(size) + 2.0));
    *paths = std::move(joined);
  }
  comm.barrier();
}

/// Coordinator body of the fault-tolerant symmetric traverse: one collected
/// phase committed to the log, then joining from the durable record — which
/// is identical whether this rank collected the sub-paths itself or
/// inherited them from a crashed predecessor.
template <class GraphT>
void sym_traverse_coordinate(mpr::Comm& comm, SymWal& wal, const GraphT& g,
                             const std::vector<std::vector<NodeId>>& nodes,
                             std::span<const PartId> part, PartId nparts,
                             const mpr::FaultConfig& fault,
                             std::uint32_t phase_start, Subpaths* paths) {
  if (phase_start == 0) {
    std::vector<bool> visited(g.node_count(), false);
    auto recs = sym_collect_phase<Subpaths>(
        comm, wal, nparts, 0, fault,
        [&](std::uint32_t p, double* work) {
          auto found = extract_subpaths(g, nodes[p], part, visited, work);
          clear_visited(found, visited);
          return found;
        },
        [](mpr::Message& m) {
          Subpaths s(m.unpack<std::uint32_t>());
          for (auto& path : s) path = m.unpack_vector<NodeId>();
          return s;
        });
    SymWal::Entry entry;
    std::uint32_t count = 0;
    for (const auto& r : recs) count += static_cast<std::uint32_t>(r.size());
    entry.payload.pack(count);
    for (const auto& r : recs) {
      for (const auto& path : r) entry.payload.pack_vector(path);
    }
    sym_wal_commit(comm, wal, std::move(entry));
  }

  mpr::Message payload;
  {
    std::lock_guard<std::mutex> lock(wal.mu);
    payload = wal.entries.front().payload;
  }
  Subpaths all(payload.unpack<std::uint32_t>());
  for (auto& path : all) path = payload.unpack_vector<NodeId>();
  FOCUS_CHECK(payload.fully_consumed(), "trailing bytes in sub-path log");
  double join_work = 0.0;
  *paths = join_subpaths(g, std::move(all), &join_work);
  comm.charge(join_work);
}

template <class GraphT>
ParallelTraverseResult ft_sym_traverse(
    const GraphT& g, const std::vector<std::vector<NodeId>>& nodes,
    std::span<const PartId> part, PartId nparts, int nranks,
    mpr::CostModel cost, const mpr::FaultPlan& fault_plan,
    const mpr::FaultConfig& fault) {
  ParallelTraverseResult out;
  SymWal wal;
  wal.live.assign(static_cast<std::size_t>(nranks), 1);
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        std::vector<bool> visited(g.node_count(), false);
        ft_sym_drive(
            comm, wal, fault,
            [&](std::uint32_t phase, std::uint32_t p, mpr::Message& frame,
                double* work) {
              FOCUS_CHECK(phase == 0, "unknown traverse phase in scan command");
              const auto found =
                  extract_subpaths(g, nodes[p], part, visited, work);
              clear_visited(found, visited);
              frame.pack(static_cast<std::uint32_t>(found.size()));
              for (const auto& path : found) frame.pack_vector(path);
            },
            [&](std::uint32_t phase_start) {
              sym_traverse_coordinate(comm, wal, g, nodes, part, nparts,
                                      fault, phase_start, &out.paths);
            });
      },
      cost, fault_plan);
  return out;
}

}  // namespace

template <class GraphT>
ParallelTraverseResult traverse_parallel(const GraphT& g,
                                         std::span<const PartId> part,
                                         PartId nparts, int nranks,
                                         mpr::CostModel cost,
                                         unsigned threads,
                                         const mpr::FaultPlan& fault_plan,
                                         const mpr::FaultConfig& fault,
                                         const DistConfig& dist) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelTraverseResult out;
  if (!fault_plan.empty()) {
    if (dist.protocol == DistProtocol::kSymmetric) {
      return ft_sym_traverse(g, nodes, part, nparts, nranks, cost, fault_plan,
                             fault);
    }
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          if (comm.rank() == 0) {
            ft_traverse_master(comm, g, nodes, part, nparts, fault,
                               &out.paths);
          } else {
            ft_traverse_worker(comm, g, nodes, part);
          }
        },
        cost, fault_plan);
    return out;
  }

  if (dist.protocol == DistProtocol::kSymmetric) {
    const auto est = traverse_scan_estimates(nodes);
    const auto owner = lpt_assign(est, nranks);
    const auto owned = owned_partitions(owner, nranks);
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          traverse_symmetric_rank(comm, g, nodes, part, owner, owned,
                                  &out.paths);
        },
        cost);
    return out;
  }

  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        std::vector<bool> visited(g.node_count(), false);
        std::vector<std::vector<NodeId>> subpaths;
        double work = 0.0;
        for (std::size_t p = 0; p < nodes.size(); ++p) {
          if (!mine(p, comm)) continue;
          auto found = extract_subpaths(g, nodes[p], part, visited, &work);
          for (auto& path : found) subpaths.push_back(std::move(path));
        }
        comm.charge(work);

        mpr::Message msg;
        msg.pack(static_cast<std::uint32_t>(subpaths.size()));
        for (const auto& path : subpaths) msg.pack_vector(path);
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          std::vector<std::vector<NodeId>> all;
          for (auto& m : gathered) {
            const auto count = m.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              all.push_back(m.unpack_vector<NodeId>());
            }
            FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
          }
          double join_work = 0.0;
          out.paths = join_subpaths(g, std::move(all), &join_work);
          comm.charge(join_work);
        }
        comm.barrier();
      },
      cost);
  return out;
}

namespace {

/// Query reads per fault-tolerant overlap partition. Fixed so the block
/// decomposition — and therefore the canonical record order — is a pure
/// function of the read count, independent of rank count and faults.
constexpr std::size_t kFtQueryBlock = 64;

std::vector<align::Overlap> ft_overlap_scan_block(
    const io::ReadSet& reads, const align::KmerShard& shard,
    const align::SubsetRanges& subsets, const align::OverlapperConfig& config,
    std::uint32_t p, double* work) {
  std::vector<align::Overlap> out;
  const std::size_t n = reads.size();
  const std::size_t begin = p * kFtQueryBlock;
  const std::size_t end = std::min(n, begin + kFtQueryBlock);
  align::distributed_block_overlaps(reads, shard, subsets,
                                    static_cast<ReadId>(begin),
                                    static_cast<ReadId>(end), config, out,
                                    work);
  return out;
}

std::vector<align::Overlap> ft_overlap_merge(
    mpr::Comm& comm, std::vector<std::vector<align::Overlap>> recs) {
  std::vector<align::Overlap> all;
  for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
  comm.charge(static_cast<double>(all.size()) *
              std::log2(static_cast<double>(all.size()) + 2.0));
  return align::dedupe_overlaps(std::move(all));
}

void ft_overlap_master(mpr::Comm& comm, const io::ReadSet& reads,
                       const align::KmerShard& shard,
                       const align::SubsetRanges& subsets,
                       const align::OverlapperConfig& config, PartId nparts,
                       const mpr::FaultConfig& fault,
                       std::vector<align::Overlap>* overlaps) {
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  auto recs = ft_collect_phase<std::vector<align::Overlap>>(
      comm, st, nparts, 0, fault,
      [&](std::uint32_t p, double* work) {
        return ft_overlap_scan_block(reads, shard, subsets, config, p, work);
      },
      [](mpr::Message& m) { return m.unpack_vector<align::Overlap>(); });
  *overlaps = ft_overlap_merge(comm, std::move(recs));
  ft_shutdown_workers(comm, st);
}

void ft_overlap_worker(mpr::Comm& comm, const io::ReadSet& reads,
                       const align::KmerShard& shard,
                       const align::SubsetRanges& subsets,
                       const align::OverlapperConfig& config) {
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown overlap phase in scan command");
    frame.pack_vector(
        ft_overlap_scan_block(reads, shard, subsets, config, p, work));
  });
}

void ft_overlap_symmetric(mpr::Comm& comm, const io::ReadSet& reads,
                          const align::KmerShard& shard,
                          const align::SubsetRanges& subsets,
                          const align::OverlapperConfig& config, PartId nparts,
                          const mpr::FaultConfig& fault, SymWal& wal,
                          std::vector<align::Overlap>* overlaps) {
  ft_sym_drive(
      comm, wal, fault,
      [&](std::uint32_t phase, std::uint32_t p, mpr::Message& frame,
          double* work) {
        FOCUS_CHECK(phase == 0, "unknown overlap phase in scan command");
        frame.pack_vector(
            ft_overlap_scan_block(reads, shard, subsets, config, p, work));
      },
      [&](std::uint32_t phase_start) {
        if (phase_start == 0) {
          auto recs = sym_collect_phase<std::vector<align::Overlap>>(
              comm, wal, nparts, 0, fault,
              [&](std::uint32_t p, double* work) {
                return ft_overlap_scan_block(reads, shard, subsets, config, p,
                                             work);
              },
              [](mpr::Message& m) {
                return m.unpack_vector<align::Overlap>();
              });
          SymWal::Entry entry;
          entry.payload.pack_vector(ft_overlap_merge(comm, std::move(recs)));
          sym_wal_commit(comm, wal, std::move(entry));
        }
        // Publish from the durable record — identical whether this rank
        // merged the blocks itself or inherited the committed entry.
        mpr::Message payload;
        {
          std::lock_guard<std::mutex> lock(wal.mu);
          payload = wal.entries.front().payload;
        }
        *overlaps = payload.unpack_vector<align::Overlap>();
        FOCUS_CHECK(payload.fully_consumed(), "trailing bytes in overlap log");
      });
}

}  // namespace

// Explicit instantiations of the templated drivers for the two graph
// backends (see parallel.hpp).
#define FOCUS_INSTANTIATE_PARALLEL(G)                                        \
  template ParallelSimplifyResult simplify_parallel<G>(                      \
      G&, std::span<const PartId>, PartId, const SimplifyConfig&, int,       \
      mpr::CostModel, unsigned, const mpr::FaultPlan&,                       \
      const mpr::FaultConfig&, const DistConfig&);                           \
  template ParallelTraverseResult traverse_parallel<G>(                      \
      const G&, std::span<const PartId>, PartId, int, mpr::CostModel,        \
      unsigned, const mpr::FaultPlan&, const mpr::FaultConfig&,              \
      const DistConfig&);

FOCUS_INSTANTIATE_PARALLEL(AsmGraph)
FOCUS_INSTANTIATE_PARALLEL(StoredAsmGraph)

#undef FOCUS_INSTANTIATE_PARALLEL

ParallelOverlapResult overlap_parallel(const io::ReadSet& reads,
                                       const align::OverlapperConfig& config,
                                       int nranks, mpr::CostModel cost,
                                       const mpr::FaultPlan& fault_plan,
                                       const mpr::FaultConfig& fault,
                                       const DistConfig& dist) {
  if (fault_plan.empty()) {
    auto r = align::find_overlaps_sharded(reads, config, nranks, cost);
    return {std::move(r.overlaps), r.stats};
  }

  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const std::size_t n = reads.size();
  const auto nparts =
      static_cast<PartId>((n + kFtQueryBlock - 1) / kFtQueryBlock);
  const bool symmetric = dist.protocol == DistProtocol::kSymmetric;

  SymWal wal;
  wal.live.assign(static_cast<std::size_t>(nranks), 1);
  ParallelOverlapResult out;
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // Replicated single-shard layout: under faults any surviving rank
        // may be asked to replay any query block, so every rank holds the
        // full index — trading memory for the ability to reassign blocks
        // without a shard-recovery round.
        double build_work = 0.0;
        auto postings = align::extract_shard_postings(
            reads, 0, static_cast<ReadId>(n), config.k, 1, &build_work);
        const align::KmerShard shard(std::move(postings[0]), config.k);
        build_work += shard.build_work();
        comm.charge(build_work);
        const align::SubsetRanges subsets(
            io::split_into_subsets(n, config.subsets));

        if (symmetric) {
          ft_overlap_symmetric(comm, reads, shard, subsets, config, nparts,
                               fault, wal, &out.overlaps);
        } else if (comm.rank() == 0) {
          ft_overlap_master(comm, reads, shard, subsets, config, nparts,
                            fault, &out.overlaps);
        } else {
          ft_overlap_worker(comm, reads, shard, subsets, config);
        }
      },
      cost, fault_plan);
  return out;
}

}  // namespace focus::dist
