#include "dist/parallel.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "io/preprocess.hpp"

namespace focus::dist {

namespace {

/// Below this the chunked gather costs more than the serial scan.
constexpr std::size_t kParallelGatherMinNodes = 4096;
constexpr std::size_t kGatherGrain = 4096;

bool mine(std::size_t partition, const mpr::Comm& comm) {
  return static_cast<int>(partition %
                          static_cast<std::size_t>(comm.size())) ==
         comm.rank();
}

}  // namespace

std::vector<std::vector<NodeId>> partition_node_lists(
    std::span<const PartId> part, PartId nparts, unsigned threads) {
  std::vector<std::vector<NodeId>> nodes(static_cast<std::size_t>(nparts));
  const std::size_t n = part.size();
  const auto gather = [&](std::size_t begin, std::size_t end,
                          std::vector<std::vector<NodeId>>& out) {
    for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
      FOCUS_CHECK(part[v] >= 0 && part[v] < nparts,
                  "node with invalid partition id");
      out[static_cast<std::size_t>(part[v])].push_back(v);
    }
  };
  const unsigned resolved = resolve_thread_count(threads);
  if (resolved <= 1 || n < kParallelGatherMinNodes) {
    gather(0, n, nodes);
    return nodes;
  }
  ThreadPool pool(resolved);
  // parallel_reduce merges the per-chunk buckets in chunk order, so each
  // per-part list stays in ascending node order and the result equals the
  // serial scan at every width.
  using Buckets = std::vector<std::vector<NodeId>>;
  nodes = pool.parallel_reduce(
      n, kGatherGrain, std::move(nodes),
      [&](std::size_t b, std::size_t e) {
        Buckets local(static_cast<std::size_t>(nparts));
        gather(b, e, local);
        return local;
      },
      [](Buckets acc, Buckets chunk) {
        for (std::size_t p = 0; p < acc.size(); ++p) {
          acc[p].insert(acc[p].end(), chunk[p].begin(), chunk[p].end());
        }
        return acc;
      });
  return nodes;
}

// ---------------------------------------------------------------------------
// Fault-tolerant master/worker protocol (DESIGN.md §7).
//
// Commands and record frames flow over two user tags. Every scan command
// carries a monotone sequence number (workers discard duplicated commands
// without re-scanning, which keeps them from touching the graph while the
// master applies) and every record frame carries its (phase, round) so the
// master can discard stale frames left over from failed rounds.
// ---------------------------------------------------------------------------

namespace {

constexpr int kTagCmd = 100;
constexpr int kTagRec = 101;
constexpr std::uint32_t kCmdScan = 1;
constexpr std::uint32_t kCmdDone = 2;

/// Partition assignment for one round: every partition goes to its original
/// owner (id mod nranks) when that rank is live; partitions orphaned by dead
/// ranks are redistributed round-robin over the live ranks (master included),
/// in ascending rank order — a pure function of the live set, so replays are
/// deterministic.
std::vector<std::vector<std::uint32_t>> ft_assign(
    PartId nparts, const std::vector<std::uint8_t>& live, int size) {
  std::vector<std::vector<std::uint32_t>> parts_for_rank(
      static_cast<std::size_t>(size));
  std::vector<int> live_ranks{0};
  for (int r = 1; r < size; ++r) {
    if (live[static_cast<std::size_t>(r)]) live_ranks.push_back(r);
  }
  std::vector<std::uint32_t> orphans;
  for (PartId p = 0; p < nparts; ++p) {
    const int owner = static_cast<int>(p % size);
    if (owner == 0 || live[static_cast<std::size_t>(owner)]) {
      parts_for_rank[static_cast<std::size_t>(owner)].push_back(
          static_cast<std::uint32_t>(p));
    } else {
      orphans.push_back(static_cast<std::uint32_t>(p));
    }
  }
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    parts_for_rank[static_cast<std::size_t>(live_ranks[i % live_ranks.size()])]
        .push_back(orphans[i]);
  }
  return parts_for_rank;
}

struct FtMasterState {
  std::vector<std::uint8_t> live;  // live[0] is the master itself
  std::uint64_t cmd_seq = 0;
};

/// One worker-record / master-collect phase under the fault-tolerant
/// protocol. Returns the per-partition records in the canonical fast-path
/// order — partitions sorted by (original owner, id) — so downstream applies
/// see the exact record sequence of a fault-free gather, regardless of which
/// surviving rank actually scanned each partition. Replays the whole phase on
/// a worker timeout (marking it dead) or a corrupt frame (worker stays live),
/// up to FaultConfig::max_retries replays.
template <typename Rec>
std::vector<Rec> ft_collect_phase(
    mpr::Comm& comm, FtMasterState& st, PartId nparts, std::uint32_t phase,
    const mpr::FaultConfig& fault,
    const std::function<Rec(std::uint32_t, double*)>& scan_one,
    const std::function<Rec(mpr::Message&)>& unpack_one) {
  const int size = comm.size();
  for (std::uint32_t round = 0;; ++round) {
    FOCUS_CHECK(static_cast<int>(round) <= fault.max_retries,
                "fault recovery exhausted max_retries replays of a phase");
    const auto assign = ft_assign(nparts, st.live, size);
    for (int r = 1; r < size; ++r) {
      if (!st.live[static_cast<std::size_t>(r)]) continue;
      mpr::Message cmd;
      cmd.pack(kCmdScan);
      cmd.pack(++st.cmd_seq);
      cmd.pack(phase);
      cmd.pack(round);
      cmd.pack_vector(assign[static_cast<std::size_t>(r)]);
      comm.send(r, kTagCmd, std::move(cmd));
    }

    std::vector<std::optional<Rec>> by_part(static_cast<std::size_t>(nparts));
    double work = 0.0;
    for (const std::uint32_t p : assign[0]) {
      by_part[p] = scan_one(p, &work);
    }
    comm.charge(work);

    bool failed = false;
    for (int r = 1; r < size && !failed; ++r) {
      if (!st.live[static_cast<std::size_t>(r)]) continue;
      for (;;) {
        auto res = comm.try_recv(r, kTagRec, fault.recv_timeout_vtime);
        if (res.status == mpr::RecvStatus::kTimeout) {
          st.live[static_cast<std::size_t>(r)] = 0;
          failed = true;
          break;
        }
        if (res.status == mpr::RecvStatus::kCorrupt) {
          failed = true;  // frame lost in transit; the worker itself is fine
          break;
        }
        const auto fphase = res.msg.unpack<std::uint32_t>();
        const auto fround = res.msg.unpack<std::uint32_t>();
        const auto count = res.msg.unpack<std::uint32_t>();
        if (fphase != phase || fround != round) continue;  // stale frame
        for (std::uint32_t i = 0; i < count; ++i) {
          const auto p = res.msg.unpack<std::uint32_t>();
          FOCUS_CHECK(p < static_cast<std::uint32_t>(nparts),
                      "record frame names an invalid partition");
          by_part[p] = unpack_one(res.msg);
        }
        FOCUS_CHECK(res.msg.fully_consumed(),
                    "trailing bytes in record frame");
        break;
      }
    }
    if (failed) {
      comm.note_retry();
      comm.charge_recovery(fault.recv_timeout_vtime *
                           static_cast<double>(round + 1));
      continue;
    }

    std::vector<Rec> out;
    out.reserve(static_cast<std::size_t>(nparts));
    for (int r = 0; r < size; ++r) {
      for (PartId p = r; p < nparts; p += size) {
        auto& slot = by_part[static_cast<std::size_t>(p)];
        FOCUS_CHECK(slot.has_value(), "partition missing from phase records");
        out.push_back(std::move(*slot));
      }
    }
    return out;
  }
}

/// Worker loop shared by both drivers: execute scan commands until told to
/// stop. `scan_and_pack(phase, partition, frame, work)` runs one partition's
/// read-only scan and appends its records to the frame.
void ft_worker_loop(
    mpr::Comm& comm,
    const std::function<void(std::uint32_t, std::uint32_t, mpr::Message&,
                             double*)>& scan_and_pack) {
  std::uint64_t last_seq = 0;
  for (;;) {
    mpr::Message cmd;
    try {
      cmd = comm.recv(0, kTagCmd);
    } catch (const mpr::CorruptMessage& e) {
      // A command this worker cannot decode means it cannot follow the
      // protocol any more: fail the rank and let the master reassign.
      throw mpr::RankFailed(e.what());
    }
    const auto kind = cmd.unpack<std::uint32_t>();
    if (kind == kCmdDone) {
      FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in done command");
      return;
    }
    FOCUS_CHECK(kind == kCmdScan, "unknown command kind");
    const auto seq = cmd.unpack<std::uint64_t>();
    const auto phase = cmd.unpack<std::uint32_t>();
    const auto round = cmd.unpack<std::uint32_t>();
    const auto parts = cmd.unpack_vector<std::uint32_t>();
    FOCUS_CHECK(cmd.fully_consumed(), "trailing bytes in scan command");
    if (seq <= last_seq) continue;  // duplicated command; already executed
    last_seq = seq;

    mpr::Message frame;
    frame.pack(phase);
    frame.pack(round);
    frame.pack(static_cast<std::uint32_t>(parts.size()));
    double work = 0.0;
    for (const std::uint32_t p : parts) {
      frame.pack(p);
      scan_and_pack(phase, p, frame, &work);
    }
    comm.charge(work);
    comm.send(0, kTagRec, std::move(frame));
  }
}

void ft_shutdown_workers(mpr::Comm& comm, const FtMasterState& st) {
  for (int r = 1; r < comm.size(); ++r) {
    if (!st.live[static_cast<std::size_t>(r)]) continue;
    mpr::Message done;
    done.pack(kCmdDone);
    comm.send(r, kTagCmd, std::move(done));
  }
}

void ft_simplify_master(mpr::Comm& comm, AsmGraph& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        const SimplifyConfig& config, PartId nparts,
                        const mpr::FaultConfig& fault, SimplifyStats* stats) {
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  // Checkpoint between phases: the applied graph plus the stats so far.
  // Applies happen strictly after a round's records are complete, so a
  // replay restarts the current phase against exactly this state — no
  // partial mutation can leak into a retry.
  struct Checkpoint {
    std::uint32_t phases_done = 0;
    SimplifyStats stats;
  } ckpt;

  {  // Phase 0: transitive reduction (§V-A).
    auto recs = ft_collect_phase<std::vector<EdgeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_transitive_edges(g, nodes[p], work);
        },
        [](mpr::Message& m) { return m.unpack_vector<EdgeId>(); });
    std::vector<EdgeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.transitive_edges = apply_edge_removals(g, std::move(all));
    ckpt.phases_done = 1;
  }

  {  // Phase 1: containment removal + edge verification (§V-B).
    auto recs = ft_collect_phase<ContainmentFindings>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_containments(g, nodes[p], config, work);
        },
        [](mpr::Message& m) {
          ContainmentFindings f;
          f.verified = m.unpack_vector<EdgeVerification>();
          f.false_edges = m.unpack_vector<EdgeId>();
          f.contained_nodes = m.unpack_vector<NodeId>();
          return f;
        });
    ContainmentFindings all;
    for (auto& r : recs) {
      all.verified.insert(all.verified.end(), r.verified.begin(),
                          r.verified.end());
      all.false_edges.insert(all.false_edges.end(), r.false_edges.begin(),
                             r.false_edges.end());
      all.contained_nodes.insert(all.contained_nodes.end(),
                                 r.contained_nodes.begin(),
                                 r.contained_nodes.end());
    }
    comm.charge(static_cast<double>(all.verified.size() +
                                    all.false_edges.size() +
                                    all.contained_nodes.size()));
    ckpt.stats.verified_edges = apply_verifications(g, all.verified);
    ckpt.stats.false_edges =
        apply_edge_removals(g, std::move(all.false_edges));
    ckpt.stats.contained_nodes =
        apply_node_removals(g, std::move(all.contained_nodes));
    ckpt.phases_done = 2;
  }

  {  // Phase 2: dead-end trimming (§V-C).
    auto recs = ft_collect_phase<std::vector<NodeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_tips(g, nodes[p], config, work);
        },
        [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
    std::vector<NodeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.tip_nodes = apply_node_removals(g, std::move(all));
    ckpt.phases_done = 3;
  }

  {  // Phase 3: bubble popping (§V-C).
    auto recs = ft_collect_phase<std::vector<NodeId>>(
        comm, st, nparts, ckpt.phases_done, fault,
        [&](std::uint32_t p, double* work) {
          return find_bubbles(g, nodes[p], config, work);
        },
        [](mpr::Message& m) { return m.unpack_vector<NodeId>(); });
    std::vector<NodeId> all;
    for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
    comm.charge(static_cast<double>(all.size()));
    ckpt.stats.bubble_nodes = apply_node_removals(g, std::move(all));
    ckpt.phases_done = 4;
  }

  ft_shutdown_workers(comm, st);
  *stats = ckpt.stats;
}

void ft_simplify_worker(mpr::Comm& comm, const AsmGraph& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        const SimplifyConfig& config) {
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    switch (phase) {
      case 0:
        frame.pack_vector(find_transitive_edges(g, nodes[p], work));
        break;
      case 1: {
        const auto f = find_containments(g, nodes[p], config, work);
        frame.pack_vector(f.verified);
        frame.pack_vector(f.false_edges);
        frame.pack_vector(f.contained_nodes);
        break;
      }
      case 2:
        frame.pack_vector(find_tips(g, nodes[p], config, work));
        break;
      case 3:
        frame.pack_vector(find_bubbles(g, nodes[p], config, work));
        break;
      default:
        FOCUS_THROW("unknown simplify phase in scan command");
    }
  });
}

}  // namespace

ParallelSimplifyResult simplify_parallel(AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts,
                                         const SimplifyConfig& config,
                                         int nranks, mpr::CostModel cost,
                                         unsigned threads,
                                         const mpr::FaultPlan& fault_plan,
                                         const mpr::FaultConfig& fault) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelSimplifyResult out;
  if (!fault_plan.empty()) {
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          if (comm.rank() == 0) {
            ft_simplify_master(comm, g, nodes, config, nparts, fault,
                               &out.stats);
          } else {
            ft_simplify_worker(comm, g, nodes, config);
          }
        },
        cost, fault_plan);
    return out;
  }

  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // --- Phase 1: transitive reduction (§V-A). -------------------------
        {
          std::vector<EdgeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_transitive_edges(g, nodes[p], &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<EdgeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<EdgeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.transitive_edges = apply_edge_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 2: containment removal + edge verification (§V-B). ------
        {
          ContainmentFindings records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_containments(g, nodes[p], config, &work);
            records.verified.insert(records.verified.end(),
                                    found.verified.begin(),
                                    found.verified.end());
            records.false_edges.insert(records.false_edges.end(),
                                       found.false_edges.begin(),
                                       found.false_edges.end());
            records.contained_nodes.insert(records.contained_nodes.end(),
                                           found.contained_nodes.begin(),
                                           found.contained_nodes.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records.verified);
          msg.pack_vector(records.false_edges);
          msg.pack_vector(records.contained_nodes);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            ContainmentFindings all;
            for (auto& m : gathered) {
              auto verified = m.unpack_vector<EdgeVerification>();
              auto false_edges = m.unpack_vector<EdgeId>();
              auto contained = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.verified.insert(all.verified.end(), verified.begin(),
                                  verified.end());
              all.false_edges.insert(all.false_edges.end(),
                                     false_edges.begin(), false_edges.end());
              all.contained_nodes.insert(all.contained_nodes.end(),
                                         contained.begin(), contained.end());
            }
            comm.charge(static_cast<double>(
                all.verified.size() + all.false_edges.size() +
                all.contained_nodes.size()));
            out.stats.verified_edges = apply_verifications(g, all.verified);
            out.stats.false_edges =
                apply_edge_removals(g, std::move(all.false_edges));
            out.stats.contained_nodes =
                apply_node_removals(g, std::move(all.contained_nodes));
          }
          comm.barrier();
        }

        // --- Phase 3: dead-end trimming (§V-C). -----------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_tips(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.tip_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }

        // --- Phase 4: bubble popping (§V-C). --------------------------------
        {
          std::vector<NodeId> records;
          double work = 0.0;
          for (std::size_t p = 0; p < nodes.size(); ++p) {
            if (!mine(p, comm)) continue;
            auto found = find_bubbles(g, nodes[p], config, &work);
            records.insert(records.end(), found.begin(), found.end());
          }
          comm.charge(work);
          mpr::Message msg;
          msg.pack_vector(records);
          auto gathered = comm.gather(std::move(msg), 0);
          if (comm.rank() == 0) {
            std::vector<NodeId> all;
            for (auto& m : gathered) {
              auto v = m.unpack_vector<NodeId>();
              FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
              all.insert(all.end(), v.begin(), v.end());
            }
            comm.charge(static_cast<double>(all.size()));
            out.stats.bubble_nodes = apply_node_removals(g, std::move(all));
          }
          comm.barrier();
        }
      },
      cost);
  return out;
}

namespace {

using Subpaths = std::vector<std::vector<NodeId>>;

void ft_traverse_master(mpr::Comm& comm, const AsmGraph& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        std::span<const PartId> part, PartId nparts,
                        const mpr::FaultConfig& fault, Subpaths* paths) {
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  auto recs = ft_collect_phase<Subpaths>(
      comm, st, nparts, 0, fault,
      [&](std::uint32_t p, double* work) {
        // Partitions are disjoint and sub-paths never cross a partition
        // boundary, so a fresh visited set per partition extracts the same
        // sub-paths as the fast path's shared per-rank set.
        std::vector<bool> visited(g.node_count(), false);
        return extract_subpaths(g, nodes[p], part, visited, work);
      },
      [](mpr::Message& m) {
        Subpaths s(m.unpack<std::uint32_t>());
        for (auto& path : s) path = m.unpack_vector<NodeId>();
        return s;
      });
  Subpaths all;
  for (auto& r : recs) {
    for (auto& path : r) all.push_back(std::move(path));
  }
  double join_work = 0.0;
  *paths = join_subpaths(g, std::move(all), &join_work);
  comm.charge(join_work);
  ft_shutdown_workers(comm, st);
}

void ft_traverse_worker(mpr::Comm& comm, const AsmGraph& g,
                        const std::vector<std::vector<NodeId>>& nodes,
                        std::span<const PartId> part) {
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown traverse phase in scan command");
    std::vector<bool> visited(g.node_count(), false);
    const auto found = extract_subpaths(g, nodes[p], part, visited, work);
    frame.pack(static_cast<std::uint32_t>(found.size()));
    for (const auto& path : found) frame.pack_vector(path);
  });
}

}  // namespace

ParallelTraverseResult traverse_parallel(const AsmGraph& g,
                                         std::span<const PartId> part,
                                         PartId nparts, int nranks,
                                         mpr::CostModel cost,
                                         unsigned threads,
                                         const mpr::FaultPlan& fault_plan,
                                         const mpr::FaultConfig& fault) {
  FOCUS_CHECK(part.size() == g.node_count(), "partition size mismatch");
  const auto nodes = partition_node_lists(part, nparts, threads);

  ParallelTraverseResult out;
  if (!fault_plan.empty()) {
    out.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          if (comm.rank() == 0) {
            ft_traverse_master(comm, g, nodes, part, nparts, fault,
                               &out.paths);
          } else {
            ft_traverse_worker(comm, g, nodes, part);
          }
        },
        cost, fault_plan);
    return out;
  }

  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        std::vector<bool> visited(g.node_count(), false);
        std::vector<std::vector<NodeId>> subpaths;
        double work = 0.0;
        for (std::size_t p = 0; p < nodes.size(); ++p) {
          if (!mine(p, comm)) continue;
          auto found = extract_subpaths(g, nodes[p], part, visited, &work);
          for (auto& path : found) subpaths.push_back(std::move(path));
        }
        comm.charge(work);

        mpr::Message msg;
        msg.pack(static_cast<std::uint32_t>(subpaths.size()));
        for (const auto& path : subpaths) msg.pack_vector(path);
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          std::vector<std::vector<NodeId>> all;
          for (auto& m : gathered) {
            const auto count = m.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              all.push_back(m.unpack_vector<NodeId>());
            }
            FOCUS_CHECK(m.fully_consumed(), "trailing bytes in phase frame");
          }
          double join_work = 0.0;
          out.paths = join_subpaths(g, std::move(all), &join_work);
          comm.charge(join_work);
        }
        comm.barrier();
      },
      cost);
  return out;
}

namespace {

/// Query reads per fault-tolerant overlap partition. Fixed so the block
/// decomposition — and therefore the canonical record order — is a pure
/// function of the read count, independent of rank count and faults.
constexpr std::size_t kFtQueryBlock = 64;

void ft_overlap_master(mpr::Comm& comm, const io::ReadSet& reads,
                       const align::KmerShard& shard,
                       const align::SubsetRanges& subsets,
                       const align::OverlapperConfig& config, PartId nparts,
                       const mpr::FaultConfig& fault,
                       std::vector<align::Overlap>* overlaps) {
  const std::size_t n = reads.size();
  FtMasterState st;
  st.live.assign(static_cast<std::size_t>(comm.size()), 1);
  auto recs = ft_collect_phase<std::vector<align::Overlap>>(
      comm, st, nparts, 0, fault,
      [&](std::uint32_t p, double* work) {
        std::vector<align::Overlap> out;
        const std::size_t begin = p * kFtQueryBlock;
        const std::size_t end = std::min(n, begin + kFtQueryBlock);
        align::distributed_block_overlaps(
            reads, shard, subsets, static_cast<ReadId>(begin),
            static_cast<ReadId>(end), config, out, work);
        return out;
      },
      [](mpr::Message& m) { return m.unpack_vector<align::Overlap>(); });
  std::vector<align::Overlap> all;
  for (auto& r : recs) all.insert(all.end(), r.begin(), r.end());
  comm.charge(static_cast<double>(all.size()) *
              std::log2(static_cast<double>(all.size()) + 2.0));
  *overlaps = align::dedupe_overlaps(std::move(all));
  ft_shutdown_workers(comm, st);
}

void ft_overlap_worker(mpr::Comm& comm, const io::ReadSet& reads,
                       const align::KmerShard& shard,
                       const align::SubsetRanges& subsets,
                       const align::OverlapperConfig& config) {
  const std::size_t n = reads.size();
  ft_worker_loop(comm, [&](std::uint32_t phase, std::uint32_t p,
                           mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase == 0, "unknown overlap phase in scan command");
    std::vector<align::Overlap> out;
    const std::size_t begin = p * kFtQueryBlock;
    const std::size_t end = std::min(n, begin + kFtQueryBlock);
    align::distributed_block_overlaps(reads, shard, subsets,
                                      static_cast<ReadId>(begin),
                                      static_cast<ReadId>(end), config, out,
                                      work);
    frame.pack_vector(out);
  });
}

}  // namespace

ParallelOverlapResult overlap_parallel(const io::ReadSet& reads,
                                       const align::OverlapperConfig& config,
                                       int nranks, mpr::CostModel cost,
                                       const mpr::FaultPlan& fault_plan,
                                       const mpr::FaultConfig& fault) {
  if (fault_plan.empty()) {
    auto r = align::find_overlaps_sharded(reads, config, nranks, cost);
    return {std::move(r.overlaps), r.stats};
  }

  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  FOCUS_CHECK(config.subsets > 0, "subset count must be positive");
  FOCUS_CHECK(config.k >= 8 && config.k <= 32, "seed k must be in [8, 32]");
  const std::size_t n = reads.size();
  const auto nparts =
      static_cast<PartId>((n + kFtQueryBlock - 1) / kFtQueryBlock);

  ParallelOverlapResult out;
  out.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // Replicated single-shard layout: under faults any surviving rank
        // may be asked to replay any query block, so every rank holds the
        // full index — trading memory for the ability to reassign blocks
        // without a shard-recovery round.
        double build_work = 0.0;
        auto postings = align::extract_shard_postings(
            reads, 0, static_cast<ReadId>(n), config.k, 1, &build_work);
        const align::KmerShard shard(std::move(postings[0]), config.k);
        build_work += shard.build_work();
        comm.charge(build_work);
        const align::SubsetRanges subsets(
            io::split_into_subsets(n, config.subsets));

        if (comm.rank() == 0) {
          ft_overlap_master(comm, reads, shard, subsets, config, nparts,
                            fault, &out.overlaps);
        } else {
          ft_overlap_worker(comm, reads, shard, subsets, config);
        }
      },
      cost, fault_plan);
  return out;
}

}  // namespace focus::dist
