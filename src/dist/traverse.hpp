// Maximal path extraction and joining (paper §V-D).
//
// Workers grow unambiguous paths inside their own partition: from a seed
// node, extension by out-edges appends vz when the current endpoint has a
// single out-edge e = (vy, vz), e is vz's only in-edge, and vz is in the same
// partition; extension by in-edges is symmetric. The master then joins
// sub-paths whose junction is unambiguous (p1's right endpoint has an
// out-edge to p2's left endpoint, and that endpoint has no other in-edges).
#pragma once

#include <span>
#include <vector>

#include "dist/asm_graph.hpp"

namespace focus::dist {

/// Grows maximal unambiguous paths over `scan`. If `part` is non-empty,
/// extension never crosses a partition boundary (worker behaviour); an empty
/// `part` means unrestricted (serial behaviour). `visited` persists across
/// calls by the same worker. Every live scanned node ends up in exactly one
/// path (possibly a singleton). GraphT is dist::AsmGraph or
/// dist::StoredAsmGraph (explicit instantiations in traverse.cpp); both
/// backends produce byte-identical paths.
template <class GraphT>
std::vector<std::vector<NodeId>> extract_subpaths(
    const GraphT& g, std::span<const NodeId> scan,
    std::span<const PartId> part, std::vector<bool>& visited,
    double* work = nullptr);

/// Unmarks every node of `paths` in `visited`. Every node extract_subpaths
/// marks ends up in exactly one returned path, so this restores the scratch
/// to all-false in O(extracted nodes) — callers that must re-scan (fault
/// replays) reuse one allocation instead of zeroing node_count() bits per
/// partition.
void clear_visited(const std::vector<std::vector<NodeId>>& paths,
                   std::vector<bool>& visited);

/// Master-side joining of worker sub-paths; returns the final maximal paths.
template <class GraphT>
std::vector<std::vector<NodeId>> join_subpaths(
    const GraphT& g, std::vector<std::vector<NodeId>> subpaths,
    double* work = nullptr);

/// Serial driver: extraction over all live nodes followed by joining.
template <class GraphT>
std::vector<std::vector<NodeId>> traverse_serial(const GraphT& g,
                                                 double* work = nullptr);

}  // namespace focus::dist
