// Variant detection on the (distributed) hybrid assembly graph — the
// extension the paper names as future work in §VI-D: "variant detection
// algorithms can be implemented to be run on the distributed hybrid graph".
//
// A simple bubble whose two branches align at high identity is not an error
// to pop but a *variant site*: two alleles of the same locus (strain-level
// SNPs or small indels in a metagenome). Workers scan their partitions for
// such bubbles and align the branch contigs; the master merges the reports.
// Unlike bubble popping (§V-C) this pass is read-only.
#pragma once

#include <span>
#include <vector>

#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "mpr/runtime.hpp"

namespace focus::dist {

struct VariantConfig {
  /// Branches are followed at most this many interior nodes; longer
  /// divergent regions spanning several contigs are still called.
  std::size_t max_branch_nodes = 6;
  /// Minimum identity of the aligned branch contigs for the pair to be a
  /// variant (below this the bubble is noise, not an allele pair).
  double min_identity = 0.80;
  /// Alignment band half-width.
  std::uint32_t band = 16;
  /// For closed bubbles: ignore branch pairs whose lengths differ more than
  /// this factor.
  double max_length_ratio = 1.3;
  /// Also pair *open* branches — chains that diverge from a shared anchor
  /// but never re-merge (haplotype-resolved strains assemble this way).
  /// Their common-length prefixes are aligned instead.
  bool allow_open_bubbles = true;
  /// Minimum compared prefix length for an open-branch pair.
  std::size_t min_open_prefix = 100;
};

/// One called variant site: two alternative branch chains between the same
/// pair of anchor nodes. Trivially copyable for mpr shipping.
struct Variant {
  NodeId branch_point = kInvalidNode;  // last shared node before the alleles
  /// First shared node after the alleles, or kInvalidNode for an open
  /// bubble (the branches never re-merge).
  NodeId merge_point = kInvalidNode;
  NodeId major_allele = kInvalidNode;  // first contig of the stronger branch
  NodeId minor_allele = kInvalidNode;
  Weight major_coverage = 0;           // mean reads per branch node
  Weight minor_coverage = 0;
  std::uint32_t major_nodes = 0;       // branch chain lengths (contigs)
  std::uint32_t minor_nodes = 0;
  std::uint32_t mismatch_sites = 0;    // SNP-like columns between the alleles
  std::uint32_t indel_sites = 0;       // gap columns between the alleles
  float identity = 0.0f;               // alignment identity of the alleles
};

/// Scans `scan` nodes for variant bubbles (read-only).
std::vector<Variant> find_variants(const AsmGraph& g,
                                   std::span<const NodeId> scan,
                                   const VariantConfig& config,
                                   double* work = nullptr);

/// Serial driver over all nodes, with deterministic ordering and
/// deduplication of sites discovered from multiple anchors.
std::vector<Variant> find_variants_serial(const AsmGraph& g,
                                          const VariantConfig& config = {},
                                          double* work = nullptr);

struct ParallelVariantResult {
  std::vector<Variant> variants;
  mpr::RunStats run;
};

/// Distributed driver: one partition per worker (round-robin over ranks),
/// master merge + dedupe — the same §V master/worker protocol as the
/// cleaning passes. With a non-empty fault plan the scan runs under the
/// shared fault-tolerant phase protocol (mpr/ft_phase.hpp): master/worker by
/// default, the rotating-coordinator WAL when `dist.protocol` is symmetric —
/// either way recovering the byte-identical fault-free variant list.
ParallelVariantResult find_variants_parallel(
    const AsmGraph& g, std::span<const PartId> part, PartId nparts,
    const VariantConfig& config, int nranks, mpr::CostModel cost = {},
    const mpr::FaultPlan& fault_plan = {}, const mpr::FaultConfig& fault = {},
    const DistConfig& dist = {});

}  // namespace focus::dist
