// Graph simplification and error correction on the (distributed) hybrid
// assembly graph — paper §V-A (transitive edge reduction), §V-B (containment
// removal and false-positive edge removal), §V-C (dead-end trimming and
// bubble popping).
//
// Every operation is phrased as "workers scan a node subset and *record*
// changes; the master *applies* them" — exactly the paper's master/worker
// protocol — so the same building blocks serve the serial driver (one subset
// = all nodes) and the mpr-parallel driver (one subset per partition).
//
// All passes are templates over the graph backend: GraphT is dist::AsmGraph
// (in-memory) or dist::StoredAsmGraph (partition slices under a spill
// budget). Definitions live in simplify.cpp with explicit instantiations for
// both — the backends produce byte-identical results
// (tests/graph_store_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/asm_graph.hpp"

namespace focus::dist {

struct SimplifyConfig {
  /// Edges whose verified contig overlap is shorter than this are false
  /// positives (paper: 50 bp).
  std::uint32_t min_edge_overlap = 50;
  /// Minimum identity of the verified contig-contig alignment.
  double min_edge_identity = 0.90;
  /// A contig covered by a neighbor alignment over at least this fraction of
  /// its length is contained.
  double containment_coverage = 0.95;
  /// Banded-NW half width for contig overlap verification; absorbs errors in
  /// the edge's offset estimate.
  std::uint32_t band = 16;
  /// Dead-end paths at most this many nodes AND shorter than tip_max_bp are
  /// clipped.
  std::size_t tip_max_nodes = 3;
  std::uint32_t tip_max_bp = 250;
  /// Bubble branches are followed at most this many interior nodes.
  std::size_t bubble_max_nodes = 5;
};

/// Counts of applied changes across a simplification run.
struct SimplifyStats {
  std::size_t transitive_edges = 0;
  std::size_t false_edges = 0;
  std::size_t contained_nodes = 0;
  std::size_t verified_edges = 0;
  std::size_t tip_nodes = 0;
  std::size_t bubble_nodes = 0;
};

// --- Worker-side recording passes (read-only on the graph). ---------------

/// Reusable direct-successor marks for find_transitive_edges. One instance
/// per scanning rank; sized (lazily) to node_count() and never re-zeroed on
/// the hot path — membership is `stamp[v] == epoch` and bumping the epoch
/// invalidates every mark in O(1).
struct TransitiveScratch {
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
};

/// §V-A: transitive edges seen from the nodes in `scan`. `scratch` persists
/// across calls by the same rank.
template <class GraphT>
std::vector<EdgeId> find_transitive_edges(const GraphT& g,
                                          std::span<const NodeId> scan,
                                          TransitiveScratch& scratch,
                                          double* work = nullptr);

/// Convenience overload with a call-local scratch.
template <class GraphT>
std::vector<EdgeId> find_transitive_edges(const GraphT& g,
                                          std::span<const NodeId> scan,
                                          double* work = nullptr);

/// §V-B results: verified edge updates, false-positive edges, contained
/// nodes. Trivially copyable for mpr shipping.
struct EdgeVerification {
  EdgeId edge = kInvalidEdge;
  std::uint32_t overlap = 0;
  float identity = 0.0f;
};

struct ContainmentFindings {
  std::vector<EdgeVerification> verified;
  std::vector<EdgeId> false_edges;
  std::vector<NodeId> contained_nodes;
};

/// §V-B: aligns each scanned node's contig against its out-neighbors'
/// contigs; classifies edges (verified / false) and detects containment.
template <class GraphT>
ContainmentFindings find_containments(const GraphT& g,
                                      std::span<const NodeId> scan,
                                      const SimplifyConfig& config,
                                      double* work = nullptr);

/// §V-C: nodes on short dead-end paths reachable from the scanned nodes.
template <class GraphT>
std::vector<NodeId> find_tips(const GraphT& g, std::span<const NodeId> scan,
                              const SimplifyConfig& config,
                              double* work = nullptr);

/// §V-C: interior nodes of the weaker branch of each simple bubble whose
/// branch point is a scanned node.
template <class GraphT>
std::vector<NodeId> find_bubbles(const GraphT& g,
                                 std::span<const NodeId> scan,
                                 const SimplifyConfig& config,
                                 double* work = nullptr);

// --- Master-side application. ----------------------------------------------

/// Applies recorded changes, deduplicating (cross-partition edges are
/// recorded by both sides, paper §V-A). Returns the number of *distinct*
/// applied changes.
template <class GraphT>
std::size_t apply_edge_removals(GraphT& g, std::vector<EdgeId> edges);
template <class GraphT>
std::size_t apply_node_removals(GraphT& g, std::vector<NodeId> nodes);
template <class GraphT>
std::size_t apply_verifications(GraphT& g,
                                const std::vector<EdgeVerification>& v);

// --- Serial driver. ---------------------------------------------------------

/// Full simplification pipeline on one process: transitive reduction →
/// containment/verification → tips → bubbles.
template <class GraphT>
SimplifyStats simplify_serial(GraphT& g, const SimplifyConfig& config,
                              double* work = nullptr);

}  // namespace focus::dist
