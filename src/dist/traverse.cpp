#include "dist/traverse.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "dist/stored_graph.hpp"

namespace focus::dist {

namespace {

// Whether extension may move from `from` to `to` under partition `part`.
bool same_partition(std::span<const PartId> part, NodeId from, NodeId to) {
  if (part.empty()) return true;
  return part[from] == part[to];
}

}  // namespace

template <class GraphT>
std::vector<std::vector<NodeId>> extract_subpaths(
    const GraphT& g, std::span<const NodeId> scan,
    std::span<const PartId> part, std::vector<bool>& visited, double* work) {
  FOCUS_CHECK(visited.size() == g.node_count(), "visited vector size mismatch");
  std::vector<std::vector<NodeId>> paths;

  for (const NodeId seed : scan) {
    if (!g.node_live(seed) || visited[seed]) continue;
    std::vector<NodeId> path{seed};
    visited[seed] = true;

    // Extension by out-edges.
    for (NodeId cur = seed;;) {
      if (work != nullptr) *work += 1.0;
      const auto out = g.live_out(cur);
      if (out.size() != 1) break;
      const NodeId next = g.edge(out[0]).to;
      if (visited[next] || g.live_in_degree(next) != 1 ||
          !same_partition(part, cur, next)) {
        break;
      }
      path.push_back(next);
      visited[next] = true;
      cur = next;
    }
    // Extension by in-edges from the seed.
    std::vector<NodeId> front;
    for (NodeId cur = seed;;) {
      if (work != nullptr) *work += 1.0;
      const auto in = g.live_in(cur);
      if (in.size() != 1) break;
      const NodeId prev = g.edge(in[0]).from;
      if (visited[prev] || g.live_out_degree(prev) != 1 ||
          !same_partition(part, cur, prev)) {
        break;
      }
      front.push_back(prev);
      visited[prev] = true;
      cur = prev;
    }
    if (!front.empty()) {
      std::reverse(front.begin(), front.end());
      front.insert(front.end(), path.begin(), path.end());
      path = std::move(front);
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

void clear_visited(const std::vector<std::vector<NodeId>>& paths,
                   std::vector<bool>& visited) {
  for (const auto& path : paths) {
    for (const NodeId v : path) visited[v] = false;
  }
}

template <class GraphT>
std::vector<std::vector<NodeId>> join_subpaths(
    const GraphT& g, std::vector<std::vector<NodeId>> subpaths,
    double* work) {
  // left_of[v] = index of the sub-path whose left endpoint is v.
  std::unordered_map<NodeId, std::size_t> left_of;
  left_of.reserve(subpaths.size());
  for (std::size_t i = 0; i < subpaths.size(); ++i) {
    FOCUS_CHECK(!subpaths[i].empty(), "empty sub-path");
    const auto [it, inserted] = left_of.emplace(subpaths[i].front(), i);
    FOCUS_CHECK(inserted, "two sub-paths share a left endpoint");
  }

  // next[i] = sub-path that unambiguously continues sub-path i.
  std::vector<std::size_t> next(subpaths.size(), subpaths.size());
  std::vector<bool> is_continuation(subpaths.size(), false);
  for (std::size_t i = 0; i < subpaths.size(); ++i) {
    const NodeId right = subpaths[i].back();
    const auto out = g.live_out(right);
    if (work != nullptr) *work += 1.0 + static_cast<double>(out.size());
    if (out.size() != 1) continue;
    const NodeId target = g.edge(out[0]).to;
    if (g.live_in_degree(target) != 1) continue;  // other in-edges: ambiguous
    const auto it = left_of.find(target);
    if (it == left_of.end() || it->second == i) continue;
    next[i] = it->second;
    is_continuation[it->second] = true;
  }

  // Emit chains starting from sub-paths that are not continuations.
  std::vector<std::vector<NodeId>> joined;
  std::vector<bool> consumed(subpaths.size(), false);
  for (std::size_t i = 0; i < subpaths.size(); ++i) {
    if (is_continuation[i] || consumed[i]) continue;
    std::vector<NodeId> path;
    std::size_t cur = i;
    while (cur < subpaths.size() && !consumed[cur]) {
      consumed[cur] = true;
      path.insert(path.end(), subpaths[cur].begin(), subpaths[cur].end());
      cur = next[cur];
    }
    joined.push_back(std::move(path));
  }
  // Cycles of sub-paths (every element a continuation) are emitted as-is,
  // broken at the lowest index.
  for (std::size_t i = 0; i < subpaths.size(); ++i) {
    if (consumed[i]) continue;
    std::vector<NodeId> path;
    std::size_t cur = i;
    while (cur < subpaths.size() && !consumed[cur]) {
      consumed[cur] = true;
      path.insert(path.end(), subpaths[cur].begin(), subpaths[cur].end());
      cur = next[cur];
    }
    joined.push_back(std::move(path));
  }
  return joined;
}

template <class GraphT>
std::vector<std::vector<NodeId>> traverse_serial(const GraphT& g,
                                                 double* work) {
  std::vector<NodeId> all;
  all.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) all.push_back(v);
  std::vector<bool> visited(g.node_count(), false);
  auto subpaths = extract_subpaths(g, all, {}, visited, work);
  return join_subpaths(g, std::move(subpaths), work);
}

// Explicit instantiations for the two graph backends (see traverse.hpp).
#define FOCUS_INSTANTIATE_TRAVERSE(G)                                    \
  template std::vector<std::vector<NodeId>> extract_subpaths<G>(         \
      const G&, std::span<const NodeId>, std::span<const PartId>,        \
      std::vector<bool>&, double*);                                      \
  template std::vector<std::vector<NodeId>> join_subpaths<G>(            \
      const G&, std::vector<std::vector<NodeId>>, double*);              \
  template std::vector<std::vector<NodeId>> traverse_serial<G>(const G&, \
                                                               double*);

FOCUS_INSTANTIATE_TRAVERSE(AsmGraph)
FOCUS_INSTANTIATE_TRAVERSE(StoredAsmGraph)

#undef FOCUS_INSTANTIATE_TRAVERSE

}  // namespace focus::dist
