// GFA 1.0 export of assembly graphs — the de-facto interchange format for
// assembly graph viewers (Bandage) and downstream tools. Segments are the
// live contigs; links are the live directed overlap edges with their
// (estimated or verified) overlap length as a CIGAR match run.
#pragma once

#include <iosfwd>
#include <string>

#include "dist/asm_graph.hpp"
#include "dist/parallel.hpp"
#include "mpr/runtime.hpp"

namespace focus::dist {

struct GfaOptions {
  /// Emit per-node read counts as `RC` tags.
  bool read_count_tags = true;
  /// Skip contigs shorter than this (0 = keep all).
  std::size_t min_segment_length = 0;
};

/// Writes the live part of the assembly graph as GFA 1.0. Node ids become
/// segment names ("c<N>").
void write_gfa(std::ostream& out, const AsmGraph& graph,
               const GfaOptions& options = {});

/// Convenience: write to a file path; throws focus::Error on I/O failure.
void write_gfa_file(const std::string& path, const AsmGraph& graph,
                    const GfaOptions& options = {});

struct ParallelGfaResult {
  std::string gfa;
  mpr::RunStats run;
};

/// mpr-parallel GFA emission: fixed blocks of node ids (segment lines) and
/// edge ids (link lines) are rendered across ranks and reassembled in
/// ascending block order, so the result is byte-identical to write_gfa().
/// The emitted-segment predicate (live and long enough) is a pure function
/// of the graph, so link blocks render independently of segment blocks.
/// With a non-empty fault plan the two phases run under the shared
/// fault-tolerant protocol (mpr/ft_phase.hpp) — master/worker by default,
/// the rotating-coordinator WAL when `dist.protocol` is symmetric.
ParallelGfaResult write_gfa_parallel(const AsmGraph& graph,
                                     const GfaOptions& options, int nranks,
                                     mpr::CostModel cost = {},
                                     const mpr::FaultPlan& fault_plan = {},
                                     const mpr::FaultConfig& fault = {},
                                     const DistConfig& dist = {});

}  // namespace focus::dist
