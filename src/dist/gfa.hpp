// GFA 1.0 export of assembly graphs — the de-facto interchange format for
// assembly graph viewers (Bandage) and downstream tools. Segments are the
// live contigs; links are the live directed overlap edges with their
// (estimated or verified) overlap length as a CIGAR match run.
#pragma once

#include <iosfwd>
#include <string>

#include "dist/asm_graph.hpp"

namespace focus::dist {

struct GfaOptions {
  /// Emit per-node read counts as `RC` tags.
  bool read_count_tags = true;
  /// Skip contigs shorter than this (0 = keep all).
  std::size_t min_segment_length = 0;
};

/// Writes the live part of the assembly graph as GFA 1.0. Node ids become
/// segment names ("c<N>").
void write_gfa(std::ostream& out, const AsmGraph& graph,
               const GfaOptions& options = {});

/// Convenience: write to a file path; throws focus::Error on I/O failure.
void write_gfa_file(const std::string& path, const AsmGraph& graph,
                    const GfaOptions& options = {});

}  // namespace focus::dist
