#include "dist/stored_graph.hpp"

#include "common/error.hpp"
#include "common/packed_seq.hpp"

namespace focus::dist {

namespace {

// Slice payload layout (little-endian; offsets in bytes):
//   0              u32  partition id
//   4              u32  nlocal (nodes in this partition)
//   8              u64  m_out (total out-edge ids)
//   16             u64  m_in
//   24             u32  out_offsets[nlocal + 1]   CSR into out_ids
//   ...            u32  in_offsets[nlocal + 1]    CSR into in_ids
//   ...            u32  out_ids[m_out]            global EdgeIds, id-ascending
//   ...            u32  in_ids[m_in]
//   ...            u64  seq_off[nlocal]           per-node blob, rel. seq base
//   seq base       per node: u64 nwords, u64 words[nwords] (2-bit packed,
//                  packed_seq word layout), u32 n_exc, {u32 pos, u8 ch}[n_exc]
//                  patching every non-ACGT character for byte-exact decode.
constexpr std::size_t kSliceHeader = 24;

bool is_acgt(char c) {
  return c == 'A' || c == 'C' || c == 'G' || c == 'T';
}

constexpr char kCodeToBase[4] = {'A', 'C', 'G', 'T'};

}  // namespace

struct StoredAsmGraph::SliceView {
  graph::SpillManager::Blob blob;
  std::uint32_t nlocal = 0;
  std::uint64_t m_out = 0;
  std::uint64_t m_in = 0;
  std::size_t out_offsets = 0;
  std::size_t in_offsets = 0;
  std::size_t out_ids = 0;
  std::size_t in_ids = 0;
  std::size_t seq_off = 0;
  std::size_t seq_base = 0;
  const std::vector<std::uint8_t>& bytes() const { return *blob; }
};

StoredAsmGraph::SliceView StoredAsmGraph::slice(PartId p) const {
  FOCUS_ASSERT(p >= 0 && p < nparts_, "graph store: partition out of range");
  SliceView view;
  view.blob = manager_->fetch(static_cast<std::uint32_t>(p));
  const std::vector<std::uint8_t>& b = view.bytes();
  view.nlocal = graph::slice_u32(b, 4);
  view.m_out = graph::slice_u64(b, 8);
  view.m_in = graph::slice_u64(b, 16);
  view.out_offsets = kSliceHeader;
  view.in_offsets = view.out_offsets + 4 * (view.nlocal + std::size_t{1});
  view.out_ids = view.in_offsets + 4 * (view.nlocal + std::size_t{1});
  view.in_ids = view.out_ids + 4 * view.m_out;
  view.seq_off = view.in_ids + 4 * view.m_in;
  view.seq_base = view.seq_off + 8 * std::size_t{view.nlocal};
  return view;
}

std::string StoredAsmGraph::decode_contig(const SliceView& view,
                                          NodeId v) const {
  const std::vector<std::uint8_t>& b = view.bytes();
  const std::uint32_t local = meta_[v].local;
  const std::size_t len = meta_[v].contig_len;
  const std::size_t node_off =
      view.seq_base + graph::slice_u64(b, view.seq_off + 8 * std::size_t{local});
  const std::uint64_t nwords = graph::slice_u64(b, node_off);
  const std::size_t words_off = node_off + 8;
  std::string out(len, 'A');
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if ((i & 31u) == 0) {
      word = graph::slice_u64(b, words_off + 8 * (i >> 5));
    }
    out[i] = kCodeToBase[(word >> ((i & 31u) * 2)) & 3u];
  }
  const std::size_t exc_off = words_off + 8 * nwords;
  const std::uint32_t n_exc = graph::slice_u32(b, exc_off);
  std::size_t pos = exc_off + 4;
  for (std::uint32_t i = 0; i < n_exc; ++i) {
    const std::uint32_t at = graph::slice_u32(b, pos);
    out[at] = static_cast<char>(graph::slice_u8(b, pos + 4));
    pos += 5;
  }
  return out;
}

std::string StoredAsmGraph::contig(NodeId v) const {
  return decode_contig(slice(meta_[v].part), v);
}

std::vector<EdgeId> StoredAsmGraph::live_out(NodeId v) const {
  const SliceView view = slice(meta_[v].part);
  const std::vector<std::uint8_t>& b = view.bytes();
  const std::uint32_t local = meta_[v].local;
  const std::uint32_t begin = graph::slice_u32(b, view.out_offsets + 4 * std::size_t{local});
  const std::uint32_t end =
      graph::slice_u32(b, view.out_offsets + 4 * (std::size_t{local} + 1));
  std::vector<EdgeId> out;
  for (std::uint32_t i = begin; i < end; ++i) {
    const EdgeId e = graph::slice_u32(b, view.out_ids + 4 * std::size_t{i});
    if (edge_live(e)) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> StoredAsmGraph::live_in(NodeId v) const {
  const SliceView view = slice(meta_[v].part);
  const std::vector<std::uint8_t>& b = view.bytes();
  const std::uint32_t local = meta_[v].local;
  const std::uint32_t begin = graph::slice_u32(b, view.in_offsets + 4 * std::size_t{local});
  const std::uint32_t end =
      graph::slice_u32(b, view.in_offsets + 4 * (std::size_t{local} + 1));
  std::vector<EdgeId> out;
  for (std::uint32_t i = begin; i < end; ++i) {
    const EdgeId e = graph::slice_u32(b, view.in_ids + 4 * std::size_t{i});
    if (edge_live(e)) out.push_back(e);
  }
  return out;
}

std::size_t StoredAsmGraph::live_out_degree(NodeId v) const {
  return live_out(v).size();
}

std::size_t StoredAsmGraph::live_in_degree(NodeId v) const {
  return live_in(v).size();
}

std::optional<EdgeId> StoredAsmGraph::find_edge(NodeId u, NodeId v) const {
  const SliceView view = slice(meta_[u].part);
  const std::vector<std::uint8_t>& b = view.bytes();
  const std::uint32_t local = meta_[u].local;
  const std::uint32_t begin = graph::slice_u32(b, view.out_offsets + 4 * std::size_t{local});
  const std::uint32_t end =
      graph::slice_u32(b, view.out_offsets + 4 * (std::size_t{local} + 1));
  for (std::uint32_t i = begin; i < end; ++i) {
    const EdgeId e = graph::slice_u32(b, view.out_ids + 4 * std::size_t{i});
    if (edge_live(e) && edges_[e].to == v) return e;
  }
  return std::nullopt;
}

std::size_t StoredAsmGraph::live_node_count() const {
  std::size_t n = 0;
  for (const std::uint8_t r : removed_) {
    if (r == 0) ++n;
  }
  return n;
}

std::size_t StoredAsmGraph::live_edge_count() const {
  std::size_t n = 0;
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    if (edge_live(e)) ++n;
  }
  return n;
}

std::string StoredAsmGraph::merge_path_contigs(
    const std::vector<NodeId>& path) const {
  FOCUS_CHECK(!path.empty(), "cannot merge an empty path");
  std::string contig = this->contig(path[0]);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const auto eid = find_edge(path[i - 1], path[i]);
    FOCUS_CHECK(eid.has_value(), "path without connecting edge");
    const std::uint32_t overlap = edges_[*eid].overlap;
    const std::string next = this->contig(path[i]);
    if (overlap < next.size()) {
      contig += next.substr(overlap);
    }
  }
  return contig;
}

void StoredAsmGraph::touch_partition(PartId p) const { (void)slice(p); }

AsmGraph StoredAsmGraph::to_asm_graph() const {
  AsmGraph out;
  for (NodeId v = 0; v < meta_.size(); ++v) {
    const NodeId id = out.add_node(contig(v), reads_[v]);
    FOCUS_ASSERT(id == v, "graph store: node id drift");
  }
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    const AsmEdge& src = edges_[e];
    const EdgeId id = out.add_edge(src.from, src.to, src.overlap, src.offset);
    FOCUS_ASSERT(id == e, "graph store: edge id drift");
    if (src.verified) out.set_verified(id, src.overlap, src.identity);
    if (src.removed) out.remove_edge(id);
  }
  for (NodeId v = 0; v < meta_.size(); ++v) {
    if (removed_[v] != 0) out.remove_node(v);
  }
  return out;
}

std::size_t StoredAsmGraph::resident_metadata_bytes() const {
  return meta_.size() * sizeof(NodeMeta) + reads_.size() * sizeof(Weight) +
         removed_.size() + edges_.size() * sizeof(AsmEdge);
}

StoredAsmGraph StoredAsmGraph::from_asm_graph(
    const AsmGraph& g, std::span<const PartId> part, PartId nparts,
    const graph::GraphStoreConfig& config) {
  StoredAsmGraphBuilder builder(config, part, nparts);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    builder.declare_node(static_cast<std::uint32_t>(g.contig_size(v)),
                         g.node_reads(v));
  }
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const AsmEdge& edge = g.edge(e);
    builder.add_edge(edge.from, edge.to, edge.overlap, edge.offset);
  }
  StoredAsmGraph store =
      builder.finish([&g](NodeId v) { return g.node(v).contig; });
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const AsmEdge& src = g.edge(e);
    AsmEdge& dst = store.edges_[e];
    dst.identity = src.identity;
    dst.verified = src.verified;
    dst.removed = src.removed;
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    store.removed_[v] = g.node(v).removed ? 1 : 0;
  }
  return store;
}

StoredAsmGraphBuilder::StoredAsmGraphBuilder(
    const graph::GraphStoreConfig& config, std::span<const PartId> part,
    PartId nparts) {
  FOCUS_CHECK(nparts >= 1, "graph store: need at least one partition");
  g_.nparts_ = nparts;
  g_.manager_ = std::make_unique<graph::SpillManager>(config);
  g_.meta_.reserve(part.size());
  for (const PartId p : part) {
    FOCUS_CHECK(p >= 0 && p < nparts, "graph store: partition id out of range");
    StoredAsmGraph::NodeMeta meta;
    meta.part = p;
    g_.meta_.push_back(meta);
  }
  g_.reads_.resize(part.size(), 0);
  g_.removed_.resize(part.size(), 0);
  out_.resize(part.size());
  in_.resize(part.size());
}

NodeId StoredAsmGraphBuilder::declare_node(std::uint32_t contig_len,
                                           Weight reads) {
  FOCUS_CHECK(declared_ < g_.meta_.size(),
              "graph store: more nodes declared than the partition vector");
  FOCUS_CHECK(contig_len > 0, "assembly node needs a contig sequence");
  FOCUS_CHECK(reads >= 1, "assembly node needs at least one read");
  const NodeId id = static_cast<NodeId>(declared_++);
  g_.meta_[id].contig_len = contig_len;
  g_.reads_[id] = reads;
  return id;
}

EdgeId StoredAsmGraphBuilder::add_edge(NodeId from, NodeId to,
                                       std::uint32_t overlap,
                                       std::uint32_t offset) {
  FOCUS_CHECK(from < declared_ && to < declared_,
              "assembly edge endpoint out of range");
  FOCUS_CHECK(from != to, "assembly self-loops are not allowed");
  FOCUS_CHECK(offset < g_.meta_[from].contig_len,
              "edge offset beyond the source contig");
  g_.edges_.push_back(AsmEdge{from, to, overlap, offset, 1.0f, false, false});
  const auto id = static_cast<EdgeId>(g_.edges_.size() - 1);
  out_[from].push_back(id);
  in_[to].push_back(id);
  return id;
}

StoredAsmGraph StoredAsmGraphBuilder::finish(
    const std::function<std::string(NodeId)>& contig_of) {
  FOCUS_CHECK(declared_ == g_.meta_.size(),
              "graph store: fewer nodes declared than the partition vector");
  std::vector<std::vector<NodeId>> locals(
      static_cast<std::size_t>(g_.nparts_));
  for (NodeId v = 0; v < g_.meta_.size(); ++v) {
    auto& list = locals[static_cast<std::size_t>(g_.meta_[v].part)];
    g_.meta_[v].local = static_cast<std::uint32_t>(list.size());
    list.push_back(v);
  }
  for (PartId p = 0; p < g_.nparts_; ++p) {
    const std::vector<NodeId>& nodes = locals[static_cast<std::size_t>(p)];
    // Sequence section first (one partition's contigs in flight at a time):
    // its per-node offsets go into the table that precedes it.
    graph::SliceWriter seq;
    std::vector<std::uint64_t> seq_off(nodes.size());
    dna::PackedSeq packed;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const NodeId v = nodes[i];
      seq_off[i] = seq.size();
      const std::string contig = contig_of(v);
      FOCUS_CHECK(contig.size() == g_.meta_[v].contig_len,
                  "graph store: contig length differs from declaration");
      packed.assign(contig);
      const std::vector<std::uint64_t>& words = packed.base_words();
      seq.put_u64(words.size());
      for (const std::uint64_t w : words) seq.put_u64(w);
      std::uint32_t n_exc = 0;
      for (const char c : contig) {
        if (!is_acgt(c)) ++n_exc;
      }
      seq.put_u32(n_exc);
      if (n_exc != 0) {
        for (std::size_t j = 0; j < contig.size(); ++j) {
          if (!is_acgt(contig[j])) {
            seq.put_u32(static_cast<std::uint32_t>(j));
            seq.put_u8(static_cast<std::uint8_t>(contig[j]));
          }
        }
      }
    }
    std::uint64_t m_out = 0;
    std::uint64_t m_in = 0;
    for (const NodeId v : nodes) {
      m_out += out_[v].size();
      m_in += in_[v].size();
    }
    graph::SliceWriter w;
    w.put_u32(static_cast<std::uint32_t>(p));
    w.put_u32(static_cast<std::uint32_t>(nodes.size()));
    w.put_u64(m_out);
    w.put_u64(m_in);
    std::uint32_t cursor = 0;
    for (const NodeId v : nodes) {
      w.put_u32(cursor);
      cursor += static_cast<std::uint32_t>(out_[v].size());
    }
    w.put_u32(cursor);
    cursor = 0;
    for (const NodeId v : nodes) {
      w.put_u32(cursor);
      cursor += static_cast<std::uint32_t>(in_[v].size());
    }
    w.put_u32(cursor);
    for (const NodeId v : nodes) {
      for (const EdgeId e : out_[v]) w.put_u32(e);
    }
    for (const NodeId v : nodes) {
      for (const EdgeId e : in_[v]) w.put_u32(e);
    }
    for (const std::uint64_t off : seq_off) w.put_u64(off);
    std::vector<std::uint8_t> payload = w.take();
    const std::vector<std::uint8_t> seq_bytes = seq.take();
    payload.insert(payload.end(), seq_bytes.begin(), seq_bytes.end());
    g_.manager_->insert(static_cast<std::uint32_t>(p), std::move(payload));
  }
  out_.clear();
  out_.shrink_to_fit();
  in_.clear();
  in_.shrink_to_fit();
  return std::move(g_);
}

}  // namespace focus::dist
