// AsmGraph: the mutable directed assembly graph that the distributed
// algorithms of paper §V operate on. Nodes are hybrid-graph read clusters
// carrying their contig sequence; edges are directed overlaps ("the target
// continues the source to the right") with an overlap-length estimate that
// the containment stage verifies by alignment.
//
// Removal is by marking: the master process "removes" recorded nodes/edges
// (paper §V-A/B/C) by flipping flags, so edge ids stay stable across the
// whole simplification pipeline and worker-recorded ids remain valid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace focus::dist {

using EdgeId = std::uint32_t;
inline constexpr EdgeId kInvalidEdge = 0xffffffffu;

struct AsmNode {
  std::string contig;
  /// Number of reads in the underlying cluster (coverage proxy).
  Weight reads = 1;
  bool removed = false;
};

struct AsmEdge {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  /// Overlap length in bp. An estimate until `verified` is set by the
  /// containment/verification stage.
  std::uint32_t overlap = 0;
  /// Estimated start position of `to`'s contig within `from`'s contig
  /// coordinates. For a plain dovetail this is len(from) − overlap; it is
  /// smaller when `to` lies inside `from` (containment candidates).
  std::uint32_t offset = 0;
  float identity = 1.0f;
  bool verified = false;
  bool removed = false;
};

class AsmGraph {
 public:
  AsmGraph() = default;

  NodeId add_node(std::string contig, Weight reads);

  /// Adds an edge with an overlap estimate. `offset_estimate` locates `to`'s
  /// contig within `from`'s coordinates; when omitted it defaults to the
  /// dovetail value len(from) − overlap.
  EdgeId add_edge(NodeId from, NodeId to, std::uint32_t overlap_estimate);
  EdgeId add_edge(NodeId from, NodeId to, std::uint32_t overlap_estimate,
                  std::uint32_t offset_estimate);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const AsmNode& node(NodeId v) const { return nodes_[v]; }
  const AsmEdge& edge(EdgeId e) const { return edges_[e]; }

  /// Contig accessors shared with dist::StoredAsmGraph so the simplify and
  /// traverse kernels can be templates over either backend. Here contig()
  /// returns a reference into the node; the stored graph returns an owning
  /// string decoded from its partition slice — generic code binds the result
  /// with `decltype(auto)` and reads it through std::string_view.
  const std::string& contig(NodeId v) const { return nodes_[v].contig; }
  std::size_t contig_size(NodeId v) const { return nodes_[v].contig.size(); }
  Weight node_reads(NodeId v) const { return nodes_[v].reads; }

  bool node_live(NodeId v) const { return !nodes_[v].removed; }
  bool edge_live(EdgeId e) const {
    const AsmEdge& edge = edges_[e];
    return !edge.removed && !nodes_[edge.from].removed &&
           !nodes_[edge.to].removed;
  }

  /// Live out/in edge ids of v (skips removed edges and edges to removed
  /// nodes), in insertion order.
  std::vector<EdgeId> live_out(NodeId v) const;
  std::vector<EdgeId> live_in(NodeId v) const;
  std::size_t live_out_degree(NodeId v) const;
  std::size_t live_in_degree(NodeId v) const;

  /// Live edge id from u to v, if any.
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;

  void remove_edge(EdgeId e) { edges_[e].removed = true; }
  void remove_node(NodeId v) { nodes_[v].removed = true; }
  void set_verified(EdgeId e, std::uint32_t overlap, float identity) {
    edges_[e].overlap = overlap;
    edges_[e].identity = identity;
    edges_[e].verified = true;
  }

  std::size_t live_node_count() const;
  std::size_t live_edge_count() const;

  /// Concatenates the contigs of a path, trimming each edge's overlap:
  /// contig(p0) + contig(p1)[overlap01:] + …
  std::string merge_path_contigs(const std::vector<NodeId>& path) const;

 private:
  std::vector<AsmNode> nodes_;
  std::vector<AsmEdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
  std::vector<std::vector<EdgeId>> in_;
};

}  // namespace focus::dist
