#include "dist/simplify.hpp"

#include <algorithm>
#include <string_view>

#include "align/banded_nw.hpp"
#include "common/error.hpp"
#include "dist/stored_graph.hpp"

namespace focus::dist {

template <class GraphT>
std::vector<EdgeId> find_transitive_edges(const GraphT& g,
                                          std::span<const NodeId> scan,
                                          TransitiveScratch& scratch,
                                          double* work) {
  std::vector<EdgeId> found;
  if (scratch.stamp.size() != g.node_count()) {
    scratch.stamp.assign(g.node_count(), 0);
    scratch.epoch = 0;
  }
  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    const auto out = g.live_out(v);
    if (out.size() < 2) continue;
    if (++scratch.epoch == 0) {
      // Epoch wrapped: stale stamps could alias the new epoch, so pay one
      // full clear every 2^32 scanned nodes.
      std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
      scratch.epoch = 1;
    }
    for (const EdgeId e : out) scratch.stamp[g.edge(e).to] = scratch.epoch;
    for (const EdgeId mid : out) {
      const NodeId w = g.edge(mid).to;
      for (const EdgeId far : g.live_out(w)) {
        if (work != nullptr) *work += 1.0;
        const NodeId x = g.edge(far).to;
        if (x == v || scratch.stamp[x] != scratch.epoch) continue;
        // v -> x is reachable via w: the direct edge v -> x is transitive.
        const auto vx = g.find_edge(v, x);
        if (vx.has_value()) found.push_back(*vx);
      }
    }
  }
  return found;
}

template <class GraphT>
std::vector<EdgeId> find_transitive_edges(const GraphT& g,
                                          std::span<const NodeId> scan,
                                          double* work) {
  TransitiveScratch scratch;
  return find_transitive_edges(g, scan, scratch, work);
}

template <class GraphT>
ContainmentFindings find_containments(const GraphT& g,
                                      std::span<const NodeId> scan,
                                      const SimplifyConfig& config,
                                      double* work) {
  ContainmentFindings out;
  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    // const& from AsmGraph, an owning string from StoredAsmGraph.
    decltype(auto) cv_seq = g.contig(v);
    const std::string_view cv(cv_seq);
    for (const EdgeId e : g.live_out(v)) {
      if (g.edge(e).verified) continue;  // cross-part edges may be rescanned
      const NodeId w = g.edge(e).to;
      decltype(auto) cw_seq = g.contig(w);
      const std::string_view cw(cw_seq);

      // The edge's offset estimate locates cw within cv's coordinates; the
      // expected overlap window follows directly. The banded alignment's
      // width absorbs small estimate errors.
      const std::size_t offset = g.edge(e).offset;
      if (offset >= cv.size()) {
        out.false_edges.push_back(e);
        continue;
      }
      const std::size_t window = std::min(cv.size() - offset, cw.size());
      const std::string_view a_win = cv.substr(offset, window);
      const std::string_view b_win = cw.substr(0, window);
      if (work != nullptr) {
        *work += align::banded_align_work(window, window, config.band);
      }
      const auto aln = align::banded_global_align(a_win, b_win, config.band);

      // End-trimmed statistics: terminal gap runs only reflect error in the
      // offset estimate, not genuine divergence.
      if (!aln.valid || aln.core_columns() < config.min_edge_overlap ||
          aln.core_identity() < config.min_edge_identity) {
        out.false_edges.push_back(e);
        continue;
      }
      out.verified.push_back(EdgeVerification{
          e, aln.core_columns(), static_cast<float>(aln.core_identity())});
      // Containment: the verified overlap covers (almost) a whole contig —
      // the source when the window starts at its beginning, else the target
      // when the window spans all of it.
      if (static_cast<double>(aln.core_columns()) >=
          config.containment_coverage * static_cast<double>(cv.size())) {
        out.contained_nodes.push_back(v);
      } else if (static_cast<double>(aln.core_columns()) >=
                 config.containment_coverage *
                     static_cast<double>(cw.size())) {
        out.contained_nodes.push_back(w);
      }
    }
  }
  return out;
}

namespace {

// Follows the unambiguous chain starting at `v` in the given direction
// (true = forward/out). Returns the chain nodes (including v) and stops at
// a branching node or after max_nodes.
template <class GraphT>
std::vector<NodeId> follow_chain(const GraphT& g, NodeId v, bool forward,
                                 std::size_t max_nodes, double* work) {
  std::vector<NodeId> chain{v};
  NodeId cur = v;
  while (chain.size() < max_nodes) {
    const auto next_edges = forward ? g.live_out(cur) : g.live_in(cur);
    if (work != nullptr) *work += 1.0;
    if (next_edges.size() != 1) break;
    const NodeId next = forward ? g.edge(next_edges[0]).to
                                : g.edge(next_edges[0]).from;
    const std::size_t back_degree =
        forward ? g.live_in_degree(next) : g.live_out_degree(next);
    if (back_degree != 1) break;  // `next` is a junction: chain ends before it
    chain.push_back(next);
    cur = next;
  }
  return chain;
}

template <class GraphT>
std::uint32_t chain_bp(const GraphT& g, const std::vector<NodeId>& chain) {
  std::uint64_t bp = 0;
  for (const NodeId v : chain) bp += g.contig_size(v);
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(bp, 0xffffffffu));
}

// Lexicographic branch strength: total bp, then total coverage, then the
// *smaller* endpoint id wins (a deterministic tiebreak so exactly one of two
// otherwise-equal dead ends is clipped).
struct BranchStrength {
  std::uint64_t bp = 0;
  Weight reads = 0;
  NodeId endpoint = kInvalidNode;

  bool stronger_than(const BranchStrength& other) const {
    if (bp != other.bp) return bp > other.bp;
    if (reads != other.reads) return reads > other.reads;
    return endpoint < other.endpoint;
  }
};

template <class GraphT>
BranchStrength branch_strength(const GraphT& g,
                               const std::vector<NodeId>& chain) {
  BranchStrength s;
  for (const NodeId v : chain) {
    s.bp += g.contig_size(v);
    s.reads += g.node_reads(v);
  }
  s.endpoint = chain.front();
  return s;
}

}  // namespace

template <class GraphT>
std::vector<NodeId> find_tips(const GraphT& g, std::span<const NodeId> scan,
                              const SimplifyConfig& config, double* work) {
  std::vector<NodeId> tips;

  // A dead-end chain is clipped only when it is short AND some competing
  // branch at the junction is strictly stronger — clipping must never orphan
  // the dominant sequence (a chain's own free end is not an error).
  auto consider = [&](NodeId v, bool forward) {
    const auto chain =
        follow_chain(g, v, forward, config.tip_max_nodes, work);
    if (chain.size() > config.tip_max_nodes) return;
    if (chain_bp(g, chain) >= config.tip_max_bp) return;
    const NodeId last = chain.back();
    const auto hang = forward ? g.live_out(last) : g.live_in(last);
    if (hang.size() != 1) return;  // fully dead or branching: not a tip shape
    const NodeId junction =
        forward ? g.edge(hang[0]).to : g.edge(hang[0]).from;
    const auto siblings =
        forward ? g.live_in(junction) : g.live_out(junction);
    if (siblings.size() < 2) return;  // no alternative support

    const BranchStrength mine = branch_strength(g, chain);
    for (const EdgeId se : siblings) {
      const NodeId sib =
          forward ? g.edge(se).from : g.edge(se).to;
      if (sib == last) continue;
      const auto competitor =
          follow_chain(g, sib, !forward, config.tip_max_nodes + 1, work);
      if (branch_strength(g, competitor).stronger_than(mine)) {
        tips.insert(tips.end(), chain.begin(), chain.end());
        return;
      }
    }
  };

  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    if (g.live_in_degree(v) == 0 && g.live_out_degree(v) >= 1) {
      consider(v, /*forward=*/true);
    }
    if (g.live_out_degree(v) == 0 && g.live_in_degree(v) >= 1) {
      consider(v, /*forward=*/false);
    }
  }
  return tips;
}

template <class GraphT>
std::vector<NodeId> find_bubbles(const GraphT& g,
                                 std::span<const NodeId> scan,
                                 const SimplifyConfig& config, double* work) {
  std::vector<NodeId> removals;
  for (const NodeId v : scan) {
    if (!g.node_live(v)) continue;
    const auto out = g.live_out(v);
    if (out.size() < 2) continue;

    // Each branch: walk the unambiguous interior and record the merge node
    // where the branch re-joins (a node with in-degree >= 2).
    struct Branch {
      NodeId merge = kInvalidNode;
      std::vector<NodeId> interior;
      Weight coverage = 0;
    };
    std::vector<Branch> branches;
    for (const EdgeId e : out) {
      Branch b;
      NodeId cur = g.edge(e).to;
      for (std::size_t steps = 0; steps < config.bubble_max_nodes; ++steps) {
        if (work != nullptr) *work += 1.0;
        if (g.live_in_degree(cur) >= 2) {
          b.merge = cur;  // re-joined the graph
          break;
        }
        b.interior.push_back(cur);
        b.coverage += g.node_reads(cur);
        const auto next = g.live_out(cur);
        if (next.size() != 1) break;  // dead end or fork: not a simple bubble
        cur = g.edge(next[0]).to;
      }
      if (b.merge != kInvalidNode && !b.interior.empty()) {
        branches.push_back(std::move(b));
      }
    }
    if (branches.size() < 2) continue;

    // Group branches by merge node; within a group keep the best-covered
    // branch (ties: fewer nodes, then lower first id) and pop the rest.
    std::sort(branches.begin(), branches.end(),
              [](const Branch& a, const Branch& b) {
                if (a.merge != b.merge) return a.merge < b.merge;
                if (a.coverage != b.coverage) return a.coverage > b.coverage;
                if (a.interior.size() != b.interior.size()) {
                  return a.interior.size() < b.interior.size();
                }
                return a.interior.front() < b.interior.front();
              });
    for (std::size_t i = 0; i < branches.size();) {
      std::size_t j = i + 1;
      while (j < branches.size() && branches[j].merge == branches[i].merge) {
        removals.insert(removals.end(), branches[j].interior.begin(),
                        branches[j].interior.end());
        ++j;
      }
      i = j;
    }
  }
  return removals;
}

template <class GraphT>
std::size_t apply_edge_removals(GraphT& g, std::vector<EdgeId> edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::size_t applied = 0;
  for (const EdgeId e : edges) {
    if (!g.edge(e).removed) {
      g.remove_edge(e);
      ++applied;
    }
  }
  return applied;
}

template <class GraphT>
std::size_t apply_node_removals(GraphT& g, std::vector<NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::size_t applied = 0;
  for (const NodeId v : nodes) {
    if (g.node_live(v)) {
      g.remove_node(v);
      ++applied;
    }
  }
  return applied;
}

template <class GraphT>
std::size_t apply_verifications(GraphT& g,
                                const std::vector<EdgeVerification>& v) {
  std::size_t applied = 0;
  for (const auto& rec : v) {
    if (!g.edge(rec.edge).verified) {
      g.set_verified(rec.edge, rec.overlap, rec.identity);
      ++applied;
    }
  }
  return applied;
}

template <class GraphT>
SimplifyStats simplify_serial(GraphT& g, const SimplifyConfig& config,
                              double* work) {
  SimplifyStats stats;
  std::vector<NodeId> all;
  all.reserve(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) all.push_back(v);

  TransitiveScratch scratch;
  stats.transitive_edges =
      apply_edge_removals(g, find_transitive_edges(g, all, scratch, work));

  auto contain = find_containments(g, all, config, work);
  stats.verified_edges = apply_verifications(g, contain.verified);
  stats.false_edges = apply_edge_removals(g, std::move(contain.false_edges));
  stats.contained_nodes =
      apply_node_removals(g, std::move(contain.contained_nodes));

  stats.tip_nodes = apply_node_removals(g, find_tips(g, all, config, work));
  stats.bubble_nodes =
      apply_node_removals(g, find_bubbles(g, all, config, work));
  return stats;
}

// Explicit instantiations: the kernels are declared (not defined) in
// simplify.hpp and exist for exactly the two graph backends.
#define FOCUS_INSTANTIATE_SIMPLIFY(G)                                         \
  template std::vector<EdgeId> find_transitive_edges<G>(                      \
      const G&, std::span<const NodeId>, TransitiveScratch&, double*);        \
  template std::vector<EdgeId> find_transitive_edges<G>(                      \
      const G&, std::span<const NodeId>, double*);                            \
  template ContainmentFindings find_containments<G>(                          \
      const G&, std::span<const NodeId>, const SimplifyConfig&, double*);     \
  template std::vector<NodeId> find_tips<G>(                                  \
      const G&, std::span<const NodeId>, const SimplifyConfig&, double*);     \
  template std::vector<NodeId> find_bubbles<G>(                               \
      const G&, std::span<const NodeId>, const SimplifyConfig&, double*);     \
  template std::size_t apply_edge_removals<G>(G&, std::vector<EdgeId>);       \
  template std::size_t apply_node_removals<G>(G&, std::vector<NodeId>);       \
  template std::size_t apply_verifications<G>(                                \
      G&, const std::vector<EdgeVerification>&);                              \
  template SimplifyStats simplify_serial<G>(G&, const SimplifyConfig&,        \
                                            double*);

FOCUS_INSTANTIATE_SIMPLIFY(AsmGraph)
FOCUS_INSTANTIATE_SIMPLIFY(StoredAsmGraph)

#undef FOCUS_INSTANTIATE_SIMPLIFY

}  // namespace focus::dist
