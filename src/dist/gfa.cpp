#include "dist/gfa.hpp"

#include <fstream>
#include <ostream>

#include "common/error.hpp"

namespace focus::dist {

void write_gfa(std::ostream& out, const AsmGraph& graph,
               const GfaOptions& options) {
  out << "H\tVN:Z:1.0\n";
  std::vector<bool> emitted(graph.node_count(), false);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (!graph.node_live(v)) continue;
    const auto& node = graph.node(v);
    if (node.contig.size() < options.min_segment_length) continue;
    emitted[v] = true;
    out << "S\tc" << v << '\t' << node.contig;
    if (options.read_count_tags) {
      out << "\tRC:i:" << node.reads;
    }
    out << '\n';
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    if (!graph.edge_live(e)) continue;
    const auto& edge = graph.edge(e);
    if (!emitted[edge.from] || !emitted[edge.to]) continue;
    // All sequences are stored forward (reverse complements are separate
    // nodes), so every link is +/+ with the overlap as a match run.
    out << "L\tc" << edge.from << "\t+\tc" << edge.to << "\t+\t"
        << edge.overlap << "M\n";
  }
}

void write_gfa_file(const std::string& path, const AsmGraph& graph,
                    const GfaOptions& options) {
  std::ofstream out(path);
  FOCUS_CHECK(out.good(), "cannot open GFA output file: " + path);
  write_gfa(out, graph, options);
  FOCUS_CHECK(out.good(), "error writing GFA file: " + path);
}

}  // namespace focus::dist
