#include "dist/gfa.hpp"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <optional>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "mpr/ft_phase.hpp"

namespace focus::dist {

void write_gfa(std::ostream& out, const AsmGraph& graph,
               const GfaOptions& options) {
  out << "H\tVN:Z:1.0\n";
  std::vector<bool> emitted(graph.node_count(), false);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (!graph.node_live(v)) continue;
    const auto& node = graph.node(v);
    if (node.contig.size() < options.min_segment_length) continue;
    emitted[v] = true;
    out << "S\tc" << v << '\t' << node.contig;
    if (options.read_count_tags) {
      out << "\tRC:i:" << node.reads;
    }
    out << '\n';
  }
  for (EdgeId e = 0; e < graph.edge_count(); ++e) {
    if (!graph.edge_live(e)) continue;
    const auto& edge = graph.edge(e);
    if (!emitted[edge.from] || !emitted[edge.to]) continue;
    // All sequences are stored forward (reverse complements are separate
    // nodes), so every link is +/+ with the overlap as a match run.
    out << "L\tc" << edge.from << "\t+\tc" << edge.to << "\t+\t"
        << edge.overlap << "M\n";
  }
}

void write_gfa_file(const std::string& path, const AsmGraph& graph,
                    const GfaOptions& options) {
  std::ofstream out(path);
  FOCUS_CHECK(out.good(), "cannot open GFA output file: " + path);
  write_gfa(out, graph, options);
  FOCUS_CHECK(out.good(), "error writing GFA file: " + path);
}

namespace {

/// Ids per parallel GFA emission block. Fixed so the block decomposition —
/// and therefore the canonical line order — is a pure function of the graph
/// shape, independent of rank count and faults.
constexpr std::size_t kGfaBlock = 256;

constexpr const char* kGfaHeader = "H\tVN:Z:1.0\n";

/// The emitted-segment predicate of write_gfa, as a pure function so link
/// blocks can evaluate it for both endpoints without the serial bitmap.
bool gfa_emits_segment(const AsmGraph& graph, const GfaOptions& options,
                       NodeId v) {
  return graph.node_live(v) &&
         graph.node(v).contig.size() >= options.min_segment_length;
}

/// Segment lines of node-id block p — identical bytes to write_gfa's S loop
/// over the same id range.
std::string gfa_segment_block(const AsmGraph& graph, const GfaOptions& options,
                              std::uint32_t p, double* work) {
  std::ostringstream out;
  const std::size_t begin = static_cast<std::size_t>(p) * kGfaBlock;
  const std::size_t end = std::min(graph.node_count(), begin + kGfaBlock);
  for (std::size_t i = begin; i < end; ++i) {
    const auto v = static_cast<NodeId>(i);
    *work += 1.0;
    if (!gfa_emits_segment(graph, options, v)) continue;
    const auto& node = graph.node(v);
    out << "S\tc" << v << '\t' << node.contig;
    if (options.read_count_tags) {
      out << "\tRC:i:" << node.reads;
    }
    out << '\n';
  }
  return out.str();
}

/// Link lines of edge-id block p — identical bytes to write_gfa's L loop
/// over the same id range.
std::string gfa_link_block(const AsmGraph& graph, const GfaOptions& options,
                           std::uint32_t p, double* work) {
  std::ostringstream out;
  const std::size_t begin = static_cast<std::size_t>(p) * kGfaBlock;
  const std::size_t end = std::min(graph.edge_count(), begin + kGfaBlock);
  for (std::size_t i = begin; i < end; ++i) {
    const auto e = static_cast<EdgeId>(i);
    *work += 1.0;
    if (!graph.edge_live(e)) continue;
    const auto& edge = graph.edge(e);
    if (!gfa_emits_segment(graph, options, edge.from) ||
        !gfa_emits_segment(graph, options, edge.to)) {
      continue;
    }
    out << "L\tc" << edge.from << "\t+\tc" << edge.to << "\t+\t"
        << edge.overlap << "M\n";
  }
  return out.str();
}

ParallelGfaResult write_gfa_parallel_ft(const AsmGraph& graph,
                                        const GfaOptions& options, int nranks,
                                        mpr::CostModel cost,
                                        const mpr::FaultPlan& fault_plan,
                                        const mpr::FaultConfig& fault,
                                        const DistConfig& dist) {
  const auto nblocks_s = static_cast<std::uint32_t>(
      (graph.node_count() + kGfaBlock - 1) / kGfaBlock);
  const auto nblocks_l = static_cast<std::uint32_t>(
      (graph.edge_count() + kGfaBlock - 1) / kGfaBlock);
  ParallelGfaResult result;

  const auto scan_one = [&](std::uint32_t phase) {
    return [&graph, &options, phase](std::uint32_t p, double* work) {
      return phase == 0 ? gfa_segment_block(graph, options, p, work)
                        : gfa_link_block(graph, options, p, work);
    };
  };
  const auto unpack_one = [](mpr::Message& m) { return m.unpack_string(); };
  const auto scan_and_pack = [&](std::uint32_t phase, std::uint32_t p,
                                 mpr::Message& frame, double* work) {
    FOCUS_CHECK(phase <= 1, "unknown GFA phase in scan command");
    frame.pack_string(phase == 0 ? gfa_segment_block(graph, options, p, work)
                                 : gfa_link_block(graph, options, p, work));
  };
  const auto concat = [](const std::vector<std::string>& blocks) {
    std::string joined;
    for (const auto& b : blocks) joined += b;
    return joined;
  };

  if (dist.protocol == DistProtocol::kSymmetric) {
    mpr::SymWal wal;
    wal.live.assign(static_cast<std::size_t>(nranks), 1);
    result.run = mpr::Runtime::execute(
        nranks,
        [&](mpr::Comm& comm) {
          mpr::ft_sym_drive(
              comm, wal, fault, scan_and_pack,
              [&](std::uint32_t phase_start) {
                for (std::uint32_t phase = phase_start; phase < 2; ++phase) {
                  auto recs = mpr::sym_collect_phase<std::string>(
                      comm, wal, phase == 0 ? nblocks_s : nblocks_l, phase,
                      fault, scan_one(phase), unpack_one,
                      mpr::FtOrder::kAscending);
                  mpr::SymWal::Entry entry;
                  entry.payload.pack_string(concat(recs));
                  mpr::sym_wal_commit(comm, wal, std::move(entry));
                }
                // Publish from the durable record — identical whether this
                // rank rendered the blocks itself or inherited them.
                std::string segments, links;
                {
                  std::lock_guard<std::mutex> lock(wal.mu);
                  mpr::Message seg = wal.entries[0].payload;
                  mpr::Message lnk = wal.entries[1].payload;
                  segments = seg.unpack_string();
                  links = lnk.unpack_string();
                  FOCUS_CHECK(seg.fully_consumed() && lnk.fully_consumed(),
                              "trailing bytes in GFA log");
                }
                result.gfa = kGfaHeader + segments + links;
              });
        },
        cost, fault_plan);
    return result;
  }

  result.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        if (comm.rank() == 0) {
          mpr::FtMasterState st;
          st.live.assign(static_cast<std::size_t>(comm.size()), 1);
          auto segments = mpr::ft_collect_phase<std::string>(
              comm, st, nblocks_s, 0, fault, scan_one(0), unpack_one,
              mpr::FtOrder::kAscending);
          auto links = mpr::ft_collect_phase<std::string>(
              comm, st, nblocks_l, 1, fault, scan_one(1), unpack_one,
              mpr::FtOrder::kAscending);
          result.gfa = kGfaHeader + concat(segments) + concat(links);
          mpr::ft_shutdown_workers(comm, st);
        } else {
          mpr::ft_worker_loop(comm, scan_and_pack);
        }
      },
      cost, fault_plan);
  return result;
}

}  // namespace

ParallelGfaResult write_gfa_parallel(const AsmGraph& graph,
                                     const GfaOptions& options, int nranks,
                                     mpr::CostModel cost,
                                     const mpr::FaultPlan& fault_plan,
                                     const mpr::FaultConfig& fault,
                                     const DistConfig& dist) {
  FOCUS_CHECK(nranks >= 1, "need at least one rank");
  if (!fault_plan.empty()) {
    return write_gfa_parallel_ft(graph, options, nranks, cost, fault_plan,
                                 fault, dist);
  }

  const auto nblocks_s = static_cast<std::uint32_t>(
      (graph.node_count() + kGfaBlock - 1) / kGfaBlock);
  const auto nblocks_l = static_cast<std::uint32_t>(
      (graph.edge_count() + kGfaBlock - 1) / kGfaBlock);
  const std::uint32_t nblocks = nblocks_s + nblocks_l;
  ParallelGfaResult result;
  result.run = mpr::Runtime::execute(
      nranks,
      [&](mpr::Comm& comm) {
        // Round-robin blocks over ranks (segment blocks first, then link
        // blocks in one global id space), gathered and placed by block id.
        std::vector<std::pair<std::uint32_t, std::string>> mine;
        double work = 0.0;
        for (std::uint32_t b = 0; b < nblocks; ++b) {
          if (static_cast<int>(b % static_cast<std::uint32_t>(comm.size())) !=
              comm.rank()) {
            continue;
          }
          mine.emplace_back(
              b, b < nblocks_s
                     ? gfa_segment_block(graph, options, b, &work)
                     : gfa_link_block(graph, options, b - nblocks_s, &work));
        }
        comm.charge(work);
        mpr::Message msg;
        msg.pack(static_cast<std::uint32_t>(mine.size()));
        for (const auto& [b, lines] : mine) {
          msg.pack(b);
          msg.pack_string(lines);
        }
        auto gathered = comm.gather(std::move(msg), 0);
        if (comm.rank() == 0) {
          std::vector<std::optional<std::string>> by_block(nblocks);
          for (auto& m : gathered) {
            const auto count = m.unpack<std::uint32_t>();
            for (std::uint32_t i = 0; i < count; ++i) {
              const auto b = m.unpack<std::uint32_t>();
              FOCUS_CHECK(b < nblocks, "GFA frame names an invalid block");
              FOCUS_CHECK(!by_block[b].has_value(),
                          "GFA block duplicated in gather");
              by_block[b] = m.unpack_string();
            }
            FOCUS_CHECK(m.fully_consumed(), "trailing bytes in GFA frame");
          }
          result.gfa = kGfaHeader;
          for (std::uint32_t b = 0; b < nblocks; ++b) {
            FOCUS_CHECK(by_block[b].has_value(), "GFA block missing");
            result.gfa += *by_block[b];
          }
          comm.charge(static_cast<double>(nblocks));
        }
        comm.barrier();
      },
      cost);
  return result;
}

}  // namespace focus::dist
