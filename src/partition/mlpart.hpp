// Multilevel k-way graph partitioning driver (paper §III–IV, §VI-B).
//
// Recursive bisection in log2(k) steps: every region is bisected by (a)
// coarsening its induced subgraph, (b) greedy graph growing on the coarsest
// graph, (c) Kernighan–Lin refinement projected back down the levels. The
// 2^i regions of step i are independent — the natural parallelism the paper
// exploits (§IV-C): with 2^(log2(k)−1) ranks the bisection phase needs only
// log2(k) steps. Afterwards the partition is lifted to every level of the
// input hierarchy (majority weight vote over clusters) and each level is
// independently refined by the global k-way Kernighan–Lin algorithm — the
// second source of parallelism, bounded by the number of levels. Hence the
// paper's processor bound max(n_levels, 2^(log2 k − 1)).
//
// Two orthogonal parallel drivers exist:
//  * partition_hierarchy_parallel — mpr virtual ranks; answers the paper's
//    cluster-scaling question (Fig. 4) in deterministic virtual time.
//  * partition_hierarchy with PartitionerConfig::threads > 1 — a shared
//    ThreadPool; real host parallelism. The recursion tree is walked with
//    fork_join (the two halves of every split run concurrently) and the
//    per-level scoring loops inside KL/k-way/projection use parallel_for.
//    Both drivers produce byte-identical partitions for every width.
//
// Feeding the *multilevel* hierarchy here reproduces the paper's naïve
// baseline (full uncoarsening to G0); feeding the *hybrid* hierarchy
// reproduces the biology-aware variant whose finest graph G'0 is far
// smaller.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "graph/coarsen.hpp"
#include "mpr/runtime.hpp"
#include "partition/ggg.hpp"
#include "partition/kl.hpp"
#include "partition/kway.hpp"

namespace focus::partition {

struct PartitionerConfig {
  graph::CoarsenConfig coarsen;  // for per-region re-coarsening
  GggConfig ggg;
  KlConfig kl;
  KwayConfig kway;
  /// Master seed; every stochastic choice derives from it deterministically.
  std::uint64_t seed = 42;
  /// Independently seeded GGG+KL trials per initial bisection (Karypis &
  /// Kumar run several and keep the best). Trial t of a region draws its Rng
  /// purely from (seed, region, t); the best coarsest-level cut wins, ties
  /// break toward the smaller trial index, so the result is a total-order
  /// argmin independent of evaluation order. Trials run concurrently on the
  /// host pool — this is what parallelizes *inside* the root bisection, the
  /// serial bottleneck of the Fig. 4 pool speedup. 1 (the default)
  /// reproduces the single-trial partitioner bit for bit.
  unsigned trials = 1;
  /// Run the per-level global k-way refinement stage.
  bool kway_refinement = true;
  /// Host threads for the serial driver's ThreadPool (0 = auto: honor
  /// FOCUS_THREADS, else hardware concurrency). The partition is
  /// byte-identical for every value. The mpr driver ignores this and keeps
  /// each virtual rank single-threaded, mirroring CoarsenConfig::threads.
  unsigned threads = 0;
};

/// A partition for every level of a GraphHierarchy.
struct HierarchyPartitioning {
  std::vector<std::vector<PartId>> levels;  // [l][node] -> part
  PartId parts = 0;
  /// Edge cut on the finest level.
  Weight finest_cut = 0;
  /// Total sequential work units spent (sum over all tasks).
  double work = 0.0;
  /// Work units per bisection task: step_work[s][r] is the work of bisecting
  /// the region with label r in recursion step s (2^s regions per step).
  /// Deterministic across thread widths; `work` is their fixed-order sum
  /// plus `kway_work`. Feeds the benchmark's schedule model.
  std::vector<std::vector<double>> step_work;
  /// Work units of the global k-way refinement of each hierarchy level.
  std::vector<double> kway_work;
  /// Intra-bisection parallelism split of each region task, feeding the
  /// Fig. 4 bench's speedup model (both deterministic across widths):
  /// step_trial_work[s][r] holds the per-trial GGG+KL work of the
  /// multi-trial initial bisection (empty when trials == 1), and
  /// step_pooled_work[s][r] the portion of step_work[s][r] spent in
  /// pool-parallel scoring loops (KL D-value sweeps, chunked pair-search
  /// chunks) outside the trials.
  std::vector<std::vector<std::vector<double>>> step_trial_work;
  std::vector<std::vector<double>> step_pooled_work;

  const std::vector<PartId>& finest() const { return levels.front(); }
};

/// Optional per-task accounting returned by bisect_region for the bench's
/// intra-bisection speedup model.
struct BisectRegionAccounting {
  /// GGG+KL work of each initial-bisection trial (empty when trials == 1,
  /// whose work is charged straight to `work` to keep the single-trial
  /// accounting bit-identical to the pre-trials partitioner).
  std::vector<double> trial_work;
  /// Work spent in pool-parallelizable loops outside the trials.
  double pooled_work = 0.0;
};

/// Bisects the nodes in `region` (ids into `g`) via coarsen + multi-trial
/// GGG + KL with projection. Returns one side bit per region entry.
/// `region_weight` is the total node weight of the region, accounted once by
/// the caller at the split point (asserted against the induced subgraph).
/// With a pool, the initial-bisection trials run concurrently (each trial's
/// work lands in a per-trial slot merged in trial order) and the KL scoring,
/// pair-search, and projection loops run as parallel scoring passes — all
/// byte-identical to the serial walk.
std::vector<std::uint8_t> bisect_region(const graph::Graph& g,
                                        const std::vector<NodeId>& region,
                                        const PartitionerConfig& config,
                                        std::uint64_t region_seed,
                                        Weight region_weight, double* work,
                                        ThreadPool* pool = nullptr,
                                        BisectRegionAccounting* acct = nullptr);

/// Serial reference implementation — and, with config.threads != 1, the
/// pool-parallel host driver. Byte-identical output at every thread width.
HierarchyPartitioning partition_hierarchy(const graph::GraphHierarchy& h,
                                          PartId k,
                                          const PartitionerConfig& config);

struct ParallelPartitionResult {
  HierarchyPartitioning partitioning;
  mpr::RunStats stats;
};

/// Distributed driver: bisection regions round-robin over ranks per step,
/// then per-level k-way refinement round-robin over ranks. Produces the
/// same partitioning as the serial driver for every rank count.
///
/// With a non-empty fault plan the driver switches to the shared
/// fault-tolerant phase protocol (mpr/ft_phase.hpp): each bisection step is
/// one phase whose scan commands carry the region node lists and weights
/// (workers are stateless — every scan is a pure function of the command
/// payload plus the replicated hierarchy), followed by one phase of
/// per-level k-way refinement whose commands carry the lifted level labels.
/// `symmetric` selects the rotating-coordinator WAL protocol (§7b) instead
/// of master/worker — a bool rather than dist::DistProtocol because the
/// partition layer sits below dist. Either way the recovered partitioning
/// is byte-identical to the fault-free one.
ParallelPartitionResult partition_hierarchy_parallel(
    const graph::GraphHierarchy& h, PartId k, const PartitionerConfig& config,
    int nranks, mpr::CostModel cost = {}, const mpr::FaultPlan& fault_plan = {},
    const mpr::FaultConfig& fault = {}, bool symmetric = false);

/// Lifts a finest-level partition to every hierarchy level by majority
/// (node-weight) vote within each cluster. With a pool, the per-level winner
/// selection runs as a parallel loop (vote tallying stays serial: it
/// scatters into per-parent buckets).
std::vector<std::vector<PartId>> lift_partition(
    const graph::GraphHierarchy& h, const std::vector<PartId>& finest,
    PartId parts, ThreadPool* pool = nullptr);

}  // namespace focus::partition
