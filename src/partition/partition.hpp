// Partition types and quality metrics (paper §IV).
//
// A partitioning P = {P1 … Pk} assigns every node a part id in [0, k). The
// quality measures are the paper's: edge cut (total weight of edges whose
// endpoints lie in different parts) and node/edge-weight balance across
// parts (the growing and refinement algorithms enforce a 1.03 bound).
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "graph/graph.hpp"

namespace focus::partition {

using graph::Graph;

/// Total weight of edges crossing between parts. With a pool, per-chunk
/// partial sums are reduced in chunk order — integer addition, so the result
/// is exactly the serial one at every pool width.
Weight edge_cut(const Graph& g, const std::vector<PartId>& part,
                ThreadPool* pool = nullptr);

/// Per-part sums of node weights.
std::vector<Weight> part_node_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts);

/// Per-part sums of incident edge weights (cross edges count for both).
std::vector<Weight> part_edge_weights(const Graph& g,
                                      const std::vector<PartId>& part,
                                      PartId parts);

/// max_i(part weight) * k / total weight; 1.0 = perfectly balanced.
double node_balance(const Graph& g, const std::vector<PartId>& part,
                    PartId parts);

/// True iff every node has a part id in [0, parts).
bool is_complete(const std::vector<PartId>& part, PartId parts);

}  // namespace focus::partition
